// Command flobench regenerates the tables behind every figure in the
// FloDB paper's evaluation (EuroSys 2017, §5).
//
// Usage:
//
//	flobench [flags] <figure> [<figure> ...]
//	flobench -quick all
//
// Figures: fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 fig17 scanstats, the contract/scaling extras (apibench,
// shardbench, adaptive, ablate-*), or "all". An unknown figure name is
// an error (exit 2) listing the valid names.
//
// -json writes the machine-readable per-figure results consumed by
// cmd/benchdiff — the CI bench-trajectory format (BENCH_BASELINE.json).
//
// Sizes default to 1/1024 of the paper's (the column labels report the
// paper-scale sizes); see DESIGN.md §3 and EXPERIMENTS.md for the scaling
// rationale and expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"flodb/internal/figures"
	"flodb/internal/harness"
)

var figureFuncs = map[string]func(figures.Config) (*harness.Table, error){
	"fig3":      figures.Fig3,
	"fig4":      figures.Fig4,
	"fig5":      figures.Fig5,
	"fig7":      figures.Fig7,
	"fig8":      figures.Fig8,
	"fig9":      figures.Fig9,
	"fig10":     figures.Fig10,
	"fig11":     figures.Fig11,
	"fig12":     figures.Fig12,
	"fig13":     figures.Fig13,
	"fig14":     figures.Fig14,
	"fig15":     figures.Fig15,
	"fig16":     figures.Fig16,
	"fig17":     figures.Fig17,
	"scanstats": figures.ScanStats,
	// Contract surface beyond the paper: atomic batches + streaming
	// iterators across the six systems.
	"apibench": figures.APIBench,
	// Shard scaling: write throughput vs shard count under uniform,
	// zipfian, and hot-shard key distributions.
	"shardbench": figures.ShardBench,
	// Adaptive memory sizing (§4.4): adaptive vs fixed Membuffer
	// fractions across a phase-shifting workload.
	"adaptive": figures.FigAdaptive,
	// Block cache on the disk read path: cold scan vs warm re-scan
	// across cache budgets, with hit-rate columns.
	"cachebench": figures.CacheBench,
	// Service tier: throughput and latency through flodbd's wire
	// protocol vs client connection-pool size.
	"netbench": figures.NetBench,
	// Distribution tier: quorum throughput/latency vs ring node count,
	// plus the kill-one-replica availability series.
	"clusterbench": figures.ClusterBench,
	// Telemetry overhead: the instrumented hot path (op histograms +
	// event log) vs WithTelemetry(false), same engine and workloads.
	"obsbench": figures.ObsBench,
	// Ablations beyond the paper (DESIGN.md §4.5).
	"ablate-split": figures.AblateSplit,
	"ablate-drain": figures.AblateDrainThreads,
	"ablate-batch": figures.AblateDrainBatch,
	"ablate-lbits": figures.AblatePartitionBits,
}

func main() {
	var (
		duration = flag.Duration("duration", time.Second, "measured duration per cell")
		keys     = flag.Uint64("keys", 0, "dataset keyspace size (0 = scaled default)")
		mem      = flag.Int64("mem", 0, "memory component bytes (0 = scaled default, 128KB)")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		scratch  = flag.String("scratch", "", "scratch directory (default under TMPDIR)")
		diskBps  = flag.Float64("disk-bytes-per-sec", 0, "rate-limit persists to model a slower disk (0 = unlimited)")
		csvPath  = flag.String("csv", "", "also append CSV output to this file")
		jsonPath = flag.String("json", "", "also write machine-readable per-figure results to this file (the CI bench-trajectory format)")
		verbose  = flag.Bool("v", false, "log per-cell progress")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flobench [flags] <figure>...\nfigures: %s all\n", strings.Join(figureNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var names []string
	for _, arg := range flag.Args() {
		if arg == "all" {
			names = figureNames()
			break
		}
		if _, ok := figureFuncs[arg]; !ok {
			// Exit non-zero AND name the valid figures: a CI bench step
			// must fail loudly on a typo, never green-pass having run
			// nothing.
			fmt.Fprintf(os.Stderr, "flobench: unknown figure %q\nvalid figures: %s all\n",
				arg, strings.Join(figureNames(), " "))
			os.Exit(2)
		}
		names = append(names, arg)
	}

	cfg := figures.Config{
		ScratchDir:      *scratch,
		Duration:        *duration,
		Keys:            *keys,
		MemBytes:        *mem,
		DiskBytesPerSec: *diskBps,
		Quick:           *quick,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flobench: %v\n", err)
			os.Exit(1)
		}
		csv = f
		defer f.Close()
	}

	doc := harness.NewBenchDoc()
	start := time.Now()
	for _, name := range names {
		fn := figureFuncs[name]
		t0 := time.Now()
		tbl, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flobench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tbl.AddNote("cell duration %v, completed in %v", *duration, time.Since(t0).Round(time.Millisecond))
		tbl.Render(os.Stdout)
		if csv != nil {
			tbl.RenderCSV(csv)
		}
		doc.AddTable(name, tbl)
	}
	if *jsonPath != "" {
		if err := doc.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "flobench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nflobench: %d figure(s) in %v\n", len(names), time.Since(start).Round(time.Second))
}

func figureNames() []string {
	names := make([]string, 0, len(figureFuncs))
	for n := range figureFuncs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		// figN sorts numerically; scanstats last.
		pi, pj := names[i], names[j]
		if strings.HasPrefix(pi, "fig") && strings.HasPrefix(pj, "fig") {
			var a, b int
			fmt.Sscanf(pi, "fig%d", &a)
			fmt.Sscanf(pj, "fig%d", &b)
			return a < b
		}
		return pi < pj
	})
	return names
}
