package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"flodb"
	"flodb/internal/cluster"
	"flodb/internal/core"
	"flodb/internal/server"
	"flodb/internal/wire"
)

// startRing brings up n in-process ring nodes (engine + wire server with
// identity and epoch, exactly what flodbd -node-id runs) and returns the
// -members string flodbctl takes.
func startRing(t *testing.T, n int) string {
	t.Helper()
	var ids []cluster.Member
	for i := 1; i <= n; i++ {
		ids = append(ids, cluster.Member{ID: fmt.Sprintf("n%d", i)})
	}
	ring, err := cluster.NewRing(ids, cluster.DefaultVnodes, min(2, n))
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, m := range ids {
		db, err := core.Open(core.Config{Dir: t.TempDir(), MemoryBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Store: db, NodeID: m.ID, RingEpoch: ring.Epoch()})
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close(); db.Close() })
		parts = append(parts, m.ID+"="+l.Addr().String())
	}
	return strings.Join(parts, ",")
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestStatusHealthyRing(t *testing.T) {
	members := startRing(t, 3)
	code, out, _ := runCtl(t, "-members", members, "status")
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	for _, want := range []string{"3 members, R=2", "n1", "n2", "n3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DOWN") || strings.Contains(out, "WRONG") {
		t.Fatalf("healthy ring reported unhealthy:\n%s", out)
	}
}

func TestStatusReportsDownMember(t *testing.T) {
	// A 3-member ring where n3 never starts: the live nodes serve the
	// 3-member epoch (as a real deployment would), so only n3 is flagged.
	ids := []cluster.Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}
	ring, err := cluster.NewRing(ids, cluster.DefaultVnodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, m := range ids[:2] {
		db, err := core.Open(core.Config{Dir: t.TempDir(), MemoryBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Store: db, NodeID: m.ID, RingEpoch: ring.Epoch()})
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close(); db.Close() })
		parts = append(parts, m.ID+"="+l.Addr().String())
	}
	l, err := net.Listen("tcp", "127.0.0.1:0") // reserve then free: nobody home
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	parts = append(parts, "n3="+dead)

	code, out, _ := runCtl(t, "-members", strings.Join(parts, ","), "-timeout", "300ms", "status")
	if code != 1 {
		t.Fatalf("exit %d, want 1 with a down member; output:\n%s", code, out)
	}
	if !strings.Contains(out, "DOWN") || !strings.Contains(out, "1 member(s) unhealthy") {
		t.Fatalf("down member not reported:\n%s", out)
	}
}

func TestStatusReportsWrongIdentity(t *testing.T) {
	members := startRing(t, 2) // servers believe they are n1, n2
	// Address the same servers under swapped IDs: identity check must fire.
	parts := strings.Split(members, ",")
	a1 := strings.SplitN(parts[0], "=", 2)[1]
	a2 := strings.SplitN(parts[1], "=", 2)[1]
	code, out, _ := runCtl(t, "-members", "n1="+a2+",n2="+a1, "status")
	if code != 1 || !strings.Contains(out, "WRONG-ID") {
		t.Fatalf("exit %d; swapped identities not caught:\n%s", code, out)
	}
}

func TestNodeStats(t *testing.T) {
	members := startRing(t, 3)
	code, out, _ := runCtl(t, "-members", members, "stats")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"PUTS", "DURABLE", "n1", "n3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

// TestRebalancePreview needs no live nodes: it is pure ring math.
func TestRebalancePreview(t *testing.T) {
	seeds := "n1=h1:1,n2=h2:1,n3=h3:1,n4=h4:1"
	code, out, _ := runCtl(t, "-members", seeds, "rebalance", "add", "n5=h5:1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "4 -> 5 members") || !strings.Contains(out, "owner set changes") {
		t.Fatalf("preview output unexpected:\n%s", out)
	}
	// A 4->5 grow should move roughly R/5 of owner sets, never most of it.
	var moved float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "keyspace whose owner set changes:") {
			fmt.Sscanf(strings.TrimPrefix(line, "keyspace whose owner set changes:"), "%f%%", &moved)
		}
	}
	if moved <= 0 || moved > 60 {
		t.Fatalf("moved share %.1f%% outside sane range:\n%s", moved, out)
	}

	code, out, _ = runCtl(t, "-members", seeds, "rebalance", "remove", "n2")
	if code != 0 || !strings.Contains(out, "4 -> 3 members") {
		t.Fatalf("remove preview failed (exit %d):\n%s", code, out)
	}
	if code, _, errw := runCtl(t, "-members", seeds, "rebalance", "remove", "nope"); code != 2 || !strings.Contains(errw, "no member") {
		t.Fatalf("removing an unknown member must fail usage (exit %d): %s", code, errw)
	}
}

func TestShardsLocal(t *testing.T) {
	dir := t.TempDir()
	db, err := flodb.Open(dir, flodb.WithShards(4), flodb.WithMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(nil, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errw := runCtl(t, "-db", dir, "shards")
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out, errw)
	}
	for _, want := range []string{"epoch 1, 4 shards, range routing", "shard-000", "shard-003", "-inf", "+inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shards output missing %q:\n%s", want, out)
		}
	}

	// An unsharded directory is reported as such, not as an error.
	code, out, _ = runCtl(t, "-db", t.TempDir(), "shards")
	if code != 0 || !strings.Contains(out, "unsharded store") {
		t.Fatalf("unsharded dir (exit %d):\n%s", code, out)
	}
}

func TestShardsRemote(t *testing.T) {
	db, err := flodb.Open(t.TempDir(), flodb.WithShards(2), flodb.WithMemory(1<<20), flodb.WithTelemetry(true))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Store:  db,
		NodeID: "n1",
		Telemetry: func(maxEvents int) wire.TelemetryPayload {
			snap := db.TelemetrySnapshot()
			return wire.TelemetryPayload{Node: "n1", Metrics: snap.Metrics, Events: db.TelemetryEvents(maxEvents)}
		},
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); db.Close() })

	code, out, errw := runCtl(t, "-members", "n1="+l.Addr().String(), "-replication", "1", "shards")
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out, errw)
	}
	for _, want := range []string{"2 shards, epoch 1", "shard-000", "shard-001", "HOTNESS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("remote shards output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t, "status"); code != 2 {
		t.Fatalf("missing -members accepted (exit %d)", code)
	}
	if code, _, _ := runCtl(t, "-members", "n1=a:1", "frobnicate"); code != 2 {
		t.Fatalf("unknown command accepted (exit %d)", code)
	}
	if code, _, _ := runCtl(t, "-members", ",,"); code != 2 {
		t.Fatalf("empty member list accepted (exit %d)", code)
	}
}
