// Command flodbctl is the cluster operator's tool: it takes the same
// membership list every coordinator uses and inspects the ring without
// joining it.
//
//	flodbctl -members n1=h1:4380,n2=h2:4380,n3=h3:4380 status
//	flodbctl -members ... stats
//	flodbctl -members ... top
//	flodbctl -members ... shards
//	flodbctl -db /var/lib/flodb shards
//	flodbctl -members ... rebalance add n4=h4:4380
//	flodbctl -members ... rebalance remove n2
//
// status probes every member (the health RPC coordinators use),
// reporting reachability, the identity and ring epoch each node serves,
// and the exact primary key-share the ring assigns it. stats fetches
// per-node engine counters — the skew view: a hot member shows it here
// first. top fetches each node's telemetry snapshot and renders per-op
// latency quantiles (p50/p90/p99/p999) plus the newest structured
// events — where "node n2 is slow" becomes "n2's p99 put is 40× its
// p50 and it logged wal-stall events". shards renders a store's
// internal shard topology: against -db it reads the SHARDS manifest
// straight off disk (epoch, routing, per-shard key range and on-disk
// bytes — safe beside a live process, nothing is opened or locked);
// against -members it extracts the flodb_shard_* gauges from each
// node's telemetry frame, adding the live-only signals (committer
// queue depth, sensor hotness share). rebalance previews a membership
// change WITHOUT performing it:
// the fraction of the keyspace whose owner set would change (the data
// that would have to move), against the ~share/N a consistent-hash ring
// promises.
//
// Exit status: 0 when every probed member answered, 1 when any was
// unreachable or served a mismatched identity/epoch, 2 on usage errors.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flodb/internal/client"
	"flodb/internal/cluster"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/shard"
	"flodb/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("flodbctl", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		seeds       = fs.String("members", "", "ring membership ([id=]host:port,...) — required unless -db")
		dbdir       = fs.String("db", "", "shards: local store root to inspect instead of probing members")
		replication = fs.Int("replication", 2, "replicas per key R (must match the coordinators')")
		vnodes      = fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per member (must match the coordinators')")
		timeout     = fs.Duration("timeout", 2*time.Second, "per-node probe timeout")
		nEvents     = fs.Int("events", 8, "top: recent structured events shown per node")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: flodbctl {-members <seeds> | -db <dir>} [-replication r] [-vnodes v] {status | stats | top | shards | rebalance add <[id=]addr> | rebalance remove <id>}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	// shards is the one command with a local mode: a SHARDS manifest is
	// readable straight off disk, no ring required.
	if fs.Arg(0) == "shards" && *dbdir != "" {
		return shardsLocal(out, errw, *dbdir)
	}
	if *seeds == "" {
		fs.Usage()
		return 2
	}
	members, err := cluster.ParseMembers(*seeds)
	if err != nil {
		fmt.Fprintf(errw, "flodbctl: %v\n", err)
		return 2
	}
	ring, err := cluster.NewRing(members, *vnodes, *replication)
	if err != nil {
		fmt.Fprintf(errw, "flodbctl: %v\n", err)
		return 2
	}

	switch fs.Arg(0) {
	case "status":
		return status(out, ring, *timeout)
	case "stats":
		return nodeStats(out, ring, *timeout)
	case "top":
		return top(out, ring, *timeout, *nEvents)
	case "shards":
		return shardsRemote(out, ring, *timeout)
	case "rebalance":
		return rebalance(out, errw, fs.Args()[1:], members, ring, *vnodes, *replication)
	default:
		fmt.Fprintf(errw, "flodbctl: unknown command %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
}

// probe asks one member who it is, the way a coordinator's prober does.
func probe(m cluster.Member, timeout time.Duration) (id string, epoch uint64, err error) {
	cl, err := client.Dial(m.Addr, client.WithConns(1), client.WithDialTimeout(timeout))
	if err != nil {
		return "", 0, err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	info, err := cl.Health(ctx)
	if err != nil {
		return "", 0, err
	}
	return info.NodeID, info.Epoch, nil
}

func status(out io.Writer, ring *cluster.Ring, timeout time.Duration) int {
	fmt.Fprintf(out, "ring: %d members, R=%d, epoch %#x\n\n", len(ring.Members()), ring.Replicas(), ring.Epoch())
	shares := ring.Shares()
	fmt.Fprintf(out, "%-12s %-22s %-7s %-9s %s\n", "ID", "ADDR", "SHARE", "STATE", "DETAIL")
	bad := 0
	for _, m := range ring.Members() {
		state, detail := "up", ""
		id, epoch, err := probe(m, timeout)
		switch {
		case err != nil:
			state, detail = "DOWN", err.Error()
			bad++
		case id != "" && id != m.ID:
			state, detail = "WRONG-ID", fmt.Sprintf("serves %q", id)
			bad++
		case epoch != 0 && epoch != ring.Epoch():
			state, detail = "WRONG-EPOCH", fmt.Sprintf("serves %#x", epoch)
			bad++
		}
		fmt.Fprintf(out, "%-12s %-22s %6.2f%% %-9s %s\n", m.ID, m.Addr, shares[m.ID]*100, state, detail)
	}
	if bad > 0 {
		fmt.Fprintf(out, "\n%d member(s) unhealthy\n", bad)
		return 1
	}
	return 0
}

func nodeStats(out io.Writer, ring *cluster.Ring, timeout time.Duration) int {
	fmt.Fprintf(out, "%-12s %10s %10s %10s %10s %10s %10s %10s\n",
		"ID", "PUTS", "GETS", "SCANS", "ACKED", "DURABLE", "FLUSHES", "REQS")
	bad := 0
	for _, m := range ring.Members() {
		cl, err := client.Dial(m.Addr, client.WithConns(1), client.WithDialTimeout(timeout))
		if err != nil {
			fmt.Fprintf(out, "%-12s unreachable: %v\n", m.ID, err)
			bad++
			continue
		}
		var st kv.Stats
		func() {
			defer cl.Close()
			st = cl.Stats()
		}()
		fmt.Fprintf(out, "%-12s %10d %10d %10d %10d %10d %10d %10d\n",
			m.ID, st.Puts, st.Gets, st.Scans, st.AckedSeq, st.DurableSeq, st.Flushes, st.ServerRequests)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// top renders each member's telemetry snapshot: per-op latency
// quantiles and the newest structured events.
func top(out io.Writer, ring *cluster.Ring, timeout time.Duration, nEvents int) int {
	bad := 0
	for i, m := range ring.Members() {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cl, err := client.Dial(m.Addr, client.WithConns(1), client.WithDialTimeout(timeout))
		if err != nil {
			fmt.Fprintf(out, "%s (%s): unreachable: %v\n", m.ID, m.Addr, err)
			bad++
			continue
		}
		var tp wire.TelemetryPayload
		func() {
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			tp, err = cl.Telemetry(ctx, nEvents)
		}()
		if err != nil {
			fmt.Fprintf(out, "%s (%s): telemetry: %v\n", m.ID, m.Addr, err)
			bad++
			continue
		}
		node := tp.Node
		if node == "" {
			node = m.ID
		}
		fmt.Fprintf(out, "%s (%s)\n", node, m.Addr)
		ops := make([]string, 0, len(tp.Ops))
		for op, q := range tp.Ops {
			if q.Count > 0 {
				ops = append(ops, op)
			}
		}
		// Busiest ops first — this is a "what is this node doing" view.
		sort.Slice(ops, func(a, b int) bool {
			qa, qb := tp.Ops[ops[a]], tp.Ops[ops[b]]
			if qa.Count != qb.Count {
				return qa.Count > qb.Count
			}
			return ops[a] < ops[b]
		})
		if len(ops) == 0 {
			fmt.Fprintf(out, "  no recorded operations (idle node, or telemetry disabled)\n")
		} else {
			fmt.Fprintf(out, "  %-10s %10s %10s %10s %10s %10s\n", "OP", "COUNT", "MEAN", "P50", "P99", "P999")
			for _, op := range ops {
				q := tp.Ops[op]
				fmt.Fprintf(out, "  %-10s %10d %10s %10s %10s %10s\n", op, q.Count,
					fmtNanos(int64(q.Mean)), fmtNanos(q.P50), fmtNanos(q.P99), fmtNanos(q.P999))
			}
		}
		for _, e := range tp.Events {
			fmt.Fprintf(out, "  %s %-14s %s\n", e.Time.Format("15:04:05.000"), e.Type, eventLine(e))
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// shardsLocal renders the shard topology a store root's SHARDS manifest
// records: epoch, routing, and each shard's key range and on-disk
// footprint. Reads only the manifest and directory sizes — safe to run
// beside a live process.
func shardsLocal(out, errw io.Writer, dir string) int {
	topo, infos, err := shard.Inspect(dir)
	if err != nil {
		fmt.Fprintf(errw, "flodbctl: %v\n", err)
		return 1
	}
	if len(infos) == 0 {
		fmt.Fprintf(out, "%s: unsharded store (no SHARDS manifest)\n", dir)
		return 0
	}
	fmt.Fprintf(out, "%s: epoch %d, %d shards, %s routing\n\n", dir, topo.Epoch, topo.Shards, topo.Routing)
	fmt.Fprintf(out, "%-12s %-22s %-22s %10s\n", "SHARD", "LOW", "HIGH", "BYTES")
	for i, s := range infos {
		low, high := "-inf", "+inf"
		if topo.Routing == "range" {
			if i > 0 {
				low = fmtKey(infos[i].Low)
			}
			if i+1 < len(infos) {
				high = fmtKey(infos[i+1].Low)
			}
		} else {
			low, high = "(hash)", "(hash)"
		}
		fmt.Fprintf(out, "%-12s %-22s %-22s %10d\n", s.Dir, low, high, dirBytes(filepath.Join(dir, s.Dir)))
	}
	fmt.Fprintln(out, "\nqueue depth and hotness are live-process signals: use -members shards")
	return 0
}

// shardsRemote extracts the flodb_shard_* gauges from each member's
// telemetry frame: live shard count, topology epoch, split/merge
// totals, and per-shard committer queue depth and hotness share.
func shardsRemote(out io.Writer, ring *cluster.Ring, timeout time.Duration) int {
	bad := 0
	for i, m := range ring.Members() {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cl, err := client.Dial(m.Addr, client.WithConns(1), client.WithDialTimeout(timeout))
		if err != nil {
			fmt.Fprintf(out, "%s (%s): unreachable: %v\n", m.ID, m.Addr, err)
			bad++
			continue
		}
		var tp wire.TelemetryPayload
		func() {
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			tp, err = cl.Telemetry(ctx, 0)
		}()
		if err != nil {
			fmt.Fprintf(out, "%s (%s): telemetry: %v\n", m.ID, m.Addr, err)
			bad++
			continue
		}
		flat := map[string]int64{}
		type shardRow struct{ queue, hotness int64 }
		rows := map[string]*shardRow{}
		var order []string
		row := func(name string) *shardRow {
			r, ok := rows[name]
			if !ok {
				r = &shardRow{queue: -1, hotness: -1}
				rows[name], order = r, append(order, name)
			}
			return r
		}
		for _, mt := range tp.Metrics {
			if s, ok := shardLabel(mt.Name, "flodb_shard_queue_depth"); ok {
				row(s).queue = mt.Value
			} else if s, ok := shardLabel(mt.Name, "flodb_shard_hotness_ppm"); ok {
				row(s).hotness = mt.Value
			} else {
				flat[mt.Name] = mt.Value
			}
		}
		fmt.Fprintf(out, "%s (%s)\n", m.ID, m.Addr)
		if _, ok := flat["flodb_shards"]; !ok {
			fmt.Fprintf(out, "  no shard metrics (unsharded node, or telemetry disabled)\n")
			continue
		}
		fmt.Fprintf(out, "  topology: %d shards, epoch %d, %d splits, %d merges\n",
			flat["flodb_shards"], flat["flodb_shard_epoch"],
			flat["flodb_shard_splits_total"], flat["flodb_shard_merges_total"])
		sort.Strings(order)
		fmt.Fprintf(out, "  %-12s %8s %9s\n", "SHARD", "QUEUE", "HOTNESS")
		for _, name := range order {
			r := rows[name]
			q, h := "?", "?"
			if r.queue >= 0 {
				q = fmt.Sprintf("%d", r.queue)
			}
			if r.hotness >= 0 {
				h = fmt.Sprintf("%.1f%%", float64(r.hotness)/1e4)
			}
			fmt.Fprintf(out, "  %-12s %8s %9s\n", name, q, h)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// shardLabel pulls the shard name out of a labeled metric like
// `flodb_shard_queue_depth{shard="shard-003"}`.
func shardLabel(name, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(name, prefix+`{shard="`)
	if !ok {
		return "", false
	}
	return strings.CutSuffix(rest, `"}`)
}

// fmtKey renders a boundary key: printable keys verbatim, binary ones
// as hex, both truncated so the table stays a table.
func fmtKey(k []byte) string {
	if len(k) == 0 {
		return "-inf"
	}
	printable := true
	for _, c := range k {
		if c < 0x20 || c > 0x7e {
			printable = false
			break
		}
	}
	s := ""
	if printable {
		s = string(k)
	} else {
		s = hex.EncodeToString(k)
	}
	if len(s) > 20 {
		s = s[:17] + "..."
	}
	return s
}

// dirBytes sums the regular files under root; 0 on any walk error —
// the size column is advisory, not an integrity check.
func dirBytes(root string) int64 {
	var n int64
	filepath.WalkDir(root, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			n += info.Size()
		}
		return nil
	})
	return n
}

// fmtNanos renders a nanosecond latency human-first (1.234ms, 56.7µs).
func fmtNanos(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// eventLine renders an event's payload fields compactly, skipping the
// zero-valued ones.
func eventLine(e obs.Event) string {
	s := ""
	if e.Dur > 0 {
		s += fmt.Sprintf("dur=%v ", e.Dur.Round(time.Microsecond))
	}
	if e.Bytes > 0 {
		s += fmt.Sprintf("bytes=%d ", e.Bytes)
	}
	if e.Keys > 0 {
		s += fmt.Sprintf("keys=%d ", e.Keys)
	}
	return s + e.Detail
}

func rebalance(out, errw io.Writer, args []string, members []cluster.Member, from *cluster.Ring, vnodes, replication int) int {
	if len(args) != 2 {
		fmt.Fprintln(errw, "usage: flodbctl rebalance {add <[id=]addr> | remove <id>}")
		return 2
	}
	var next []cluster.Member
	switch args[0] {
	case "add":
		added, err := cluster.ParseMembers(args[1])
		if err != nil || len(added) != 1 {
			fmt.Fprintf(errw, "flodbctl: bad member %q\n", args[1])
			return 2
		}
		next = append(append(next, members...), added[0])
	case "remove":
		for _, m := range members {
			if m.ID != args[1] {
				next = append(next, m)
			}
		}
		if len(next) == len(members) {
			fmt.Fprintf(errw, "flodbctl: no member with ID %q\n", args[1])
			return 2
		}
	default:
		fmt.Fprintf(errw, "flodbctl: unknown rebalance op %q\n", args[0])
		return 2
	}
	r := replication
	if r > len(next) {
		r = len(next)
	}
	to, err := cluster.NewRing(next, vnodes, r)
	if err != nil {
		fmt.Fprintf(errw, "flodbctl: %v\n", err)
		return 2
	}
	moved := cluster.MovedShare(from, to, 1<<16)
	fmt.Fprintf(out, "rebalance preview: %d -> %d members (R %d -> %d)\n",
		len(members), len(next), from.Replicas(), to.Replicas())
	fmt.Fprintf(out, "keyspace whose owner set changes: %.1f%%\n", moved*100)
	fmt.Fprintf(out, "epoch %#x -> %#x\n", from.Epoch(), to.Epoch())

	// Per-member share delta: where the moved data lands.
	before, after := from.Shares(), to.Shares()
	var ids []string
	seen := map[string]bool{}
	for id := range before {
		ids, seen[id] = append(ids, id), true
	}
	for id := range after {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	fmt.Fprintf(out, "\n%-12s %8s %8s %8s\n", "ID", "BEFORE", "AFTER", "DELTA")
	for _, id := range ids {
		fmt.Fprintf(out, "%-12s %7.2f%% %7.2f%% %+7.2f%%\n", id, before[id]*100, after[id]*100, (after[id]-before[id])*100)
	}
	fmt.Fprintln(out, "\npreview only: no data was moved (membership is static per deployment)")
	return 0
}
