// Command benchdiff compares two flobench -json documents and reports
// cells that drifted beyond a threshold — the memory of the CI bench
// trajectory. CI runs it against the committed BENCH_BASELINE.json on
// every PR:
//
//	flobench -quick -json bench.json apibench shardbench adaptive
//	benchdiff -threshold 0.25 BENCH_BASELINE.json bench.json
//
// Output is one line per drifted cell, formatted as a GitHub Actions
// warning annotation (::warning ...) so drift surfaces on the PR
// without gating it — shared runners are noisy, so drift is a prompt to
// look, not a failure. Cells present on only one side are reported as
// notices (a renamed figure or series silently dropping out of the
// trajectory would otherwise look like a pass). The exit code is 0
// whenever both documents parse; only usage, I/O and schema errors are
// fatal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"flodb/internal/harness"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative drift that triggers a warning (0.25 = ±25%)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.25] <baseline.json> <current.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := diff(*threshold, flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
		fatal(err)
	}
}

// diff compares two bench documents and writes annotations to out. The
// returned error is non-nil only for I/O and schema problems — drift,
// new figures and missing cells are report lines, never failures.
func diff(threshold float64, basePath, curPath string, out io.Writer) error {
	base, err := harness.ReadBenchDoc(basePath)
	if err != nil {
		return err
	}
	cur, err := harness.ReadBenchDoc(curPath)
	if err != nil {
		return err
	}

	var compared, drifted, skipped int
	for _, figName := range sortedKeys(base.Figures) {
		bf := base.Figures[figName]
		cf, ok := cur.Figures[figName]
		if !ok {
			fmt.Fprintf(out, "::notice::benchdiff: figure %q in baseline but not in current run\n", figName)
			continue
		}
		// Cells match by COLUMN NAME, not position: figures grow columns
		// mid-row across PRs (apibench has, twice), and a positional
		// comparison would silently misalign every cell after the
		// insertion point.
		curCol := map[string]int{}
		for i, c := range cf.Cols {
			curCol[c] = i
		}
		for _, c := range cf.Cols {
			if !contains(bf.Cols, c) {
				fmt.Fprintf(out, "::notice::benchdiff: %s: column %q is new (not in baseline) — consider refreshing BENCH_BASELINE.json\n", figName, c)
			}
		}
		for _, series := range sortedKeys(cf.Series) {
			if _, ok := bf.Series[series]; !ok {
				fmt.Fprintf(out, "::notice::benchdiff: %s: series %q is new (not in baseline) — consider refreshing BENCH_BASELINE.json\n", figName, series)
			}
		}
		for _, series := range sortedKeys(bf.Series) {
			bRow := bf.Series[series]
			cRow, ok := cf.Series[series]
			if !ok {
				fmt.Fprintf(out, "::notice::benchdiff: %s: series %q in baseline but not in current run\n", figName, series)
				continue
			}
			for i, b := range bRow {
				if i >= len(bf.Cols) {
					break // malformed row tail: no column name to match on
				}
				col := bf.Cols[i]
				ci, ok := curCol[col]
				if !ok || ci >= len(cRow) {
					fmt.Fprintf(out, "::notice::benchdiff: %s %s[%s]: missing from current run\n", figName, series, col)
					continue
				}
				c := cRow[ci]
				if b <= 0 {
					// A zero baseline has no meaningful relative drift
					// (empty cell or a metric that legitimately bottoms
					// out); count it so silent shrinkage is visible.
					skipped++
					continue
				}
				compared++
				rel := (c - b) / b
				if rel >= threshold || rel <= -threshold {
					drifted++
					fmt.Fprintf(out, "::warning title=bench drift::%s %s[%s]: %.4g -> %.4g (%+.0f%% vs baseline, threshold ±%.0f%%)\n",
						figName, series, col, b, c, 100*rel, 100*threshold)
				}
			}
		}
	}
	for _, figName := range sortedKeys(cur.Figures) {
		if _, ok := base.Figures[figName]; !ok {
			// Deliberately not an error: a PR that ADDS a figure must not
			// need a baseline for it in the same change. The trajectory
			// picks it up when the baseline is next refreshed.
			fmt.Fprintf(out, "::notice::benchdiff: %s: new figure, no baseline — comparison starts once BENCH_BASELINE.json is refreshed\n", figName)
		}
	}
	fmt.Fprintf(out, "benchdiff: %d cells compared, %d beyond ±%.0f%%, %d zero-baseline cells skipped\n",
		compared, drifted, 100*threshold, skipped)
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
