package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flodb/internal/harness"
)

func writeDoc(t *testing.T, dir, name string, doc harness.BenchDoc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestNewFigureIsNoticeNotError: a figure present in the current run but
// absent from the baseline must produce a "new figure, no baseline" line
// and a nil error — adding a figure must not require a baseline for it
// in the same change.
func TestNewFigureIsNoticeNotError(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", harness.BenchDoc{
		Schema: 1,
		Figures: map[string]harness.BenchFigure{
			"apibench": {Title: "t", Cols: []string{"1"}, Series: map[string][]float64{"FloDB": {1.0}}},
		},
	})
	cur := writeDoc(t, dir, "cur.json", harness.BenchDoc{
		Schema: 1,
		Figures: map[string]harness.BenchFigure{
			"apibench": {Title: "t", Cols: []string{"1"}, Series: map[string][]float64{"FloDB": {1.1}}},
			"netbench": {Title: "n", Cols: []string{"4"}, Series: map[string][]float64{"throughput Kops/s": {50}}},
		},
	})
	var out strings.Builder
	if err := diff(0.25, base, cur, &out); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !strings.Contains(out.String(), "netbench: new figure, no baseline") {
		t.Fatalf("missing new-figure notice in output:\n%s", out.String())
	}
}

// TestDriftWarnsWithoutFailing: drifted cells are warnings, not errors.
func TestDriftWarnsWithoutFailing(t *testing.T) {
	dir := t.TempDir()
	fig := func(v float64) harness.BenchFigure {
		return harness.BenchFigure{Title: "t", Cols: []string{"1"}, Series: map[string][]float64{"FloDB": {v}}}
	}
	base := writeDoc(t, dir, "base.json", harness.BenchDoc{Schema: 1,
		Figures: map[string]harness.BenchFigure{"apibench": fig(1.0)}})
	cur := writeDoc(t, dir, "cur.json", harness.BenchDoc{Schema: 1,
		Figures: map[string]harness.BenchFigure{"apibench": fig(2.0)}})
	var out strings.Builder
	if err := diff(0.25, base, cur, &out); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !strings.Contains(out.String(), "::warning title=bench drift::") {
		t.Fatalf("missing drift warning:\n%s", out.String())
	}
}
