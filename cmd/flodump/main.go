// Command flodump inspects FloDB on-disk artifacts: the level tree of a
// store directory, individual sstables, and WAL segments.
//
// Usage:
//
//	flodump tree <dbdir>        print the level tree from the manifest
//	flodump sst <file.sst>      dump an sstable's entries
//	flodump wal <file.wal>      dump a commit-log segment's records
package main

import (
	"fmt"
	"os"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/sstable"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: flodump {tree|sst|wal} <path>")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tree":
		err = dumpTree(os.Args[2])
	case "sst":
		err = dumpSST(os.Args[2])
	case "wal":
		err = dumpWAL(os.Args[2])
	default:
		fmt.Fprintf(os.Stderr, "flodump: unknown mode %q\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flodump: %v\n", err)
		os.Exit(1)
	}
}

func dumpTree(dir string) error {
	s, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	s.Dump(os.Stdout)
	m := s.Metrics()
	fmt.Printf("cached tables: %d\n", m.CachedTables)
	return nil
}

func dumpSST(path string) error {
	r, err := sstable.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	minSeq, maxSeq := r.SeqBounds()
	fmt.Printf("entries=%d seq=[%d..%d]\n", r.Count(), minSeq, maxSeq)
	it := r.NewIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fmt.Printf("%x @%d %s %q\n", it.Key(), it.Seq(), it.Kind(), truncate(it.Value(), 32))
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Printf("dumped %d entries\n", n)
	return nil
}

func dumpWAL(path string) error {
	n := 0
	err := wal.ReplayAll(path, func(rec []byte) error {
		kind, key, value, err := kv.DecodeRecord(rec)
		if err != nil {
			return err
		}
		fmt.Printf("%x %s %q\n", key, kindName(kind), truncate(value, 32))
		n++
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records\n", n)
	return nil
}

func kindName(k keys.Kind) string { return k.String() }

func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return append(append([]byte{}, b[:n]...), []byte("...")...)
}
