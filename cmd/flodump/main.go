// Command flodump inspects FloDB on-disk artifacts: the full logical
// contents of a store, the level tree of a store directory, individual
// sstables, and WAL segments.
//
// Usage:
//
//	flodump db <dbdir>          stream every live pair of a store
//	flodump tree <dbdir>        print the level tree from the manifest
//	flodump sst <file.sst>      dump an sstable's entries
//	flodump wal <file.wal>      dump a commit-log segment's records
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"flodb"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/sstable"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: flodump {db|tree|sst|wal} <path>")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "db":
		err = dumpDB(os.Args[2])
	case "tree":
		err = dumpTree(os.Args[2])
	case "sst":
		err = dumpSST(os.Args[2])
	case "wal":
		err = dumpWAL(os.Args[2])
	default:
		fmt.Fprintf(os.Stderr, "flodump: unknown mode %q\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flodump: %v\n", err)
		os.Exit(1)
	}
}

// dumpDB streams the whole store through an iterator: memory use stays
// O(1) in the store size, so arbitrarily large databases dump safely.
//
// Opening a store is NOT read-only — flodb.Open creates the directory,
// runs WAL recovery (flushing recovered memtables to new tables), and
// starts a fresh log segment. An inspection tool must leave the store
// byte-identical, so the dump opens a checkpoint-style clone instead:
// storage.CloneDir is the same audited path DB.Checkpoint takes online
// (hard-linked tables, copied WAL tail, fresh manifest), so inspection
// and backup share one code path — and the clone is near-free, since the
// sstables are links, not copies.
func dumpDB(dir string) error {
	if fi, err := os.Stat(dir); err != nil {
		return err
	} else if !fi.IsDir() {
		return fmt.Errorf("%s is not a directory", dir)
	}
	tmp, err := os.MkdirTemp("", "flodump-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	clone := filepath.Join(tmp, "clone")
	if err := storage.CloneDir(dir, clone); err != nil {
		return err
	}
	db, err := flodb.Open(clone)
	if err != nil {
		return err
	}
	defer db.Close()
	it, err := db.NewIterator(context.Background(), nil, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	w := bufio.NewWriter(os.Stdout)
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Fprintf(w, "%x = %q\n", it.Key(), truncate(it.Value(), 64))
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("dumped %d live pairs\n", n)
	return nil
}

func dumpTree(dir string) error {
	s, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	s.Dump(os.Stdout)
	m := s.Metrics()
	fmt.Printf("cached tables: %d\n", m.CachedTables)
	return nil
}

func dumpSST(path string) error {
	r, err := sstable.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	minSeq, maxSeq := r.SeqBounds()
	fmt.Printf("entries=%d seq=[%d..%d]\n", r.Count(), minSeq, maxSeq)
	it := r.NewIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fmt.Printf("%x @%d %s %q\n", it.Key(), it.Seq(), it.Kind(), truncate(it.Value(), 32))
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Printf("dumped %d entries\n", n)
	return nil
}

func dumpWAL(path string) error {
	records, ops := 0, 0
	err := wal.ReplayAll(path, func(rec []byte) error {
		records++
		if kv.IsBatchRecord(rec) {
			fmt.Printf("batch:\n")
		}
		return kv.ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
			if kv.IsBatchRecord(rec) {
				fmt.Printf("  ")
			}
			fmt.Printf("%x %s %q\n", key, kindName(kind), truncate(value, 32))
			ops++
			return nil
		})
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records (%d ops)\n", records, ops)
	return nil
}

func kindName(k keys.Kind) string { return k.String() }

func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return append(append([]byte{}, b[:n]...), []byte("...")...)
}
