package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"flodb"
	"flodb/internal/client"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

// TestSigtermDrainPreservesAckedWrites runs the daemon in-process,
// acknowledges a pile of Buffered-class writes (logged, no fsync — the
// class a crash CAN lose), delivers SIGTERM, and asserts every acked
// write is present after reopening the directory: the drain + close-time
// WAL sync honored the ack.
func TestSigtermDrainPreservesAckedWrites(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(
			[]string{"-db", dir, "-addr", "127.0.0.1:0", "-drain-timeout", "10s"},
			io.Discard,
			func(addr string) { addrCh <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}

	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 300
	var mu sync.Mutex
	acked := make([]string, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("acked-%04d", i)
			if err := cl.Put(ctx, []byte(key), []byte("v"), kv.WithDurability(kv.DurabilityBuffered)); err == nil {
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(acked) != n {
		t.Fatalf("only %d/%d puts acked", len(acked), n)
	}

	// The daemon intercepts SIGTERM via signal.Notify, so delivering it
	// to our own process exercises the real signal path.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}

	db, err := flodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, key := range acked {
		if _, found, err := db.Get(ctx, []byte(key)); err != nil || !found {
			t.Fatalf("acked Buffered write %q lost across SIGTERM drain: found=%v err=%v", key, found, err)
		}
	}
}

// TestDebugTelemetryEndpoint runs the daemon in-process with
// -debug-addr, drives traffic, and scrapes the full /debug surface: the
// /metrics exposition must parse strictly and carry both the engine's
// and the server's metric families, /statsz must be valid JSON with op
// quantiles, /events valid JSON, and OpTelemetry over the wire must
// agree with the HTTP view. CI runs this against every PR — a metric
// family disappearing or the exposition going malformed fails here.
func TestDebugTelemetryEndpoint(t *testing.T) {
	dir := t.TempDir()
	debugFile := filepath.Join(dir, "debug-addr")
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(
			[]string{"-db", filepath.Join(dir, "db"), "-addr", "127.0.0.1:0",
				"-node-id", "n1", "-debug-addr", "127.0.0.1:0", "-debug-addr-file", debugFile},
			io.Discard,
			func(addr string) { addrCh <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	defer func() {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-runErr:
		case <-time.After(30 * time.Second):
			t.Error("daemon did not exit after SIGTERM")
		}
	}()

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k-%03d", i)
		if err := cl.Put(ctx, []byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(ctx, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}

	blob, err := os.ReadFile(debugFile)
	if err != nil {
		t.Fatalf("debug addr file: %v", err)
	}
	debugURL := "http://" + string(blob)

	resp, err := http.Get(debugURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics exposition does not parse: %v", err)
	}
	for _, want := range []string{
		"flodb_puts_total",
		"flodb_gets_total",
		"flodb_op_latency_seconds",
		"flodb_wal_syncs_total",
		"flodb_memtable_bytes",
		"flodbd_requests_total",
		"flodbd_request_seconds",
		"flodbd_conns_open",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("/metrics is missing family %q", want)
		}
	}

	resp, err = http.Get(debugURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var statsz wire.StatsPayload
	err = json.NewDecoder(resp.Body).Decode(&statsz)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/statsz is not a StatsPayload: %v", err)
	}
	if statsz.Store.Puts != 50 {
		t.Errorf("/statsz store.Puts = %d, want 50", statsz.Store.Puts)
	}
	if q, ok := statsz.Ops["put"]; !ok || q.Count != 50 {
		t.Errorf("/statsz ops[put] = %+v, want count 50", q)
	}

	resp, err = http.Get(debugURL + "/events?last=10")
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/events is not an event array: %v", err)
	}

	tp, err := cl.Telemetry(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Node != "n1" {
		t.Errorf("telemetry node = %q, want n1", tp.Node)
	}
	if q, ok := tp.Ops["put"]; !ok || q.Count != 50 {
		t.Errorf("telemetry ops[put] = %+v, want count 50", q)
	}
	if len(tp.Metrics) == 0 {
		t.Error("telemetry payload carries no metrics")
	}
}

// TestTelemetryChurnUnderLoad is the nightly race-detector workload for
// the observability plane: writers storm the store (small memory
// component, so seals/flushes/events fire constantly) while scrapers
// hammer /metrics (strict-parsing every exposition), /events, /statsz,
// a pprof profile endpoint, and the OpTelemetry RPC. Everything the
// telemetry path touches — histogram atomics, the event ring, registry
// snapshots, the merged daemon view — races against the hot path here.
func TestTelemetryChurnUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry churn runs in the nightly full-duration suite")
	}
	dir := t.TempDir()
	debugFile := filepath.Join(dir, "debug-addr")
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(
			// 256 KiB memory: constant seal/flush churn. Durability none:
			// writers must outrun the membuffer even under -race, and the
			// WAL wait would cap them at group-commit speed.
			[]string{"-db", filepath.Join(dir, "db"), "-addr", "127.0.0.1:0",
				"-mem", "262144", "-durability", "none",
				"-debug-addr", "127.0.0.1:0", "-debug-addr-file", debugFile},
			io.Discard,
			func(addr string) { addrCh <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	defer func() {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-runErr:
		case <-time.After(30 * time.Second):
			t.Error("daemon did not exit after SIGTERM")
		}
	}()
	blob := []byte(nil)
	deadline := time.Now().Add(10 * time.Second)
	for len(blob) == 0 && time.Now().Before(deadline) {
		blob, _ = os.ReadFile(debugFile)
		if len(blob) == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if len(blob) == 0 {
		t.Fatal("debug addr file never appeared")
	}
	debugURL := "http://" + string(blob)

	cl, err := client.Dial(addr, client.WithConns(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const storm = 3 * time.Second
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapeErr, opErr error
	var mu sync.Mutex
	record := func(dst *error, err error) {
		mu.Lock()
		if *dst == nil && err != nil {
			*dst = err
		}
		mu.Unlock()
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// 8 KiB values: even when -race stretches each round trip to
			// tens of milliseconds, a handful of puts fills the membuffer
			// slice of the 256 KiB budget, so seal/flush events keep
			// firing for the scrapers to race against.
			val := make([]byte, 8192)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-%06d", w, i%5000)
				if err := cl.Put(ctx, []byte(key), val); err != nil {
					record(&opErr, err)
					return
				}
				if i%7 == 0 {
					if _, _, err := cl.Get(ctx, []byte(key)); err != nil {
						record(&opErr, err)
						return
					}
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(debugURL + "/metrics")
				if err != nil {
					record(&scrapeErr, err)
					return
				}
				_, perr := obs.ParsePrometheus(resp.Body)
				resp.Body.Close()
				if perr != nil {
					record(&scrapeErr, fmt.Errorf("mid-storm exposition: %w", perr))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/events?last=64", "/statsz"} {
				resp, err := http.Get(debugURL + path)
				if err != nil {
					record(&scrapeErr, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if _, err := cl.Telemetry(ctx, 32); err != nil {
				record(&scrapeErr, fmt.Errorf("OpTelemetry mid-storm: %w", err))
				return
			}
		}
	}()

	// One pprof heap profile mid-storm: the profile endpoints share the
	// mux and must not wedge the scrape path.
	time.Sleep(storm / 2)
	resp, err := http.Get(debugURL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Errorf("pprof fetch: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	time.Sleep(storm / 2)
	close(stop)
	wg.Wait()
	if opErr != nil {
		t.Fatalf("write storm failed: %v", opErr)
	}
	if scrapeErr != nil {
		t.Fatalf("telemetry scrape failed: %v", scrapeErr)
	}

	// The storm must have produced events (seals at 256 KiB are
	// guaranteed) and a put histogram covering every acked write.
	evs, err := cl.Telemetry(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs.Events) == 0 {
		t.Errorf("no structured events after a seal-heavy write storm (%d puts recorded)", evs.Ops["put"].Count)
	}
	if evs.Ops["put"].Count == 0 {
		t.Error("no put latencies recorded after the storm")
	}
}
