package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"syscall"
	"testing"
	"time"

	"flodb"
	"flodb/internal/client"
	"flodb/internal/kv"
)

// TestSigtermDrainPreservesAckedWrites runs the daemon in-process,
// acknowledges a pile of Buffered-class writes (logged, no fsync — the
// class a crash CAN lose), delivers SIGTERM, and asserts every acked
// write is present after reopening the directory: the drain + close-time
// WAL sync honored the ack.
func TestSigtermDrainPreservesAckedWrites(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(
			[]string{"-db", dir, "-addr", "127.0.0.1:0", "-drain-timeout", "10s"},
			io.Discard,
			func(addr string) { addrCh <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}

	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 300
	var mu sync.Mutex
	acked := make([]string, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("acked-%04d", i)
			if err := cl.Put(ctx, []byte(key), []byte("v"), kv.WithDurability(kv.DurabilityBuffered)); err == nil {
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(acked) != n {
		t.Fatalf("only %d/%d puts acked", len(acked), n)
	}

	// The daemon intercepts SIGTERM via signal.Notify, so delivering it
	// to our own process exercises the real signal path.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}

	db, err := flodb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, key := range acked {
		if _, found, err := db.Get(ctx, []byte(key)); err != nil || !found {
			t.Fatalf("acked Buffered write %q lost across SIGTERM drain: found=%v err=%v", key, found, err)
		}
	}
}
