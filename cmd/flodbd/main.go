// Command flodbd serves a FloDB store over the wire protocol to remote
// clients (internal/client, or flodb -remote):
//
//	flodbd -db /var/lib/flodb -addr :4380
//	flodbd -db /var/lib/flodb -addr :4380 -shards 4 -adaptive
//
// One process owns the store directory; any number of clients share the
// engine through it — the pipelined dispatch means a single client
// connection can still saturate the Membuffer's parallel write path.
//
// As a RING NODE, flodbd gets a stable identity and a hardened commit
// log:
//
//	flodbd -db /var/lib/flodb -addr :4380 -node-id n1 -wal-writethrough
//
// -node-id is what coordinators verify in health probes (a membership
// list names IDs, not ports); -wal-writethrough hands every WAL record
// to the OS at append time, so an acked replica write survives kill -9
// of the node — the property cluster quorum acks are built on.
//
// As a CLUSTER GATEWAY, flodbd serves the coordinator itself: clients
// speak plain wire protocol to the gateway, which fans every operation
// out to the ring at the configured quorums:
//
//	flodbd -db /var/lib/flodb-gw -addr :4390 \
//	    -cluster n1=host1:4380,n2=host2:4380,n3=host3:4380 \
//	    -replication 2 -write-quorum 2 -read-quorum 1
//
// In gateway mode -db holds the coordinator's state (the hinted-handoff
// logs under <db>/hints), not an engine.
//
// Shutdown is a drain: on SIGINT or SIGTERM the daemon stops accepting,
// lets every in-flight request finish and flush its response, then
// closes the store. The close-time WAL sync makes every acknowledged
// Buffered write durable, so a clean `kill -TERM` never loses an acked
// write. A gateway additionally replays what it can of the pending
// hinted-handoff backlog and fsyncs the rest to disk, logging the
// counts — an operator-initiated restart never silently strands queued
// handoffs. -drain-timeout bounds how long a stuck request can hold the
// process; past it in-flight work is canceled and the store still
// closes cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"flodb"
	"flodb/internal/cluster"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/server"
	"flodb/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "flodbd: %v\n", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal has been
// handled and the drain finished. notify, when non-nil, receives the
// bound listen address once the server is accepting — the in-process
// test hook (and the reason main's body lives here).
func run(args []string, logw io.Writer, notify func(addr string)) error {
	fs := flag.NewFlagSet("flodbd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		dir        = fs.String("db", "", "database directory (required; gateway state dir with -cluster)")
		addr       = fs.String("addr", ":4380", "listen address")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file once accepting (for scripts and tests using -addr :0)")
		mem        = fs.Int64("mem", 0, "memory component bytes (0 = default)")
		shards     = fs.Int("shards", 0, "range-partition across n shards (0/1 = unsharded)")
		blockCache = fs.Int64("block-cache", 0, "block cache bytes for the disk read path, split across shards (0 = default 32 MiB)")
		tableCache = fs.Int("table-cache", 0, "max resident sstable readers (open fds) per shard (0 = default 256)")
		adaptive   = fs.Bool("adaptive", false, "workload-adaptive Membuffer/Memtable split (§4.4)")
		durability = fs.String("durability", "", "default write durability: none|buffered|sync (default buffered)")
		nodeID     = fs.String("node-id", "", "stable ring identity served in health probes (cluster node mode)")
		writeThru  = fs.Bool("wal-writethrough", false, "hand WAL records to the OS at append: acked writes survive kill -9 (ring replicas run with this)")
		seeds      = fs.String("cluster", "", "gateway mode: serve a quorum coordinator over these ring members (comma-separated [id=]host:port)")
		replicas   = fs.Int("replication", 0, "gateway: replicas per key R (default min(2, members))")
		writeQ     = fs.Int("write-quorum", 0, "gateway: owner acks per write W (default R)")
		readQ      = fs.Int("read-quorum", 0, "gateway: owner answers per read Rq (default 1)")
		maxConns   = fs.Int("max-conns", 0, "max concurrent connections (0 = default 1024)")
		maxInFl    = fs.Int("max-inflight", 0, "max in-flight requests per connection (0 = default 128)")
		leaseIdle  = fs.Duration("lease-idle", 0, "idle snapshot/iterator lease expiry (0 = default 5m)")
		slow       = fs.Duration("slow", 0, "slow-request accounting threshold (0 = default 1s)")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /events, /statsz and /debug/pprof on this HTTP address (empty = disabled)")
		debugFile  = fs.String("debug-addr-file", "", "write the bound debug address to this file (for scripts using -debug-addr 127.0.0.1:0)")
		drainTO    = fs.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
		verbose    = fs.Bool("v", false, "log per-connection diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-db is required")
	}

	logger := log.New(logw, "flodbd: ", log.LstdFlags)

	var (
		db    kv.Store
		coord *cluster.Client // non-nil in gateway mode
	)
	if *seeds != "" {
		members, err := cluster.ParseMembers(*seeds)
		if err != nil {
			return err
		}
		coord, err = cluster.Open(cluster.Config{
			Members:     members,
			Replication: *replicas,
			WriteQuorum: *writeQ,
			ReadQuorum:  *readQ,
			HintDir:     filepath.Join(*dir, "hints"),
			Logf:        logger.Printf,
		})
		if err != nil {
			return err
		}
		db = coord
		logger.Printf("gateway over %d members (epoch %#x), %d hints pending from previous runs",
			len(members), coord.Ring().Epoch(), coord.HintsPending())
	} else {
		var opts []flodb.Option
		if *mem > 0 {
			opts = append(opts, flodb.WithMemory(*mem))
		}
		if *shards > 0 {
			opts = append(opts, flodb.WithShards(*shards))
		}
		if *adaptive {
			opts = append(opts, flodb.WithAdaptiveMemory())
		}
		if *blockCache > 0 {
			opts = append(opts, flodb.WithBlockCacheSize(*blockCache))
		}
		if *tableCache > 0 {
			opts = append(opts, flodb.WithTableCacheCapacity(*tableCache))
		}
		if *writeThru {
			opts = append(opts, flodb.WithWALWriteThrough())
		}
		if *durability != "" {
			d, err := kv.ParseDurability(*durability)
			if err != nil {
				return err
			}
			opts = append(opts, flodb.WithDurability(d))
		}
		ldb, err := flodb.Open(*dir, opts...)
		if err != nil {
			return err
		}
		db = ldb
	}

	// The daemon is where the store's and the server's telemetry meet:
	// one merged snapshot feeds /metrics, /statsz, and OpTelemetry, so
	// every surface agrees on what the process is doing.
	var srv *server.Server
	snapshot := func() obs.Snapshot {
		snaps := []obs.Snapshot{srv.TelemetrySnapshot()}
		if ts, ok := db.(obs.SnapshotProvider); ok {
			snaps = append(snaps, ts.TelemetrySnapshot())
		}
		return obs.Merge(snaps...)
	}
	events := func(n int) []obs.Event {
		if ts, ok := db.(obs.EventProvider); ok {
			return ts.TelemetryEvents(n)
		}
		return nil
	}

	cfg := server.Config{
		Store:       db,
		NodeID:      *nodeID,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFl,
		LeaseIdle:   *leaseIdle,
		SlowRequest: *slow,
		Telemetry: func(maxEvents int) wire.TelemetryPayload {
			s := snapshot()
			return wire.TelemetryPayload{
				Node:    *nodeID,
				Ops:     obs.OpQuantiles(s),
				Metrics: s.Metrics,
				Events:  events(maxEvents),
			}
		},
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv = server.New(cfg)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			db.Close()
			return err
		}
		statsz := func() any {
			payload := wire.StatsPayload{Server: srv.Info()}
			if sp, ok := db.(kv.StatsProvider); ok {
				payload.Store = sp.Stats()
			}
			payload.Ops = obs.OpQuantiles(snapshot())
			return payload
		}
		debugSrv = &http.Server{Handler: obs.DebugMux(obs.DebugOptions{
			Snapshot: snapshot,
			Events:   events,
			Statsz:   statsz,
		})}
		go debugSrv.Serve(dl)
		logger.Printf("debug telemetry on http://%s/metrics", dl.Addr())
		if *debugFile != "" {
			if err := writeAddrFile(*debugFile, dl.Addr().String()); err != nil {
				debugSrv.Close()
				db.Close()
				return err
			}
		}
		defer debugSrv.Close()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	logger.Printf("serving %s on %s", *dir, l.Addr())
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, l.Addr().String()); err != nil {
			db.Close()
			return err
		}
	}
	if notify != nil {
		notify(l.Addr().String())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining", sig)
	case err := <-serveErr:
		// The listener died under us; still drain what's in flight.
		logger.Printf("accept loop stopped: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain cut off: %v", err)
	}
	if coord != nil {
		// A gateway's equivalent of the close-time WAL sync: flush the
		// hinted-handoff backlog (replaying toward reachable members,
		// fsyncing what must wait) and say what happened — a restart must
		// never silently strand queued handoffs.
		pending := coord.HintsPending()
		if pending > 0 {
			logger.Printf("draining %d pending hinted-handoff records", pending)
		}
		if err := coord.Close(); err != nil {
			return fmt.Errorf("close coordinator: %w", err)
		}
		if left := coord.HintsPending(); left > 0 {
			logger.Printf("%d hints still queued on disk for unreachable members; the next start replays them", left)
		} else if pending > 0 {
			logger.Printf("hint backlog fully drained")
		}
	} else if err := db.Close(); err != nil {
		// Close after the drain: the store's close-time WAL sync is what
		// makes acked Buffered writes durable across a clean shutdown.
		return fmt.Errorf("close store: %w", err)
	}
	logger.Printf("drained and closed")
	return nil
}

// writeAddrFile publishes a bound address write-then-rename, so a
// watcher never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
