// Command flodbd serves a FloDB store over the wire protocol to remote
// clients (internal/client, or flodb -remote):
//
//	flodbd -db /var/lib/flodb -addr :4380
//	flodbd -db /var/lib/flodb -addr :4380 -shards 4 -adaptive
//
// One process owns the store directory; any number of clients share the
// engine through it — the pipelined dispatch means a single client
// connection can still saturate the Membuffer's parallel write path.
//
// Shutdown is a drain: on SIGINT or SIGTERM the daemon stops accepting,
// lets every in-flight request finish and flush its response, then
// closes the store. The close-time WAL sync makes every acknowledged
// Buffered write durable, so a clean `kill -TERM` never loses an acked
// write. -drain-timeout bounds how long a stuck request can hold the
// process; past it in-flight work is canceled and the store still
// closes cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flodb"
	"flodb/internal/kv"
	"flodb/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "flodbd: %v\n", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal has been
// handled and the drain finished. notify, when non-nil, receives the
// bound listen address once the server is accepting — the in-process
// test hook (and the reason main's body lives here).
func run(args []string, logw io.Writer, notify func(addr string)) error {
	fs := flag.NewFlagSet("flodbd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		dir        = fs.String("db", "", "database directory (required)")
		addr       = fs.String("addr", ":4380", "listen address")
		mem        = fs.Int64("mem", 0, "memory component bytes (0 = default)")
		shards     = fs.Int("shards", 0, "range-partition across n shards (0/1 = unsharded)")
		adaptive   = fs.Bool("adaptive", false, "workload-adaptive Membuffer/Memtable split (§4.4)")
		durability = fs.String("durability", "", "default write durability: none|buffered|sync (default buffered)")
		maxConns   = fs.Int("max-conns", 0, "max concurrent connections (0 = default 1024)")
		maxInFl    = fs.Int("max-inflight", 0, "max in-flight requests per connection (0 = default 128)")
		leaseIdle  = fs.Duration("lease-idle", 0, "idle snapshot/iterator lease expiry (0 = default 5m)")
		slow       = fs.Duration("slow", 0, "slow-request accounting threshold (0 = default 1s)")
		drainTO    = fs.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
		verbose    = fs.Bool("v", false, "log per-connection diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-db is required")
	}

	var opts []flodb.Option
	if *mem > 0 {
		opts = append(opts, flodb.WithMemory(*mem))
	}
	if *shards > 0 {
		opts = append(opts, flodb.WithShards(*shards))
	}
	if *adaptive {
		opts = append(opts, flodb.WithAdaptiveMemory())
	}
	if *durability != "" {
		d, err := kv.ParseDurability(*durability)
		if err != nil {
			return err
		}
		opts = append(opts, flodb.WithDurability(d))
	}
	db, err := flodb.Open(*dir, opts...)
	if err != nil {
		return err
	}

	logger := log.New(logw, "flodbd: ", log.LstdFlags)
	cfg := server.Config{
		Store:       db,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFl,
		LeaseIdle:   *leaseIdle,
		SlowRequest: *slow,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv := server.New(cfg)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	logger.Printf("serving %s on %s", *dir, l.Addr())
	if notify != nil {
		notify(l.Addr().String())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining", sig)
	case err := <-serveErr:
		// The listener died under us; still drain what's in flight.
		logger.Printf("accept loop stopped: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain cut off: %v", err)
	}
	// Close after the drain: the store's close-time WAL sync is what makes
	// acked Buffered writes durable across a clean shutdown.
	if err := db.Close(); err != nil {
		return fmt.Errorf("close store: %w", err)
	}
	logger.Printf("drained and closed")
	return nil
}
