// Command flodb is a small interactive CLI over a FloDB store:
//
//	flodb -db /tmp/db put <key> <value>
//	flodb -db /tmp/db get <key>
//	flodb -db /tmp/db del <key>
//	flodb -db /tmp/db scan <low> <high>
//	flodb -db /tmp/db batch put k1 v1 del k2 put k3 v3 ...   atomic batch
//	flodb -db /tmp/db sync               durability barrier over acked writes
//	flodb -db /tmp/db checkpoint <dir>   online openable copy of the store
//	flodb -db /tmp/db fill <n>        load n sequential keys
//	flodb -db /tmp/db stats
//
// The -durability flag sets the store's default class for every write the
// command performs: none (not logged), buffered (logged, no fsync — the
// default), or sync (group-committed fsync per write).
//
// The -shards flag range-partitions the store across N independent
// engines (fixed at creation; reopening needs the same value — or read
// it off the SHARDS manifest in the store root). With shards, the stats
// command appends a per-shard breakdown table, the imbalance signal
// under skewed workloads.
//
// The -adaptive flag turns on workload-adaptive sizing of the
// Membuffer/Memtable split (§4.4); stats reports the live fraction,
// resize count and the sensor's window rates.
//
// The -remote flag points every command at a running flodbd server
// instead of opening a store directory: `flodb -remote :4380 get k`
// performs the same operation over the wire protocol. With -remote,
// -durability applies per operation (the server keeps its own default),
// the store-shape flags (-mem, -shards, -adaptive) belong to the server
// process, and checkpoint's directory is a path on the SERVER's
// filesystem.
//
// The -cluster flag joins a replicated ring instead: `flodb -cluster
// n1=host1:4380,n2=host2:4380 get k` runs the command as a quorum
// coordinator over the listed flodbd nodes — writes fan out to the
// key's R owners, reads merge the owners' newest copy. -replication,
// -write-quorum and -read-quorum set R/W/Rq (defaults 2/R/1); -hints
// names the directory persisting hinted-handoff records for members the
// command could not reach (default <tmp>/flodb-hints — point it
// somewhere durable for production use, and re-run with the same
// directory so queued hints drain). The remote-mode caveats apply, and
// checkpoint's directory is a path on EACH node's filesystem.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"flodb"
	"flodb/internal/client"
	"flodb/internal/cluster"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

func main() {
	dir := flag.String("db", "", "database directory (required unless -remote or -cluster)")
	remote := flag.String("remote", "", "flodbd server address; run the command over the wire instead of opening -db")
	seeds := flag.String("cluster", "", "ring seed list ([id=]host:port,...); run the command as a quorum coordinator over these flodbd nodes")
	replication := flag.Int("replication", 0, "cluster: replicas per key R (default min(2, members))")
	writeQuorum := flag.Int("write-quorum", 0, "cluster: owner acks required per write W (default R)")
	readQuorum := flag.Int("read-quorum", 0, "cluster: owner answers required per read Rq (default 1)")
	hints := flag.String("hints", "", "cluster: hinted-handoff directory (default <tmp>/flodb-hints)")
	mem := flag.Int64("mem", 0, "memory component bytes (0 = default; local only)")
	durability := flag.String("durability", "", "write durability: none|buffered|sync (local: store default; remote: per-op class)")
	shards := flag.Int("shards", 0, "range-partition across n shards (0/1 = unsharded; fixed at creation; local only)")
	adaptive := flag.Bool("adaptive", false, "workload-adaptive Membuffer/Memtable split (§4.4; local only)")
	jsonOut := flag.Bool("json", false, "stats: print the full machine-readable payload (counters + op latency quantiles) instead of text")
	flag.Parse()
	if (*dir == "" && *remote == "" && *seeds == "") || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: flodb {-db <dir> | -remote <addr> | -cluster <seeds>} [-shards n] [-adaptive] [-durability none|buffered|sync] {put k v | get k | del k | scan lo hi | batch ops... | sync | checkpoint dir | fill n | stats}")
		os.Exit(2)
	}

	var (
		db         kv.Store          // local engine or remote client — same contract
		writeOpts  []kv.WriteOption  // per-op durability override (remote mode)
		shardStats func() []kv.Stats // per-shard breakdown, local sharded stores only
	)
	modes := 0
	for _, set := range []bool{*dir != "", *remote != "", *seeds != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		fail(fmt.Errorf("-db, -remote and -cluster are mutually exclusive"))
	}
	switch {
	case *remote != "":
		if *durability != "" {
			d, err := kv.ParseDurability(*durability)
			if err != nil {
				fail(err)
			}
			writeOpts = append(writeOpts, kv.WithDurability(d))
		}
		cl, err := client.Dial(*remote)
		if err != nil {
			fail(err)
		}
		db = cl
	case *seeds != "":
		members, err := cluster.ParseMembers(*seeds)
		if err != nil {
			fail(err)
		}
		if *durability != "" {
			d, err := kv.ParseDurability(*durability)
			if err != nil {
				fail(err)
			}
			writeOpts = append(writeOpts, kv.WithDurability(d))
		}
		hintDir := *hints
		if hintDir == "" {
			hintDir = filepath.Join(os.TempDir(), "flodb-hints")
		}
		c, err := cluster.Open(cluster.Config{
			Members:     members,
			Replication: *replication,
			WriteQuorum: *writeQuorum,
			ReadQuorum:  *readQuorum,
			HintDir:     hintDir,
		})
		if err != nil {
			fail(err)
		}
		db = c
	default:
		var opts []flodb.Option
		if *mem > 0 {
			opts = append(opts, flodb.WithMemory(*mem))
		}
		if *adaptive {
			opts = append(opts, flodb.WithAdaptiveMemory())
		}
		if *shards > 0 {
			opts = append(opts, flodb.WithShards(*shards))
		}
		if *durability != "" {
			d, err := kv.ParseDurability(*durability)
			if err != nil {
				fail(err)
			}
			opts = append(opts, flodb.WithDurability(d))
		}
		ldb, err := flodb.Open(*dir, opts...)
		if err != nil {
			fail(err)
		}
		db = ldb
		shardStats = ldb.ShardStats
	}
	defer func() {
		if err := db.Close(); err != nil {
			fail(err)
		}
	}()

	ctx := context.Background()
	args := flag.Args()
	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put(ctx, []byte(args[1]), []byte(args[2]), writeOpts...); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	case "get":
		need(args, 2)
		v, ok, err := db.Get(ctx, []byte(args[1]))
		if err != nil {
			fail(err)
		}
		if !ok {
			fmt.Println("(not found)")
		} else {
			fmt.Printf("%s\n", v)
		}
	case "del":
		need(args, 2)
		if err := db.Delete(ctx, []byte(args[1]), writeOpts...); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	case "scan":
		need(args, 3)
		// Stream the range through an iterator: constant memory however
		// large the range is.
		it, err := db.NewIterator(ctx, []byte(args[1]), []byte(args[2]))
		if err != nil {
			fail(err)
		}
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			fmt.Printf("%s = %s\n", it.Key(), it.Value())
			n++
		}
		if err := it.Err(); err != nil {
			fail(err)
		}
		it.Close()
		fmt.Printf("(%d pairs)\n", n)
	case "batch":
		b := flodb.NewWriteBatch()
		rest := args[1:]
		for len(rest) > 0 {
			switch rest[0] {
			case "put":
				if len(rest) < 3 {
					fail(fmt.Errorf("batch: put needs <key> <value>"))
				}
				b.Put([]byte(rest[1]), []byte(rest[2]))
				rest = rest[3:]
			case "del":
				if len(rest) < 2 {
					fail(fmt.Errorf("batch: del needs <key>"))
				}
				b.Delete([]byte(rest[1]))
				rest = rest[2:]
			default:
				fail(fmt.Errorf("batch: unknown op %q (want put|del)", rest[0]))
			}
		}
		if b.Len() == 0 {
			fail(fmt.Errorf("batch: no operations"))
		}
		if err := db.Apply(ctx, b, writeOpts...); err != nil {
			fail(err)
		}
		fmt.Printf("applied %d ops atomically\n", b.Len())
	case "sync":
		need(args, 1)
		if err := db.Sync(ctx); err != nil {
			fail(err)
		}
		s := statsOf(db)
		fmt.Printf("durable through commit index %d (acked %d)\n", s.DurableSeq, s.AckedSeq)
	case "checkpoint":
		need(args, 2)
		if err := db.Checkpoint(ctx, args[1]); err != nil {
			fail(err)
		}
		fmt.Printf("checkpointed to %s\n", args[1])
	case "fill":
		need(args, 2)
		var n uint64
		if _, err := fmt.Sscanf(args[1], "%d", &n); err != nil {
			fail(err)
		}
		for i := uint64(0); i < n; i++ {
			if err := db.Put(ctx, keys.EncodeUint64(i), keys.EncodeUint64(i), writeOpts...); err != nil {
				fail(err)
			}
		}
		fmt.Printf("filled %d keys\n", n)
	case "stats":
		if *jsonOut {
			// The JSON form IS the wire stats schema: remote mode prints
			// the OpStats payload verbatim, local mode fills the same
			// struct from the engine, so tooling parses one shape.
			payload := wire.StatsPayload{Store: statsOf(db)}
			if cl, ok := db.(*client.Client); ok {
				p, err := cl.StatsPayload(ctx)
				if err != nil {
					fail(err)
				}
				payload = p
			} else if ts, ok := db.(obs.SnapshotProvider); ok {
				payload.Ops = obs.OpQuantiles(ts.TelemetrySnapshot())
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(payload); err != nil {
				fail(err)
			}
			return
		}
		s := statsOf(db)
		fmt.Printf("puts=%d gets=%d deletes=%d scans=%d iterators=%d batches=%d (%d ops) snapshots=%d checkpoints=%d\n",
			s.Puts, s.Gets, s.Deletes, s.Scans, s.Iterators, s.Batches, s.BatchOps, s.Snapshots, s.Checkpoints)
		fmt.Printf("membuffer-hits=%d memtable-writes=%d\n", s.MembufferHits, s.MemtableWrites)
		fmt.Printf("scan-restarts=%d fallback-scans=%d flushes=%d compactions=%d\n",
			s.ScanRestarts, s.FallbackScans, s.Flushes, s.Compactions)
		fmt.Printf("acked-seq=%d durable-seq=%d wal-syncs=%d wal-sync-requests=%d sync-barriers=%d\n",
			s.AckedSeq, s.DurableSeq, s.WALSyncs, s.WALSyncRequests, s.SyncBarriers)
		fmt.Printf("block-cache: hits=%d misses=%d (%s) evictions=%d resident=%dB\n",
			s.BlockCacheHits, s.BlockCacheMisses,
			hitRate(s.BlockCacheHits, s.BlockCacheMisses), s.BlockCacheEvictions, s.BlockCacheBytes)
		fmt.Printf("table-cache: hits=%d misses=%d (%s)  bloom: checks=%d negatives=%d (%s filtered)\n",
			s.TableCacheHits, s.TableCacheMisses, hitRate(s.TableCacheHits, s.TableCacheMisses),
			s.BloomChecks, s.BloomMisses, hitRate(s.BloomMisses, s.BloomChecks-s.BloomMisses))
		fmt.Printf("membuffer-fraction=%.3f resizes=%d sensor-put/s=%.0f sensor-get/s=%.0f sensor-scan/s=%.0f stall=%.1f%%\n",
			s.MembufferFraction, s.MembufferResizes,
			s.SensorPutRate, s.SensorGetRate, s.SensorScanRate, s.SensorStallPct)
		if s.ServerRequests > 0 {
			fmt.Printf("server: conns=%d/%d-lifetime in-flight=%d requests=%d bytes-in=%d bytes-out=%d slow=%d\n",
				s.ServerConnsOpen, s.ServerConnsTotal, s.ServerInFlight,
				s.ServerRequests, s.ServerBytesIn, s.ServerBytesOut, s.ServerSlowRequests)
		}
		if per := perShard(shardStats); len(per) > 0 {
			fmt.Printf("\n%d shards (aggregate above; per-shard breakdown below)\n", len(per))
			fmt.Printf("%5s %10s %10s %10s %10s %10s %12s %12s\n",
				"shard", "puts", "gets", "deletes", "flushes", "compact", "acked-seq", "durable-seq")
			for i, ss := range per {
				fmt.Printf("%5d %10d %10d %10d %10d %10d %12d %12d\n",
					i, ss.Puts, ss.Gets, ss.Deletes, ss.Flushes, ss.Compactions, ss.AckedSeq, ss.DurableSeq)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "flodb: unknown command %q\n", args[0])
		os.Exit(2)
	}
}

// hitRate formats hits/(hits+misses) as a percentage, "-" when no
// traffic has happened yet (0/0 is indistinguishable from a cold cache,
// not a 0% one).
func hitRate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}

func statsOf(db kv.Store) kv.Stats {
	if sp, ok := db.(kv.StatsProvider); ok {
		return sp.Stats()
	}
	return kv.Stats{}
}

func perShard(fn func() []kv.Stats) []kv.Stats {
	if fn == nil {
		return nil
	}
	return fn()
}

func need(args []string, n int) {
	if len(args) != n {
		fmt.Fprintf(os.Stderr, "flodb: %s takes %d argument(s)\n", args[0], n-1)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "flodb: %v\n", err)
	os.Exit(1)
}
