// Command flodb is a small interactive CLI over a FloDB store:
//
//	flodb -db /tmp/db put <key> <value>
//	flodb -db /tmp/db get <key>
//	flodb -db /tmp/db del <key>
//	flodb -db /tmp/db scan <low> <high>
//	flodb -db /tmp/db fill <n>        load n sequential keys
//	flodb -db /tmp/db stats
package main

import (
	"flag"
	"fmt"
	"os"

	"flodb"
	"flodb/internal/keys"
)

func main() {
	dir := flag.String("db", "", "database directory (required)")
	mem := flag.Int64("mem", 0, "memory component bytes (0 = default)")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: flodb -db <dir> {put k v | get k | del k | scan lo hi | fill n | stats}")
		os.Exit(2)
	}
	db, err := flodb.Open(*dir, &flodb.Options{MemoryBytes: *mem})
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			fail(err)
		}
	}()

	args := flag.Args()
	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	case "get":
		need(args, 2)
		v, ok, err := db.Get([]byte(args[1]))
		if err != nil {
			fail(err)
		}
		if !ok {
			fmt.Println("(not found)")
		} else {
			fmt.Printf("%s\n", v)
		}
	case "del":
		need(args, 2)
		if err := db.Delete([]byte(args[1])); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	case "scan":
		need(args, 3)
		pairs, err := db.Scan([]byte(args[1]), []byte(args[2]))
		if err != nil {
			fail(err)
		}
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.Key, p.Value)
		}
		fmt.Printf("(%d pairs)\n", len(pairs))
	case "fill":
		need(args, 2)
		var n uint64
		if _, err := fmt.Sscanf(args[1], "%d", &n); err != nil {
			fail(err)
		}
		for i := uint64(0); i < n; i++ {
			if err := db.Put(keys.EncodeUint64(i), keys.EncodeUint64(i)); err != nil {
				fail(err)
			}
		}
		fmt.Printf("filled %d keys\n", n)
	case "stats":
		s := db.Stats()
		fmt.Printf("puts=%d gets=%d deletes=%d scans=%d\n", s.Puts, s.Gets, s.Deletes, s.Scans)
		fmt.Printf("membuffer-hits=%d memtable-writes=%d\n", s.MembufferHits, s.MemtableWrites)
		fmt.Printf("scan-restarts=%d fallback-scans=%d flushes=%d compactions=%d\n",
			s.ScanRestarts, s.FallbackScans, s.Flushes, s.Compactions)
	default:
		fmt.Fprintf(os.Stderr, "flodb: unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func need(args []string, n int) {
	if len(args) != n {
		fmt.Fprintf(os.Stderr, "flodb: %s takes %d argument(s)\n", args[0], n-1)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "flodb: %v\n", err)
	os.Exit(1)
}
