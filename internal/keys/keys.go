// Package keys provides key encodings and comparators shared by the FloDB
// memory component, the disk component, and the multi-versioned baseline
// memtables.
//
// User keys are arbitrary byte strings ordered by bytes.Compare. The
// benchmark workloads use 8-byte big-endian encodings of uint64 counters
// (the paper's 8 B key size), which makes numeric proximity coincide with
// lexicographic proximity — the property the Membuffer's most-significant-bit
// partitioning relies on.
//
// Internal keys append an 8-byte suffix encoding a sequence number and a
// kind (set/delete) to a user key. They order by user key ascending and
// then by sequence number *descending*, so that for a given user key the
// newest version is encountered first. FloDB's own memtable does not use
// internal keys (it updates in place); the LevelDB/HyperLevelDB/RocksDB
// baselines do, because multi-versioning is the behaviour the paper
// contrasts against (§3.2).
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates live values from tombstones in internal keys and in
// SSTable entries.
type Kind uint8

const (
	// KindSet marks a regular key-value record.
	KindSet Kind = 1
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
)

func (k Kind) String() string {
	switch k {
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MaxSeq is the largest representable sequence number (56 bits, as in
// LevelDB: 8 bits of the trailer hold the kind).
const MaxSeq = uint64(1)<<56 - 1

// Compare orders user keys lexicographically. It exists so that call sites
// read keys.Compare and so the ordering can be swapped in one place.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Equal reports whether two user keys are equal.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }

// EncodeUint64 returns the 8-byte big-endian encoding of v. Big-endian
// makes numeric order match lexicographic order.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// AppendUint64 appends the 8-byte big-endian encoding of v to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint64 decodes an 8-byte big-endian key. It returns 0 for short
// inputs; callers that need validation should check len(b) themselves.
func DecodeUint64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// PartitionOf returns the index of the partition that key falls into when
// the key space is divided into 2^bits partitions by the most significant
// `bits` bits of the key (§4.3 of the paper). Keys shorter than needed are
// zero-extended. bits must be in [0, 16].
func PartitionOf(key []byte, bits uint) uint32 {
	if bits == 0 {
		return 0
	}
	var prefix uint32
	switch {
	case len(key) == 0:
		prefix = 0
	case len(key) == 1:
		prefix = uint32(key[0]) << 8
	default:
		prefix = uint32(key[0])<<8 | uint32(key[1])
	}
	return prefix >> (16 - bits)
}

// InternalKey is a user key with a packed (seq, kind) trailer, encoded as
// userKey + 8 bytes. The trailer packs seq<<8 | kind, stored so that the
// whole internal key compares with bytes-compare on the user key part and
// the trailer is decoded separately.
type InternalKey []byte

// MakeInternal builds an internal key from a user key, sequence number and
// kind.
func MakeInternal(user []byte, seq uint64, kind Kind) InternalKey {
	ik := make([]byte, 0, len(user)+8)
	ik = append(ik, user...)
	var trailer [8]byte
	binary.BigEndian.PutUint64(trailer[:], pack(seq, kind))
	return append(ik, trailer[:]...)
}

func pack(seq uint64, kind Kind) uint64 {
	if seq > MaxSeq {
		seq = MaxSeq
	}
	return seq<<8 | uint64(kind)
}

// Valid reports whether ik is long enough to carry a trailer.
func (ik InternalKey) Valid() bool { return len(ik) >= 8 }

// UserKey returns the user-key prefix of ik.
func (ik InternalKey) UserKey() []byte { return ik[:len(ik)-8] }

// Seq returns the sequence number from ik's trailer.
func (ik InternalKey) Seq() uint64 {
	t := binary.BigEndian.Uint64(ik[len(ik)-8:])
	return t >> 8
}

// Kind returns the kind from ik's trailer.
func (ik InternalKey) Kind() Kind {
	t := binary.BigEndian.Uint64(ik[len(ik)-8:])
	return Kind(t & 0xff)
}

func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("invalid-internal-key(%x)", []byte(ik))
	}
	return fmt.Sprintf("%x@%d:%s", ik.UserKey(), ik.Seq(), ik.Kind())
}

// SeekInternal returns an internal key that sorts at or before every
// version of user with seq' <= seq, and after every version with a newer
// sequence number. Multi-versioned readers seek to it to find "the newest
// version visible at snapshot seq".
func SeekInternal(user []byte, seq uint64) InternalKey {
	// Kind 0xff makes the trailer larger than any real (seq, kind) pair
	// with the same seq, and larger trailers sort earlier.
	return MakeInternal(user, seq, Kind(0xff))
}

// CompareInternal orders internal keys by (user key ascending, seq
// descending, kind descending). Newest versions sort first within a user
// key, which is what multi-versioned memtables and SSTable merge iterators
// require.
func CompareInternal(a, b InternalKey) int {
	if c := bytes.Compare(a.UserKey(), b.UserKey()); c != 0 {
		return c
	}
	ta := binary.BigEndian.Uint64(a[len(a)-8:])
	tb := binary.BigEndian.Uint64(b[len(b)-8:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// Successor returns the smallest key strictly greater than k in
// lexicographic order, by appending a zero byte. It allocates.
func Successor(k []byte) []byte {
	s := make([]byte, len(k)+1)
	copy(s, k)
	return s
}

// Clone returns a copy of b, or nil for nil. Stores retain keys and values
// beyond the caller's call frame, so the public API clones at the edges.
func Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
