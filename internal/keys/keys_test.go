package keys

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeUint64(t *testing.T) {
	cases := []uint64{0, 1, 255, 256, 1 << 31, 1<<63 - 1, ^uint64(0)}
	for _, v := range cases {
		b := EncodeUint64(v)
		if len(b) != 8 {
			t.Fatalf("EncodeUint64(%d) length = %d, want 8", v, len(b))
		}
		if got := DecodeUint64(b); got != v {
			t.Errorf("DecodeUint64(EncodeUint64(%d)) = %d", v, got)
		}
	}
}

func TestDecodeUint64Short(t *testing.T) {
	if got := DecodeUint64([]byte{1, 2, 3}); got != 0 {
		t.Errorf("DecodeUint64(short) = %d, want 0", got)
	}
}

func TestAppendUint64(t *testing.T) {
	b := AppendUint64([]byte("pfx"), 42)
	if !bytes.Equal(b[:3], []byte("pfx")) {
		t.Fatalf("prefix clobbered: %q", b)
	}
	if got := DecodeUint64(b[3:]); got != 42 {
		t.Errorf("decoded %d, want 42", got)
	}
}

func TestEncodingPreservesOrder(t *testing.T) {
	// Numeric order on uint64 must match lexicographic order on encodings.
	err := quick.Check(func(a, b uint64) bool {
		ea, eb := EncodeUint64(a), EncodeUint64(b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPartitionOf(t *testing.T) {
	tests := []struct {
		key  []byte
		bits uint
		want uint32
	}{
		{nil, 0, 0},
		{nil, 4, 0},
		{[]byte{0x00}, 4, 0},
		{[]byte{0xff}, 4, 0xf},
		{[]byte{0xff, 0xff}, 4, 0xf},
		{[]byte{0x80, 0x00}, 1, 1},
		{[]byte{0x7f, 0xff}, 1, 0},
		{[]byte{0x12, 0x34}, 8, 0x12},
		{[]byte{0x12, 0x34}, 16, 0x1234},
		{[]byte{0xab}, 8, 0xab},
	}
	for _, tc := range tests {
		if got := PartitionOf(tc.key, tc.bits); got != tc.want {
			t.Errorf("PartitionOf(%x, %d) = %#x, want %#x", tc.key, tc.bits, got, tc.want)
		}
	}
}

func TestPartitionOfIsMonotone(t *testing.T) {
	// Partition index must be monotone in the key: if a <= b then
	// partition(a) <= partition(b). This is what makes a partition a
	// contiguous key "neighborhood" (§4.3).
	err := quick.Check(func(a, b uint64, bitsRaw uint8) bool {
		bits := uint(bitsRaw%16) + 1
		ka, kb := EncodeUint64(a), EncodeUint64(b)
		if bytes.Compare(ka, kb) > 0 {
			ka, kb = kb, ka
		}
		return PartitionOf(ka, bits) <= PartitionOf(kb, bits)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestInternalKeyRoundTrip(t *testing.T) {
	ik := MakeInternal([]byte("user-key"), 12345, KindSet)
	if !ik.Valid() {
		t.Fatal("internal key should be valid")
	}
	if !bytes.Equal(ik.UserKey(), []byte("user-key")) {
		t.Errorf("UserKey = %q", ik.UserKey())
	}
	if ik.Seq() != 12345 {
		t.Errorf("Seq = %d", ik.Seq())
	}
	if ik.Kind() != KindSet {
		t.Errorf("Kind = %v", ik.Kind())
	}
	del := MakeInternal(nil, MaxSeq, KindDelete)
	if del.Seq() != MaxSeq {
		t.Errorf("MaxSeq round trip = %d", del.Seq())
	}
	if del.Kind() != KindDelete {
		t.Errorf("Kind = %v", del.Kind())
	}
	if len(del.UserKey()) != 0 {
		t.Errorf("empty user key round trip = %q", del.UserKey())
	}
}

func TestInternalKeySeqSaturates(t *testing.T) {
	ik := MakeInternal([]byte("k"), ^uint64(0), KindSet)
	if ik.Seq() != MaxSeq {
		t.Errorf("Seq = %d, want saturation at MaxSeq", ik.Seq())
	}
}

func TestCompareInternalOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := MakeInternal([]byte("k"), 10, KindSet)
	b := MakeInternal([]byte("k"), 5, KindSet)
	if CompareInternal(a, b) >= 0 {
		t.Error("newer version should sort before older")
	}
	// Different user keys: user key order dominates regardless of seq.
	c := MakeInternal([]byte("a"), 1, KindSet)
	d := MakeInternal([]byte("b"), 1000, KindSet)
	if CompareInternal(c, d) >= 0 {
		t.Error("user key order should dominate")
	}
	// Equal keys compare equal.
	if CompareInternal(a, MakeInternal([]byte("k"), 10, KindSet)) != 0 {
		t.Error("identical internal keys should compare equal")
	}
}

func TestCompareInternalSortsNewestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var iks []InternalKey
	for i := 0; i < 200; i++ {
		iks = append(iks, MakeInternal(EncodeUint64(uint64(rng.Intn(16))), uint64(rng.Intn(1000)), KindSet))
	}
	sort.Slice(iks, func(i, j int) bool { return CompareInternal(iks[i], iks[j]) < 0 })
	for i := 1; i < len(iks); i++ {
		prev, cur := iks[i-1], iks[i]
		uc := bytes.Compare(prev.UserKey(), cur.UserKey())
		if uc > 0 {
			t.Fatalf("user keys out of order at %d", i)
		}
		if uc == 0 && prev.Seq() < cur.Seq() {
			t.Fatalf("sequence numbers not descending within user key at %d", i)
		}
	}
}

func TestSuccessor(t *testing.T) {
	k := []byte("abc")
	s := Successor(k)
	if bytes.Compare(s, k) <= 0 {
		t.Error("successor not greater")
	}
	// Nothing sorts strictly between k and its successor.
	if bytes.Compare(s, append(append([]byte{}, k...), 0)) != 0 {
		t.Error("successor should be k + 0x00")
	}
}

func TestClone(t *testing.T) {
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
	src := []byte{1, 2, 3}
	c := Clone(src)
	src[0] = 9
	if c[0] != 1 {
		t.Error("Clone should not alias source")
	}
	empty := Clone([]byte{})
	if empty == nil || len(empty) != 0 {
		t.Error("Clone(empty) should be non-nil empty")
	}
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "set" || KindDelete.String() != "delete" {
		t.Error("kind strings wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still format")
	}
}
