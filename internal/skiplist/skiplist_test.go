package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"flodb/internal/keys"
)

func entry(v string, seq uint64) *Entry {
	return &Entry{Value: []byte(v), Seq: seq}
}

func TestEmptyList(t *testing.T) {
	l := New()
	if !l.Empty() || l.Len() != 0 {
		t.Fatal("new list should be empty")
	}
	if _, ok := l.Get([]byte("x")); ok {
		t.Fatal("Get on empty list should miss")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator on empty list should be invalid")
	}
}

func TestInsertGet(t *testing.T) {
	l := New()
	if !l.Insert([]byte("b"), entry("2", 1)) {
		t.Fatal("first insert should create a node")
	}
	if !l.Insert([]byte("a"), entry("1", 2)) {
		t.Fatal("insert of distinct key should create a node")
	}
	if l.Insert([]byte("b"), entry("2'", 3)) {
		t.Fatal("insert of existing key should update in place, not create")
	}
	e, ok := l.Get([]byte("b"))
	if !ok || string(e.Value) != "2'" || e.Seq != 3 {
		t.Fatalf("Get(b) = %+v, %v", e, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Updates() != 1 {
		t.Fatalf("Updates = %d, want 1", l.Updates())
	}
}

func TestGetMiss(t *testing.T) {
	l := New()
	l.Insert([]byte("b"), entry("2", 1))
	for _, k := range []string{"a", "bb", "c", ""} {
		if _, ok := l.Get([]byte(k)); ok {
			t.Errorf("Get(%q) should miss", k)
		}
	}
}

func TestTombstoneEntry(t *testing.T) {
	l := New()
	l.Insert([]byte("k"), &Entry{Seq: 1, Tombstone: true})
	e, ok := l.Get([]byte("k"))
	if !ok || !e.Tombstone {
		t.Fatal("tombstone should be stored and visible")
	}
}

func TestIteratorOrder(t *testing.T) {
	l := New()
	perm := rand.New(rand.NewSource(42)).Perm(500)
	for _, i := range perm {
		l.Insert(keys.EncodeUint64(uint64(i)), entry(fmt.Sprint(i), uint64(i)))
	}
	it := l.NewIterator()
	var got []uint64
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, keys.DecodeUint64(it.Key()))
	}
	if len(got) != 500 {
		t.Fatalf("iterated %d keys, want 500", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("position %d holds key %d", i, v)
		}
	}
}

func TestIteratorSeek(t *testing.T) {
	l := New()
	for i := 0; i < 100; i += 2 { // even keys 0..98
		l.Insert(keys.EncodeUint64(uint64(i)), entry("v", 0))
	}
	it := l.NewIterator()

	it.Seek(keys.EncodeUint64(10)) // exact hit
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 10 {
		t.Fatal("Seek(10) should land on 10")
	}
	it.Seek(keys.EncodeUint64(11)) // between keys
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 12 {
		t.Fatal("Seek(11) should land on 12")
	}
	it.Seek(keys.EncodeUint64(99)) // past the end
	if it.Valid() {
		t.Fatal("Seek(99) should be invalid")
	}
	it.Seek(nil) // before the start
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 0 {
		t.Fatal("Seek(nil) should land on first key")
	}
}

func TestIteratorSnapshotEntry(t *testing.T) {
	// The entry observed by an iterator is the one loaded on arrival;
	// Reload fetches the newest.
	l := New()
	l.Insert([]byte("k"), entry("old", 1))
	it := l.NewIterator()
	it.Seek([]byte("k"))
	l.Insert([]byte("k"), entry("new", 2))
	if string(it.Entry().Value) != "old" {
		t.Fatal("arrival snapshot should be stable")
	}
	if string(it.Reload().Value) != "new" {
		t.Fatal("Reload should observe the in-place update")
	}
}

func TestMultiInsertBasic(t *testing.T) {
	l := New()
	batch := []KV{
		{Key: keys.EncodeUint64(3), Entry: entry("3", 1)},
		{Key: keys.EncodeUint64(1), Entry: entry("1", 2)},
		{Key: keys.EncodeUint64(2), Entry: entry("2", 3)},
	}
	if n := l.MultiInsert(batch); n != 3 {
		t.Fatalf("MultiInsert inserted %d, want 3", n)
	}
	for i := uint64(1); i <= 3; i++ {
		e, ok := l.Get(keys.EncodeUint64(i))
		if !ok || string(e.Value) != fmt.Sprint(i) {
			t.Fatalf("Get(%d) = %+v, %v", i, e, ok)
		}
	}
}

func TestMultiInsertEmpty(t *testing.T) {
	l := New()
	if n := l.MultiInsert(nil); n != 0 {
		t.Fatal("empty batch should insert nothing")
	}
}

func TestMultiInsertDuplicatesInBatch(t *testing.T) {
	// Later duplicate in the batch must win, matching sequential Inserts.
	l := New()
	batch := []KV{
		{Key: []byte("k"), Entry: entry("first", 1)},
		{Key: []byte("a"), Entry: entry("a", 2)},
		{Key: []byte("k"), Entry: entry("second", 3)},
	}
	if n := l.MultiInsert(batch); n != 2 {
		t.Fatalf("inserted %d nodes, want 2", n)
	}
	e, _ := l.Get([]byte("k"))
	if string(e.Value) != "second" || e.Seq != 3 {
		t.Fatalf("duplicate resolution: got %+v", e)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestMultiInsertOverwritesExisting(t *testing.T) {
	l := New()
	l.Insert([]byte("k"), entry("old", 1))
	n := l.MultiInsert([]KV{{Key: []byte("k"), Entry: entry("new", 2)}})
	if n != 0 {
		t.Fatal("existing key should be updated, not inserted")
	}
	e, _ := l.Get([]byte("k"))
	if string(e.Value) != "new" {
		t.Fatal("MultiInsert should update in place")
	}
}

// TestMultiInsertEquivalence is the core property test: a MultiInsert of a
// random batch leaves the list in exactly the state n sequential Inserts
// would.
func TestMultiInsertEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		batchLen := 1 + rng.Intn(64)
		keySpace := 1 + rng.Intn(48) // small space forces duplicates
		var batch, batch2 []KV
		for i := 0; i < batchLen; i++ {
			k := keys.EncodeUint64(uint64(rng.Intn(keySpace)))
			e := entry(fmt.Sprintf("v%d-%d", trial, i), uint64(i))
			batch = append(batch, KV{Key: k, Entry: e})
			batch2 = append(batch2, KV{Key: k, Entry: e})
		}
		multi := New()
		multi.MultiInsert(batch)
		single := New()
		for _, kv := range batch2 {
			single.Insert(kv.Key, kv.Entry)
		}
		if !sameContents(t, multi, single) {
			t.Fatalf("trial %d: multi-insert diverged from sequential inserts", trial)
		}
	}
}

func sameContents(t *testing.T, a, b *List) bool {
	t.Helper()
	ita, itb := a.NewIterator(), b.NewIterator()
	ita.SeekToFirst()
	itb.SeekToFirst()
	for ita.Valid() && itb.Valid() {
		if !bytes.Equal(ita.Key(), itb.Key()) {
			t.Logf("key mismatch: %x vs %x", ita.Key(), itb.Key())
			return false
		}
		ea, eb := ita.Entry(), itb.Entry()
		if !bytes.Equal(ea.Value, eb.Value) || ea.Seq != eb.Seq || ea.Tombstone != eb.Tombstone {
			t.Logf("entry mismatch at %x: %+v vs %+v", ita.Key(), ea, eb)
			return false
		}
		ita.Next()
		itb.Next()
	}
	if ita.Valid() != itb.Valid() {
		t.Log("length mismatch")
		return false
	}
	return true
}

func TestSortedInvariantAfterRandomOps(t *testing.T) {
	l := New()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		if rng.Intn(3) == 0 {
			var batch []KV
			for j := 0; j < rng.Intn(10); j++ {
				batch = append(batch, KV{Key: keys.EncodeUint64(uint64(rng.Intn(500))), Entry: entry("m", uint64(i))})
			}
			l.MultiInsert(batch)
		} else {
			l.Insert(keys.EncodeUint64(uint64(rng.Intn(500))), entry("s", uint64(i)))
		}
	}
	assertSorted(t, l)
}

func assertSorted(t *testing.T, l *List) {
	t.Helper()
	it := l.NewIterator()
	var prev []byte
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violated: %x !< %x", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != l.Len() {
		t.Fatalf("iterator saw %d keys, Len reports %d", n, l.Len())
	}
}

func TestCustomComparator(t *testing.T) {
	// Reverse order comparator: the list must respect it.
	l := NewWithComparator(func(a, b []byte) int { return bytes.Compare(b, a) })
	for i := 0; i < 10; i++ {
		l.Insert(keys.EncodeUint64(uint64(i)), entry("v", 0))
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if keys.DecodeUint64(it.Key()) != 9 {
		t.Fatal("reverse comparator should put the largest key first")
	}
}

func TestInternalKeyComparatorMode(t *testing.T) {
	// The multi-versioned baseline mode: internal keys, newest-first within
	// a user key, no in-place updates because every (key,seq) is unique.
	l := NewWithComparator(func(a, b []byte) int {
		return keys.CompareInternal(keys.InternalKey(a), keys.InternalKey(b))
	})
	u := []byte("user")
	l.Insert(keys.MakeInternal(u, 1, keys.KindSet), entry("v1", 1))
	l.Insert(keys.MakeInternal(u, 3, keys.KindSet), entry("v3", 3))
	l.Insert(keys.MakeInternal(u, 2, keys.KindDelete), entry("", 2))
	if l.Len() != 3 {
		t.Fatalf("multi-versioning should keep all versions, Len=%d", l.Len())
	}
	// Seek to (user, MaxSeq) finds the newest version first.
	it := l.NewIterator()
	it.Seek(keys.MakeInternal(u, keys.MaxSeq, keys.KindSet))
	if !it.Valid() {
		t.Fatal("seek missed")
	}
	ik := keys.InternalKey(it.Key())
	if ik.Seq() != 3 || string(it.Entry().Value) != "v3" {
		t.Fatalf("newest version should sort first, got seq %d", ik.Seq())
	}
}

func TestApproxBytesGrowsAndTracksUpdates(t *testing.T) {
	l := New()
	l.Insert([]byte("k"), entry("aaaa", 1))
	before := l.ApproxBytes()
	if before <= 0 {
		t.Fatal("bytes should be positive after insert")
	}
	l.Insert([]byte("k"), entry("aaaaaaaa", 2)) // +4 value bytes
	if got := l.ApproxBytes(); got != before+4 {
		t.Fatalf("in-place growth: got %d, want %d", got, before+4)
	}
	l.Insert([]byte("k"), entry("aa", 3)) // -6 value bytes
	if got := l.ApproxBytes(); got != before-2 {
		t.Fatalf("in-place shrink: got %d, want %d", got, before-2)
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	l := New()
	counts := make([]int, MaxHeight+1)
	const n = 200000
	for i := 0; i < n; i++ {
		h := l.randomHeight()
		if h < 1 || h > MaxHeight {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// Height 1 should be ~n/2, height 2 ~n/4; allow wide tolerance.
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Errorf("height-1 fraction off: %d/%d", counts[1], n)
	}
	if counts[2] < n/8 || counts[2] > n/2 {
		t.Errorf("height-2 fraction off: %d/%d", counts[2], n)
	}
}

// --- Concurrency -----------------------------------------------------------

func TestConcurrentInsertDisjointRanges(t *testing.T) {
	l := New()
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := keys.EncodeUint64(uint64(w*per + i))
				l.Insert(k, entry("v", uint64(i)))
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	assertSorted(t, l)
}

func TestConcurrentInsertSameKeys(t *testing.T) {
	// All workers hammer the same small key set: exactly keySpace nodes
	// must exist afterwards, everything else must have been in-place.
	l := New()
	const workers = 8
	const per = 3000
	const keySpace = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				k := keys.EncodeUint64(uint64(rng.Intn(keySpace)))
				l.Insert(k, entry("v", uint64(w*per+i)))
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != keySpace {
		t.Fatalf("Len = %d, want %d", l.Len(), keySpace)
	}
	assertSorted(t, l)
}

func TestConcurrentMultiInsertAndReads(t *testing.T) {
	l := New()
	const writers = 4
	const batches = 200
	const batchSize = 16
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers continuously verify order.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := l.NewIterator()
				var prev []byte
				for it.SeekToFirst(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						panic("order violation under concurrency")
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(int64(w * 31)))
			for b := 0; b < batches; b++ {
				var batch []KV
				base := rng.Intn(100000)
				for i := 0; i < batchSize; i++ {
					batch = append(batch, KV{
						Key:   keys.EncodeUint64(uint64(base + rng.Intn(64))),
						Entry: entry("mv", uint64(b)),
					})
				}
				l.MultiInsert(batch)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	assertSorted(t, l)
}

func TestConcurrentInsertGetVisibility(t *testing.T) {
	// A Get racing an Insert of the same key must return either a miss or
	// a complete (value, seq) pair — never a torn one. Entries are
	// immutable; verify value/seq always agree.
	l := New()
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			seq := uint64(i)
			l.Insert([]byte("hot"), &Entry{Value: keys.EncodeUint64(seq), Seq: seq})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if e, ok := l.Get([]byte("hot")); ok {
				if keys.DecodeUint64(e.Value) != e.Seq {
					panic("torn entry observed")
				}
			}
		}
	}()
	wg.Wait()
}

// --- Micro-sanity for path reuse -------------------------------------------

func TestMultiInsertNeighborhoodCorrectness(t *testing.T) {
	// Interleave two multi-inserts whose ranges overlap; exercised further
	// in Fig 8 benchmarks. Here we only check correctness.
	l := New()
	for i := 0; i < 1000; i++ {
		l.Insert(keys.EncodeUint64(uint64(i*10)), entry("base", 0))
	}
	var batch []KV
	for i := 0; i < 100; i++ {
		batch = append(batch, KV{Key: keys.EncodeUint64(uint64(i*10 + 5)), Entry: entry("mid", 1)})
	}
	l.MultiInsert(batch)
	if l.Len() != 1100 {
		t.Fatalf("Len = %d, want 1100", l.Len())
	}
	assertSorted(t, l)
}

func TestLargeSequentialMultiInsert(t *testing.T) {
	// Ascending batch is the draining fast path (partition drains are
	// sorted); make sure a long run is correct.
	l := New()
	var batch []KV
	for i := 0; i < 10000; i++ {
		batch = append(batch, KV{Key: keys.EncodeUint64(uint64(i)), Entry: entry("v", uint64(i))})
	}
	if n := l.MultiInsert(batch); n != 10000 {
		t.Fatalf("inserted %d", n)
	}
	assertSorted(t, l)
}

func BenchmarkInsertSequential(b *testing.B) {
	l := New()
	e := entry("0123456789abcdef", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys.EncodeUint64(uint64(i)), e)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	l := New()
	e := entry("0123456789abcdef", 0)
	rng := rand.New(rand.NewSource(1))
	ks := make([][]byte, b.N)
	for i := range ks {
		ks[i] = keys.EncodeUint64(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(ks[i], e)
	}
}

func BenchmarkMultiInsert16(b *testing.B) {
	l := New()
	e := entry("0123456789abcdef", 0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i += 16 {
		var batch [16]KV
		base := rng.Uint64()
		for j := range batch {
			batch[j] = KV{Key: keys.EncodeUint64(base + uint64(j)), Entry: e}
		}
		l.MultiInsert(batch[:])
	}
}

func BenchmarkGet(b *testing.B) {
	l := New()
	e := entry("0123456789abcdef", 0)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		l.Insert(keys.EncodeUint64(uint64(i)), e)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(2))
		for pb.Next() {
			l.Get(keys.EncodeUint64(uint64(rng.Intn(n))))
		}
	})
}

// Sanity check that sort in MultiInsert doesn't corrupt caller batches in a
// way that breaks reuse (keys remain present, just reordered).
func TestMultiInsertSortsCallerBatch(t *testing.T) {
	l := New()
	batch := []KV{
		{Key: []byte("c"), Entry: entry("3", 0)},
		{Key: []byte("a"), Entry: entry("1", 0)},
	}
	l.MultiInsert(batch)
	got := []string{string(batch[0].Key), string(batch[1].Key)}
	sort.Strings(got)
	if got[0] != "a" || got[1] != "c" {
		t.Fatal("batch contents lost")
	}
	if bytes.Compare(batch[0].Key, batch[1].Key) >= 0 {
		t.Fatal("batch should be sorted in place (documented behaviour)")
	}
}
