// Package skiplist implements the concurrent skiplist used as FloDB's
// Memtable, including the paper's novel multi-insert operation
// (Algorithm 1, §4.3).
//
// Properties matching the paper's requirements:
//
//   - Lock-free inserts and wait-free reads built from CAS on next
//     pointers (the Herlihy–Shavit design the paper cites [29]).
//   - Insert-only: entries are never removed individually; the whole list
//     is dropped when a Memtable is persisted. The absence of removal is
//     what makes multi-insert's predecessor reuse safe (§4.3,
//     "Concurrency").
//   - In-place updates: inserting an existing key atomically swaps the
//     node's (value, seqnum) pair — the paper's SWAP(succs[0].val, v).
//   - Per-entry sequence numbers, read atomically together with the value,
//     which Scan uses to detect concurrent modification (§3.2).
//   - MultiInsert: n sorted elements inserted in one traversal, each
//     insertion starting from the predecessor array left by the previous
//     one instead of from the root.
//
// The comparator is pluggable so the multi-versioned baselines can reuse
// the list with internal (key,seq) keys.
package skiplist

import (
	"bytes"
	"sort"
	"sync/atomic"
)

const (
	// MaxHeight bounds tower height; 2^20 expected elements per level-1
	// node keeps search O(log n) up to ~1M nodes per memtable shard, and
	// taller lists degrade gracefully.
	MaxHeight = 20
	// pHeightBits: each level is taken with probability 1/2 (one bit per
	// level from the PRNG), the classic skiplist geometry.
	pHeightBits = 1
)

// Entry is the payload stored at a node: a value, the sequence number
// assigned when the entry entered the memtable, and a tombstone marker for
// deletes. Entries are immutable once published; updates swap the whole
// pointer so readers always observe a consistent (value, seq) pair.
//
// CreateSeq records the sequence number the node was FIRST inserted with;
// in-place updates carry it forward. Scans use it to distinguish "this key
// did not exist at my snapshot" (skip, no information lost) from "this
// key's snapshot value was overwritten in place" (restart) — a refinement
// of Algorithm 3's conservative restart, documented in DESIGN.md.
type Entry struct {
	Value     []byte
	Seq       uint64
	CreateSeq uint64
	Tombstone bool

	// prev links to the newest older version this list's Retention still
	// needs (nil when no snapshot bound can observe one). It is atomic
	// because pruning relinks chains concurrently with readers walking
	// them.
	prev atomic.Pointer[Entry]
}

// PrevVersion returns the next-older retained version, or nil.
func (e *Entry) PrevVersion() *Entry { return e.prev.Load() }

func (e *Entry) setPrev(p *Entry) { e.prev.Store(p) }

// Retention publishes the set of active snapshot sequence bounds to a
// list. While a bound B is active, an in-place update of a key whose
// current entry has Seq <= B chains the displaced entry behind the new
// one instead of destroying it, so a reader at bound B can still reach
// the version it needs (GetAt). With no active bounds updates destroy
// the old version exactly as before — the single-versioned memory
// component of §3.2 — so the retention machinery costs nothing when no
// snapshot is open.
type Retention struct {
	bounds atomic.Pointer[[]uint64]
}

// Set publishes the active bounds (they are copied; pass sorted
// ascending). An empty set disables chaining.
func (r *Retention) Set(bounds []uint64) {
	cp := append([]uint64(nil), bounds...)
	r.bounds.Store(&cp)
}

func (r *Retention) active() []uint64 {
	p := r.bounds.Load()
	if p == nil {
		return nil
	}
	return *p
}

// retain builds the version chain hung beneath a new entry displacing
// old: for each active bound B the newest version with Seq <= B is
// kept, everything else is unlinked, and the chain is cut below the
// deepest kept version — so a chain holds at most len(bounds)+1 entries
// however hot the key. Concurrent readers are safe: relinks only bypass
// versions no active bound stops at, a reader's target (the newest
// version <= its bound, which is fixed once the bound is drawn) is
// always in the kept set, and kept entries are linked consecutively, so
// every downward walk reaches the target before passing below it.
func retain(old *Entry, bounds []uint64) *Entry {
	if len(bounds) == 0 {
		return nil
	}
	var kept []*Entry
	v := old
	for i := len(bounds) - 1; i >= 0; i-- {
		for v != nil && v.Seq > bounds[i] {
			v = v.PrevVersion()
		}
		if v == nil {
			break
		}
		if len(kept) == 0 || kept[len(kept)-1] != v {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	for i := 0; i < len(kept)-1; i++ {
		kept[i].setPrev(kept[i+1])
	}
	kept[len(kept)-1].setPrev(nil)
	return kept[0]
}

// KV pairs a key with its entry for MultiInsert batches.
type KV struct {
	Key   []byte
	Entry *Entry
}

type node struct {
	key   []byte
	entry atomic.Pointer[Entry]
	// next[0..height) are the tower links. The slice is immutable after
	// construction; the pointers within are CAS-updated.
	next []atomic.Pointer[node]
}

func (n *node) height() int { return len(n.next) }

// List is a concurrent skiplist. Create with New or NewWithComparator.
type List struct {
	head *node
	cmp  func(a, b []byte) int
	// length counts distinct keys; bytes approximates memory usage of keys
	// plus current values (superseded values are not counted).
	length atomic.Int64
	bytes  atomic.Int64
	// updates counts in-place value swaps (distinct from inserts); the
	// draining and ablation benchmarks report it.
	updates atomic.Int64
	// rngState seeds the lock-free splitmix64 height generator.
	rngState atomic.Uint64
	// ret, when non-nil, supplies the active snapshot bounds that make
	// in-place updates chain displaced versions. Nil (the default) keeps
	// the classic destructive swap with zero overhead.
	ret *Retention
}

// SetRetention attaches the bound source consulted on in-place updates.
// Call before the list is shared; lists without one never chain.
func (l *List) SetRetention(r *Retention) { l.ret = r }

// New returns an empty list ordered by bytes.Compare.
func New() *List { return NewWithComparator(bytes.Compare) }

// NewWithComparator returns an empty list with a custom key order.
func NewWithComparator(cmp func(a, b []byte) int) *List {
	l := &List{
		head: &node{next: make([]atomic.Pointer[node], MaxHeight)},
		cmp:  cmp,
	}
	l.rngState.Store(0x9e3779b97f4a7c15)
	return l
}

// randomHeight draws a geometric height in [1, MaxHeight] from a lock-free
// splitmix64 stream.
func (l *List) randomHeight() int {
	x := l.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	h := 1
	for x&1 == 1 && h < MaxHeight {
		h++
		x >>= pHeightBits
	}
	return h
}

// less reports whether node n's key is strictly less than key. The head
// node compares less than everything.
func (l *List) less(n *node, key []byte) bool {
	if n == l.head {
		return true
	}
	return l.cmp(n.key, key) < 0
}

// findFromPreds locates key starting from the hint arrays rather than the
// root — Algorithm 1's FindFromPreds. preds/succs are updated in place to
// key's predecessor and successor at every level. It returns true if a node
// with exactly key exists (then succs[0] is that node).
//
// Hints must be "behind" key: every non-head preds[level] must hold a key
// strictly less than key. MultiInsert guarantees this by sorting the batch;
// single Insert passes head-initialized arrays.
func (l *List) findFromPreds(key []byte, preds, succs *[MaxHeight]*node) bool {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		// Path reuse: jump to the stored predecessor if it is ahead of the
		// one inherited from the level above. The hint is only usable if
		// its key is strictly less than the target: a batch may contain
		// duplicate keys, in which case the stored predecessor is the
		// just-inserted node itself and must be ignored.
		if p := preds[level]; p != nil && p != pred && p != l.head && l.cmp(p.key, key) < 0 {
			if pred == l.head || l.cmp(p.key, pred.key) > 0 {
				pred = p
			}
		}
		curr := pred.next[level].Load()
		for curr != nil && l.less(curr, key) {
			pred = curr
			curr = curr.next[level].Load()
		}
		preds[level] = pred
		succs[level] = curr
	}
	s := succs[0]
	return s != nil && l.cmp(s.key, key) == 0
}

// newPredsArrays returns hint arrays pointing at the root.
func (l *List) newPredsArrays() (*[MaxHeight]*node, *[MaxHeight]*node) {
	var preds, succs [MaxHeight]*node
	for i := range preds {
		preds[i] = l.head
	}
	return &preds, &succs
}

// Insert adds key with entry, or atomically replaces the entry of an
// existing key (in-place update). It reports whether a new node was
// created. Safe for concurrent use with all other operations.
func (l *List) Insert(key []byte, e *Entry) (inserted bool) {
	preds, succs := l.newPredsArrays()
	return l.insertFrom(key, e, preds, succs)
}

// insertFrom is the shared body of Insert and MultiInsert: Algorithm 1
// lines 24–42.
func (l *List) insertFrom(key []byte, e *Entry, preds, succs *[MaxHeight]*node) bool {
	var nd *node // allocated lazily; reused across CAS retries
	for {
		if l.findFromPreds(key, preds, succs) {
			// Existing key: in-place update. The creation seq is inherited
			// so scans can tell overwrites of pre-snapshot values from
			// post-snapshot inserts. The swap is a CAS loop rather than a
			// blind Swap: with retention active the displaced entry may
			// need to be chained behind the new one, and a lost race must
			// re-chain against the actual displaced entry or a concurrent
			// writer's version would silently vanish from the chain.
			nd := succs[0]
			for {
				old := nd.entry.Load()
				if old.CreateSeq != 0 {
					e.CreateSeq = old.CreateSeq
				} else {
					e.CreateSeq = old.Seq
				}
				if l.ret != nil {
					e.setPrev(retain(old, l.ret.active()))
				}
				if nd.entry.CompareAndSwap(old, e) {
					l.updates.Add(1)
					l.bytes.Add(int64(len(e.Value)) - int64(len(old.Value)))
					return false
				}
			}
		}
		if nd == nil {
			if e.CreateSeq == 0 {
				e.CreateSeq = e.Seq
			}
			h := l.randomHeight()
			nd = &node{key: key, next: make([]atomic.Pointer[node], h)}
			nd.entry.Store(e)
		}
		top := nd.height()
		for lvl := 0; lvl < top; lvl++ {
			nd.next[lvl].Store(succs[lvl])
		}
		if !preds[0].next[0].CompareAndSwap(succs[0], nd) {
			// Lost the race at the bottom level; re-find and retry (the
			// winner may even have inserted our key).
			continue
		}
		// Linked at level 0: the node is in the list. Link upper levels.
		for lvl := 1; lvl < top; lvl++ {
			for {
				if preds[lvl].next[lvl].CompareAndSwap(succs[lvl], nd) {
					break
				}
				l.findFromPreds(key, preds, succs)
				if succs[lvl] == nd {
					// A concurrent findFromPreds can observe nd already at
					// this level only if our CAS actually succeeded under a
					// spurious-looking failure path; treat as linked.
					break
				}
				nd.next[lvl].Store(succs[lvl])
			}
		}
		// Leave preds positioned at the new node for path reuse by the
		// next element of a multi-insert batch.
		for lvl := 0; lvl < top; lvl++ {
			preds[lvl] = nd
		}
		l.length.Add(1)
		l.bytes.Add(int64(len(key)) + int64(len(e.Value)) + nodeOverhead(top))
		return true
	}
}

// nodeOverhead approximates per-node bookkeeping bytes for size accounting:
// the node struct, tower slice, and entry struct.
func nodeOverhead(height int) int64 { return int64(64 + 16*height) }

// MultiInsert inserts the batch in one pass (Algorithm 1). The batch is
// sorted in place by key ascending; for duplicate keys within the batch the
// later element wins (it overwrites in place, matching repeated Inserts).
// It returns the number of new nodes created.
//
// Multi-inserts are concurrent with each other, with Insert, and with
// readers. As in the paper, the batch is not atomic: intermediate states
// where only a prefix has been inserted are visible.
func (l *List) MultiInsert(batch []KV) (inserted int) {
	if len(batch) == 0 {
		return 0
	}
	sort.SliceStable(batch, func(i, j int) bool { return l.cmp(batch[i].Key, batch[j].Key) < 0 })
	preds, succs := l.newPredsArrays()
	for _, kv := range batch {
		if l.insertFrom(kv.Key, kv.Entry, preds, succs) {
			inserted++
		}
	}
	return inserted
}

// Get returns the entry for key, or (nil, false).
func (l *List) Get(key []byte) (*Entry, bool) {
	n := l.seekGE(key)
	if n != nil && l.cmp(n.key, key) == 0 {
		return n.entry.Load(), true
	}
	return nil, false
}

// GetAt returns the newest version of key with Seq <= maxSeq, walking
// the node's retained version chain. ok is false when the key is absent
// or every retained version is newer than maxSeq (the key did not exist
// in this list at the bound — the caller continues to older components).
func (l *List) GetAt(key []byte, maxSeq uint64) (*Entry, bool) {
	n := l.seekGE(key)
	if n == nil || l.cmp(n.key, key) != 0 {
		return nil, false
	}
	return ResolveAt(n.entry.Load(), maxSeq)
}

// ResolveAt walks e's version chain for the newest version with
// Seq <= maxSeq. Iterators over bounded views use it on each visited
// entry.
func ResolveAt(e *Entry, maxSeq uint64) (*Entry, bool) {
	for ; e != nil; e = e.PrevVersion() {
		if e.Seq <= maxSeq {
			return e, true
		}
	}
	return nil, false
}

// seekGE returns the first node with key >= target, or nil.
func (l *List) seekGE(target []byte) *node {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr != nil && l.less(curr, target) {
			pred = curr
			curr = curr.next[level].Load()
		}
	}
	return pred.next[0].Load()
}

// Len returns the number of distinct keys.
func (l *List) Len() int { return int(l.length.Load()) }

// ApproxBytes returns the approximate memory footprint of keys, live
// values, and node overhead.
func (l *List) ApproxBytes() int64 { return l.bytes.Load() }

// Updates returns the number of in-place updates performed.
func (l *List) Updates() int64 { return l.updates.Load() }

// Empty reports whether the list holds no keys.
func (l *List) Empty() bool { return l.head.next[0].Load() == nil }

// --- Iterator --------------------------------------------------------------

// Iterator walks the bottom level of the list in key order. It is safe to
// use concurrently with inserts: entries inserted after the iterator passes
// a position are simply not observed, while the (value, seq) of each
// visited node is loaded atomically. Scan-level consistency is enforced by
// sequence numbers at the FloDB layer, not here.
type Iterator struct {
	l    *List
	curr *node
	// entry is the snapshot loaded when the iterator moved to curr, so Key
	// and Entry always describe the same moment.
	entry *Entry
}

// NewIterator returns an iterator positioned before the first key.
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// SeekToFirst positions at the first key.
func (it *Iterator) SeekToFirst() {
	it.setNode(it.l.head.next[0].Load())
}

// Seek positions at the first key >= target.
func (it *Iterator) Seek(target []byte) {
	it.setNode(it.l.seekGE(target))
}

// Next advances to the following key. Valid must be true.
func (it *Iterator) Next() {
	it.setNode(it.curr.next[0].Load())
}

func (it *Iterator) setNode(n *node) {
	it.curr = n
	if n != nil {
		it.entry = n.entry.Load()
	} else {
		it.entry = nil
	}
}

// Valid reports whether the iterator is positioned at a key.
func (it *Iterator) Valid() bool { return it.curr != nil }

// Key returns the current key. Valid must be true. The returned slice must
// not be modified.
func (it *Iterator) Key() []byte { return it.curr.key }

// Entry returns the (value, seq, tombstone) snapshot taken when the
// iterator arrived at this key. Valid must be true.
func (it *Iterator) Entry() *Entry { return it.entry }

// Reload re-reads the current node's entry; scans use it when they want the
// newest state rather than the arrival snapshot.
func (it *Iterator) Reload() *Entry {
	it.entry = it.curr.entry.Load()
	return it.entry
}
