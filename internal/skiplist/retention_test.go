package skiplist

import (
	"fmt"
	"sync"
	"testing"

	"flodb/internal/keys"
)

// chainLen walks a key's version chain and returns its length (the
// current entry plus every retained predecessor).
func chainLen(l *List, key []byte) int {
	e, ok := l.Get(key)
	if !ok {
		return 0
	}
	n := 0
	for ; e != nil; e = e.PrevVersion() {
		n++
	}
	return n
}

func TestRetentionOffDestroysOldVersions(t *testing.T) {
	l := New()
	// No Retention attached: in-place updates must stay single-versioned.
	l.Insert([]byte("k"), entry("v1", 1))
	l.Insert([]byte("k"), entry("v2", 2))
	if n := chainLen(l, []byte("k")); n != 1 {
		t.Fatalf("chain length without retention = %d, want 1", n)
	}
	// Attached but empty bounds: same thing.
	var r Retention
	l.SetRetention(&r)
	l.Insert([]byte("k"), entry("v3", 3))
	if n := chainLen(l, []byte("k")); n != 1 {
		t.Fatalf("chain length with empty bounds = %d, want 1", n)
	}
}

func TestGetAtResolvesPinnedVersion(t *testing.T) {
	l := New()
	var r Retention
	l.SetRetention(&r)
	l.Insert([]byte("k"), entry("v1", 1))

	r.Set([]uint64{1}) // a snapshot pinned at seq 1
	l.Insert([]byte("k"), entry("v2", 5))
	r.Set([]uint64{1, 7}) // a second snapshot pinned at seq 7
	l.Insert([]byte("k"), entry("v3", 9))

	if e, ok := l.GetAt([]byte("k"), 1); !ok || string(e.Value) != "v1" || e.Seq != 1 {
		t.Fatalf("GetAt(1) = %+v %v, want v1@1", e, ok)
	}
	if e, ok := l.GetAt([]byte("k"), 7); !ok || string(e.Value) != "v2" {
		t.Fatalf("GetAt(7) = %+v %v, want v2 (newest <= 7)", e, ok)
	}
	if e, ok := l.Get([]byte("k")); !ok || string(e.Value) != "v3" {
		t.Fatalf("live Get = %+v %v, want v3", e, ok)
	}
	// A bound older than every version misses.
	if _, ok := l.GetAt([]byte("k"), 0); ok {
		t.Fatal("GetAt(0) should miss: no version at or below the bound")
	}
	// A key never written misses at any bound.
	if _, ok := l.GetAt([]byte("absent"), 9); ok {
		t.Fatal("GetAt(absent) should miss")
	}
}

func TestRetentionChainBoundedByBoundCount(t *testing.T) {
	l := New()
	var r Retention
	l.SetRetention(&r)
	l.Insert([]byte("k"), entry("v0", 10))
	r.Set([]uint64{10, 20}) // two active snapshots

	// Hammer one key with 100 overwrites: however hot, the chain must
	// stay within bounds+1 entries (one per bound plus the live entry).
	for i := uint64(0); i < 100; i++ {
		l.Insert([]byte("k"), entry(fmt.Sprintf("v%d", i+1), 30+i))
	}
	if n := chainLen(l, []byte("k")); n > 3 {
		t.Fatalf("chain length with 2 bounds = %d, want <= 3", n)
	}
	// Both pinned reads still resolve to the version their bound needs.
	if e, ok := l.GetAt([]byte("k"), 10); !ok || string(e.Value) != "v0" {
		t.Fatalf("GetAt(10) = %+v %v, want v0", e, ok)
	}
	if e, ok := l.GetAt([]byte("k"), 20); !ok || string(e.Value) != "v0" {
		t.Fatalf("GetAt(20) = %+v %v, want v0 (newest <= 20)", e, ok)
	}

	// Dropping the bounds prunes on the next overwrite.
	r.Set(nil)
	l.Insert([]byte("k"), entry("final", 1000))
	if n := chainLen(l, []byte("k")); n != 1 {
		t.Fatalf("chain length after bounds dropped = %d, want 1", n)
	}
}

func TestRetentionSharedVersionAcrossBounds(t *testing.T) {
	l := New()
	var r Retention
	l.SetRetention(&r)
	l.Insert([]byte("k"), entry("old", 5))
	// Two bounds that both resolve to the same version must keep ONE
	// copy, not two.
	r.Set([]uint64{6, 8})
	l.Insert([]byte("k"), entry("new", 9))
	if n := chainLen(l, []byte("k")); n != 2 {
		t.Fatalf("chain length = %d, want 2 (live + one shared pinned)", n)
	}
	for _, b := range []uint64{6, 8} {
		if e, ok := l.GetAt([]byte("k"), b); !ok || string(e.Value) != "old" {
			t.Fatalf("GetAt(%d) = %+v %v, want old", b, e, ok)
		}
	}
}

func TestRetentionCreateSeqSurvivesChaining(t *testing.T) {
	l := New()
	var r Retention
	l.SetRetention(&r)
	l.Insert([]byte("k"), entry("v1", 3))
	r.Set([]uint64{3})
	l.Insert([]byte("k"), entry("v2", 7))
	e, ok := l.Get([]byte("k"))
	if !ok || e.CreateSeq != 3 {
		t.Fatalf("CreateSeq = %d, want 3 (first insert's seq)", e.CreateSeq)
	}
}

func TestRetentionConcurrentOverwritesAndPinnedReads(t *testing.T) {
	l := New()
	var r Retention
	l.SetRetention(&r)
	const nKeys = 64
	for i := 0; i < nKeys; i++ {
		l.Insert(keys.EncodeUint64(uint64(i)), entry("base", 1))
	}
	r.Set([]uint64{1})

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers overwrite every key with monotonically larger seqs.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			seq := uint64(100 + w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < nKeys; i++ {
					l.Insert(keys.EncodeUint64(uint64(i)), entry("hot", seq))
					seq += 8
				}
			}
		}(w)
	}
	// Readers at the pinned bound must always see the base version,
	// whatever the writers are doing to the live entries.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for round := 0; round < 200; round++ {
				for i := 0; i < nKeys; i++ {
					e, ok := l.GetAt(keys.EncodeUint64(uint64(i)), 1)
					if !ok || string(e.Value) != "base" {
						t.Errorf("pinned read saw %v ok=%v, want base", e, ok)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
