// Package wal implements the on-disk commit log (§2.1: "updates are
// appended to an on-disk commit-log before being applied to the in-memory
// component"). One log file exists per memtable generation; recovery
// replays the logs newer than the manifest's persisted log number.
//
// Framing: every record is [crc32c(4) | length(4) | payload]. The CRC
// covers the length field and the payload, so a torn length is detected
// too. Reads tolerate a truncated final record (the normal crash shape for
// an append-only file) by reporting ErrTruncated, which recovery treats as
// end-of-log; any other inconsistency is ErrCorrupt.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

var (
	// ErrTruncated marks a clean torn tail: everything before it replayed.
	ErrTruncated = errors.New("wal: truncated record at end of log")
	// ErrCorrupt marks a checksum or framing violation before the tail.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed writer.
	ErrClosed = errors.New("wal: closed")
)

// MaxRecordSize bounds a single record; larger lengths are treated as
// corruption rather than as allocation requests.
const MaxRecordSize = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8

// Writer appends framed records to a log file. Safe for concurrent use.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	closed bool
	// syncEvery, when true, fsyncs after each Append (durable mode). The
	// paper's benchmarks, like LevelDB's defaults, run without per-write
	// fsync; the option exists for the recovery tests and for users.
	syncEvery bool
	written   int64
}

// Options configure a Writer.
type Options struct {
	// SyncEvery forces an fsync after every Append.
	SyncEvery bool
	// BufferSize is the bufio size; 0 means 64 KiB.
	BufferSize int
}

// Create creates (truncating) a log file at path.
func Create(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	bs := opts.BufferSize
	if bs <= 0 {
		bs = 64 << 10
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, bs), syncEvery: opts.SyncEvery}, nil
}

// Append writes one record. The record is durable only after Sync unless
// SyncEvery is set.
func (w *Writer) Append(rec []byte) error {
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(rec))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(rec)))
	crc := crc32.Update(0, castagnoli, hdr[4:])
	crc = crc32.Update(crc, castagnoli, rec)
	binary.LittleEndian.PutUint32(hdr[:4], crc)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.written += int64(headerSize + len(rec))
	if w.syncEvery {
		return w.syncLocked()
	}
	return nil
}

// Sync flushes buffers and fsyncs the file.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Size returns bytes appended so far (including framing).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Close flushes and closes the file. It does not fsync; call Sync first if
// durability is required.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return w.f.Close()
}

// Reader replays a log file sequentially.
type Reader struct {
	br  *bufio.Reader
	f   *os.File
	buf []byte
}

// Open opens a log file for replay.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Reader{br: bufio.NewReaderSize(f, 64<<10), f: f}, nil
}

// Next returns the next record. The returned slice is reused by subsequent
// calls. At the end of a clean log it returns io.EOF; at a torn tail,
// ErrTruncated; on a mid-log inconsistency, ErrCorrupt.
func (r *Reader) Next() ([]byte, error) {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r.br, hdr[:])
	if err == io.EOF {
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF || (err == nil && n < headerSize) {
		return nil, ErrTruncated
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[4:])
	if length > MaxRecordSize {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, length)
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	r.buf = r.buf[:length]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("wal: read payload: %w", err)
	}
	crc := crc32.Update(0, castagnoli, hdr[4:])
	crc = crc32.Update(crc, castagnoli, r.buf)
	if crc != binary.LittleEndian.Uint32(hdr[:4]) {
		return nil, ErrCorrupt
	}
	return r.buf, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

// ReplayAll reads records until the end of the log, invoking fn on each.
// It returns nil on a clean or torn-tail end and the corruption error
// otherwise. fn's record slice is only valid during the call.
func ReplayAll(path string, fn func(rec []byte) error) error {
	r, err := Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		switch {
		case err == io.EOF:
			return nil
		case errors.Is(err, ErrTruncated):
			return nil
		case err != nil:
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
