// Package wal implements the on-disk commit log (§2.1: "updates are
// appended to an on-disk commit-log before being applied to the in-memory
// component"). One log file exists per memtable generation; recovery
// replays the logs newer than the manifest's persisted log number.
//
// Framing: every record is [crc32c(4) | length(4) | payload]. The CRC
// covers the length field and the payload, so a torn length is detected
// too. Reads tolerate a truncated final record (the normal crash shape for
// an append-only file) by reporting ErrTruncated, which recovery treats as
// end-of-log; any other inconsistency is ErrCorrupt.
//
// # Group commit
//
// Durability is decoupled from appending. Append never fsyncs: it stages
// the record (bufio) under a short mutex and returns the log offset the
// record ends at. A committer that needs durability calls SyncTo with that
// offset; concurrent committers coalesce into a leader/follower commit
// queue: the first caller through becomes the leader, flushes and fsyncs
// once on behalf of EVERYONE whose record was appended by then, and the
// followers — which were blocked behind the in-flight barrier — observe
// that the durable horizon already covers them and return without touching
// the disk. One disk barrier thus acknowledges many writers, which is what
// keeps a memory-speed ingest path (the paper's whole point) alive when
// durability is turned on: N concurrent sync committers cost O(1), not
// O(N), fsyncs.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/obs"
)

var (
	// ErrTruncated marks a clean torn tail: everything before it replayed.
	ErrTruncated = errors.New("wal: truncated record at end of log")
	// ErrCorrupt marks a checksum or framing violation before the tail.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed writer.
	ErrClosed = errors.New("wal: closed")
)

// MaxRecordSize bounds a single record; larger lengths are treated as
// corruption rather than as allocation requests.
const MaxRecordSize = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8

// Metrics aggregates commit-log counters across every segment of one
// store. All of a store's Writers share one Metrics (via Options), so the
// counters describe the store's whole log stream in commit order, across
// generation switches.
//
// The acked-vs-durable boundary: records with commit index <= Durable are
// crash-durable (covered by an fsync, or marked durable by the store when
// their segment's contents reached sstables); the records in
// (Durable, Appends] are acknowledged but still buffered — the window a
// crash can lose and a Sync barrier closes.
type Metrics struct {
	appends      atomic.Uint64 // records appended, in commit order
	durable      atomic.Uint64 // high-water commit index known crash-durable
	syncs        atomic.Uint64 // fsyncs issued by the commit queue
	syncRequests atomic.Uint64 // durability requests served (coalescing denominator)
}

// MetricsSnapshot is a point-in-time copy of a Metrics.
type MetricsSnapshot struct {
	// Appends is the commit index of the last acked record.
	Appends uint64
	// Durable is the highest commit index known crash-durable.
	Durable uint64
	// Syncs counts fsyncs issued; SyncRequests counts the durability
	// requests they served. SyncRequests/Syncs is the group-commit
	// coalescing factor.
	Syncs        uint64
	SyncRequests uint64
}

// Snapshot reads the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Appends:      m.appends.Load(),
		Durable:      m.durable.Load(),
		Syncs:        m.syncs.Load(),
		SyncRequests: m.syncRequests.Load(),
	}
}

// advanceDurable raises the durable high-water mark to idx (never lowers).
func (m *Metrics) advanceDurable(idx uint64) {
	if m == nil {
		return
	}
	for {
		cur := m.durable.Load()
		if cur >= idx || m.durable.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// Writer appends framed records to a log file. Safe for concurrent use.
//
// Append stages a record and returns immediately; SyncTo (or Sync) makes
// staged records durable through the group-commit queue described in the
// package comment. Close does NOT fsync — callers that need the tail
// durable must Sync first (DB close paths do).
type Writer struct {
	// mu guards staging: the bufio writer, the appended offset, and
	// closed. It is held only for memory-speed work (never across an
	// fsync), so appenders are not serialized behind disk barriers.
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	closed  bool
	written int64  // bytes appended (logical end offset, incl. framing)
	lastRec uint64 // commit index (Metrics.appends) of the last record
	// writeThrough flushes the bufio on every Append (Options.WriteThrough).
	writeThrough bool

	// commitMu is the commit queue: holders are sync leaders, waiters are
	// followers. synced is the durable offset; it is atomic so the
	// fast path can check it without any lock.
	commitMu sync.Mutex
	synced   atomic.Int64
	// syncErr is sticky: once an fsync fails the log's durable horizon
	// can no longer advance, and every subsequent durability request
	// must fail rather than falsely ack.
	syncErr atomic.Pointer[error]

	metrics *Metrics

	// events receives group-commit stall events (may be nil);
	// stallThreshold is the commit-queue wait above which one is emitted.
	events         *obs.EventLog
	stallThreshold time.Duration

	// fsyncGate, when non-nil, runs inside the leader's commit (after the
	// flush, before the fsync). Tests use it to hold a leader in the
	// barrier and observe followers coalescing behind it.
	fsyncGate func()
}

// DefaultStallThreshold is the group-commit wait above which a wal-stall
// event is emitted when Options.Events is set: long enough that healthy
// fsyncs (hundreds of µs on SSDs) stay quiet, short enough that a
// contended barrier shows up.
const DefaultStallThreshold = 10 * time.Millisecond

// Options configure a Writer.
type Options struct {
	// BufferSize is the bufio size; 0 means 64 KiB.
	BufferSize int
	// Metrics, when non-nil, receives this writer's counters. Share one
	// Metrics across a store's segments to track the store-wide
	// acked-vs-durable boundary.
	Metrics *Metrics
	// WriteThrough makes Append push every record to the OS before
	// acknowledging it (a bufio flush per record, still no fsync). With it
	// on, a process kill — SIGKILL included — loses no acknowledged
	// record to user-space staging: the buffered window shrinks to what a
	// MACHINE crash can lose. Replicated deployments run their nodes this
	// way so quorum-acked writes survive any single process death.
	WriteThrough bool
	// Events, when non-nil, receives a wal-stall event whenever a
	// committer waits longer than StallThreshold in the group-commit
	// queue (leader fsync time included).
	Events *obs.EventLog
	// StallThreshold overrides DefaultStallThreshold (0 selects it).
	StallThreshold time.Duration
}

// Create creates (truncating) a log file at path.
func Create(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	bs := opts.BufferSize
	if bs <= 0 {
		bs = 64 << 10
	}
	st := opts.StallThreshold
	if st <= 0 {
		st = DefaultStallThreshold
	}
	return &Writer{
		f:              f,
		bw:             bufio.NewWriterSize(f, bs),
		metrics:        opts.Metrics,
		writeThrough:   opts.WriteThrough,
		events:         opts.Events,
		stallThreshold: st,
	}, nil
}

// Append stages one record and returns the log offset it ends at — the
// token a committer hands to SyncTo when it needs the record durable. The
// record is acknowledged into the commit order (Metrics.Appends) but NOT
// durable until an fsync covers the returned offset.
func (w *Writer) Append(rec []byte) (int64, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(rec))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(rec)))
	crc := crc32.Update(0, castagnoli, hdr[4:])
	crc = crc32.Update(crc, castagnoli, rec)
	binary.LittleEndian.PutUint32(hdr[:4], crc)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(rec); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if w.writeThrough {
		if err := w.bw.Flush(); err != nil {
			return 0, fmt.Errorf("wal: append flush: %w", err)
		}
	}
	w.written += int64(headerSize + len(rec))
	if w.metrics != nil {
		w.lastRec = w.metrics.appends.Add(1)
	}
	return w.written, nil
}

// SyncTo blocks until every record at offset <= off is durable, issuing at
// most one fsync and coalescing with concurrent committers (see the
// package comment). It is the commit point of a Sync-durability write.
func (w *Writer) SyncTo(off int64) error {
	if w.metrics != nil {
		w.metrics.syncRequests.Add(1)
	}
	// Fast path: a previous leader's barrier already covers us. (synced
	// only advances over fsync-verified bytes, so no error check needed.)
	if w.synced.Load() >= off {
		return nil
	}
	var queuedAt time.Time
	if w.events != nil {
		queuedAt = time.Now()
	}
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	if err := w.loadSyncErr(); err != nil {
		return err
	}
	// Follower path: the leader we queued behind captured its target
	// AFTER our Append (we held off until it left the barrier), so its
	// fsync covered our record.
	if w.synced.Load() >= off {
		w.noteStall(queuedAt, "follower")
		return nil
	}
	// Leader path: flush the staging buffer under mu (memory-speed),
	// capture the horizon, then fsync with mu RELEASED so appenders and
	// future followers keep streaming while the barrier runs.
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if err := w.bw.Flush(); err != nil {
		w.mu.Unlock()
		err = fmt.Errorf("wal: flush: %w", err)
		w.storeSyncErr(err)
		return err
	}
	target := w.written
	targetRec := w.lastRec
	w.mu.Unlock()

	if w.fsyncGate != nil {
		w.fsyncGate()
	}
	if err := w.f.Sync(); err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
		w.storeSyncErr(err)
		return err
	}
	w.synced.Store(target)
	if w.metrics != nil {
		w.metrics.syncs.Add(1)
		w.metrics.advanceDurable(targetRec)
	}
	w.noteStall(queuedAt, "leader")
	return nil
}

// noteStall emits a wal-stall event when a committer's time in the
// group-commit queue (from enqueue to durable, fsync included) exceeds
// the threshold — the signature of a slow disk barrier or a long convoy
// behind one.
func (w *Writer) noteStall(queuedAt time.Time, role string) {
	if w.events == nil || queuedAt.IsZero() {
		return
	}
	if d := time.Since(queuedAt); d >= w.stallThreshold {
		w.events.Emit(obs.Event{Type: obs.EventWALStall, Dur: d, Detail: role})
	}
}

// Flush pushes the staging buffer to the OS (no disk barrier): appended
// records survive a process crash past this point, though a machine
// crash can still lose them. Segment rotation seals call it so that the
// cross-segment replay order stays a clean prefix — a sealed segment
// never holds unflushed records behind a successor segment that is
// already accumulating flushed ones.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Sync is the durability barrier over the whole segment: it blocks until
// everything appended before the call is durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	off := w.written
	w.mu.Unlock()
	return w.SyncTo(off)
}

func (w *Writer) loadSyncErr() error {
	if p := w.syncErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *Writer) storeSyncErr(err error) {
	w.syncErr.CompareAndSwap(nil, &err)
}

// Size returns bytes appended so far (including framing).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Durable returns the offset covered by the last disk barrier. The bytes
// in (Durable, Size] are staged but would be lost by a crash.
func (w *Writer) Durable() int64 { return w.synced.Load() }

// MarkContentsDurable records that every record in this segment is
// crash-durable through some OTHER channel — the store calls it after the
// segment's memtable reached sstables (at which point the log file itself
// is obsolete). It only moves the metrics horizon; it does not touch the
// file.
func (w *Writer) MarkContentsDurable() {
	w.mu.Lock()
	idx := w.lastRec
	w.mu.Unlock()
	if w.metrics != nil {
		w.metrics.advanceDurable(idx)
	}
}

// Close flushes and closes the file. It does not fsync; call Sync first if
// durability is required.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return w.f.Close()
}

// Abandon closes the file WITHOUT flushing the staging buffer, discarding
// every record since the last flush — the write-loss shape of a machine
// crash (records acked-buffered but never flushed). Crash-recovery tests
// use it to open the acked-but-lost window deliberately; production code
// has no reason to call it.
func (w *Writer) Abandon() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Reader replays a log file sequentially.
type Reader struct {
	br  *bufio.Reader
	f   *os.File
	buf []byte
}

// Open opens a log file for replay.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Reader{br: bufio.NewReaderSize(f, 64<<10), f: f}, nil
}

// Next returns the next record. The returned slice is reused by subsequent
// calls. At the end of a clean log it returns io.EOF; at a torn tail,
// ErrTruncated; on a mid-log inconsistency, ErrCorrupt.
func (r *Reader) Next() ([]byte, error) {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r.br, hdr[:])
	if err == io.EOF {
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF || (err == nil && n < headerSize) {
		return nil, ErrTruncated
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[4:])
	if length > MaxRecordSize {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, length)
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	r.buf = r.buf[:length]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("wal: read payload: %w", err)
	}
	crc := crc32.Update(0, castagnoli, hdr[4:])
	crc = crc32.Update(crc, castagnoli, r.buf)
	if crc != binary.LittleEndian.Uint32(hdr[:4]) {
		return nil, ErrCorrupt
	}
	return r.buf, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

// ReplayAll reads records until the end of the log, invoking fn on each.
// It returns nil on a clean or torn-tail end and the corruption error
// otherwise. fn's record slice is only valid during the call.
func ReplayAll(path string, fn func(rec []byte) error) error {
	r, err := Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		switch {
		case err == io.EOF:
			return nil
		case errors.Is(err, ErrTruncated):
			return nil
		case err != nil:
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
