package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "000001.wal")
}

func TestRoundTrip(t *testing.T) {
	path := tempLog(t)
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	records := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte("x"), 100_000),
		[]byte("last"),
	}
	for _, rec := range records {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReplayAll(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	for i := 0; i < 10; i++ {
		w.Append([]byte{byte(i)})
	}
	w.Close()
	var got []byte
	err := ReplayAll(path, func(rec []byte) error {
		got = append(got, rec[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("record %d = %d", i, b)
		}
	}
}

func TestReplayAllPropagatesFnError(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	w.Append([]byte("x"))
	w.Close()
	sentinel := errors.New("boom")
	if err := ReplayAll(path, func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestTruncatedTailIsCleanEnd(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	w.Append([]byte("complete-record"))
	w.Append([]byte("this-one-gets-torn"))
	w.Close()

	// Tear the last record: chop a few bytes off the file.
	fi, _ := os.Stat(path)
	for _, cut := range []int64{1, 5, 10} {
		if err := os.Truncate(path, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}
		var n int
		err := ReplayAll(path, func(rec []byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 1 {
			t.Fatalf("cut %d: replayed %d records, want 1", cut, n)
		}
	}

	// Tear into the header of the second record.
	if err := os.Truncate(path, int64(headerSize+len("complete-record")+3)); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReplayAll(path, func(rec []byte) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("torn header: err=%v n=%d", err, n)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	w.Append([]byte("aaaaaaaaaaaaaaaa"))
	w.Close()

	data, _ := os.ReadFile(path)
	data[headerSize+4] ^= 0xff // flip a payload byte
	os.WriteFile(path, data, 0o644)

	r, _ := Open(path)
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestCorruptLengthDetected(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	w.Append([]byte("hello"))
	w.Close()
	data, _ := os.ReadFile(path)
	// Make the length absurd; CRC covers it but the length sanity check
	// fires first and must not attempt the allocation.
	data[4] = 0xff
	data[5] = 0xff
	data[6] = 0xff
	data[7] = 0x7f
	os.WriteFile(path, data, 0o644)
	r, _ := Open(path)
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	w.Close()
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	defer w.Close()
	// Don't allocate MaxRecordSize; fake a slice header over a small array
	// is unsafe — instead just check the boundary arithmetic with a
	// moderately large record and the documented limit.
	if _, err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestSyncToMakesRecordDurable(t *testing.T) {
	path := tempLog(t)
	var m Metrics
	w, err := Create(path, Options{Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	off, err := w.Append([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SyncTo(off); err != nil {
		t.Fatal(err)
	}
	// Without Close, the record must already be on disk.
	var n int
	if err := ReplayAll(path, func([]byte) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
	if w.Durable() < off {
		t.Fatalf("Durable = %d, want >= %d", w.Durable(), off)
	}
	s := m.Snapshot()
	if s.Appends != 1 || s.Durable != 1 || s.Syncs != 1 || s.SyncRequests != 1 {
		t.Fatalf("metrics after one sync write: %+v", s)
	}
	// A second SyncTo over the same offset is the coalesced fast path: no
	// new fsync.
	if err := w.SyncTo(off); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Syncs; got != 1 {
		t.Fatalf("covered SyncTo issued an fsync: syncs=%d", got)
	}
	w.Close()
}

// TestGroupCommitCoalesces drives N committers through the commit queue in
// two phases — everyone appends, then everyone requests durability
// concurrently — and asserts the leader's single barrier acknowledged all
// of them: strictly fewer fsyncs than committers.
func TestGroupCommitCoalesces(t *testing.T) {
	path := tempLog(t)
	var m Metrics
	w, err := Create(path, Options{Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const n = 16
	offs := make([]int64, n)
	for i := range offs {
		off, err := w.Append([]byte("rec"))
		if err != nil {
			t.Fatal(err)
		}
		offs[i] = off
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.SyncTo(offs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	s := m.Snapshot()
	if s.SyncRequests != n {
		t.Fatalf("sync requests = %d, want %d", s.SyncRequests, n)
	}
	if s.Syncs >= n {
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d committers", s.Syncs, n)
	}
	if s.Durable != n {
		t.Fatalf("durable horizon = %d, want %d", s.Durable, n)
	}
}

// TestGroupCommitLeaderFollower holds a leader inside the disk barrier via
// the test gate while followers append and queue behind it, proving the
// follower path: the NEXT leader's one fsync covers every queued follower.
func TestGroupCommitLeaderFollower(t *testing.T) {
	path := tempLog(t)
	var m Metrics
	w, err := Create(path, Options{Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const followers = 8
	gateEntered := make(chan struct{})
	gateRelease := make(chan struct{})
	var once sync.Once
	w.fsyncGate = func() {
		// Only the first leader is held; later barriers pass through.
		once.Do(func() {
			close(gateEntered)
			<-gateRelease
		})
	}

	leadOff, err := w.Append([]byte("leader"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.SyncTo(leadOff); err != nil {
			t.Error(err)
		}
	}()
	<-gateEntered

	// While the leader is stalled in its fsync, followers append and
	// request durability; they block on the commit queue.
	for i := 0; i < followers; i++ {
		off, err := w.Append([]byte("follower"))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(off int64) {
			defer wg.Done()
			if err := w.SyncTo(off); err != nil {
				t.Error(err)
			}
		}(off)
	}
	close(gateRelease)
	wg.Wait()

	s := m.Snapshot()
	// The stalled leader's fsync covers only itself; one successor leader
	// covers all the followers appended meanwhile: exactly 2 barriers for
	// 1+followers committers.
	if s.Syncs != 2 {
		t.Fatalf("fsyncs = %d for %d committers, want 2", s.Syncs, followers+1)
	}
	if s.SyncRequests != followers+1 || s.Durable != followers+1 {
		t.Fatalf("metrics: %+v", s)
	}
}

// TestAbandonLosesStagedTail simulates the crash shape: appended-but-
// unflushed records vanish, fsync-covered records survive.
func TestAbandonLosesStagedTail(t *testing.T) {
	path := tempLog(t)
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := w.Append([]byte("kept"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SyncTo(off); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := w.Abandon(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := ReplayAll(path, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("after abandon: %q, want only the synced record", got)
	}
}

func TestSizeAccounting(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	defer w.Close()
	w.Append(make([]byte, 100))
	if got := w.Size(); got != 100+headerSize {
		t.Fatalf("Size = %d", got)
	}
}

func TestPropertyRoundTripRandomRecords(t *testing.T) {
	err := quick.Check(func(recs [][]byte) bool {
		path := filepath.Join(t.TempDir(), "q.wal")
		w, err := Create(path, Options{})
		if err != nil {
			return false
		}
		for _, r := range recs {
			if _, err := w.Append(r); err != nil {
				return false
			}
		}
		w.Close()
		var got [][]byte
		if err := ReplayAll(path, func(rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path, Options{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				rec := make([]byte, 1+rand.Intn(64))
				rec[0] = byte(g)
				w.Append(rec)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	w.Close()
	counts := map[byte]int{}
	if err := ReplayAll(path, func(rec []byte) error {
		counts[rec[0]]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for g := byte(0); g < 4; g++ {
		if counts[g] != 500 {
			t.Fatalf("writer %d: %d records", g, counts[g])
		}
	}
}

func BenchmarkAppend256(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	w, _ := Create(path, Options{})
	defer w.Close()
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec) + headerSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(rec)
	}
}
