// Package sstable implements the sorted-table file format used by the disk
// component: immutable files of (key, seq, kind, value) entries sorted by
// (user key ascending, sequence number descending).
//
// File layout:
//
//	data block 0 … data block n-1
//	filter block (bloom filter over all user keys)
//	index block  (last key + offset + length of every data block)
//	footer       (fixed size: locations of filter and index, entry count, magic)
//
// Every block carries a CRC32-Castagnoli trailer. Data blocks also carry a
// per-entry offset array so point lookups binary-search inside a block
// instead of scanning it. There is no prefix compression and no block
// compression (snappy is not in the standard library); this is documented
// in DESIGN.md and does not change any of the paper's in-memory results.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies FloDB sstables (spells "FLODBSST" in hex-ish).
const Magic uint64 = 0xF10DB551F10DB551

// footerSize is the fixed footer length:
// filterOff(8) filterLen(4) indexOff(8) indexLen(4) count(8) minSeq(8) maxSeq(8) magic(8).
const footerSize = 8 + 4 + 8 + 4 + 8 + 8 + 8 + 8

// DefaultBlockSize is the target (uncompressed) data block payload size.
const DefaultBlockSize = 4 << 10

// DefaultBloomBitsPerKey matches LevelDB's customary 10 bits/key (~1% FP).
const DefaultBloomBitsPerKey = 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a failed structural or checksum validation.
var ErrCorrupt = errors.New("sstable: corrupt table")

type footer struct {
	filterOff uint64
	filterLen uint32
	indexOff  uint64
	indexLen  uint32
	count     uint64
	minSeq    uint64
	maxSeq    uint64
}

func (f *footer) encode() []byte {
	b := make([]byte, footerSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], f.filterOff)
	le.PutUint32(b[8:], f.filterLen)
	le.PutUint64(b[12:], f.indexOff)
	le.PutUint32(b[20:], f.indexLen)
	le.PutUint64(b[24:], f.count)
	le.PutUint64(b[32:], f.minSeq)
	le.PutUint64(b[40:], f.maxSeq)
	le.PutUint64(b[48:], Magic)
	return b
}

func decodeFooter(b []byte) (*footer, error) {
	if len(b) != footerSize {
		return nil, fmt.Errorf("%w: footer size %d", ErrCorrupt, len(b))
	}
	le := binary.LittleEndian
	if le.Uint64(b[48:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return &footer{
		filterOff: le.Uint64(b[0:]),
		filterLen: le.Uint32(b[8:]),
		indexOff:  le.Uint64(b[12:]),
		indexLen:  le.Uint32(b[20:]),
		count:     le.Uint64(b[24:]),
		minSeq:    le.Uint64(b[32:]),
		maxSeq:    le.Uint64(b[40:]),
	}, nil
}

// appendChecksum appends the CRC trailer to a block payload.
func appendChecksum(block []byte) []byte {
	crc := crc32.Checksum(block, castagnoli)
	return binary.LittleEndian.AppendUint32(block, crc)
}

// verifyChecksum splits payload|crc and validates.
func verifyChecksum(block []byte) ([]byte, error) {
	if len(block) < 4 {
		return nil, fmt.Errorf("%w: short block", ErrCorrupt)
	}
	payload, trailer := block[:len(block)-4], block[len(block)-4:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// indexEntry locates one data block and its largest user key.
type indexEntry struct {
	lastKey []byte
	off     uint64
	length  uint32
}

func encodeIndex(entries []indexEntry) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.AppendUvarint(b, uint64(len(e.lastKey)))
		b = append(b, e.lastKey...)
		b = binary.AppendUvarint(b, e.off)
		b = binary.AppendUvarint(b, uint64(e.length))
	}
	return appendChecksum(b)
}

func decodeIndex(raw []byte) ([]indexEntry, error) {
	payload, err := verifyChecksum(raw)
	if err != nil {
		return nil, err
	}
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: index count", ErrCorrupt)
	}
	payload = payload[sz:]
	entries := make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, sz := binary.Uvarint(payload)
		if sz <= 0 || uint64(len(payload)-sz) < klen {
			return nil, fmt.Errorf("%w: index key", ErrCorrupt)
		}
		payload = payload[sz:]
		key := payload[:klen]
		payload = payload[klen:]
		off, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: index offset", ErrCorrupt)
		}
		payload = payload[sz:]
		length, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: index length", ErrCorrupt)
		}
		payload = payload[sz:]
		entries = append(entries, indexEntry{lastKey: key, off: off, length: uint32(length)})
	}
	return entries, nil
}
