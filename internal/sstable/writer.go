package sstable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"flodb/internal/keys"
)

// WriterOptions tune table construction.
type WriterOptions struct {
	// BlockSize is the target payload size of a data block; 0 means
	// DefaultBlockSize.
	BlockSize int
	// BloomBitsPerKey sizes the table's bloom filter; 0 means the default,
	// negative disables the filter.
	BloomBitsPerKey int
}

// Meta summarizes a finished table; the version set stores it in the
// manifest.
type Meta struct {
	Count            uint64
	Smallest         []byte // smallest user key (inclusive)
	Largest          []byte // largest user key (inclusive)
	MinSeq, MaxSeq   uint64
	Size             int64
	TombstoneEntries uint64
}

// Writer builds an sstable. Entries must be appended in strictly increasing
// (user key ascending, seq descending) order; Add enforces this.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	opts WriterOptions

	block      []byte   // current data block payload
	offsets    []uint32 // entry offsets within the current block
	index      []indexEntry
	fileOff    uint64
	count      uint64
	tombstones uint64
	minSeq     uint64
	maxSeq     uint64
	smallest   []byte
	largest    []byte
	lastKey    []byte
	lastSeq    uint64
	hasLast    bool
	bloomKeys  [][]byte
	finished   bool
}

// NewWriter creates a table file at path (truncating any existing file).
func NewWriter(path string, opts WriterOptions) (*Writer, error) {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	return &Writer{
		f:      f,
		bw:     bufio.NewWriterSize(f, 256<<10),
		opts:   opts,
		minSeq: ^uint64(0),
	}, nil
}

// Add appends one entry. Keys must arrive in (user key asc, seq desc)
// order; exact duplicates of (key, seq) are rejected.
func (w *Writer) Add(key []byte, seq uint64, kind keys.Kind, value []byte) error {
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if w.hasLast {
		c := keys.Compare(w.lastKey, key)
		if c > 0 || (c == 0 && w.lastSeq <= seq) {
			return fmt.Errorf("sstable: out-of-order add: %x@%d after %x@%d", key, seq, w.lastKey, w.lastSeq)
		}
	}
	w.lastKey = append(w.lastKey[:0], key...)
	w.lastSeq = seq
	w.hasLast = true

	w.offsets = append(w.offsets, uint32(len(w.block)))
	w.block = binary.AppendUvarint(w.block, uint64(len(key)))
	w.block = append(w.block, key...)
	w.block = binary.AppendUvarint(w.block, seq)
	w.block = append(w.block, byte(kind))
	w.block = binary.AppendUvarint(w.block, uint64(len(value)))
	w.block = append(w.block, value...)

	if w.count == 0 {
		w.smallest = append([]byte(nil), key...)
	}
	w.largest = append(w.largest[:0], key...)
	w.count++
	if kind == keys.KindDelete {
		w.tombstones++
	}
	if seq < w.minSeq {
		w.minSeq = seq
	}
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	if w.opts.BloomBitsPerKey >= 0 {
		w.bloomKeys = append(w.bloomKeys, append([]byte(nil), key...))
	}
	if len(w.block) >= w.opts.BlockSize {
		return w.flushBlock()
	}
	return nil
}

// flushBlock finalizes the current data block: payload | offsets | count | crc.
func (w *Writer) flushBlock() error {
	if len(w.offsets) == 0 {
		return nil
	}
	payload := w.block
	for _, off := range w.offsets {
		payload = binary.LittleEndian.AppendUint32(payload, off)
	}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(w.offsets)))
	full := appendChecksum(payload)
	if _, err := w.bw.Write(full); err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	w.index = append(w.index, indexEntry{
		lastKey: append([]byte(nil), w.lastKey...),
		off:     w.fileOff,
		length:  uint32(len(full)),
	})
	w.fileOff += uint64(len(full))
	w.block = w.block[:0]
	w.offsets = w.offsets[:0]
	return nil
}

// Finish flushes remaining data, writes filter, index and footer, syncs and
// closes the file, and returns the table's metadata.
func (w *Writer) Finish() (Meta, error) {
	if w.finished {
		return Meta{}, fmt.Errorf("sstable: double Finish")
	}
	w.finished = true
	if err := w.flushBlock(); err != nil {
		return Meta{}, err
	}

	var ftr footer
	ftr.count = w.count
	if w.count > 0 {
		ftr.minSeq = w.minSeq
		ftr.maxSeq = w.maxSeq
	}

	if w.opts.BloomBitsPerKey >= 0 {
		bloom := newBloom(len(w.bloomKeys), w.opts.BloomBitsPerKey)
		for _, k := range w.bloomKeys {
			bloom.add(k)
		}
		enc := bloom.encode()
		ftr.filterOff = w.fileOff
		ftr.filterLen = uint32(len(enc))
		if _, err := w.bw.Write(enc); err != nil {
			return Meta{}, fmt.Errorf("sstable: write filter: %w", err)
		}
		w.fileOff += uint64(len(enc))
	}

	idx := encodeIndex(w.index)
	ftr.indexOff = w.fileOff
	ftr.indexLen = uint32(len(idx))
	if _, err := w.bw.Write(idx); err != nil {
		return Meta{}, fmt.Errorf("sstable: write index: %w", err)
	}
	w.fileOff += uint64(len(idx))

	if _, err := w.bw.Write(ftr.encode()); err != nil {
		return Meta{}, fmt.Errorf("sstable: write footer: %w", err)
	}
	w.fileOff += footerSize

	if err := w.bw.Flush(); err != nil {
		return Meta{}, fmt.Errorf("sstable: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return Meta{}, fmt.Errorf("sstable: sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return Meta{}, fmt.Errorf("sstable: close: %w", err)
	}
	m := Meta{
		Count:            w.count,
		Smallest:         w.smallest,
		Largest:          append([]byte(nil), w.largest...),
		Size:             int64(w.fileOff),
		TombstoneEntries: w.tombstones,
	}
	if w.count > 0 {
		m.MinSeq, m.MaxSeq = w.minSeq, w.maxSeq
	}
	return m, nil
}

// Abort closes and removes a partially written table.
func (w *Writer) Abort() error {
	w.finished = true
	name := w.f.Name()
	w.f.Close()
	return os.Remove(name)
}

// Count returns entries added so far.
func (w *Writer) Count() uint64 { return w.count }

// EstimatedSize returns bytes written plus the current block.
func (w *Writer) EstimatedSize() int64 { return int64(w.fileOff) + int64(len(w.block)) }
