package sstable

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"flodb/internal/cache"
	"flodb/internal/keys"
)

// ReaderMetrics aggregates read-path counters across every Reader that
// shares it (the store passes one instance to all its tables).
// BloomChecks counts filter consultations; BloomNegatives the checks a
// filter answered "definitely absent" — the lookups that skipped a
// block read entirely. Their ratio is the filter's observed hit rate.
type ReaderMetrics struct {
	BloomChecks    atomic.Uint64
	BloomNegatives atomic.Uint64
}

// ReaderOptions configure Open. The zero value reads without a cache —
// every block access is a pread plus a parse.
type ReaderOptions struct {
	// BlockCache, when non-nil, holds parsed data blocks keyed by
	// (CacheID, block offset) so repeat reads skip both the I/O and the
	// offset-array parse. The cache is shared between readers; CacheID
	// must be unique per table file for its lifetime (the store uses
	// the table's file number, which is never reused).
	BlockCache *cache.Cache
	CacheID    uint64
	// Metrics, when non-nil, receives bloom-filter counters.
	Metrics *ReaderMetrics
}

// Reader serves point lookups and iteration over one table file. It is
// safe for concurrent use: blocks are fetched with pread and no shared
// mutable state exists after Open.
type Reader struct {
	f      *os.File
	size   int64
	index  []indexEntry
	bloom  *bloomFilter // nil if the table has no filter
	count  uint64
	minSeq uint64
	maxSeq uint64

	bcache  *cache.Cache
	cacheID uint64
	metrics *ReaderMetrics
}

// Open validates the footer, loads the index and filter, and returns an
// uncached reader (equivalent to OpenOptions with zero options).
func Open(path string) (*Reader, error) {
	return OpenOptions(path, ReaderOptions{})
}

// OpenOptions validates the footer, loads the index and filter, and
// returns a reader wired to opts.
func OpenOptions(path string, opts ReaderOptions) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable: stat: %w", err)
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, fmt.Errorf("%w: file shorter than footer", ErrCorrupt)
	}
	ftrRaw := make([]byte, footerSize)
	if _, err := f.ReadAt(ftrRaw, st.Size()-footerSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	ftr, err := decodeFooter(ftrRaw)
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{
		f: f, size: st.Size(), count: ftr.count, minSeq: ftr.minSeq, maxSeq: ftr.maxSeq,
		bcache: opts.BlockCache, cacheID: opts.CacheID, metrics: opts.Metrics,
	}

	idxRaw, err := r.readAt(ftr.indexOff, ftr.indexLen)
	if err != nil {
		f.Close()
		return nil, err
	}
	if r.index, err = decodeIndex(idxRaw); err != nil {
		f.Close()
		return nil, err
	}
	if ftr.filterLen > 0 {
		fltRaw, err := r.readAt(ftr.filterOff, ftr.filterLen)
		if err != nil {
			f.Close()
			return nil, err
		}
		if r.bloom, err = decodeBloom(fltRaw); err != nil {
			f.Close()
			return nil, err
		}
	}
	return r, nil
}

func (r *Reader) readAt(off uint64, length uint32) ([]byte, error) {
	if off+uint64(length) > uint64(r.size) {
		return nil, fmt.Errorf("%w: range [%d,%d) outside file of %d bytes", ErrCorrupt, off, off+uint64(length), r.size)
	}
	buf := make([]byte, length)
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("sstable: pread: %w", err)
	}
	return buf, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// Count returns the number of entries in the table.
func (r *Reader) Count() uint64 { return r.count }

// SeqBounds returns the min and max sequence numbers stored.
func (r *Reader) SeqBounds() (min, max uint64) { return r.minSeq, r.maxSeq }

// MayContain consults the bloom filter; true when absent filters.
func (r *Reader) MayContain(key []byte) bool {
	if r.bloom == nil {
		return true
	}
	if r.metrics != nil {
		r.metrics.BloomChecks.Add(1)
	}
	if r.bloom.mayContain(key) {
		return true
	}
	if r.metrics != nil {
		r.metrics.BloomNegatives.Add(1)
	}
	return false
}

// decodedBlock is a parsed data block. It is immutable after decode,
// which is what makes sharing one copy between every concurrent reader
// through the block cache safe.
type decodedBlock struct {
	payload []byte
	offsets []uint32
}

// blockOverhead approximates the per-entry bookkeeping the cache charge
// adds on top of the payload and offset-array bytes.
const blockOverhead = 96

// loadBlock returns the parsed block at e, consulting the shared block
// cache first. The returned block is unpinned immediately: blocks are
// immutable and garbage-collected, so a reader holding one keeps it
// alive even if the cache evicts it meanwhile — pinning is only needed
// for values with non-memory resources (the table cache's readers hold
// file descriptors and DO pin; see internal/storage).
func (r *Reader) loadBlock(e indexEntry) (*decodedBlock, error) {
	if r.bcache == nil {
		return r.readBlock(e)
	}
	k := cache.Key{ID: r.cacheID, Offset: e.off}
	if h := r.bcache.Get(k); h != nil {
		b := h.Value().(*decodedBlock)
		h.Release()
		return b, nil
	}
	b, err := r.readBlock(e)
	if err != nil {
		return nil, err
	}
	charge := int64(len(b.payload)) + 4*int64(len(b.offsets)) + blockOverhead
	r.bcache.Insert(k, b, charge, nil).Release()
	return b, nil
}

// readBlock fetches and parses the block at e from the file.
func (r *Reader) readBlock(e indexEntry) (*decodedBlock, error) {
	raw, err := r.readAt(e.off, e.length)
	if err != nil {
		return nil, err
	}
	payload, err := verifyChecksum(raw)
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: block too short", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(payload[len(payload)-4:])
	offBytes := uint64(n) * 4
	if uint64(len(payload)) < 4+offBytes {
		return nil, fmt.Errorf("%w: offset array", ErrCorrupt)
	}
	offStart := uint64(len(payload)) - 4 - offBytes
	offsets := make([]uint32, n)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(payload[offStart+uint64(i)*4:])
	}
	return &decodedBlock{payload: payload[:offStart], offsets: offsets}, nil
}

// entryAt decodes the i-th entry of a block.
func (b *decodedBlock) entryAt(i int) (key []byte, seq uint64, kind keys.Kind, value []byte, err error) {
	if i < 0 || i >= len(b.offsets) {
		return nil, 0, 0, nil, fmt.Errorf("%w: entry index %d", ErrCorrupt, i)
	}
	p := b.payload[b.offsets[i]:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return nil, 0, 0, nil, fmt.Errorf("%w: entry key", ErrCorrupt)
	}
	p = p[n:]
	key = p[:klen]
	p = p[klen:]
	seq, n = binary.Uvarint(p)
	if n <= 0 || len(p) <= n {
		return nil, 0, 0, nil, fmt.Errorf("%w: entry seq", ErrCorrupt)
	}
	p = p[n:]
	kind = keys.Kind(p[0])
	p = p[1:]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < vlen {
		return nil, 0, 0, nil, fmt.Errorf("%w: entry value", ErrCorrupt)
	}
	p = p[n:]
	value = p[:vlen]
	return key, seq, kind, value, nil
}

// seekInBlock returns the index of the first entry with user key >= target
// (entries within a user key are newest-first, so this lands on the newest
// version of the first matching key).
func (b *decodedBlock) seekInBlock(target []byte) (int, error) {
	var decodeErr error
	i := sort.Search(len(b.offsets), func(i int) bool {
		k, _, _, _, err := b.entryAt(i)
		if err != nil {
			decodeErr = err
			return true
		}
		return keys.Compare(k, target) >= 0
	})
	return i, decodeErr
}

// Get returns the newest version of key stored in this table.
func (r *Reader) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool, err error) {
	if !r.MayContain(key) {
		return nil, 0, 0, false, nil
	}
	// Find the first block whose last key >= key.
	bi := sort.Search(len(r.index), func(i int) bool {
		return keys.Compare(r.index[i].lastKey, key) >= 0
	})
	if bi == len(r.index) {
		return nil, 0, 0, false, nil
	}
	blk, err := r.loadBlock(r.index[bi])
	if err != nil {
		return nil, 0, 0, false, err
	}
	ei, err := blk.seekInBlock(key)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if ei == len(blk.offsets) {
		return nil, 0, 0, false, nil
	}
	k, seq, kind, v, err := blk.entryAt(ei)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if !keys.Equal(k, key) {
		return nil, 0, 0, false, nil
	}
	return v, seq, kind, true, nil
}

// --- Iterator ---------------------------------------------------------------

// Iterator walks a table in (user key asc, seq desc) order.
type Iterator struct {
	r        *Reader
	blockIdx int
	blk      *decodedBlock
	entryIdx int
	err      error

	key   []byte
	seq   uint64
	kind  keys.Kind
	value []byte
	valid bool
}

// NewIterator returns an iterator positioned before the first entry.
func (r *Reader) NewIterator() *Iterator { return &Iterator{r: r, blockIdx: -1} }

// SeekToFirst positions at the first entry.
func (it *Iterator) SeekToFirst() {
	it.err = nil
	if len(it.r.index) == 0 {
		it.valid = false
		return
	}
	it.loadBlockAt(0, 0)
}

// Seek positions at the first entry with user key >= target.
func (it *Iterator) Seek(target []byte) {
	it.err = nil
	bi := sort.Search(len(it.r.index), func(i int) bool {
		return keys.Compare(it.r.index[i].lastKey, target) >= 0
	})
	if bi == len(it.r.index) {
		it.valid = false
		return
	}
	blk, err := it.r.loadBlock(it.r.index[bi])
	if err != nil {
		it.fail(err)
		return
	}
	ei, err := blk.seekInBlock(target)
	if err != nil {
		it.fail(err)
		return
	}
	it.blk, it.blockIdx = blk, bi
	if ei == len(blk.offsets) {
		// Target is greater than every key in this block but <= its last
		// key cannot happen; move to the next block's first entry.
		it.loadBlockAt(bi+1, 0)
		return
	}
	it.entryIdx = ei
	it.decodeCurrent()
}

// Next advances one entry.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	it.entryIdx++
	if it.entryIdx >= len(it.blk.offsets) {
		it.loadBlockAt(it.blockIdx+1, 0)
		return
	}
	it.decodeCurrent()
}

func (it *Iterator) loadBlockAt(bi, ei int) {
	if bi >= len(it.r.index) {
		it.valid = false
		return
	}
	blk, err := it.r.loadBlock(it.r.index[bi])
	if err != nil {
		it.fail(err)
		return
	}
	it.blk, it.blockIdx, it.entryIdx = blk, bi, ei
	it.decodeCurrent()
}

func (it *Iterator) decodeCurrent() {
	k, seq, kind, v, err := it.blk.entryAt(it.entryIdx)
	if err != nil {
		it.fail(err)
		return
	}
	it.key, it.seq, it.kind, it.value = k, seq, kind, v
	it.valid = true
}

func (it *Iterator) fail(err error) {
	it.err = err
	it.valid = false
}

// Valid reports whether the iterator holds an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Err returns the first error encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Key returns the current user key (valid until the iterator moves blocks).
func (it *Iterator) Key() []byte { return it.key }

// Seq returns the current entry's sequence number.
func (it *Iterator) Seq() uint64 { return it.seq }

// Kind returns the current entry's kind.
func (it *Iterator) Kind() keys.Kind { return it.kind }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.value }
