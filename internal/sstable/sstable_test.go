package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"flodb/internal/keys"
)

type testEntry struct {
	key   []byte
	seq   uint64
	kind  keys.Kind
	value []byte
}

func buildTable(t *testing.T, path string, opts WriterOptions, entries []testEntry) Meta {
	t.Helper()
	w, err := NewWriter(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Add(e.key, e.seq, e.kind, e.value); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func seqEntries(n int) []testEntry {
	out := make([]testEntry, n)
	for i := range out {
		out[i] = testEntry{
			key:   keys.EncodeUint64(uint64(i)),
			seq:   uint64(1000 + i),
			kind:  keys.KindSet,
			value: []byte(fmt.Sprintf("value-%06d", i)),
		}
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	entries := seqEntries(1000)
	meta := buildTable(t, path, WriterOptions{BlockSize: 512}, entries)

	if meta.Count != 1000 {
		t.Fatalf("Count = %d", meta.Count)
	}
	if !bytes.Equal(meta.Smallest, entries[0].key) || !bytes.Equal(meta.Largest, entries[999].key) {
		t.Fatalf("bounds = %x..%x", meta.Smallest, meta.Largest)
	}
	if meta.MinSeq != 1000 || meta.MaxSeq != 1999 {
		t.Fatalf("seq bounds = %d..%d", meta.MinSeq, meta.MaxSeq)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 1000 {
		t.Fatalf("reader Count = %d", r.Count())
	}
	for _, e := range entries {
		v, seq, kind, ok, err := r.Get(e.key)
		if err != nil || !ok {
			t.Fatalf("Get(%x): ok=%v err=%v", e.key, ok, err)
		}
		if !bytes.Equal(v, e.value) || seq != e.seq || kind != e.kind {
			t.Fatalf("Get(%x) = %q@%d", e.key, v, seq)
		}
	}
}

func TestGetMisses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{}, []testEntry{
		{key: keys.EncodeUint64(10), seq: 1, kind: keys.KindSet, value: []byte("v")},
		{key: keys.EncodeUint64(20), seq: 2, kind: keys.KindSet, value: []byte("v")},
	})
	r, _ := Open(path)
	defer r.Close()
	for _, k := range []uint64{0, 15, 9999} {
		if _, _, _, ok, err := r.Get(keys.EncodeUint64(k)); ok || err != nil {
			t.Fatalf("Get(%d): ok=%v err=%v", k, ok, err)
		}
	}
}

func TestMultiVersionNewestFirst(t *testing.T) {
	// Multiple versions of one user key: Get must return the newest.
	path := filepath.Join(t.TempDir(), "t.sst")
	k := []byte("key")
	buildTable(t, path, WriterOptions{}, []testEntry{
		{key: k, seq: 30, kind: keys.KindSet, value: []byte("newest")},
		{key: k, seq: 20, kind: keys.KindDelete, value: nil},
		{key: k, seq: 10, kind: keys.KindSet, value: []byte("oldest")},
	})
	r, _ := Open(path)
	defer r.Close()
	v, seq, kind, ok, err := r.Get(k)
	if err != nil || !ok || seq != 30 || kind != keys.KindSet || string(v) != "newest" {
		t.Fatalf("Get = %q@%d kind=%v ok=%v err=%v", v, seq, kind, ok, err)
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "t.sst"), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Add([]byte("b"), 1, keys.KindSet, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("a"), 1, keys.KindSet, nil); err == nil {
		t.Fatal("descending key accepted")
	}
	if err := w.Add([]byte("b"), 1, keys.KindSet, nil); err == nil {
		t.Fatal("duplicate (key,seq) accepted")
	}
	if err := w.Add([]byte("b"), 2, keys.KindSet, nil); err == nil {
		t.Fatal("ascending seq within user key accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	meta := buildTable(t, path, WriterOptions{}, nil)
	if meta.Count != 0 {
		t.Fatalf("Count = %d", meta.Count)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, _, ok, _ := r.Get([]byte("any")); ok {
		t.Fatal("empty table returned a value")
	}
	it := r.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator valid on empty table")
	}
}

func TestIteratorFullWalk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	entries := seqEntries(2500)
	buildTable(t, path, WriterOptions{BlockSize: 256}, entries)
	r, _ := Open(path)
	defer r.Close()
	it := r.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), entries[i].key) || it.Seq() != entries[i].seq || !bytes.Equal(it.Value(), entries[i].value) {
			t.Fatalf("entry %d mismatch", i)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("walked %d entries", i)
	}
}

func TestIteratorSeek(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	var entries []testEntry
	for i := 0; i < 100; i++ { // even keys
		entries = append(entries, testEntry{
			key: keys.EncodeUint64(uint64(i * 2)), seq: uint64(i), kind: keys.KindSet, value: []byte("v"),
		})
	}
	buildTable(t, path, WriterOptions{BlockSize: 128}, entries)
	r, _ := Open(path)
	defer r.Close()
	it := r.NewIterator()

	it.Seek(keys.EncodeUint64(50))
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 50 {
		t.Fatal("Seek(50) exact hit failed")
	}
	it.Seek(keys.EncodeUint64(51))
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 52 {
		t.Fatal("Seek(51) between keys failed")
	}
	it.Seek(keys.EncodeUint64(0))
	if !it.Valid() || keys.DecodeUint64(it.Key()) != 0 {
		t.Fatal("Seek(0) failed")
	}
	it.Seek(keys.EncodeUint64(1_000_000))
	if it.Valid() {
		t.Fatal("Seek past end should invalidate")
	}
}

func TestBloomFilterEffectiveness(t *testing.T) {
	f := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		f.add(keys.EncodeUint64(uint64(i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.mayContain(keys.EncodeUint64(uint64(i))) {
			t.Fatalf("false negative for %d", i)
		}
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.mayContain(keys.EncodeUint64(uint64(1_000_000 + i))) {
			fp++
		}
	}
	// 10 bits/key should be ~1%; allow up to 5%.
	if fp > probes/20 {
		t.Fatalf("false positive rate too high: %d/%d", fp, probes)
	}
}

func TestBloomRoundTrip(t *testing.T) {
	f := newBloom(100, 10)
	for i := 0; i < 100; i++ {
		f.add(keys.EncodeUint64(uint64(i)))
	}
	g, err := decodeBloom(f.encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !g.mayContain(keys.EncodeUint64(uint64(i))) {
			t.Fatal("decoded bloom lost a key")
		}
	}
}

func TestNoBloomOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BloomBitsPerKey: -1}, seqEntries(10))
	r, _ := Open(path)
	defer r.Close()
	if !r.MayContain([]byte("anything")) {
		t.Fatal("absent filter must not filter")
	}
	if _, _, _, ok, _ := r.Get(keys.EncodeUint64(5)); !ok {
		t.Fatal("Get without bloom failed")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 128}, seqEntries(100))

	// Flip a byte in the first data block.
	data, _ := os.ReadFile(path)
	corrupt := append([]byte(nil), data...)
	corrupt[10] ^= 0xff
	os.WriteFile(path, corrupt, 0o644)
	r, err := Open(path) // footer+index still fine
	if err != nil {
		t.Fatalf("open should succeed, footer is intact: %v", err)
	}
	_, _, _, _, err = r.Get(keys.EncodeUint64(0))
	if err == nil {
		t.Fatal("corrupt block not detected on Get")
	}
	r.Close()

	// Truncate the footer entirely.
	os.WriteFile(path, data[:len(data)-footerSize+4], 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("bad footer accepted")
	}

	// Corrupt the magic.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	os.WriteFile(path, bad, 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestAddAfterFinishRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, _ := NewWriter(path, WriterOptions{})
	w.Add([]byte("a"), 1, keys.KindSet, nil)
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("b"), 2, keys.KindSet, nil); err == nil {
		t.Fatal("Add after Finish accepted")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, _ := NewWriter(path, WriterOptions{})
	w.Add([]byte("a"), 1, keys.KindSet, []byte("v"))
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("aborted file still exists")
	}
}

func TestTombstoneCounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	meta := buildTable(t, path, WriterOptions{}, []testEntry{
		{key: []byte("a"), seq: 1, kind: keys.KindSet, value: []byte("v")},
		{key: []byte("b"), seq: 2, kind: keys.KindDelete},
		{key: []byte("c"), seq: 3, kind: keys.KindDelete},
	})
	if meta.TombstoneEntries != 2 {
		t.Fatalf("TombstoneEntries = %d", meta.TombstoneEntries)
	}
}

func TestPropertyRandomTables(t *testing.T) {
	dir := t.TempDir()
	n := 0
	err := quick.Check(func(seed int64, sizeRaw uint16) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw%300) + 1
		userKeys := make(map[uint64]int) // key -> index of newest entry
		var entries []testEntry
		for i := 0; i < size; i++ {
			k := rng.Uint64() % 128
			if _, dup := userKeys[k]; dup {
				continue
			}
			userKeys[k] = 0
			kind := keys.KindSet
			if rng.Intn(5) == 0 {
				kind = keys.KindDelete
			}
			val := make([]byte, rng.Intn(100))
			rng.Read(val)
			entries = append(entries, testEntry{key: keys.EncodeUint64(k), seq: uint64(i + 1), kind: kind, value: val})
		}
		sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
		path := filepath.Join(dir, fmt.Sprintf("q%d.sst", n))
		w, err := NewWriter(path, WriterOptions{BlockSize: 64 + rng.Intn(512)})
		if err != nil {
			return false
		}
		for _, e := range entries {
			if err := w.Add(e.key, e.seq, e.kind, e.value); err != nil {
				return false
			}
		}
		if _, err := w.Finish(); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, e := range entries {
			v, seq, kind, ok, err := r.Get(e.key)
			if err != nil || !ok || seq != e.seq || kind != e.kind || !bytes.Equal(v, e.value) {
				return false
			}
		}
		// Full iteration must return exactly the inserted sequence.
		it := r.NewIterator()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(entries) || !bytes.Equal(it.Key(), entries[i].key) {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(entries)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	entries := seqEntries(5000)
	buildTable(t, path, WriterOptions{}, entries)
	r, _ := Open(path)
	defer r.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				j := rng.Intn(len(entries))
				v, _, _, ok, err := r.Get(entries[j].key)
				if err != nil || !ok || !bytes.Equal(v, entries[j].value) {
					done <- fmt.Errorf("g%d: bad read at %d: ok=%v err=%v", g, j, ok, err)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkTableGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.sst")
	w, _ := NewWriter(path, WriterOptions{})
	const n = 100_000
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < n; i++ {
		w.Add(keys.EncodeUint64(uint64(i)), uint64(i), keys.KindSet, val)
	}
	w.Finish()
	r, _ := Open(path)
	defer r.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			r.Get(keys.EncodeUint64(rng.Uint64() % n))
		}
	})
}

func BenchmarkTableWrite(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 256)
	b.SetBytes(int64(8 + len(val)))
	path := filepath.Join(b.TempDir(), "bench.sst")
	w, _ := NewWriter(path, WriterOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(keys.EncodeUint64(uint64(i)), uint64(i), keys.KindSet, val)
	}
	b.StopTimer()
	w.Finish()
}
