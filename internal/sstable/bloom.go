package sstable

import (
	"encoding/binary"
	"fmt"
)

// bloomFilter is a classic Bloom filter with double hashing, equivalent to
// LevelDB's built-in filter policy. LSM-trie (§6) motivates strong filters;
// we keep LevelDB's 10 bits/key default.
type bloomFilter struct {
	bits   []byte
	nBits  uint64
	probes uint32
}

// newBloom sizes a filter for n keys at bitsPerKey.
func newBloom(n int, bitsPerKey int) *bloomFilter {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBloomBitsPerKey
	}
	nBits := uint64(n * bitsPerKey)
	if nBits < 64 {
		nBits = 64
	}
	// k = ln2 * bits/key rounded, clamped to [1,30] as in LevelDB.
	probes := uint32(float64(bitsPerKey) * 0.69)
	if probes < 1 {
		probes = 1
	}
	if probes > 30 {
		probes = 30
	}
	return &bloomFilter{
		bits:   make([]byte, (nBits+7)/8),
		nBits:  (nBits + 7) / 8 * 8,
		probes: probes,
	}
}

// bloomHash is the same mixed 64-bit hash the membuffer uses; defined here
// to keep the packages dependency-free of each other.
func bloomHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (f *bloomFilter) add(key []byte) {
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := uint32(0); i < f.probes; i++ {
		pos := h % f.nBits
		f.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

func (f *bloomFilter) mayContain(key []byte) bool {
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := uint32(0); i < f.probes; i++ {
		pos := h % f.nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// encode serializes probes(uvarint) | bits, plus the CRC trailer.
func (f *bloomFilter) encode() []byte {
	b := binary.AppendUvarint(nil, uint64(f.probes))
	b = append(b, f.bits...)
	return appendChecksum(b)
}

func decodeBloom(raw []byte) (*bloomFilter, error) {
	payload, err := verifyChecksum(raw)
	if err != nil {
		return nil, err
	}
	probes, sz := binary.Uvarint(payload)
	if sz <= 0 || probes == 0 || probes > 30 {
		return nil, fmt.Errorf("%w: bloom probes", ErrCorrupt)
	}
	bits := payload[sz:]
	if len(bits) == 0 {
		return nil, fmt.Errorf("%w: empty bloom", ErrCorrupt)
	}
	return &bloomFilter{bits: bits, nBits: uint64(len(bits)) * 8, probes: uint32(probes)}, nil
}
