package client_test

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"flodb/internal/client"
	"flodb/internal/core"
	"flodb/internal/kv"
	"flodb/internal/server"
)

// ExampleClient drives the full kv.Store contract over the wire: an
// in-process server (what cmd/flodbd wraps) on a loopback socket, and a
// pooled client doing point ops, an atomic batch, a snapshot read and a
// durability barrier — the same calls a local store takes, each paying
// one TCP round trip.
func ExampleClient() {
	dir := filepath.Join(os.TempDir(), "flodb-example-client")
	os.RemoveAll(dir)
	store, err := core.Open(core.Config{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{Store: store})
	go srv.Serve(l)

	cl, err := client.Dial(l.Addr().String(), client.WithConns(2))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	cl.Put(ctx, []byte("a"), []byte("1"))
	b := kv.NewBatch()
	b.Put([]byte("b"), []byte("2"))
	b.Put([]byte("c"), []byte("3"))
	cl.Apply(ctx, b) // one frame, atomic on the server

	snap, _ := cl.Snapshot(ctx) // server-side lease, pinned to one conn
	cl.Put(ctx, []byte("a"), []byte("overwritten"))
	if v, found, _ := snap.Get(ctx, []byte("a")); found {
		fmt.Printf("snapshot a=%s\n", v)
	}
	snap.Close()

	if v, found, _ := cl.Get(ctx, []byte("a")); found {
		fmt.Printf("live a=%s\n", v)
	}
	pairs, _ := cl.Scan(ctx, []byte("b"), nil)
	for _, p := range pairs {
		fmt.Printf("%s=%s\n", p.Key, p.Value)
	}
	cl.Sync(ctx) // everything acked is now crash-durable

	cl.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	store.Close()
	// Output:
	// snapshot a=1
	// live a=overwritten
	// b=2
	// c=3
}
