// Package client is a remote kv.Store: a connection-pooled client for a
// flodbd server that implements the FULL store contract — Get, Put,
// Delete, Apply, Scan, NewIterator, Snapshot, Sync, Checkpoint, Stats —
// with per-operation WriteOptions and honest context handling, so every
// conformance suite, harness mix and figure that drives a kv.Store runs
// against a network round trip unmodified.
//
// Context mapping: a context deadline becomes the request's wire timeout
// (remaining time at send, enforced server-side too), and cancellation is
// honest — the blocked call returns ctx.Err() immediately while a
// best-effort OpCancel tells the server to abandon the work; the late
// response, if any, is discarded by the reader.
//
// Pooling and affinity: stateless requests round-robin across the pool's
// connections; stateful handles (snapshots, iterators) are pinned to the
// connection that created them, because the server's lease table is
// per-connection. Pipelining falls out of the design: every in-flight
// request owns a response channel keyed by request id, so many goroutines
// share one connection without head-of-line blocking in the client.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/kv"
	"flodb/internal/wire"
)

// Option tunes Dial.
type Option func(*options)

type options struct {
	conns       int
	dialTimeout time.Duration
	chunkPairs  int
}

// WithConns sets the connection-pool size (default 4).
func WithConns(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.conns = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithChunkPairs sets how many pairs an iterator requests per refill
// round trip (default 512) — the client half of scan flow control.
func WithChunkPairs(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.chunkPairs = n
		}
	}
}

// Client is a remote kv.Store over a pool of flodbd connections.
type Client struct {
	opts   options
	addr   string
	conns  []*conn
	next   atomic.Uint64
	closed atomic.Bool
}

// Dial connects the pool to a flodbd server.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{conns: 4, dialTimeout: 5 * time.Second, chunkPairs: 512}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	cl := &Client{opts: o, addr: addr}
	for i := 0; i < o.conns; i++ {
		c, err := cl.dialConn()
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, c)
	}
	return cl, nil
}

func (cl *Client) dialConn() (*conn, error) {
	nc, err := net.DialTimeout("tcp", cl.addr, cl.opts.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", cl.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // request/response frames must not wait on Nagle
	}
	c := &conn{nc: nc, pending: map[uint64]chan wire.Response{}, done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// pick returns a pool connection for a stateless request.
func (cl *Client) pick() *conn {
	return cl.conns[cl.next.Add(1)%uint64(len(cl.conns))]
}

// Close closes every pooled connection. Subsequent operations return
// kv.ErrClosed. Server-side leases the client still holds die with their
// connections.
func (cl *Client) Close() error {
	if cl.closed.Swap(true) {
		return nil
	}
	for _, c := range cl.conns {
		c.close(fmt.Errorf("client: %w", kv.ErrClosed))
	}
	return nil
}

// --- Connection --------------------------------------------------------------

type conn struct {
	nc  net.Conn
	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	nextID  uint64
	err     error // set once, before done closes

	done     chan struct{}
	doneOnce sync.Once
}

func (c *conn) close(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.nc.Close()
}

// brokenErr reports why the connection died.
func (c *conn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return fmt.Errorf("client: connection closed")
}

// readLoop dispatches response frames to their pending request channels.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		body, err := wire.ReadFrame(br, nil)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("client: server closed the connection")
			}
			c.close(err)
			return
		}
		resp, err := wire.ParseResponse(body)
		if err != nil {
			c.close(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered: never blocks the reader
		}
		// else: a canceled request's late response — discarded.
	}
}

// register assigns a request id and a response channel.
func (c *conn) register(req *wire.Request) (chan wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan wire.Response, 1)
	c.pending[req.ID] = ch
	return ch, nil
}

func (c *conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *conn) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.nc.Write(frame)
	return err
}

// call performs one round trip on this connection: register, frame,
// write, wait. Context deadlines ride the request as a relative wire
// timeout; cancellation abandons the wait and best-effort-cancels the
// server-side work.
func (c *conn) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return wire.Response{}, context.DeadlineExceeded
		}
		req.TimeoutNanos = uint64(remain)
	}
	ch, err := c.register(req)
	if err != nil {
		return wire.Response{}, err
	}
	if err := c.write(wire.AppendRequest(nil, req)); err != nil {
		c.unregister(req.ID)
		c.close(fmt.Errorf("client: write: %w", err))
		return wire.Response{}, c.brokenErr()
	}
	select {
	case resp := <-ch:
		if resp.Status != wire.StatusOK {
			return resp, wire.ErrOf(resp.Status, string(resp.Payload))
		}
		return resp, nil
	case <-ctx.Done():
		c.unregister(req.ID)
		// Best-effort server-side cancel; the late response is discarded.
		cancelFrame := wire.AppendRequest(nil, &wire.Request{
			Op:      wire.OpCancel,
			Payload: binary.AppendUvarint(nil, req.ID),
		})
		c.write(cancelFrame)
		return wire.Response{}, ctx.Err()
	case <-c.done:
		return wire.Response{}, c.brokenErr()
	}
}

// --- kv.Store ----------------------------------------------------------------

func (cl *Client) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if cl.closed.Load() {
		return wire.Response{}, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	return cl.pick().call(ctx, req)
}

func durabilityOf(opts []kv.WriteOption) kv.Durability {
	// The wire carries the resolved per-op CLASS, not the option values:
	// DurabilityDefault means "use the server store's default".
	var o kv.WriteOptions
	for _, opt := range opts {
		if opt != nil {
			opt.ApplyWrite(&o)
		}
	}
	return o.Durability
}

// Get returns the value of key from the server's live view.
func (cl *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return getVia(ctx, cl, 0, key)
}

func (cl *Client) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	payload := wire.AppendBytes(make([]byte, 0, len(key)+len(value)+4), key)
	payload = append(payload, value...)
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpPut, Durability: durabilityOf(opts), Payload: payload})
	return err
}

func (cl *Client) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpDelete, Durability: durabilityOf(opts), Payload: key})
	return err
}

// Apply commits b atomically on the server: the batch crosses the wire in
// its WAL record encoding, one frame however many mutations it carries.
func (cl *Client) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpApply, Durability: durabilityOf(opts), Payload: kv.EncodeBatchRecord(b)})
	return err
}

func (cl *Client) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	return scanVia(ctx, cl, 0, low, high)
}

// NewIterator opens a server-side cursor and streams it in chunks; see
// remoteIter.
func (cl *Client) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if cl.closed.Load() {
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	return openIter(ctx, cl.pick(), 0, low, high, cl.opts.chunkPairs)
}

// Snapshot pins a server-side repeatable-read view and returns its
// handle. The view is tied to one pooled connection (the server's lease
// table is per-connection) and must be Closed to release the lease.
func (cl *Client) Snapshot(ctx context.Context) (kv.View, error) {
	if cl.closed.Load() {
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	cn := cl.pick()
	resp, err := cn.call(ctx, &wire.Request{Op: wire.OpSnapOpen})
	if err != nil {
		return nil, err
	}
	h, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return nil, fmt.Errorf("client: bad snapshot handle")
	}
	return &remoteView{cl: cl, cn: cn, handle: h}, nil
}

// Sync raises the durability barrier on the server.
func (cl *Client) Sync(ctx context.Context) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpSync})
	return err
}

// Checkpoint asks the server to write an openable copy into dir — a path
// on the SERVER's filesystem.
func (cl *Client) Checkpoint(ctx context.Context, dir string) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpCheckpoint, Payload: []byte(dir)})
	return err
}

// Ping round-trips an empty request (health checks, tests).
func (cl *Client) Ping(ctx context.Context) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// Stats fetches the server's stats snapshot: the store's own counters
// with the service-tier observability (conns, in-flight, bytes, slow
// requests) folded into the Server* fields. Wire failures return zero
// Stats — the StatsProvider contract has no error channel.
func (cl *Client) Stats() kv.Stats {
	st, _, err := cl.FullStats(context.Background())
	if err != nil {
		return kv.Stats{}
	}
	return st
}

// FullStats returns the store stats plus the server's per-opcode
// breakdown.
func (cl *Client) FullStats(ctx context.Context) (kv.Stats, wire.ServerInfo, error) {
	resp, err := cl.call(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return kv.Stats{}, wire.ServerInfo{}, err
	}
	var payload wire.StatsPayload
	if err := json.Unmarshal(resp.Payload, &payload); err != nil {
		return kv.Stats{}, wire.ServerInfo{}, fmt.Errorf("client: stats payload: %w", err)
	}
	st := payload.Store
	st.ServerConnsOpen = payload.Server.ConnsOpen
	st.ServerConnsTotal = payload.Server.ConnsTotal
	st.ServerInFlight = payload.Server.InFlight
	st.ServerRequests = payload.Server.Requests
	st.ServerBytesIn = payload.Server.BytesIn
	st.ServerBytesOut = payload.Server.BytesOut
	st.ServerSlowRequests = payload.Server.SlowRequests
	return st, payload.Server, nil
}

// --- Shared view plumbing ----------------------------------------------------

// caller abstracts "who do I send through": the pooled client (live view)
// or a pinned connection (snapshot view).
type caller interface {
	call(ctx context.Context, req *wire.Request) (wire.Response, error)
}

func getVia(ctx context.Context, c caller, handle uint64, key []byte) ([]byte, bool, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpGet, Handle: handle, Payload: key})
	if err != nil {
		return nil, false, err
	}
	if len(resp.Payload) < 1 {
		return nil, false, fmt.Errorf("client: bad get response")
	}
	if resp.Payload[0] == 0 {
		return nil, false, nil
	}
	return append([]byte(nil), resp.Payload[1:]...), true, nil
}

func scanVia(ctx context.Context, c caller, handle uint64, low, high []byte) ([]kv.Pair, error) {
	payload := wire.AppendBound(nil, low)
	payload = wire.AppendBound(payload, high)
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpScan, Handle: handle, Payload: payload})
	if err != nil {
		return nil, err
	}
	pairs, _, err := wire.ReadPairs(resp.Payload)
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// --- Snapshot view -----------------------------------------------------------

// remoteView is a snapshot handle: reads pinned at the server-side lease,
// routed through the connection that owns it.
type remoteView struct {
	cl       *Client
	cn       *conn
	handle   uint64
	released atomic.Bool
}

func (v *remoteView) check() error {
	if v.released.Load() {
		return fmt.Errorf("client: %w", kv.ErrSnapshotReleased)
	}
	if v.cl.closed.Load() {
		return fmt.Errorf("client: %w", kv.ErrClosed)
	}
	return nil
}

func (v *remoteView) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := v.check(); err != nil {
		return nil, false, err
	}
	return getVia(ctx, v.cn, v.handle, key)
}

func (v *remoteView) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	return scanVia(ctx, v.cn, v.handle, low, high)
}

func (v *remoteView) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	return openIter(ctx, v.cn, v.handle, low, high, v.cl.opts.chunkPairs)
}

// Close releases the server-side lease. Idempotent.
func (v *remoteView) Close() error {
	if v.released.Swap(true) {
		return nil
	}
	if v.cl.closed.Load() {
		return nil // connection is gone; the lease died with it
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := v.cn.call(ctx, &wire.Request{Op: wire.OpSnapClose, Handle: v.handle})
	return err
}

var (
	_ kv.Store         = (*Client)(nil)
	_ kv.StatsProvider = (*Client)(nil)
	_ kv.View          = (*remoteView)(nil)
)
