// Package client is a remote kv.Store: a connection-pooled client for a
// flodbd server that implements the FULL store contract — Get, Put,
// Delete, Apply, Scan, NewIterator, Snapshot, Sync, Checkpoint, Stats —
// with per-operation WriteOptions and honest context handling, so every
// conformance suite, harness mix and figure that drives a kv.Store runs
// against a network round trip unmodified.
//
// Context mapping: a context deadline becomes the request's wire timeout
// (remaining time at send, enforced server-side too), and cancellation is
// honest — the blocked call returns ctx.Err() immediately while a
// best-effort OpCancel tells the server to abandon the work; the late
// response, if any, is discarded by the reader.
//
// Pooling and affinity: stateless requests round-robin across the pool's
// connections; stateful handles (snapshots, iterators) are pinned to the
// connection that created them, because the server's lease table is
// per-connection. Pipelining falls out of the design: every in-flight
// request owns a response channel keyed by request id, so many goroutines
// share one connection without head-of-line blocking in the client.
//
// Failure handling: every connection starts with a protocol handshake (a
// peer from another protocol generation is a typed wire.ErrVersionMismatch,
// not a frame-decode failure). A pooled connection that breaks is redialed
// in place with exponential backoff; while the node stays unreachable,
// calls fail fast with an error satisfying errors.Is(err, kv.ErrUnavailable)
// — the signal that distinguishes "node down" (retry elsewhere, queue a
// hint) from "bad request". Stateful handles do not survive their
// connection: the server-side lease died with it.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

// Option tunes Dial.
type Option func(*options)

type options struct {
	conns       int
	dialTimeout time.Duration
	chunkPairs  int
}

// WithConns sets the connection-pool size (default 4).
func WithConns(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.conns = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithChunkPairs sets how many pairs an iterator requests per refill
// round trip (default 512) — the client half of scan flow control.
func WithChunkPairs(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.chunkPairs = n
		}
	}
}

// Client is a remote kv.Store over a pool of flodbd connections.
type Client struct {
	opts   options
	addr   string
	slots  []*slot
	next   atomic.Uint64
	closed atomic.Bool
}

// Dial connects the pool to a flodbd server. An unreachable server fails
// with an error satisfying errors.Is(err, kv.ErrUnavailable); a server
// from another protocol generation with wire.ErrVersionMismatch.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{conns: 4, dialTimeout: 5 * time.Second, chunkPairs: 512}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	cl := &Client{opts: o, addr: addr}
	for i := 0; i < o.conns; i++ {
		s := &slot{cl: cl}
		c, err := cl.dialConn()
		if err != nil {
			cl.Close()
			return nil, err
		}
		s.c.Store(c)
		cl.slots = append(cl.slots, s)
	}
	return cl, nil
}

func (cl *Client) dialConn() (*conn, error) {
	nc, err := net.DialTimeout("tcp", cl.addr, cl.opts.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %v: %w", cl.addr, err, kv.ErrUnavailable)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // request/response frames must not wait on Nagle
	}
	// Handshake: our hello, their hello, negotiated frame cap. Bounded by
	// the dial timeout — a mute peer is a failed dial, not a hung pool.
	nc.SetDeadline(time.Now().Add(cl.opts.dialTimeout))
	br := bufio.NewReaderSize(nc, 64<<10)
	if _, err := nc.Write(wire.AppendHello(nil, wire.LocalHello(0))); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake %s: %v: %w", cl.addr, err, kv.ErrUnavailable)
	}
	body, err := wire.ReadFrameLimit(br, nil, 1024)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake %s: %v: %w", cl.addr, err, kv.ErrUnavailable)
	}
	remote, err := wire.ParseHello(body)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: %s: %w", cl.addr, err)
	}
	nc.SetDeadline(time.Time{})
	_, maxFrame := wire.Negotiate(wire.LocalHello(0), remote)
	c := &conn{
		nc:       nc,
		maxFrame: maxFrame,
		pending:  map[uint64]chan wire.Response{},
		done:     make(chan struct{}),
	}
	go c.readLoop(br)
	return c, nil
}

// pickConn returns a live pool connection for a stateless request,
// redialing a broken slot in place (with backoff) when it has to. With
// the whole pool down it fails fast with a kv.ErrUnavailable-wrapped
// error.
func (cl *Client) pickConn() (*conn, error) {
	start := cl.next.Add(1)
	var lastErr error
	for i := 0; i < len(cl.slots); i++ {
		s := cl.slots[(start+uint64(i))%uint64(len(cl.slots))]
		c, err := s.get()
		if err != nil {
			lastErr = err
			continue
		}
		return c, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: %s: no connections: %w", cl.addr, kv.ErrUnavailable)
	}
	return nil, lastErr
}

// Close closes every pooled connection. Subsequent operations return
// kv.ErrClosed. Server-side leases the client still holds die with their
// connections.
func (cl *Client) Close() error {
	if cl.closed.Swap(true) {
		return nil
	}
	for _, s := range cl.slots {
		if c := s.c.Load(); c != nil {
			c.close(fmt.Errorf("client: %w", kv.ErrClosed))
		}
	}
	return nil
}

// --- Pool slots (reconnect with backoff) -------------------------------------

// reconnect backoff bounds: first retry after 50ms, doubling to 2s.
const (
	redialBackoffMin = 50 * time.Millisecond
	redialBackoffMax = 2 * time.Second
)

// slot is one pool position. Its connection is replaced in place when it
// breaks; between failed redials the slot fails fast (backoff), so a dead
// node costs one dial timeout per backoff window, not per call.
type slot struct {
	cl *Client
	c  atomic.Pointer[conn]

	mu      sync.Mutex // guards redial state; held across a redial
	nextTry time.Time
	backoff time.Duration
	lastErr error
}

func (s *slot) get() (*conn, error) {
	if c := s.c.Load(); c != nil && c.alive() {
		return c, nil
	}
	if s.cl.closed.Load() {
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	// One redial at a time per slot; concurrent callers fail fast to
	// another slot rather than queueing behind the dial.
	if !s.mu.TryLock() {
		return nil, fmt.Errorf("client: %s: redial in flight: %w", s.cl.addr, kv.ErrUnavailable)
	}
	defer s.mu.Unlock()
	if c := s.c.Load(); c != nil && c.alive() {
		return c, nil // another caller already fixed it
	}
	if !s.nextTry.IsZero() && time.Now().Before(s.nextTry) {
		err := s.lastErr
		if err == nil {
			err = fmt.Errorf("client: %s: down: %w", s.cl.addr, kv.ErrUnavailable)
		}
		return nil, err
	}
	c, err := s.cl.dialConn()
	if err != nil {
		if s.backoff == 0 {
			s.backoff = redialBackoffMin
		} else if s.backoff < redialBackoffMax {
			s.backoff *= 2
		}
		s.nextTry = time.Now().Add(s.backoff)
		s.lastErr = err
		return nil, err
	}
	s.backoff = 0
	s.nextTry = time.Time{}
	s.lastErr = nil
	if old := s.c.Swap(c); old != nil {
		old.close(fmt.Errorf("client: %s: replaced by redial: %w", s.cl.addr, kv.ErrUnavailable))
	}
	if s.cl.closed.Load() {
		// Lost the race with Close: don't leak the fresh connection.
		c.close(fmt.Errorf("client: %w", kv.ErrClosed))
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	return c, nil
}

// --- Connection --------------------------------------------------------------

type conn struct {
	nc       net.Conn
	maxFrame uint64     // negotiated in the handshake
	wmu      sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	nextID  uint64
	err     error // set once, before done closes

	done     chan struct{}
	doneOnce sync.Once
}

// alive reports whether the connection is still usable.
func (c *conn) alive() bool {
	select {
	case <-c.done:
		return false
	default:
		return true
	}
}

func (c *conn) close(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.nc.Close()
}

// brokenErr reports why the connection died.
func (c *conn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return fmt.Errorf("client: connection closed")
}

// readLoop dispatches response frames to their pending request channels.
// It takes over the handshake's reader (which may hold buffered bytes).
func (c *conn) readLoop(br *bufio.Reader) {
	for {
		body, err := wire.ReadFrameLimit(br, nil, c.maxFrame)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("client: server closed the connection: %w", kv.ErrUnavailable)
			} else {
				err = fmt.Errorf("client: read: %v: %w", err, kv.ErrUnavailable)
			}
			c.close(err)
			return
		}
		resp, err := wire.ParseResponse(body)
		if err != nil {
			c.close(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered: never blocks the reader
		}
		// else: a canceled request's late response — discarded.
	}
}

// register assigns a request id and a response channel.
func (c *conn) register(req *wire.Request) (chan wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan wire.Response, 1)
	c.pending[req.ID] = ch
	return ch, nil
}

func (c *conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *conn) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.nc.Write(frame)
	return err
}

// call performs one round trip on this connection: register, frame,
// write, wait. Context deadlines ride the request as a relative wire
// timeout; cancellation abandons the wait and best-effort-cancels the
// server-side work.
func (c *conn) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	if req.TraceID == 0 {
		// The coordinator edge: reuse the context's trace when one is
		// already flowing (a server fanning this request out to
		// replicas re-stamps its inbound ID), otherwise mint one so
		// every slow-request line downstream is correlatable.
		if id := obs.Trace(ctx); id != 0 {
			req.TraceID = id
		} else {
			req.TraceID = obs.NewTraceID()
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return wire.Response{}, context.DeadlineExceeded
		}
		req.TimeoutNanos = uint64(remain)
	}
	ch, err := c.register(req)
	if err != nil {
		return wire.Response{}, err
	}
	if err := c.write(wire.AppendRequest(nil, req)); err != nil {
		c.unregister(req.ID)
		c.close(fmt.Errorf("client: write: %v: %w", err, kv.ErrUnavailable))
		return wire.Response{}, c.brokenErr()
	}
	select {
	case resp := <-ch:
		if resp.Status != wire.StatusOK {
			return resp, wire.ErrOf(resp.Status, string(resp.Payload))
		}
		return resp, nil
	case <-ctx.Done():
		c.unregister(req.ID)
		// Best-effort server-side cancel; the late response is discarded.
		cancelFrame := wire.AppendRequest(nil, &wire.Request{
			Op:      wire.OpCancel,
			Payload: binary.AppendUvarint(nil, req.ID),
		})
		c.write(cancelFrame)
		return wire.Response{}, ctx.Err()
	case <-c.done:
		return wire.Response{}, c.brokenErr()
	}
}

// --- kv.Store ----------------------------------------------------------------

func (cl *Client) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if cl.closed.Load() {
		return wire.Response{}, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	c, err := cl.pickConn()
	if err != nil {
		return wire.Response{}, err
	}
	return c.call(ctx, req)
}

func durabilityOf(opts []kv.WriteOption) kv.Durability {
	// The wire carries the resolved per-op CLASS, not the option values:
	// DurabilityDefault means "use the server store's default".
	var o kv.WriteOptions
	for _, opt := range opts {
		if opt != nil {
			opt.ApplyWrite(&o)
		}
	}
	return o.Durability
}

// Get returns the value of key from the server's live view.
func (cl *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return getVia(ctx, cl, 0, key)
}

func (cl *Client) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	payload := wire.AppendBytes(make([]byte, 0, len(key)+len(value)+4), key)
	payload = append(payload, value...)
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpPut, Durability: durabilityOf(opts), Payload: payload})
	return err
}

func (cl *Client) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpDelete, Durability: durabilityOf(opts), Payload: key})
	return err
}

// Apply commits b atomically on the server: the batch crosses the wire in
// its WAL record encoding, one frame however many mutations it carries.
func (cl *Client) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpApply, Durability: durabilityOf(opts), Payload: kv.EncodeBatchRecord(b)})
	return err
}

func (cl *Client) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	return scanVia(ctx, cl, 0, low, high)
}

// NewIterator opens a server-side cursor and streams it in chunks; see
// remoteIter.
func (cl *Client) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if cl.closed.Load() {
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	cn, err := cl.pickConn()
	if err != nil {
		return nil, err
	}
	return openIter(ctx, cn, 0, low, high, cl.opts.chunkPairs)
}

// Snapshot pins a server-side repeatable-read view and returns its
// handle. The view is tied to one pooled connection (the server's lease
// table is per-connection) and must be Closed to release the lease.
func (cl *Client) Snapshot(ctx context.Context) (kv.View, error) {
	if cl.closed.Load() {
		return nil, fmt.Errorf("client: %w", kv.ErrClosed)
	}
	cn, err := cl.pickConn()
	if err != nil {
		return nil, err
	}
	resp, err := cn.call(ctx, &wire.Request{Op: wire.OpSnapOpen})
	if err != nil {
		return nil, err
	}
	h, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return nil, fmt.Errorf("client: bad snapshot handle")
	}
	return &remoteView{cl: cl, cn: cn, handle: h}, nil
}

// Sync raises the durability barrier on the server.
func (cl *Client) Sync(ctx context.Context) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpSync})
	return err
}

// Checkpoint asks the server to write an openable copy into dir — a path
// on the SERVER's filesystem.
func (cl *Client) Checkpoint(ctx context.Context, dir string) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpCheckpoint, Payload: []byte(dir)})
	return err
}

// Ping round-trips an empty request (health checks, tests).
func (cl *Client) Ping(ctx context.Context) error {
	_, err := cl.call(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// --- Replication plane (cluster coordinators) --------------------------------

// VPut performs one version-gated conditional write on the server's local
// plane: the record lands only if its version exceeds the stored copy's.
// It reports whether the record was applied (false = stale, which for a
// replication push or hint replay means "already superseded": success).
func (cl *Client) VPut(ctx context.Context, rec wire.VRecord, opts ...kv.WriteOption) (bool, error) {
	resp, err := cl.call(ctx, &wire.Request{
		Op:         wire.OpVPut,
		Durability: durabilityOf(opts),
		Payload:    wire.AppendVRecord(nil, rec),
	})
	if err != nil {
		return false, err
	}
	if len(resp.Payload) < 1 {
		return false, fmt.Errorf("client: bad vput response")
	}
	return resp.Payload[0] == 1, nil
}

// VApply performs a batched conditional write: every winning record lands
// in one engine batch. It returns how many records applied and how many
// were stale (already superseded).
func (cl *Client) VApply(ctx context.Context, recs []wire.VRecord, opts ...kv.WriteOption) (applied, stale int, err error) {
	resp, err := cl.call(ctx, &wire.Request{
		Op:         wire.OpVApply,
		Durability: durabilityOf(opts),
		Payload:    wire.AppendVRecords(nil, recs),
	})
	if err != nil {
		return 0, 0, err
	}
	a, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return 0, 0, fmt.Errorf("client: bad vapply response")
	}
	s, m := binary.Uvarint(resp.Payload[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("client: bad vapply response")
	}
	return int(a), int(s), nil
}

// Health probes the node: identity and ring epoch. It is the heartbeat
// the cluster prober marks nodes up and down with.
func (cl *Client) Health(ctx context.Context) (wire.HealthInfo, error) {
	resp, err := cl.call(ctx, &wire.Request{Op: wire.OpHealth})
	if err != nil {
		return wire.HealthInfo{}, err
	}
	var info wire.HealthInfo
	if err := json.Unmarshal(resp.Payload, &info); err != nil {
		return wire.HealthInfo{}, fmt.Errorf("client: health payload: %w", err)
	}
	return info, nil
}

// Stats fetches the server's stats snapshot: the store's own counters
// with the service-tier observability (conns, in-flight, bytes, slow
// requests) folded into the Server* fields. Wire failures return zero
// Stats — the StatsProvider contract has no error channel.
func (cl *Client) Stats() kv.Stats {
	st, _, err := cl.FullStats(context.Background())
	if err != nil {
		return kv.Stats{}
	}
	return st
}

// StatsPayload fetches the raw OpStats response: store counters, server
// info, and (when the node runs with telemetry) per-op latency
// quantiles. `flodb stats -json` prints it verbatim, so the local and
// remote JSON stats surfaces share one schema.
func (cl *Client) StatsPayload(ctx context.Context) (wire.StatsPayload, error) {
	resp, err := cl.call(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.StatsPayload{}, err
	}
	var payload wire.StatsPayload
	if err := json.Unmarshal(resp.Payload, &payload); err != nil {
		return wire.StatsPayload{}, fmt.Errorf("client: stats payload: %w", err)
	}
	return payload, nil
}

// FullStats returns the store stats plus the server's per-opcode
// breakdown.
func (cl *Client) FullStats(ctx context.Context) (kv.Stats, wire.ServerInfo, error) {
	payload, err := cl.StatsPayload(ctx)
	if err != nil {
		return kv.Stats{}, wire.ServerInfo{}, err
	}
	st := payload.Store
	st.ServerConnsOpen = payload.Server.ConnsOpen
	st.ServerConnsTotal = payload.Server.ConnsTotal
	st.ServerInFlight = payload.Server.InFlight
	st.ServerRequests = payload.Server.Requests
	st.ServerBytesIn = payload.Server.BytesIn
	st.ServerBytesOut = payload.Server.BytesOut
	st.ServerSlowRequests = payload.Server.SlowRequests
	return st, payload.Server, nil
}

// Telemetry fetches the node's observability snapshot: per-op latency
// quantiles, the merged metric registry, and up to maxEvents recent
// structured events (0 = the server's default). flodbctl top renders
// it; kv.ErrNotSupported when the server has no telemetry provider.
func (cl *Client) Telemetry(ctx context.Context, maxEvents int) (wire.TelemetryPayload, error) {
	var body []byte
	if maxEvents > 0 {
		body = binary.AppendUvarint(nil, uint64(maxEvents))
	}
	resp, err := cl.call(ctx, &wire.Request{Op: wire.OpTelemetry, Payload: body})
	if err != nil {
		return wire.TelemetryPayload{}, err
	}
	var payload wire.TelemetryPayload
	if err := json.Unmarshal(resp.Payload, &payload); err != nil {
		return wire.TelemetryPayload{}, fmt.Errorf("client: telemetry payload: %w", err)
	}
	return payload, nil
}

// --- Shared view plumbing ----------------------------------------------------

// caller abstracts "who do I send through": the pooled client (live view)
// or a pinned connection (snapshot view).
type caller interface {
	call(ctx context.Context, req *wire.Request) (wire.Response, error)
}

func getVia(ctx context.Context, c caller, handle uint64, key []byte) ([]byte, bool, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpGet, Handle: handle, Payload: key})
	if err != nil {
		return nil, false, err
	}
	if len(resp.Payload) < 1 {
		return nil, false, fmt.Errorf("client: bad get response")
	}
	if resp.Payload[0] == 0 {
		return nil, false, nil
	}
	return append([]byte(nil), resp.Payload[1:]...), true, nil
}

func scanVia(ctx context.Context, c caller, handle uint64, low, high []byte) ([]kv.Pair, error) {
	payload := wire.AppendBound(nil, low)
	payload = wire.AppendBound(payload, high)
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpScan, Handle: handle, Payload: payload})
	if err != nil {
		return nil, err
	}
	pairs, _, err := wire.ReadPairs(resp.Payload)
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// --- Snapshot view -----------------------------------------------------------

// remoteView is a snapshot handle: reads pinned at the server-side lease,
// routed through the connection that owns it.
type remoteView struct {
	cl       *Client
	cn       *conn
	handle   uint64
	released atomic.Bool
}

func (v *remoteView) check() error {
	if v.released.Load() {
		return fmt.Errorf("client: %w", kv.ErrSnapshotReleased)
	}
	if v.cl.closed.Load() {
		return fmt.Errorf("client: %w", kv.ErrClosed)
	}
	return nil
}

func (v *remoteView) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := v.check(); err != nil {
		return nil, false, err
	}
	return getVia(ctx, v.cn, v.handle, key)
}

func (v *remoteView) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	return scanVia(ctx, v.cn, v.handle, low, high)
}

func (v *remoteView) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	return openIter(ctx, v.cn, v.handle, low, high, v.cl.opts.chunkPairs)
}

// Close releases the server-side lease. Idempotent.
func (v *remoteView) Close() error {
	if v.released.Swap(true) {
		return nil
	}
	if v.cl.closed.Load() {
		return nil // connection is gone; the lease died with it
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := v.cn.call(ctx, &wire.Request{Op: wire.OpSnapClose, Handle: v.handle})
	return err
}

var (
	_ kv.Store         = (*Client)(nil)
	_ kv.StatsProvider = (*Client)(nil)
	_ kv.View          = (*remoteView)(nil)
)
