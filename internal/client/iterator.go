package client

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"flodb/internal/kv"
	"flodb/internal/wire"
)

// remoteIter streams a server-side cursor in client-driven chunks: each
// refill round trip asks for up to chunkPairs pairs, buffers them, and
// serves First/Seek/Next locally until the buffer drains — O(chunk)
// memory however large the range, with the client (the consumer) in
// charge of flow control. It captures its creation context and honors it
// on every positioning call, like every other kv.Iterator in the tree.
// Not safe for concurrent use, per the contract.
type remoteIter struct {
	ctx    context.Context
	cn     *conn
	handle uint64
	chunk  int

	buf        []kv.Pair
	i          int // buf[i] is the current pair when positioned
	positioned bool
	done       bool // server reported exhaustion past buf
	err        error
	closed     bool
}

// openIter opens the server-side cursor. viewHandle is 0 for the live
// view or a snapshot lease handle.
func openIter(ctx context.Context, cn *conn, viewHandle uint64, low, high []byte, chunk int) (kv.Iterator, error) {
	payload := wire.AppendBound(nil, low)
	payload = wire.AppendBound(payload, high)
	resp, err := cn.call(ctx, &wire.Request{Op: wire.OpIterOpen, Handle: viewHandle, Payload: payload})
	if err != nil {
		return nil, err
	}
	h, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return nil, fmt.Errorf("client: bad iterator handle")
	}
	return &remoteIter{ctx: ctx, cn: cn, handle: h, chunk: chunk}, nil
}

// fetch performs one refill round trip with the given positioning command.
func (it *remoteIter) fetch(cmd byte, seekKey []byte) bool {
	payload := binary.AppendUvarint(nil, uint64(it.chunk))
	payload = append(payload, cmd)
	payload = append(payload, seekKey...)
	resp, err := it.cn.call(it.ctx, &wire.Request{Op: wire.OpIterNext, Handle: it.handle, Payload: payload})
	if err != nil {
		it.err = err
		return false
	}
	if len(resp.Payload) < 1 {
		it.err = fmt.Errorf("client: bad iter-next response")
		return false
	}
	done := resp.Payload[0] == 1
	pairs, _, err := wire.ReadPairs(resp.Payload[1:])
	if err != nil {
		it.err = err
		return false
	}
	it.buf, it.i, it.done = pairs, 0, done
	if len(pairs) == 0 {
		it.positioned = false
		return false
	}
	it.positioned = true
	return true
}

func (it *remoteIter) step(cmd byte, seekKey []byte) bool {
	if it.closed || it.err != nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		return false
	}
	return it.fetch(cmd, seekKey)
}

func (it *remoteIter) First() bool { return it.step(wire.IterCmdFirst, nil) }

func (it *remoteIter) Seek(key []byte) bool { return it.step(wire.IterCmdSeek, key) }

func (it *remoteIter) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		return false
	}
	if !it.positioned {
		// Next on an unpositioned iterator is First, per the contract.
		return it.fetch(wire.IterCmdFirst, nil)
	}
	if it.i+1 < len(it.buf) {
		it.i++
		return true
	}
	if it.done {
		it.positioned = false
		return false
	}
	return it.fetch(wire.IterCmdNext, nil)
}

func (it *remoteIter) Key() []byte {
	if !it.positioned || it.i >= len(it.buf) {
		return nil
	}
	return it.buf[it.i].Key
}

func (it *remoteIter) Value() []byte {
	if !it.positioned || it.i >= len(it.buf) {
		return nil
	}
	return it.buf[it.i].Value
}

func (it *remoteIter) Err() error { return it.err }

// Close releases the server-side cursor lease. Idempotent; best-effort
// when the connection (or its context) is already gone — the server's
// idle janitor is the backstop.
func (it *remoteIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.buf = nil
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	it.cn.call(ctx, &wire.Request{Op: wire.OpIterClose, Handle: it.handle})
	return nil
}

var _ kv.Iterator = (*remoteIter)(nil)
