package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"flodb/internal/kv"
)

// clusterView is a cluster-wide repeatable read: one pinned engine view
// per member, taken by Snapshot while every member was up. Reads merge
// the member views newest-version-wins — deterministically, because
// pinned views never change — so the handle replays the same answers
// forever regardless of later writes, repairs, or hint replays.
type clusterView struct {
	c        *Client
	views    []kv.View // indexed like c.nodes
	released atomic.Bool
}

func (v *clusterView) checkOpen() error {
	if v.released.Load() {
		return fmt.Errorf("cluster: %w", kv.ErrSnapshotReleased)
	}
	return nil
}

// Get consults the key's owners' pinned views and answers from the
// newest version (tombstones and absence read as not-found).
func (v *clusterView) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := v.checkOpen(); err != nil {
		return nil, false, err
	}
	var bestVal []byte
	var bestVer uint64
	bestTomb, found := false, false
	for _, oi := range v.c.ring.Owners(key) {
		raw, ok, err := v.views[oi].Get(ctx, key)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		ver, tomb, payload := parseStored(raw)
		if !found || ver > bestVer {
			bestVer, bestTomb, bestVal = ver, tomb, payload
			found = true
		}
	}
	if !found || bestTomb {
		return nil, false, nil
	}
	return bestVal, true, nil
}

func (v *clusterView) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := v.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return drainIter(it)
}

func (v *clusterView) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := v.checkOpen(); err != nil {
		return nil, err
	}
	srcs := make([]kv.Iterator, 0, len(v.views))
	for _, mv := range v.views {
		it, err := mv.NewIterator(ctx, low, high)
		if err != nil {
			for _, s := range srcs {
				s.Close()
			}
			return nil, err
		}
		srcs = append(srcs, it)
	}
	return newMergedIter(srcs), nil
}

func (v *clusterView) Close() error {
	if v.released.Swap(true) {
		return nil
	}
	var firstErr error
	for _, mv := range v.views {
		if err := mv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ kv.View = (*clusterView)(nil)
