package cluster

import "flodb/internal/obs"

// TelemetrySnapshot exposes the coordinator's observability state as a
// metric snapshot: per-type event totals (ring transitions, hint
// replays) plus coordinator-level counter views. Member engines are NOT
// scraped here — each member exposes its own /metrics; merging them
// remotely is flodbctl's job, not the coordinator's hot path.
func (c *Client) TelemetrySnapshot() obs.Snapshot {
	s := obs.Snapshot{Metrics: obs.EventCountMetrics(c.events)}
	add := func(name, help string, v uint64) {
		s.Metrics = append(s.Metrics, obs.Metric{
			Name: name, Help: help, Kind: obs.KindCounter, Value: int64(v),
		})
	}
	add("flodb_cluster_quorum_writes_total", "Writes acked by a full write quorum.", c.nQuorumWrites.Load())
	add("flodb_cluster_degraded_writes_total", "Writes acked below quorum (hinted).", c.nDegradedWrites.Load())
	add("flodb_cluster_read_repairs_total", "Stale replicas rewritten on read.", c.nReadRepairs.Load())
	add("flodb_cluster_hints_queued_total", "Hinted-handoff records queued.", c.nHintsQueued.Load())
	add("flodb_cluster_hints_replayed_total", "Hinted-handoff records replayed.", c.nHintsReplayed.Load())
	up, down := 0, 0
	for _, n := range c.nodes {
		if n.isDown() {
			down++
		} else {
			up++
		}
	}
	s.Metrics = append(s.Metrics,
		obs.Metric{Name: "flodb_cluster_hints_pending", Help: "Hinted-handoff records awaiting replay.",
			Kind: obs.KindGauge, Value: int64(c.HintsPending())},
		obs.Metric{Name: "flodb_cluster_nodes_up", Help: "Members currently considered live.",
			Kind: obs.KindGauge, Value: int64(up)},
		obs.Metric{Name: "flodb_cluster_nodes_down", Help: "Members currently considered down.",
			Kind: obs.KindGauge, Value: int64(down)},
	)
	return s
}

// TelemetryEvents returns the most recent n coordinator events (all
// buffered when n <= 0): ring up/down, epoch exclusions, hint replays.
func (c *Client) TelemetryEvents(n int) []obs.Event {
	return c.events.Recent(n)
}
