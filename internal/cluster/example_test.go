package cluster_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"flodb/internal/cluster"
	"flodb/internal/core"
	"flodb/internal/server"
)

// ExampleClient_cluster assembles a 3-node ring on loopback and talks to
// it through a coordinator: every Put lands on 2 owners, every Get asks
// the owners and returns the newest copy. In production each node is a
// flodbd process on its own machine; only the seed list changes.
func ExampleClient_cluster() {
	ctx := context.Background()
	base, _ := os.MkdirTemp("", "cluster-example")
	defer os.RemoveAll(base)

	// Three flodbd-style nodes. IDs are the stable identity the ring
	// hashes; addresses may change across restarts.
	var members []cluster.Member
	for _, id := range []string{"n1", "n2", "n3"} {
		db, err := core.Open(core.Config{
			Dir:             filepath.Join(base, id),
			MemoryBytes:     1 << 20,
			WALWriteThrough: true, // an acked replica write survives kill -9
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		defer db.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Println(err)
			return
		}
		srv := server.New(server.Config{Store: db, NodeID: id})
		go srv.Serve(l)
		defer srv.Close()
		members = append(members, cluster.Member{ID: id, Addr: l.Addr().String()})
	}

	// The coordinator: a full kv.Store over the ring at R=2, W=2, Rq=1.
	c, err := cluster.Open(cluster.Config{
		Members:     members,
		Replication: 2,
		WriteQuorum: 2,
		ReadQuorum:  1,
		HintDir:     filepath.Join(base, "hints"),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer c.Close()

	if err := c.Put(ctx, []byte("user:42"), []byte("ada")); err != nil {
		fmt.Println(err)
		return
	}
	v, ok, err := c.Get(ctx, []byte("user:42"))
	fmt.Printf("get: %s %v %v\n", v, ok, err)

	st := c.Stats()
	fmt.Printf("replicas per key: %d, quorum writes: %d, nodes up: %d\n",
		c.Ring().Replicas(), st.ClusterQuorumWrites, st.ClusterNodesUp)
	// Output:
	// get: ada true <nil>
	// replicas per key: 2, quorum writes: 1, nodes up: 3
}
