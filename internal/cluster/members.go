package cluster

import (
	"fmt"
	"strings"
)

// ParseMembers parses a CLI seed list: comma-separated members, each
// "id=host:port" or a bare "host:port" (the address doubles as the ID —
// fine as long as nodes keep their addresses; give explicit IDs when
// they might move). Every cmd that joins a ring shares this syntax.
func ParseMembers(s string) ([]Member, error) {
	var members []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := Member{Addr: part}
		if id, addr, ok := strings.Cut(part, "="); ok {
			m = Member{ID: strings.TrimSpace(id), Addr: strings.TrimSpace(addr)}
			if m.ID == "" || m.Addr == "" {
				return nil, fmt.Errorf("cluster: malformed member %q (want id=host:port)", part)
			}
		} else {
			m.ID = m.Addr
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty seed list")
	}
	return members, nil
}
