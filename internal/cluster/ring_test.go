package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("node-%c", 'a'+i), Addr: fmt.Sprintf("127.0.0.1:%d", 4380+i)}
	}
	return ms
}

// Same membership ⇒ same ring, whatever order the seed list arrives in
// and whatever the addresses say: every coordinator routes identically
// with no coordination.
func TestRingDeterministicAcrossPermutationsAndAddresses(t *testing.T) {
	base := testMembers(5)
	ref, err := NewRing(base, DefaultVnodes, 3)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := append([]Member(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := range perm {
			perm[i].Addr = fmt.Sprintf("10.0.0.%d:999", rng.Intn(255)) // addresses must not matter
		}
		r, err := NewRing(perm, DefaultVnodes, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Epoch() != ref.Epoch() {
			t.Fatalf("trial %d: epoch %#x != %#x for the same membership", trial, r.Epoch(), ref.Epoch())
		}
		for k := 0; k < 200; k++ {
			key := []byte(fmt.Sprintf("key-%d", k))
			a, b := ref.Owners(key), r.Owners(key)
			for i := range a {
				if ref.Members()[a[i]].ID != r.Members()[b[i]].ID {
					t.Fatalf("trial %d key %q: owners diverge: %v vs %v", trial, key, a, b)
				}
			}
		}
	}
}

func TestRingEpochChangesWithConfig(t *testing.T) {
	ms := testMembers(3)
	r1, _ := NewRing(ms, 128, 2)
	r2, _ := NewRing(ms, 128, 3)
	r3, _ := NewRing(ms, 64, 2)
	r4, _ := NewRing(ms[:2], 128, 2)
	if r1.Epoch() == r2.Epoch() || r1.Epoch() == r3.Epoch() || r1.Epoch() == r4.Epoch() {
		t.Fatalf("epochs collide across configs: %#x %#x %#x %#x",
			r1.Epoch(), r2.Epoch(), r3.Epoch(), r4.Epoch())
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 128, 1); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing(testMembers(2), 128, 3); err == nil {
		t.Fatal("R > members accepted")
	}
	dup := []Member{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}
	if _, err := NewRing(dup, 128, 1); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := NewRing([]Member{{ID: "", Addr: "x"}}, 128, 1); err == nil {
		t.Fatal("empty ID accepted")
	}
}

// Owners must be R DISTINCT members, primary first.
func TestRingOwnersDistinct(t *testing.T) {
	r, err := NewRing(testMembers(4), DefaultVnodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		owners := r.Owners([]byte(fmt.Sprintf("k%d", k)))
		if len(owners) != 3 {
			t.Fatalf("key k%d: %d owners, want 3", k, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key k%d: duplicate owner %d", k, o)
			}
			seen[o] = true
		}
	}
}

// At 128 vnodes the exact arc-length shares stay within the 1.5× max/min
// balance the subsystem promises.
func TestRingVnodeBalance(t *testing.T) {
	for _, n := range []int{3, 5, 10} {
		r, err := NewRing(testMembers(n), 128, 2)
		if err != nil {
			t.Fatal(err)
		}
		shares := r.Shares()
		minS, maxS := 1.0, 0.0
		total := 0.0
		for _, s := range shares {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
			total += s
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%d members: shares sum to %f, want 1", n, total)
		}
		if ratio := maxS / minS; ratio >= 1.5 {
			t.Fatalf("%d members at 128 vnodes: max/min share %.3f/%.3f = %.2fx, want < 1.5x",
				n, maxS, minS, ratio)
		}
	}
}

// Adding one member to an N-member ring should move roughly the share the
// new member takes over (~1/(N+1) of primaries), nowhere near a reshuffle.
func TestRingMovedShareOnGrowth(t *testing.T) {
	from, err := NewRing(testMembers(4), 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(testMembers(4), Member{ID: "node-new", Addr: "127.0.0.1:5000"})
	to, err := NewRing(grown, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	moved := MovedShare(from, to, 1<<16)
	// With R=2, a 5th member disturbs the owner set of at most ~2/5 of the
	// keyspace; a modulo-style placement would disturb ~8/10.
	if moved <= 0 || moved > 0.55 {
		t.Fatalf("MovedShare = %.3f, want in (0, 0.55]", moved)
	}
	if same := MovedShare(from, from, 1<<14); same != 0 {
		t.Fatalf("MovedShare(ring, itself) = %.3f, want 0", same)
	}
}
