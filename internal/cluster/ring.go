// Package cluster is the distribution layer over flodbd nodes: a
// consistent-hash ring with virtual nodes maps every key to R replica
// owners, and a coordinator-side Client implements the full kv.Store
// contract over the pooled internal/client — quorum writes with hinted
// handoff for unreachable owners, quorum reads with newest-version-wins
// read-repair, k-way-merged scans, and a heartbeat prober that marks
// members down after K failed probes and up (replaying their hints) on
// recovery. Membership is a static seed list; the ring is deterministic
// from it, so every coordinator over the same list routes identically
// with no external consensus.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// Member is one flodbd node: a STABLE identity plus its current address.
// The ring hashes IDs, not addresses, so a node that restarts on a new
// port (or is moved) keeps its key ranges.
type Member struct {
	ID   string
	Addr string
}

// DefaultVnodes is the virtual-node count per member: high enough that
// the max/min key-share ratio stays under 1.5× (the balance the ring
// tests pin), low enough that ring construction and lookup stay trivial.
const DefaultVnodes = 128

// Ring maps keys onto members by consistent hashing: every member
// projects Vnodes points onto the 64-bit hash circle, and a key belongs
// to the first R distinct members at or clockwise-after its hash.
type Ring struct {
	members  []Member // sorted by ID
	replicas int
	vnodes   int
	points   []ringPoint // sorted by hash
	epoch    uint64
}

type ringPoint struct {
	hash   uint64
	member int32
}

// NewRing builds the ring. Members are sorted by ID internally, so any
// permutation of the same membership yields the identical ring.
func NewRing(members []Member, vnodes, replicas int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if replicas <= 0 || replicas > len(members) {
		return nil, fmt.Errorf("cluster: replication factor %d over %d members", replicas, len(members))
	}
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := range sorted {
		if sorted[i].ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if i > 0 && sorted[i].ID == sorted[i-1].ID {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", sorted[i].ID)
		}
	}
	r := &Ring{
		members:  sorted,
		replicas: replicas,
		vnodes:   vnodes,
		points:   make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for mi := range sorted {
		for v := 0; v < vnodes; v++ {
			// FNV alone leaves the near-identical "id#N" strings clustered
			// on the circle (max/min share blows past 1.5× at 128 vnodes);
			// the avalanche finalizer spreads them.
			h := mix64(fnv64s(sorted[mi].ID + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions resolve by member order so the ring stays
		// deterministic across builds.
		return r.points[i].member < r.points[j].member
	})
	// The epoch fingerprints the whole configuration: same members, vnode
	// count and replication factor ⇒ same epoch on every coordinator.
	e := fnv64s("ring-v1|" + strconv.Itoa(replicas) + "|" + strconv.Itoa(vnodes))
	for _, m := range sorted {
		e = fnv64add(e, m.ID)
		e = fnv64add(e, "|")
	}
	r.epoch = e
	return r, nil
}

// Members returns the membership in ring (ID-sorted) order.
func (r *Ring) Members() []Member { return r.members }

// Replicas returns the replication factor R.
func (r *Ring) Replicas() int { return r.replicas }

// Epoch is the configuration fingerprint peers compare in health probes.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Owners returns the indexes (into Members()) of the R distinct members
// owning key, primary first: the successor walk from the key's hash.
func (r *Ring) Owners(key []byte) []int {
	return r.ownersAt(mix64(fnv64b(key)))
}

func (r *Ring) ownersAt(h uint64) []int {
	// First point with hash >= h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, r.replicas)
	seen := make(map[int32]struct{}, r.replicas)
	for n := 0; n < len(r.points) && len(owners) < r.replicas; n++ {
		p := r.points[(i+n)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		owners = append(owners, int(p.member))
	}
	return owners
}

// Shares computes each member's EXACT primary key-share: the fraction of
// the hash circle whose successor point belongs to it. This is the
// balance the vnode count buys; the ring tests pin max/min < 1.5.
func (r *Ring) Shares() map[string]float64 {
	arcs := make([]uint64, len(r.members))
	// The arc (points[i-1].hash, points[i].hash] belongs to points[i];
	// the wraparound arc (last, first] belongs to points[0].
	for i := range r.points {
		var width uint64
		if i == 0 {
			width = r.points[0].hash - r.points[len(r.points)-1].hash // wraps mod 2^64
		} else {
			width = r.points[i].hash - r.points[i-1].hash
		}
		arcs[r.points[i].member] += width
	}
	shares := make(map[string]float64, len(r.members))
	for mi, m := range r.members {
		shares[m.ID] = float64(arcs[mi]) / (1 << 63) / 2
	}
	return shares
}

// MovedShare estimates (by deterministic sampling) the fraction of the
// keyspace whose OWNER SET changes between two rings — the data motion a
// membership change would cost. flodbctl's rebalance preview prints it.
func MovedShare(from, to *Ring, samples int) float64 {
	if samples <= 0 {
		samples = 65536
	}
	step := ^uint64(0) / uint64(samples)
	moved := 0
	for i := 0; i < samples; i++ {
		h := uint64(i) * step
		if !sameOwners(from, to, h) {
			moved++
		}
	}
	return float64(moved) / float64(samples)
}

func sameOwners(a, b *Ring, h uint64) bool {
	ao, bo := a.ownersAt(h), b.ownersAt(h)
	if len(ao) != len(bo) {
		return false
	}
	// Compare as ID sets: replica order is a routing detail, membership
	// of the owner set is what decides whether data must move.
	ids := make(map[string]struct{}, len(ao))
	for _, i := range ao {
		ids[a.members[i].ID] = struct{}{}
	}
	for _, i := range bo {
		if _, ok := ids[b.members[i].ID]; !ok {
			return false
		}
	}
	return true
}

// --- FNV-1a 64 ---------------------------------------------------------------

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64b(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func fnv64s(s string) uint64 {
	return fnv64add(fnvOffset64, s)
}

func fnv64add(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a fixed bijective avalanche that
// turns FNV's weakly-mixed low bits into a uniform circle position.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
