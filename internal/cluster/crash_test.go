package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMultiProcessKillReplicaMidStorm is the cluster's acceptance
// criterion run for real: three SEPARATE flodbd processes, a write storm
// through a quorum coordinator, kill -9 of one replica mid-storm, and
// the assertion that not one acknowledged write is lost — quorum-acked
// writes because a second owner held them durably (WAL write-through),
// degraded-acked writes because their hints drain into the replica when
// it comes back. The in-process tests cover the same logic; this one
// covers the actual failure mode (a process dying with its sockets and
// page cache, not a polite Close).
//
// Skipped under -short: it builds and forks real binaries.
func TestMultiProcessKillReplicaMidStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash suite (builds and kill -9s real flodbd processes)")
	}

	base := t.TempDir()
	bin := filepath.Join(base, "flodbd")
	build := exec.Command("go", "build", "-o", bin, "flodb/cmd/flodbd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building flodbd: %v\n%s", err, out)
	}

	// --- spawn the ring ---------------------------------------------------
	type proc struct {
		id   string
		dir  string
		addr string
		cmd  *exec.Cmd
	}
	spawn := func(p *proc) {
		t.Helper()
		addrFile := filepath.Join(base, p.id+".addr")
		os.Remove(addrFile)
		listen := p.addr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		// Rebinding the same port right after SIGKILL can race the kernel
		// reclaiming it; a dead-on-arrival process is retried, not fatal.
		for attempt := 0; ; attempt++ {
			cmd := exec.Command(bin,
				"-db", p.dir, "-addr", listen, "-addr-file", addrFile,
				"-node-id", p.id, "-wal-writethrough")
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			ok := false
			for i := 0; i < 100; i++ {
				if b, err := os.ReadFile(addrFile); err == nil {
					p.addr, ok = string(b), true
					break
				}
				if cmd.ProcessState != nil {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if ok {
				p.cmd = cmd
				return
			}
			cmd.Process.Kill()
			cmd.Wait()
			if attempt >= 5 {
				t.Fatalf("%s: server never published its address", p.id)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	procs := make([]*proc, 3)
	for i := range procs {
		p := &proc{id: fmt.Sprintf("n%d", i+1), dir: filepath.Join(base, fmt.Sprintf("n%d", i+1))}
		procs[i] = p
		spawn(p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	})

	var members []Member
	for _, p := range procs {
		members = append(members, Member{ID: p.id, Addr: p.addr})
	}
	c, err := Open(Config{
		Members:       members,
		Replication:   2,
		WriteQuorum:   2,
		ReadQuorum:    1,
		HintDir:       filepath.Join(base, "hints"),
		ProbeInterval: 50 * time.Millisecond,
		ProbeFailK:    2,
		DialTimeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// --- the storm --------------------------------------------------------
	// Writers record every key whose Put RETURNED NIL — the acked set. An
	// ack during the outage is a degraded ack backed by a hint; it counts.
	const writers = 4
	stop := make(chan struct{})
	acked := make([][]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("storm-%d-%06d", w, i)
				if err := c.Put(bg, []byte(key), []byte("v-"+key)); err == nil {
					acked[w] = append(acked[w], key)
				}
			}
		}()
	}

	time.Sleep(400 * time.Millisecond) // healthy-phase writes
	victim := procs[2]
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed %s (pid %d) mid-storm", victim.id, victim.cmd.Process.Pid)

	time.Sleep(700 * time.Millisecond) // outage-phase writes: degraded acks + hints
	spawn(victim)                      // same -db, same -node-id, same address
	t.Logf("restarted %s on %s", victim.id, victim.addr)

	// Storm continues through the recovery; stop once the prober has marked
	// the victim up and the hint backlog has drained into it.
	waitFor(t, "victim marked up and hints drained", 30*time.Second, func() bool {
		return c.NodeStates()[victim.id] && c.HintsPending() == 0
	})
	close(stop)
	wg.Wait()

	st := c.Stats()
	t.Logf("storm: %d quorum acks, %d degraded acks, %d hints queued, %d replayed",
		st.ClusterQuorumWrites, st.ClusterDegradedWrites, st.ClusterHintsQueued, st.ClusterHintsReplayed)
	if st.ClusterDegradedWrites == 0 || st.ClusterHintsReplayed == 0 {
		t.Fatalf("storm never exercised the outage: degraded=%d replayed=%d",
			st.ClusterDegradedWrites, st.ClusterHintsReplayed)
	}

	// --- every acked write must be readable after the heal ----------------
	total := 0
	for w := range acked {
		total += len(acked[w])
		for _, key := range acked[w] {
			v, ok, err := c.Get(bg, []byte(key))
			if err != nil {
				t.Fatalf("get %s after heal: %v", key, err)
			}
			if !ok || string(v) != "v-"+key {
				t.Fatalf("acked write %s lost (ok=%v val=%q)", key, ok, v)
			}
		}
	}
	if total == 0 {
		t.Fatal("storm acked nothing")
	}

	// --- the healed replica must HOLD the hinted data, not just route -----
	// Kill a surviving owner: keys co-owned by it and the victim are now
	// served by the victim alone. If the hint drain had lied, this read
	// pass would surface it.
	survivor := procs[0]
	if err := survivor.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	survivor.cmd.Wait()
	waitFor(t, "survivor marked down", 10*time.Second, func() bool {
		return !c.NodeStates()[survivor.id]
	})
	for w := range acked {
		for _, key := range acked[w] {
			v, ok, err := c.Get(bg, []byte(key))
			if err != nil {
				t.Fatalf("get %s with %s down: %v", key, survivor.id, err)
			}
			if !ok || string(v) != "v-"+key {
				t.Fatalf("write %s lost once %s went down: healed replica missing it (ok=%v val=%q)",
					key, survivor.id, ok, v)
			}
		}
	}
	t.Logf("all %d acked writes survived kill -9 and a second owner loss", total)
}
