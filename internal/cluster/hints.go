package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flodb/internal/kv"
	"flodb/internal/wal"
	"flodb/internal/wire"
)

// hintLog is the per-member hinted-handoff queue: every write a
// coordinator could not deliver to one of the key's owners is appended
// here (and mirrored in memory), then replayed through the versioned
// plane when the member returns. Replay is safe to repeat and to race
// with fresh writes because every record is version-gated on the
// receiving node — a hint that was superseded simply lands stale.
//
// Persistence reuses the WAL framing in write-through mode, so queued
// hints survive a coordinator crash: reopening the same hint directory
// reloads the backlog.
type hintLog struct {
	path string

	mu      sync.Mutex
	w       *wal.Writer
	backlog []hintRec
}

type hintRec struct {
	durability kv.Durability
	rec        wire.VRecord
}

// openHintLog loads any backlog persisted at path and reopens the log
// for appending. The file is rewritten from the surviving backlog — a
// hint log is small (it only holds the down-node window), so compaction
// on open beats an append-reopen mode in the WAL layer.
func openHintLog(path string) (*hintLog, error) {
	h := &hintLog{path: path}
	if _, err := os.Stat(path); err == nil {
		err := wal.ReplayAll(path, func(rec []byte) error {
			if len(rec) < 1 {
				return fmt.Errorf("cluster: empty hint record")
			}
			vr, _, err := wire.ReadVRecord(rec[1:])
			if err != nil {
				return fmt.Errorf("cluster: hint record: %w", err)
			}
			vr.Key = append([]byte(nil), vr.Key...)
			vr.Value = append([]byte(nil), vr.Value...)
			h.backlog = append(h.backlog, hintRec{durability: kv.Durability(rec[0]), rec: vr})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if err := h.rewrite(); err != nil {
		return nil, err
	}
	return h, nil
}

// rewrite replaces the file with the current backlog. Caller holds mu
// (or has exclusive access during open).
func (h *hintLog) rewrite() error {
	if h.w != nil {
		h.w.Close()
	}
	w, err := wal.Create(h.path, wal.Options{WriteThrough: true})
	if err != nil {
		return err
	}
	for i := range h.backlog {
		if _, err := w.Append(encodeHint(h.backlog[i])); err != nil {
			w.Close()
			return err
		}
	}
	h.w = w
	return nil
}

func encodeHint(hr hintRec) []byte {
	buf := append(make([]byte, 0, 16+len(hr.rec.Key)+len(hr.rec.Value)), byte(hr.durability))
	return wire.AppendVRecord(buf, hr.rec)
}

// append queues one missed write. The key/value are copied; the caller's
// slices may be reused.
func (h *hintLog) append(d kv.Durability, rec wire.VRecord) error {
	rec.Key = append([]byte(nil), rec.Key...)
	rec.Value = append([]byte(nil), rec.Value...)
	hr := hintRec{durability: d, rec: rec}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil {
		return fmt.Errorf("cluster: hint log closed")
	}
	if _, err := h.w.Append(encodeHint(hr)); err != nil {
		return err
	}
	h.backlog = append(h.backlog, hr)
	return nil
}

// pending reports how many hints await replay.
func (h *hintLog) pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.backlog)
}

// snapshot copies the current backlog for a replay attempt.
func (h *hintLog) snapshot() []hintRec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]hintRec(nil), h.backlog...)
}

// drop removes the first n records (a successfully replayed prefix) and
// compacts the file. New hints appended during the replay stay queued.
func (h *hintLog) drop(n int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n <= 0 {
		return nil
	}
	if n > len(h.backlog) {
		n = len(h.backlog)
	}
	h.backlog = append([]hintRec(nil), h.backlog[n:]...)
	return h.rewrite()
}

// sync fsyncs the queued hints: the durability barrier's hint-log half.
func (h *hintLog) sync() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil || len(h.backlog) == 0 {
		return nil
	}
	return h.w.Sync()
}

// close flushes and closes the log, keeping the backlog on disk for the
// next open.
func (h *hintLog) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil {
		return nil
	}
	err := h.w.Close()
	h.w = nil
	return err
}

// hintPath names a member's hint file.
func hintPath(dir, memberID string) string {
	return filepath.Join(dir, memberID+".hints")
}
