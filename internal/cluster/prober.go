package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"flodb/internal/client"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

// probeLoop is the heartbeat: every ProbeInterval each member answers a
// Health RPC or accrues a failure. K consecutive failures mark it down
// (writes start hinting instead of timing out R times per op); one
// success marks it up and kicks its hint backlog draining. Mark-up ONLY
// happens here — the write path can take a node down but never up, so a
// single lucky packet doesn't flap a dying node back into the quorum.
func (c *Client) probeLoop() {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-ticker.C:
			for _, n := range c.nodes {
				c.probe(n)
			}
		}
	}
}

// probe checks one member, redialing if it has never connected.
func (c *Client) probe(n *node) {
	n.mu.Lock()
	cl := n.cl
	n.mu.Unlock()
	if cl == nil {
		fresh, err := client.Dial(n.member.Addr,
			client.WithConns(c.cfg.Conns), client.WithDialTimeout(c.cfg.DialTimeout))
		if err != nil {
			n.noteFailure(c.cfg.ProbeFailK)
			return
		}
		n.mu.Lock()
		if n.cl == nil {
			n.cl = fresh
		} else {
			fresh.Close()
		}
		cl = n.cl
		n.mu.Unlock()
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.DialTimeout)
	info, err := cl.Health(ctx)
	cancel()
	if err != nil {
		if n.noteFailure(c.cfg.ProbeFailK) {
			c.nodeDown(n, fmt.Sprintf("%d failed probes", c.cfg.ProbeFailK), err)
		}
		return
	}
	if err := c.checkIdentity(n, info); err != nil {
		// An identity or epoch mismatch is sticky: the peer is healthy but
		// WRONG (different ring config, or another node answering on the
		// member's address). Routing writes to it would split the keyspace.
		c.logf("cluster: node %s excluded: %v", n.member.ID, err)
		c.events.Emit(obs.Event{Type: obs.EventRingEpoch,
			Detail: fmt.Sprintf("%s excluded: %v", n.member.ID, err)})
		n.markDown()
		return
	}
	if n.markUp() {
		c.logf("cluster: node %s (%s) marked up", n.member.ID, n.member.Addr)
		c.events.Emit(obs.Event{Type: obs.EventRingUp,
			Detail: fmt.Sprintf("%s (%s)", n.member.ID, n.member.Addr)})
	}
	if n.hints.pending() > 0 {
		c.kickReplay(n)
	}
}

func (c *Client) checkIdentity(n *node, info wire.HealthInfo) error {
	if info.NodeID != "" && info.NodeID != n.member.ID {
		return fmt.Errorf("peer identifies as %q, membership says %q: %w",
			info.NodeID, n.member.ID, wire.ErrEpochMismatch)
	}
	if info.Epoch != 0 && info.Epoch != c.ring.Epoch() {
		return fmt.Errorf("peer ring epoch %#x, ours %#x: %w",
			info.Epoch, c.ring.Epoch(), wire.ErrEpochMismatch)
	}
	return nil
}

// kickReplay starts draining a member's hint backlog unless a replay is
// already running for it.
func (c *Client) kickReplay(n *node) {
	n.mu.Lock()
	if n.replaying || n.down {
		n.mu.Unlock()
		return
	}
	n.replaying = true
	n.mu.Unlock()
	c.repairWG.Add(1)
	go func() {
		defer c.repairWG.Done()
		defer func() {
			n.mu.Lock()
			n.replaying = false
			n.mu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		replayed, err := c.replayHints(ctx, n)
		if replayed > 0 || err != nil {
			c.logf("cluster: replayed %d hints to %s (pending %d, err=%v)",
				replayed, n.member.ID, n.hints.pending(), err)
		}
	}()
}

// replayChunk bounds one VApply during replay so a long outage's backlog
// streams in frame-cap-friendly pieces.
const replayChunk = 256

// replayHints pushes the member's backlog through the version-gated
// plane in order, dropping each successfully applied prefix from the
// log. Records are grouped into runs of equal durability class so the
// original write options survive the detour. On error the remaining
// backlog stays queued for the next probe tick.
func (c *Client) replayHints(ctx context.Context, n *node) (total int, err error) {
	start := time.Now()
	defer func() {
		if total > 0 {
			c.events.Emit(obs.Event{Type: obs.EventHintReplay, Dur: time.Since(start),
				Keys: int64(total), Detail: n.member.ID})
		}
	}()
	for {
		if c.closed.Load() && total > 0 {
			// During Close's final drain closed is already set; one pass
			// through the loop body is fine, endless loops are not.
			return total, nil
		}
		backlog := n.hints.snapshot()
		if len(backlog) == 0 {
			return total, nil
		}
		run := backlog
		if len(run) > replayChunk {
			run = run[:replayChunk]
		}
		// Trim the run to a single durability class.
		cls := run[0].durability
		end := 1
		for end < len(run) && run[end].durability == cls {
			end++
		}
		run = run[:end]

		cl, err := n.liveClient()
		if err != nil {
			return total, err
		}
		recs := make([]wire.VRecord, len(run))
		for i := range run {
			recs[i] = run[i].rec
		}
		var opts []kv.WriteOption
		if cls != kv.DurabilityDefault {
			opts = append(opts, kv.WithDurability(cls))
		}
		if _, _, err := cl.VApply(ctx, recs, opts...); err != nil {
			if errors.Is(err, kv.ErrUnavailable) {
				n.noteFailure(c.cfg.ProbeFailK)
			}
			return total, err
		}
		if err := n.hints.drop(len(run)); err != nil {
			return total, err
		}
		total += len(run)
		c.nHintsReplayed.Add(uint64(len(run)))
	}
}
