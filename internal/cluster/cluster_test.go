package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"flodb/internal/core"
	"flodb/internal/kv"
	"flodb/internal/server"
	"flodb/internal/wire"
)

var bg = context.Background()

// testNode is one in-process flodbd: an engine plus a server bound to a
// stable port, killable and restartable at the same address.
type testNode struct {
	t    *testing.T
	id   string
	dir  string
	addr string

	inner *core.DB
	srv   *server.Server
}

func startNode(t *testing.T, id, dir, addr string, epoch uint64) *testNode {
	t.Helper()
	n := &testNode{t: t, id: id, dir: dir, addr: addr}
	n.start(epoch)
	return n
}

func (n *testNode) start(epoch uint64) {
	n.t.Helper()
	inner, err := core.Open(core.Config{
		Dir:             n.dir,
		MemoryBytes:     1 << 20,
		WALWriteThrough: true,
	})
	if err != nil {
		n.t.Fatal(err)
	}
	var l net.Listener
	for i := 0; ; i++ {
		l, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		if i > 50 {
			inner.Close()
			n.t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond) // the previous incarnation's port
	}
	if n.addr == "127.0.0.1:0" {
		n.addr = l.Addr().String()
	}
	srv := server.New(server.Config{Store: inner, NodeID: n.id, RingEpoch: epoch})
	go srv.Serve(l)
	n.inner, n.srv = inner, srv
}

// kill is the replica-death simulation: sockets cut, engine abandoned
// with its staged state — nothing drains, like kill -9.
func (n *testNode) kill() {
	n.srv.Close()
	n.inner.CrashForTesting()
	n.inner, n.srv = nil, nil
}

func (n *testNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.inner.Close()
		n.inner, n.srv = nil, nil
	}
}

// threeNodes starts a ring of three and a coordinator at R=2 W=2 Rq=1
// with a fast prober.
func threeNodes(t *testing.T) (*Client, []*testNode) {
	t.Helper()
	base := t.TempDir()
	ids := []Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}
	ring, err := NewRing(ids, DefaultVnodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*testNode
	var members []Member
	for _, m := range ids {
		n := startNode(t, m.ID, filepath.Join(base, m.ID), "127.0.0.1:0", ring.Epoch())
		nodes = append(nodes, n)
		members = append(members, Member{ID: m.ID, Addr: n.addr})
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.stop()
		}
	})
	c, err := Open(Config{
		Members:       members,
		Replication:   2,
		WriteQuorum:   2,
		ReadQuorum:    1,
		HintDir:       filepath.Join(base, "hints"),
		ProbeInterval: 25 * time.Millisecond,
		ProbeFailK:    2,
		DialTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, nodes
}

// keyOwnedBy finds a key whose PRIMARY owner is the given node — the
// deterministic way to aim writes at a member we are about to kill.
func keyOwnedBy(t *testing.T, c *Client, id string, salt int) []byte {
	t.Helper()
	members := c.Ring().Members()
	for i := 0; i < 100000; i++ {
		k := []byte(fmt.Sprintf("k-%d-%d", salt, i))
		if members[c.Ring().Owners(k)[0]].ID == id {
			return k
		}
	}
	t.Fatalf("no key with primary owner %s found", id)
	return nil
}

func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterQuorumRoundTrip(t *testing.T) {
	c, _ := threeNodes(t)
	defer c.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if err := c.Put(bg, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := c.Get(bg, []byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d: %q %v %v", i, v, ok, err)
		}
	}
	pairs, err := c.Scan(bg, []byte("k"), []byte("l"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("scan returned %d pairs, want %d (replica copies must merge, not duplicate)", len(pairs), n)
	}
	for i, p := range pairs {
		if want := fmt.Sprintf("k%04d", i); string(p.Key) != want {
			t.Fatalf("pair %d: key %q, want %q", i, p.Key, want)
		}
	}
	st := c.Stats()
	if st.ClusterQuorumWrites != n {
		t.Fatalf("ClusterQuorumWrites = %d, want %d", st.ClusterQuorumWrites, n)
	}
	if st.ClusterNodesUp != 3 || st.ClusterNodesDown != 0 {
		t.Fatalf("nodes up/down = %d/%d, want 3/0", st.ClusterNodesUp, st.ClusterNodesDown)
	}
}

// A dead replica degrades writes to hints and heals on restart: the
// hinted records drain and the healed node can serve them alone.
func TestClusterHintedHandoffDrainsOnRestart(t *testing.T) {
	c, nodes := threeNodes(t)
	defer c.Close()

	victim := nodes[1]
	k := keyOwnedBy(t, c, victim.id, 1)
	victim.kill()
	waitFor(t, "mark-down", 5*time.Second, func() bool { return !c.NodeStates()[victim.id] })

	if err := c.Put(bg, k, []byte("during-outage")); err != nil {
		t.Fatalf("write during single-replica outage: %v", err)
	}
	st := c.Stats()
	if st.ClusterHintsQueued == 0 || st.ClusterDegradedWrites == 0 {
		t.Fatalf("outage write queued no hint: %+v", st)
	}
	if v, ok, err := c.Get(bg, k); err != nil || !ok || string(v) != "during-outage" {
		t.Fatalf("read during outage: %q %v %v", v, ok, err)
	}

	victim.start(c.Ring().Epoch())
	waitFor(t, "mark-up", 10*time.Second, func() bool { return c.NodeStates()[victim.id] })
	waitFor(t, "hint drain", 10*time.Second, func() bool { return c.HintsPending() == 0 })

	// The healed replica must now hold the write: kill the OTHER owner and
	// read through the cluster.
	owners := c.Ring().Owners(k)
	members := c.Ring().Members()
	for _, oi := range owners {
		if members[oi].ID != victim.id {
			for _, n := range nodes {
				if n.id == members[oi].ID {
					n.kill()
				}
			}
		}
	}
	waitFor(t, "other owner down", 5*time.Second, func() bool {
		for _, oi := range owners {
			if id := members[oi].ID; id != victim.id && c.NodeStates()[id] {
				return false
			}
		}
		return true
	})
	if v, ok, err := c.Get(bg, k); err != nil || !ok || string(v) != "during-outage" {
		t.Fatalf("healed replica does not serve the hinted write: %q %v %v", v, ok, err)
	}
	if st := c.Stats(); st.ClusterHintsReplayed == 0 {
		t.Fatalf("ClusterHintsReplayed = 0 after drain")
	}
}

// Hints must survive a coordinator crash: queued on disk, drained by the
// NEXT coordinator incarnation.
func TestClusterHintsSurviveCoordinatorRestart(t *testing.T) {
	base := t.TempDir()
	ids := []Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}
	ring, _ := NewRing(ids, DefaultVnodes, 2)
	var nodes []*testNode
	var members []Member
	for _, m := range ids {
		n := startNode(t, m.ID, filepath.Join(base, m.ID), "127.0.0.1:0", ring.Epoch())
		defer n.stop()
		nodes = append(nodes, n)
		members = append(members, Member{ID: m.ID, Addr: n.addr})
	}
	cfg := Config{
		Members: members, Replication: 2, WriteQuorum: 2, ReadQuorum: 1,
		HintDir:       filepath.Join(base, "hints"),
		ProbeInterval: 25 * time.Millisecond, ProbeFailK: 2,
		DialTimeout: 500 * time.Millisecond,
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	victim := nodes[2]
	k := keyOwnedBy(t, c, victim.id, 2)
	victim.kill()
	waitFor(t, "mark-down", 5*time.Second, func() bool { return !c.NodeStates()[victim.id] })
	if err := c.Put(bg, k, []byte("hinted")); err != nil {
		t.Fatal(err)
	}
	if c.HintsPending() == 0 {
		t.Fatal("no hint queued")
	}
	c.CrashForTesting() // coordinator dies with the hint on disk

	victim.start(ring.Epoch())
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.HintsPending() == 0 {
		t.Fatal("reopened coordinator lost the persisted hint")
	}
	waitFor(t, "hint drain after coordinator restart", 10*time.Second, func() bool {
		return c2.HintsPending() == 0
	})
	// Serve the key from the healed replica alone.
	members2 := c2.Ring().Members()
	for _, oi := range c2.Ring().Owners(k) {
		if members2[oi].ID != victim.id {
			for _, n := range nodes {
				if n.id == members2[oi].ID {
					n.kill()
				}
			}
		}
	}
	waitFor(t, "other owner down", 5*time.Second, func() bool {
		for _, oi := range c2.Ring().Owners(k) {
			if id := members2[oi].ID; id != victim.id && c2.NodeStates()[id] {
				return false
			}
		}
		return true
	})
	if v, ok, err := c2.Get(bg, k); err != nil || !ok || string(v) != "hinted" {
		t.Fatalf("hint did not reach the healed replica: %q %v %v", v, ok, err)
	}
}

// Read-repair: a replica that answers with a stale (or missing) copy is
// pushed forward by the read itself.
func TestClusterReadRepair(t *testing.T) {
	c, nodes := threeNodes(t)
	defer c.Close()

	k := []byte("repair-me")
	if err := c.Put(bg, k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Wind one owner's copy back to a STALE version by writing directly
	// into its engine, bypassing the coordinator.
	owners := c.Ring().Owners(k)
	members := c.Ring().Members()
	var stale *testNode
	for _, n := range nodes {
		if n.id == members[owners[1]].ID {
			stale = n
		}
	}
	old := wire.AppendVValue(nil, 1, false, []byte("v0"))
	if err := stale.inner.Put(bg, k, old); err != nil {
		t.Fatal(err)
	}

	if v, ok, err := c.Get(bg, k); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("read merged wrong copy: %q %v %v", v, ok, err)
	}
	// The repair is asynchronous; watch the stale engine converge. The
	// counter increments after the repair write lands, so wait for both
	// in the same poll — checking it the instant the value flips races
	// the tail of the repair goroutine.
	waitFor(t, "read-repair", 5*time.Second, func() bool {
		c.Get(bg, k) // each read re-triggers repair if still stale
		raw, ok, err := stale.inner.Get(bg, k)
		if err != nil || !ok {
			return false
		}
		_, _, payload, err := wire.ParseVValue(raw)
		return err == nil && bytes.Equal(payload, []byte("v1")) &&
			c.Stats().ClusterReadRepairs > 0
	})
}

// A delete must not resurrect when a stale replica heals: tombstones are
// versioned writes.
func TestClusterDeleteDoesNotResurrect(t *testing.T) {
	c, nodes := threeNodes(t)
	defer c.Close()

	victim := nodes[0]
	k := keyOwnedBy(t, c, victim.id, 3)
	if err := c.Put(bg, k, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	victim.kill() // keeps the pre-delete copy
	waitFor(t, "mark-down", 5*time.Second, func() bool { return !c.NodeStates()[victim.id] })
	if err := c.Delete(bg, k); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(bg, k); err != nil || ok {
		t.Fatalf("deleted key visible during outage: ok=%v err=%v", ok, err)
	}

	victim.start(c.Ring().Epoch())
	waitFor(t, "mark-up", 10*time.Second, func() bool { return c.NodeStates()[victim.id] })
	waitFor(t, "hint drain", 10*time.Second, func() bool { return c.HintsPending() == 0 })
	if _, ok, err := c.Get(bg, k); err != nil || ok {
		t.Fatalf("deleted key resurrected after heal: ok=%v err=%v", ok, err)
	}
	// And it must not reappear in scans either.
	pairs, err := c.Scan(bg, k, append(append([]byte(nil), k...), 0xff))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("tombstoned key surfaced in scan: %q", pairs[0].Key)
	}
}

// Losing R-Rq+1 owners makes quorum reads for their ranges fail typed,
// and a write with NO live owner fails typed too.
func TestClusterUnavailabilityIsTyped(t *testing.T) {
	c, nodes := threeNodes(t)
	defer c.Close()
	k := keyOwnedBy(t, c, nodes[0].id, 4)
	owners := c.Ring().Owners(k)
	members := c.Ring().Members()
	for _, oi := range owners {
		for _, n := range nodes {
			if n.id == members[oi].ID {
				n.kill()
			}
		}
	}
	waitFor(t, "both owners down", 5*time.Second, func() bool {
		for _, oi := range owners {
			if c.NodeStates()[members[oi].ID] {
				return false
			}
		}
		return true
	})
	if _, _, err := c.Get(bg, k); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("read with both owners dead: %v, want ErrUnavailable", err)
	}
	if err := c.Put(bg, k, []byte("x")); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("write with both owners dead: %v, want ErrUnavailable", err)
	}
	// Scans need coverage: 2 of 3 members down exceeds R-Rq=1.
	if _, err := c.Scan(bg, nil, nil); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("scan with 2 members down: %v, want ErrUnavailable", err)
	}
}

// A peer from a DIFFERENT ring configuration must be excluded, not
// written to: the epoch check is sticky.
func TestClusterEpochMismatchExcludesPeer(t *testing.T) {
	base := t.TempDir()
	ids := []Member{{ID: "n1"}, {ID: "n2"}}
	ring, _ := NewRing(ids, DefaultVnodes, 2)
	n1 := startNode(t, "n1", filepath.Join(base, "n1"), "127.0.0.1:0", ring.Epoch())
	defer n1.stop()
	// n2 believes in a different ring (epoch from another config).
	n2 := startNode(t, "n2", filepath.Join(base, "n2"), "127.0.0.1:0", ring.Epoch()+1)
	defer n2.stop()

	c, err := Open(Config{
		Members:       []Member{{ID: "n1", Addr: n1.addr}, {ID: "n2", Addr: n2.addr}},
		Replication:   2,
		WriteQuorum:   1,
		ReadQuorum:    1,
		HintDir:       filepath.Join(base, "hints"),
		ProbeInterval: 25 * time.Millisecond,
		ProbeFailK:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "epoch exclusion", 5*time.Second, func() bool { return !c.NodeStates()["n2"] })
	// And it STAYS excluded: probes keep succeeding at the wire level but
	// the epoch keeps mismatching.
	time.Sleep(100 * time.Millisecond)
	if c.NodeStates()["n2"] {
		t.Fatal("epoch-mismatched peer flapped back up")
	}
}

// Batches spread over the ring, land atomically per node, and read back
// coherently through the merged plane.
func TestClusterApplyBatch(t *testing.T) {
	c, _ := threeNodes(t)
	defer c.Close()
	b := kv.NewBatch()
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("b%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	b.Delete([]byte("b007"))
	if err := c.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Scan(bg, []byte("b"), []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 49 {
		t.Fatalf("scan after batch: %d pairs, want 49", len(pairs))
	}
	if _, ok, _ := c.Get(bg, []byte("b007")); ok {
		t.Fatal("batch-deleted key still visible")
	}
	st := c.Stats()
	if st.Batches != 1 || st.BatchOps != 51 {
		t.Fatalf("batch accounting: %d/%d, want 1/51", st.Batches, st.BatchOps)
	}
}
