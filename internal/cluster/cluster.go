package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/client"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/wire"
)

// Config describes a cluster a coordinator joins.
type Config struct {
	// Members is the static seed list. Required. IDs must be unique and
	// stable across restarts; addresses may change (the ring hashes IDs).
	Members []Member
	// Replication is R: how many members own each key. Default
	// min(2, len(Members)).
	Replication int
	// WriteQuorum is W: how many owner acks a write needs to count as
	// quorum-committed. Writes that reach fewer LIVE owners (the rest
	// hinted) still succeed but count as degraded. Default Replication.
	WriteQuorum int
	// ReadQuorum is Rq: how many owner responses a read needs. Reads
	// consult every live owner and merge newest-version-wins; Rq is the
	// floor below which the read fails as unavailable. Default 1.
	ReadQuorum int
	// Vnodes is the virtual-node count per member. Default DefaultVnodes.
	Vnodes int
	// HintDir persists the per-member hinted-handoff logs. Required.
	HintDir string
	// ProbeInterval is the heartbeat period. Default 1s.
	ProbeInterval time.Duration
	// ProbeFailK marks a member down after K consecutive failures
	// (probes and write-path errors both count). Default 3.
	ProbeFailK int
	// DialTimeout bounds each connection attempt and health probe.
	// Default 1s — shorter than internal/client's 5s because a cluster
	// has somewhere else to go while a node is down.
	DialTimeout time.Duration
	// Conns is the per-member connection-pool size. Default 2.
	Conns int
	// Logf, when set, receives membership transitions and replay
	// diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *Config) defaults() error {
	if len(cfg.Members) == 0 {
		return fmt.Errorf("cluster: no members")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
		if cfg.Replication > len(cfg.Members) {
			cfg.Replication = len(cfg.Members)
		}
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replication
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = 1
	}
	if cfg.WriteQuorum > cfg.Replication || cfg.ReadQuorum > cfg.Replication {
		return fmt.Errorf("cluster: quorums W=%d Rq=%d exceed replication R=%d",
			cfg.WriteQuorum, cfg.ReadQuorum, cfg.Replication)
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = DefaultVnodes
	}
	if cfg.HintDir == "" {
		return fmt.Errorf("cluster: HintDir is required (hinted handoff must survive a coordinator restart)")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeFailK <= 0 {
		cfg.ProbeFailK = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	return nil
}

// node is one member's runtime state.
type node struct {
	member Member
	hints  *hintLog

	mu        sync.Mutex
	cl        *client.Client // nil until a dial has ever succeeded
	down      bool
	fails     int
	replaying bool
}

func (n *node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// liveClient returns the node's client for an operation, failing fast
// when the node is marked down (the prober owns recovery).
func (n *node) liveClient() (*client.Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down || n.cl == nil {
		return nil, fmt.Errorf("cluster: node %s is down: %w", n.member.ID, kv.ErrUnavailable)
	}
	return n.cl, nil
}

// noteFailure counts one failed interaction; at k consecutive failures
// the node transitions down (returns true exactly on the transition).
func (n *node) noteFailure(k int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails++
	if !n.down && n.fails >= k {
		n.down = true
		return true
	}
	return false
}

// markUp resets the failure count; returns true on a down→up transition.
func (n *node) markUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails = 0
	was := n.down
	n.down = false
	return was
}

// markDown forces the down state (epoch/identity mismatch).
func (n *node) markDown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

// Client is a coordinator: a full kv.Store whose keyspace is spread over
// the ring with quorum I/O, read-repair, and hinted handoff. Many
// coordinators over the same membership coexist without coordination —
// versions are (coordinator-local) monotone timestamps and every replica
// write is newest-wins.
type Client struct {
	cfg  Config
	ring *Ring
	// nodes is indexed like ring.Members().
	nodes []*node
	// events records ring transitions (member up/down, epoch exclusions)
	// and hint-replay completions for flodbctl top and /events.
	events *obs.EventLog

	ver    atomic.Uint64
	closed atomic.Bool

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	repairWG  sync.WaitGroup

	// Coordinator-level counters (see Stats: engine counters are summed
	// from the nodes; these are counted once per cluster-level call).
	nPuts, nGets, nDeletes, nScans   atomic.Uint64
	nBatches, nBatchOps, nIters      atomic.Uint64
	nSnapshots, nCheckpoints, nSyncs atomic.Uint64
	nQuorumWrites, nDegradedWrites   atomic.Uint64
	nReadRepairs                     atomic.Uint64
	nHintsQueued, nHintsReplayed     atomic.Uint64
}

// Open joins the cluster: builds the ring, loads persisted hints, dials
// every member (unreachable members start down and heal via the prober),
// and starts the heartbeat.
func Open(cfg Config) (*Client, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Members, cfg.Vnodes, cfg.Replication)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.HintDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: hint dir: %w", err)
	}
	c := &Client{cfg: cfg, ring: ring, stopProbe: make(chan struct{}), events: obs.NewEventLog(0)}
	c.events.Emit(obs.Event{Type: obs.EventRingEpoch,
		Detail: fmt.Sprintf("ring epoch %#x over %d members (R=%d W=%d Rq=%d)",
			ring.Epoch(), len(ring.Members()), cfg.Replication, cfg.WriteQuorum, cfg.ReadQuorum)})
	// Versions are coordinator-assigned and must outrank every version a
	// previous coordinator incarnation assigned: seed from the clock,
	// count up from there.
	c.ver.Store(uint64(time.Now().UnixNano()))

	for _, m := range ring.Members() {
		h, err := openHintLog(hintPath(cfg.HintDir, m.ID))
		if err != nil {
			for _, n := range c.nodes {
				n.hints.close()
			}
			return nil, err
		}
		c.nodes = append(c.nodes, &node{member: m, hints: h})
	}

	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			cl, err := client.Dial(n.member.Addr,
				client.WithConns(cfg.Conns), client.WithDialTimeout(cfg.DialTimeout))
			n.mu.Lock()
			if err != nil {
				n.down = true
				n.fails = cfg.ProbeFailK
			} else {
				n.cl = cl
			}
			n.mu.Unlock()
			if err != nil {
				c.logf("cluster: node %s (%s) unreachable at open: %v", n.member.ID, n.member.Addr, err)
			}
		}(n)
	}
	wg.Wait()

	c.probeWG.Add(1)
	go c.probeLoop()
	// Backlogs persisted by a previous coordinator run drain as soon as
	// their targets answer a probe; kick the reachable ones now.
	for _, n := range c.nodes {
		if !n.isDown() && n.hints.pending() > 0 {
			c.kickReplay(n)
		}
	}
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// nodeDown records an up→down transition on the operator log and the
// event ring. Callers invoke it exactly on the transition (noteFailure
// returned true), never per failed request.
func (c *Client) nodeDown(n *node, reason string, err error) {
	c.logf("cluster: node %s marked down (%s): %v", n.member.ID, reason, err)
	c.events.Emit(obs.Event{Type: obs.EventRingDown,
		Detail: fmt.Sprintf("%s (%s): %s: %v", n.member.ID, n.member.Addr, reason, err)})
}

// Ring exposes the routing table (flodbctl, tests).
func (c *Client) Ring() *Ring { return c.ring }

// NodeStates reports each member's prober view (ring order).
func (c *Client) NodeStates() map[string]bool {
	states := make(map[string]bool, len(c.nodes))
	for _, n := range c.nodes {
		states[n.member.ID] = !n.isDown()
	}
	return states
}

// HintsPending sums the queued handoff records across members.
func (c *Client) HintsPending() int {
	total := 0
	for _, n := range c.nodes {
		total += n.hints.pending()
	}
	return total
}

func (c *Client) checkOpen() error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: %w", kv.ErrClosed)
	}
	return nil
}

func (c *Client) nextVersion() uint64 { return c.ver.Add(1) }

// writeClass resolves the caller's durability class byte (for the hint
// record; the live RPC forwards the options themselves).
func writeClass(opts []kv.WriteOption) kv.Durability {
	var o kv.WriteOptions
	for _, opt := range opts {
		if opt != nil {
			opt.ApplyWrite(&o)
		}
	}
	return o.Durability
}

// --- Writes ------------------------------------------------------------------

// Put replicates key=value to its R owners, acking at the write quorum.
func (c *Client) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	c.nPuts.Add(1)
	return c.replicate(ctx, wire.VRecord{Version: c.nextVersion(), Key: key, Value: value}, opts)
}

// Delete replicates a versioned tombstone — a stale replica must never
// resurrect the value, so deletes are writes, filtered out by reads.
func (c *Client) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	c.nDeletes.Add(1)
	return c.replicate(ctx, wire.VRecord{Version: c.nextVersion(), Tombstone: true, Key: key}, opts)
}

// replicate fans one record to its owners: live owners get the RPC,
// unreachable owners get a hint. The write succeeds when at least one
// owner acked and every miss was unavailability (now hinted); it counts
// as quorum only at ≥ W real acks.
func (c *Client) replicate(ctx context.Context, rec wire.VRecord, opts []kv.WriteOption) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	owners := c.ring.Owners(rec.Key)
	type result struct {
		n   *node
		err error
	}
	results := make(chan result, len(owners))
	for _, oi := range owners {
		go func(n *node) {
			results <- result{n, c.vputNode(ctx, n, rec, opts)}
		}(c.nodes[oi])
	}
	acks := 0
	var hardErr error
	for range owners {
		r := <-results
		switch {
		case r.err == nil:
			acks++
		case errors.Is(r.err, kv.ErrUnavailable):
			if herr := r.n.hints.append(writeClass(opts), rec); herr != nil {
				hardErr = herr
			} else {
				c.nHintsQueued.Add(1)
			}
		default:
			hardErr = r.err
		}
	}
	if hardErr != nil {
		return hardErr
	}
	if acks == 0 {
		return fmt.Errorf("cluster: no live replica reachable for write: %w", kv.ErrUnavailable)
	}
	if acks >= c.cfg.WriteQuorum {
		c.nQuorumWrites.Add(1)
	} else {
		c.nDegradedWrites.Add(1)
	}
	return nil
}

func (c *Client) vputNode(ctx context.Context, n *node, rec wire.VRecord, opts []kv.WriteOption) error {
	cl, err := n.liveClient()
	if err != nil {
		return err
	}
	_, err = cl.VPut(ctx, rec, opts...)
	if err != nil && errors.Is(err, kv.ErrUnavailable) {
		if n.noteFailure(c.cfg.ProbeFailK) {
			c.nodeDown(n, "write path", err)
		}
	}
	return err
}

// Apply commits the batch cluster-wide. Per NODE the sub-batch lands
// atomically (one engine batch, one WAL record); ACROSS nodes atomicity
// honestly weakens to per-op quorum — a coordinator crash mid-fan-out
// can leave a batch applied on some owners and hinted for others, healed
// forward (never rolled back) by replay and read-repair.
func (c *Client) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	var recs []wire.VRecord
	err := kv.ForEachOp(kv.EncodeBatchRecord(b), func(kind keys.Kind, key, value []byte) error {
		recs = append(recs, wire.VRecord{
			Version:   c.nextVersion(),
			Tombstone: kind == keys.KindDelete,
			Key:       append([]byte(nil), key...),
			Value:     append([]byte(nil), value...),
		})
		return nil
	})
	if err != nil {
		return err
	}
	c.nBatches.Add(1)
	c.nBatchOps.Add(uint64(len(recs)))
	if len(recs) == 0 {
		return nil
	}

	perNode := map[int][]wire.VRecord{}
	ownersOf := make([][]int, len(recs))
	for i := range recs {
		owners := c.ring.Owners(recs[i].Key)
		ownersOf[i] = owners
		for _, oi := range owners {
			perNode[oi] = append(perNode[oi], recs[i])
		}
	}

	type result struct {
		oi  int
		err error
	}
	results := make(chan result, len(perNode))
	for oi, sub := range perNode {
		go func(oi int, sub []wire.VRecord) {
			err := func() error {
				cl, err := c.nodes[oi].liveClient()
				if err != nil {
					return err
				}
				_, _, err = cl.VApply(ctx, sub, opts...)
				if err != nil && errors.Is(err, kv.ErrUnavailable) {
					if c.nodes[oi].noteFailure(c.cfg.ProbeFailK) {
						c.nodeDown(c.nodes[oi], "write path", err)
					}
				}
				return err
			}()
			results <- result{oi, err}
		}(oi, sub)
	}
	acked := map[int]bool{}
	var hardErr error
	for range perNode {
		r := <-results
		switch {
		case r.err == nil:
			acked[r.oi] = true
		case errors.Is(r.err, kv.ErrUnavailable):
			n := c.nodes[r.oi]
			cls := writeClass(opts)
			for _, rec := range perNode[r.oi] {
				if herr := n.hints.append(cls, rec); herr != nil {
					hardErr = herr
					break
				}
				c.nHintsQueued.Add(1)
			}
		default:
			hardErr = r.err
		}
	}
	if hardErr != nil {
		return hardErr
	}
	minAcks := c.cfg.Replication + 1
	for i := range recs {
		a := 0
		for _, oi := range ownersOf[i] {
			if acked[oi] {
				a++
			}
		}
		if a < minAcks {
			minAcks = a
		}
	}
	if minAcks == 0 {
		return fmt.Errorf("cluster: batch op with no live replica: %w", kv.ErrUnavailable)
	}
	if minAcks >= c.cfg.WriteQuorum {
		c.nQuorumWrites.Add(1)
	} else {
		c.nDegradedWrites.Add(1)
	}
	return nil
}

// --- Reads -------------------------------------------------------------------

type readCopy struct {
	n     *node
	ver   uint64
	tomb  bool
	val   []byte
	found bool
	err   error
}

// Get consults every live owner, answers from the newest version, and
// pushes that version to any stale or missing replica (read-repair).
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	c.nGets.Add(1)
	if err := c.checkOpen(); err != nil {
		return nil, false, err
	}
	owners := c.ring.Owners(key)
	copies, err := c.readOwners(ctx, owners, key)
	if err != nil {
		return nil, false, err
	}
	best, repairs := pickNewest(copies)
	c.repairAsync(key, best, repairs)
	if !best.found || best.tomb {
		return nil, false, nil
	}
	return best.val, true, nil
}

// readOwners queries the live owners in parallel, failing below the read
// quorum. Hard (non-availability) errors win over quorum accounting.
func (c *Client) readOwners(ctx context.Context, owners []int, key []byte) ([]readCopy, error) {
	results := make(chan readCopy, len(owners))
	for _, oi := range owners {
		go func(n *node) {
			rc := readCopy{n: n}
			cl, err := n.liveClient()
			if err != nil {
				rc.err = err
				results <- rc
				return
			}
			raw, found, err := cl.Get(ctx, key)
			if err != nil {
				if errors.Is(err, kv.ErrUnavailable) && n.noteFailure(c.cfg.ProbeFailK) {
					c.nodeDown(n, "read path", err)
				}
				rc.err = err
				results <- rc
				return
			}
			if found {
				rc.found = true
				rc.ver, rc.tomb, rc.val = parseStored(raw)
			}
			results <- rc
		}(c.nodes[oi])
	}
	copies := make([]readCopy, 0, len(owners))
	successes := 0
	var hardErr error
	for range owners {
		rc := <-results
		if rc.err == nil {
			successes++
		} else if !errors.Is(rc.err, kv.ErrUnavailable) {
			hardErr = rc.err
		}
		copies = append(copies, rc)
	}
	if hardErr != nil {
		return nil, hardErr
	}
	if successes < c.cfg.ReadQuorum {
		return nil, fmt.Errorf("cluster: %d of %d owners answered, read quorum is %d: %w",
			successes, len(owners), c.cfg.ReadQuorum, kv.ErrUnavailable)
	}
	return copies, nil
}

// parseStored decodes a replica's stored value; an unversioned legacy
// value reads as version 0 (any replicated write supersedes it).
func parseStored(raw []byte) (ver uint64, tomb bool, payload []byte) {
	ver, tomb, payload, err := wire.ParseVValue(raw)
	if err != nil {
		return 0, false, raw
	}
	return ver, tomb, payload
}

// pickNewest chooses the winning copy and the responders that need it
// pushed (stale version, or answered "not found" while a newer copy
// exists).
func pickNewest(copies []readCopy) (best readCopy, repairs []*node) {
	for _, rc := range copies {
		if rc.err != nil || !rc.found {
			continue
		}
		if !best.found || rc.ver > best.ver {
			best = rc
		}
	}
	if !best.found {
		return best, nil
	}
	for _, rc := range copies {
		if rc.err != nil || rc.n == best.n {
			continue
		}
		if !rc.found || rc.ver < best.ver {
			repairs = append(repairs, rc.n)
		}
	}
	return best, repairs
}

// repairAsync pushes the winning copy to stale replicas in the
// background; reads never wait on repairs.
func (c *Client) repairAsync(key []byte, best readCopy, targets []*node) {
	if !best.found || len(targets) == 0 || c.closed.Load() {
		return
	}
	rec := wire.VRecord{
		Version:   best.ver,
		Tombstone: best.tomb,
		Key:       append([]byte(nil), key...),
		Value:     append([]byte(nil), best.val...),
	}
	c.repairWG.Add(1)
	go func() {
		defer c.repairWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, n := range targets {
			cl, err := n.liveClient()
			if err != nil {
				continue
			}
			if _, err := cl.VPut(ctx, rec); err == nil {
				c.nReadRepairs.Add(1)
			}
		}
	}()
}

// Scan materializes the merged range — see NewIterator for semantics.
func (c *Client) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	c.nScans.Add(1)
	it, err := c.newMergedLive(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return drainIter(it)
}

func drainIter(it kv.Iterator) ([]kv.Pair, error) {
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// NewIterator merges per-member range cursors, newest version winning on
// replica overlap and tombstones filtered. Every member holds only the
// keys it owns, so the union over live members covers the keyspace as
// long as no more than R−Rq members are down.
func (c *Client) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	c.nIters.Add(1)
	return c.newMergedLive(ctx, low, high)
}

func (c *Client) newMergedLive(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	var srcs []kv.Iterator
	downCount := 0
	fail := func(err error) (kv.Iterator, error) {
		for _, s := range srcs {
			s.Close()
		}
		return nil, err
	}
	for _, n := range c.nodes {
		cl, err := n.liveClient()
		if err != nil {
			downCount++
			continue
		}
		it, err := cl.NewIterator(ctx, low, high)
		if err != nil {
			if errors.Is(err, kv.ErrUnavailable) {
				downCount++
				continue
			}
			return fail(err)
		}
		srcs = append(srcs, it)
	}
	if downCount > c.cfg.Replication-c.cfg.ReadQuorum {
		return fail(fmt.Errorf("cluster: %d members down exceeds R-Rq=%d, scan coverage not guaranteed: %w",
			downCount, c.cfg.Replication-c.cfg.ReadQuorum, kv.ErrUnavailable))
	}
	return newMergedIter(srcs), nil
}

// --- Barriers, snapshots, checkpoints ----------------------------------------

// Sync raises the durability barrier: every live member promotes its
// acked-buffered window, and the hint logs fsync so queued handoffs are
// as durable as the writes they stand in for. Counted once,
// coordinator-side (Stats.SyncBarriers sums would triple-count fan-out).
func (c *Client) Sync(ctx context.Context) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.nSyncs.Add(1)
	var wg sync.WaitGroup
	errs := make(chan error, len(c.nodes))
	for _, n := range c.nodes {
		cl, err := n.liveClient()
		if err != nil {
			continue // a down member has hints, not acked writes, to protect
		}
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			if err := cl.Sync(ctx); err != nil && !errors.Is(err, kv.ErrUnavailable) {
				errs <- err
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	for _, n := range c.nodes {
		if err := n.hints.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot pins a repeatable-read view on EVERY member (reads merge the
// owners' pinned views deterministically), so it requires full
// membership: a snapshot with a blind spot would not be repeatable.
func (c *Client) Snapshot(ctx context.Context) (kv.View, error) {
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	c.nSnapshots.Add(1)
	views := make([]kv.View, len(c.nodes))
	fail := func(err error) (kv.View, error) {
		for _, v := range views {
			if v != nil {
				v.Close()
			}
		}
		return nil, err
	}
	for i, n := range c.nodes {
		cl, err := n.liveClient()
		if err != nil {
			return fail(fmt.Errorf("cluster: snapshot needs every member: %w", err))
		}
		v, err := cl.Snapshot(ctx)
		if err != nil {
			return fail(err)
		}
		views[i] = v
	}
	return &clusterView{c: c, views: views}, nil
}

// Checkpoint fans out: every member checkpoints its engine into
// dir/<memberID> (a path on ITS filesystem), and the coordinator drops a
// CLUSTER.json manifest beside them describing the ring, so the
// checkpoint reopens as the same cluster.
func (c *Client) Checkpoint(ctx context.Context, dir string) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.nCheckpoints.Add(1)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(c.nodes))
	for _, n := range c.nodes {
		cl, err := n.liveClient()
		if err != nil {
			errs <- fmt.Errorf("cluster: checkpoint needs every member: %w", err)
			continue
		}
		wg.Add(1)
		go func(n *node, cl *client.Client) {
			defer wg.Done()
			if err := cl.Checkpoint(ctx, filepath.Join(dir, n.member.ID)); err != nil {
				errs <- err
			}
		}(n, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	manifest := Manifest{
		Members:     c.ring.Members(),
		Replication: c.cfg.Replication,
		WriteQuorum: c.cfg.WriteQuorum,
		ReadQuorum:  c.cfg.ReadQuorum,
		Vnodes:      c.cfg.Vnodes,
		Epoch:       c.ring.Epoch(),
	}
	blob, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "CLUSTER.json"), blob, 0o644)
}

// Manifest is the CLUSTER.json a checkpoint carries: enough to rebuild
// the identical ring over the checkpointed node directories.
type Manifest struct {
	Members     []Member `json:"members"`
	Replication int      `json:"replication"`
	WriteQuorum int      `json:"write_quorum"`
	ReadQuorum  int      `json:"read_quorum"`
	Vnodes      int      `json:"vnodes"`
	Epoch       uint64   `json:"epoch"`
}

// --- Stats -------------------------------------------------------------------

// Stats merges the coordinator's own counters with the members' engine
// counters. Cluster-level operations (puts, scans, Sync barriers …) are
// counted ONCE, coordinator-side — summing them from the nodes would
// multiply every fan-out by R. Engine-internal counters (the
// acked-vs-durable boundary, WAL sync coalescing, flushes) are sums
// across members: they describe work that genuinely happened R times.
func (c *Client) Stats() kv.Stats {
	st := kv.Stats{
		Puts:        c.nPuts.Load(),
		Gets:        c.nGets.Load(),
		Deletes:     c.nDeletes.Load(),
		Scans:       c.nScans.Load(),
		Batches:     c.nBatches.Load(),
		BatchOps:    c.nBatchOps.Load(),
		Iterators:   c.nIters.Load(),
		Snapshots:   c.nSnapshots.Load(),
		Checkpoints: c.nCheckpoints.Load(),

		SyncBarriers: c.nSyncs.Load(),

		ClusterQuorumWrites:   c.nQuorumWrites.Load(),
		ClusterDegradedWrites: c.nDegradedWrites.Load(),
		ClusterReadRepairs:    c.nReadRepairs.Load(),
		ClusterHintsQueued:    c.nHintsQueued.Load(),
		ClusterHintsReplayed:  c.nHintsReplayed.Load(),
		ClusterHintsPending:   uint64(c.HintsPending()),
	}
	for _, n := range c.nodes {
		if n.isDown() {
			st.ClusterNodesDown++
			continue
		}
		st.ClusterNodesUp++
		cl, err := n.liveClient()
		if err != nil {
			continue
		}
		ns := cl.Stats()
		st.ScanRestarts += ns.ScanRestarts
		st.FallbackScans += ns.FallbackScans
		st.MembufferHits += ns.MembufferHits
		st.MemtableWrites += ns.MemtableWrites
		st.Flushes += ns.Flushes
		st.Compactions += ns.Compactions
		st.AckedSeq += ns.AckedSeq
		st.DurableSeq += ns.DurableSeq
		st.WALSyncs += ns.WALSyncs
		st.WALSyncRequests += ns.WALSyncRequests
		st.BlockCacheHits += ns.BlockCacheHits
		st.BlockCacheMisses += ns.BlockCacheMisses
		st.BlockCacheEvictions += ns.BlockCacheEvictions
		st.BlockCacheBytes += ns.BlockCacheBytes
		st.TableCacheHits += ns.TableCacheHits
		st.TableCacheMisses += ns.TableCacheMisses
		st.BloomChecks += ns.BloomChecks
		st.BloomMisses += ns.BloomMisses
		st.MembufferResizes += ns.MembufferResizes
		st.ServerConnsOpen += ns.ServerConnsOpen
		st.ServerConnsTotal += ns.ServerConnsTotal
		st.ServerInFlight += ns.ServerInFlight
		st.ServerRequests += ns.ServerRequests
		st.ServerBytesIn += ns.ServerBytesIn
		st.ServerBytesOut += ns.ServerBytesOut
		st.ServerSlowRequests += ns.ServerSlowRequests
	}
	return st
}

// --- Lifecycle ---------------------------------------------------------------

// Close drains and leaves: stop the prober, let in-flight repairs
// finish, attempt one final hint replay toward reachable members, fsync
// and close the hint logs (unreplayed hints persist for the next open),
// then close the member clients.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.stopProbe)
	c.probeWG.Wait()
	waitBounded(&c.repairWG, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var firstErr error
	for _, n := range c.nodes {
		if n.hints.pending() > 0 && !n.isDown() {
			if _, err := c.replayHints(ctx, n); err != nil {
				c.logf("cluster: final hint replay toward %s: %v", n.member.ID, err)
			}
		}
	}
	for _, n := range c.nodes {
		if err := n.hints.sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := n.hints.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		cl := n.cl
		n.mu.Unlock()
		if cl != nil {
			cl.Close()
		}
	}
	return firstErr
}

// CrashForTesting abandons the coordinator without draining anything:
// no final replay, no graceful close — the coordinator-death shape the
// crash suites need. Hint logs are write-through, so everything queued
// is already on disk.
func (c *Client) CrashForTesting() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stopProbe)
	c.probeWG.Wait()
	for _, n := range c.nodes {
		n.hints.close()
		n.mu.Lock()
		cl := n.cl
		n.mu.Unlock()
		if cl != nil {
			cl.Close()
		}
	}
}

func waitBounded(wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
	}
}

var (
	_ kv.Store         = (*Client)(nil)
	_ kv.StatsProvider = (*Client)(nil)
)
