package cluster

import (
	"bytes"

	"flodb/internal/kv"
)

// mergedIter is the k-way merge over per-member range cursors. Each
// member yields the keys it owns in order with versioned stored values;
// the merge emits each distinct key once, taking the highest version
// among the sources that hold it and filtering tombstones. This is
// read-repair's passive cousin: a scan never writes, but it always
// RETURNS the repaired truth.
type mergedIter struct {
	srcs []kv.Iterator
	// valid mirrors each source's positioned state.
	valid []bool

	key, val  []byte
	ok        bool
	started   bool
	exhausted bool
	err       error
	closed    bool
}

func newMergedIter(srcs []kv.Iterator) *mergedIter {
	return &mergedIter{srcs: srcs, valid: make([]bool, len(srcs))}
}

func (m *mergedIter) First() bool {
	if m.closed || m.err != nil {
		return false
	}
	m.started, m.exhausted = true, false
	for i, s := range m.srcs {
		m.valid[i] = s.First()
	}
	return m.settle()
}

func (m *mergedIter) Seek(key []byte) bool {
	if m.closed || m.err != nil {
		return false
	}
	m.started, m.exhausted = true, false
	for i, s := range m.srcs {
		m.valid[i] = s.Seek(key)
	}
	return m.settle()
}

func (m *mergedIter) Next() bool {
	if m.closed || m.err != nil {
		return false
	}
	if m.exhausted {
		return false
	}
	if !m.started {
		return m.First()
	}
	// settle() pre-advanced every source past the emitted key, so Next
	// just settles again.
	return m.settle()
}

// advancePast moves every source sitting on key off it.
func (m *mergedIter) advancePast(key []byte) {
	for i, s := range m.srcs {
		if m.valid[i] && bytes.Equal(s.Key(), key) {
			m.valid[i] = s.Next()
		}
	}
}

// settle finds the minimum key among the sources, merges the replicas'
// copies newest-version-wins, and skips tombstoned keys by advancing and
// retrying. Returns true positioned on a live pair.
func (m *mergedIter) settle() bool {
	for {
		if err := m.firstErr(); err != nil {
			m.err = err
			m.ok = false
			return false
		}
		min := -1
		for i, s := range m.srcs {
			if !m.valid[i] {
				continue
			}
			if min == -1 || bytes.Compare(s.Key(), m.srcs[min].Key()) < 0 {
				min = i
			}
		}
		if min == -1 {
			m.ok = false
			m.exhausted = true
			return false
		}
		key := m.srcs[min].Key()
		var bestVer uint64
		var bestVal []byte
		bestTomb := false
		first := true
		for i, s := range m.srcs {
			if !m.valid[i] || !bytes.Equal(s.Key(), key) {
				continue
			}
			ver, tomb, payload := parseStored(s.Value())
			if first || ver > bestVer {
				bestVer, bestTomb, bestVal = ver, tomb, payload
				first = false
			}
		}
		if bestTomb {
			m.advancePast(key)
			continue
		}
		m.key = append(m.key[:0], key...)
		m.val = append(m.val[:0], bestVal...)
		m.advancePast(key)
		m.ok = true
		return true
	}
}

func (m *mergedIter) firstErr() error {
	for _, s := range m.srcs {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (m *mergedIter) Key() []byte {
	if !m.ok {
		return nil
	}
	return m.key
}

func (m *mergedIter) Value() []byte {
	if !m.ok {
		return nil
	}
	return m.val
}

func (m *mergedIter) Err() error { return m.err }

func (m *mergedIter) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.ok = false
	var firstErr error
	for _, s := range m.srcs {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ kv.Iterator = (*mergedIter)(nil)
