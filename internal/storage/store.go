package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/cache"
	"flodb/internal/keys"
	"flodb/internal/obs"
	"flodb/internal/sstable"
)

// Options configure the disk component.
type Options struct {
	// L0CompactionTrigger is the L0 file count that triggers compaction
	// (default 4, as in LevelDB).
	L0CompactionTrigger int
	// L0StallThreshold is the L0 file count at which the memory component
	// should apply backpressure to writers (default 12).
	L0StallThreshold int
	// BaseLevelBytes is the L1 size target; each deeper level is
	// LevelMultiplier times larger (defaults 8 MiB × 10).
	BaseLevelBytes  int64
	LevelMultiplier int
	// TargetFileSize bounds compaction output files (default 2 MiB).
	TargetFileSize int64
	// BlockSize and BloomBitsPerKey pass through to sstable writers.
	BlockSize       int
	BloomBitsPerKey int
	// CompactionThreads sets the background compaction parallelism
	// (default 1; the RocksDB-style baseline raises it, §2.2).
	CompactionThreads int
	// BlockCacheBytes bounds the shared cache of parsed sstable blocks.
	// 0 selects DefaultBlockCacheBytes; negative disables block caching
	// (every read hits the file).
	BlockCacheBytes int64
	// TableCacheCapacity bounds the number of concurrently open sstable
	// readers (fd budget). 0 selects DefaultTableCacheCapacity.
	TableCacheCapacity int
	// Events, when non-nil, receives structured flush/compaction/
	// cache-pressure events (a nil log drops them for free).
	Events *obs.EventLog
}

// DefaultBlockCacheBytes is the block-cache budget when the caller does
// not choose one: large enough that the warm working set of a benchmark
// store lives in memory, small next to the memory component itself.
const DefaultBlockCacheBytes = 32 << 20

func (o *Options) fillDefaults() {
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0StallThreshold <= 0 {
		o.L0StallThreshold = 12
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.LevelMultiplier <= 1 {
		o.LevelMultiplier = 10
	}
	if o.TargetFileSize <= 0 {
		o.TargetFileSize = 2 << 20
	}
	if o.CompactionThreads <= 0 {
		o.CompactionThreads = 1
	}
}

// Store is the disk component: a leveled tree of sstables plus background
// compaction. The memory components (FloDB's two-tier design and the
// baselines' memtables) sit on top of exactly this interface.
type Store struct {
	dir  string
	opts Options

	vs    *versionSet
	cache *tableCache

	// bcache is the shared block cache (nil when disabled); metrics
	// aggregates bloom-filter counters across every reader the table
	// cache opens.
	bcache  *cache.Cache
	metrics sstable.ReaderMetrics

	// compacting marks input files of in-flight compactions; compactPtr
	// implements LevelDB's round-robin pick within a level. Both guarded
	// by vs.mu. cond (also on vs.mu) is broadcast whenever a compaction
	// finishes.
	compacting map[uint64]bool
	compactPtr [NumLevels][]byte
	cond       *sync.Cond

	work    chan struct{}
	closing chan struct{}
	wg      sync.WaitGroup

	flushes     atomic.Uint64
	compactions atomic.Uint64
	closed      atomic.Bool

	// events receives flush/compaction/cache-pressure events (may be
	// nil); evictMark is the block-cache eviction count at the last
	// cache-pressure event, so pressure is reported once per burst
	// rather than once per eviction.
	events    *obs.EventLog
	evictMark atomic.Uint64
}

// Open opens (or creates) a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		compacting: make(map[uint64]bool),
		work:       make(chan struct{}, 1),
		closing:    make(chan struct{}),
		events:     opts.Events,
	}
	if opts.BlockCacheBytes >= 0 {
		bytes := opts.BlockCacheBytes
		if bytes == 0 {
			bytes = DefaultBlockCacheBytes
		}
		s.bcache = cache.New(bytes)
	}
	tc := newTableCache(dir, opts.TableCacheCapacity,
		sstable.ReaderOptions{BlockCache: s.bcache, Metrics: &s.metrics})
	vs, err := openVersionSet(dir, tc)
	if err != nil {
		tc.Close()
		return nil, err
	}
	s.vs = vs
	s.cache = tc
	s.cond = sync.NewCond(&s.vs.mu)
	for i := 0; i < opts.CompactionThreads; i++ {
		s.wg.Add(1)
		go s.compactionWorker()
	}
	s.MaybeScheduleCompaction()
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Opts returns the effective options.
func (s *Store) Opts() Options { return s.opts }

// LogNum returns the oldest WAL number whose writes are not yet in tables.
func (s *Store) LogNum() uint64 {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return s.vs.logNum
}

// LastSeq returns the newest sequence number recorded in the manifest.
func (s *Store) LastSeq() uint64 {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return s.vs.lastSeq
}

// NewFileNum allocates a file number (for WAL segments and tables).
func (s *Store) NewFileNum() uint64 {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return s.vs.newFileNumLocked()
}

// SetLogNum durably records the oldest live WAL without adding files (used
// at startup after WAL replay decides the new log).
func (s *Store) SetLogNum(logNum, lastSeq uint64) error {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return s.vs.logAndApply(&VersionEdit{LogNum: ptr(logNum), LastSeq: ptr(lastSeq)})
}

// tableOpts builds sstable writer options from the store options.
func (s *Store) tableOpts() sstable.WriterOptions {
	return sstable.WriterOptions{BlockSize: s.opts.BlockSize, BloomBitsPerKey: s.opts.BloomBitsPerKey}
}

// Flush persists the contents of it as one L0 table. newLogNum is the WAL
// generation that remains live after this flush; lastSeq the newest
// sequence number contained. An empty iterator only advances the log
// pointer. The sorted bottom layer makes this "little more than a direct
// copy of the component to disk" (§2.3).
func (s *Store) Flush(it InternalIterator, newLogNum, lastSeq uint64) (*FileMeta, error) {
	var start time.Time
	if s.events != nil {
		start = time.Now()
	}
	s.vs.mu.Lock()
	num := s.vs.newFileNumLocked()
	s.vs.mu.Unlock()

	w, err := sstable.NewWriter(TableFileName(s.dir, num), s.tableOpts())
	if err != nil {
		return nil, err
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if err := w.Add(it.Key(), it.Seq(), it.Kind(), it.Value()); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		w.Abort()
		return nil, err
	}

	edit := &VersionEdit{LogNum: ptr(newLogNum), LastSeq: ptr(lastSeq)}
	var fm *FileMeta
	if w.Count() == 0 {
		if err := w.Abort(); err != nil {
			return nil, err
		}
	} else {
		m, err := w.Finish()
		if err != nil {
			return nil, err
		}
		fm = &FileMeta{
			Num: num, Size: m.Size, Smallest: m.Smallest, Largest: m.Largest,
			MinSeq: m.MinSeq, MaxSeq: m.MaxSeq, Count: m.Count,
		}
		edit.Added = append(edit.Added, AddedFile{Level: 0, Meta: *fm})
	}

	s.vs.mu.Lock()
	err = s.vs.logAndApply(edit)
	obsolete := s.vs.takeObsolete()
	s.vs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.vs.deleteTables(obsolete)
	s.flushes.Add(1)
	if s.events != nil && fm != nil {
		s.events.Emit(obs.Event{
			Type: obs.EventFlush, Dur: time.Since(start),
			Bytes: fm.Size, Keys: int64(fm.Count),
			Detail: fmt.Sprintf("table %d", fm.Num),
		})
		s.noteCachePressure()
	}
	s.MaybeScheduleCompaction()
	return fm, nil
}

// cachePressureBurst is the block-cache eviction delta that counts as a
// pressure burst worth one event.
const cachePressureBurst = 1024

// noteCachePressure emits one cache-pressure event per burst of block-
// cache evictions, sampled at flush/compaction boundaries (the moments
// that churn the cache) instead of per-eviction.
func (s *Store) noteCachePressure() {
	if s.events == nil || s.bcache == nil {
		return
	}
	st := s.bcache.Stats()
	mark := s.evictMark.Load()
	if st.Evictions-mark < cachePressureBurst {
		return
	}
	if s.evictMark.CompareAndSwap(mark, st.Evictions) {
		s.events.Emit(obs.Event{
			Type: obs.EventCachePressure, Bytes: st.Bytes,
			Keys:   int64(st.Evictions - mark),
			Detail: fmt.Sprintf("%d evictions since last burst", st.Evictions-mark),
		})
	}
}

// Get returns the newest version of key on disk.
func (s *Store) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool, err error) {
	v := s.vs.refCurrent()
	defer s.vs.releaseVersion(v)
	return v.get(s.cache, key)
}

// NewIterator returns a merged iterator over a snapshot of the disk
// component plus a release function that must be called when done (it
// unpins the version, allowing obsolete files to be deleted).
func (s *Store) NewIterator() (InternalIterator, func(), error) {
	v := s.vs.refCurrent()
	it, pins, err := v.newIterator(s.cache)
	if err != nil {
		s.vs.releaseVersion(v)
		return nil, nil, err
	}
	return it, func() { pins(); s.vs.releaseVersion(v) }, nil
}

// PinVersion takes a reference on the current version and returns it.
// Pinned versions are immutable and their files are protected from
// deletion until ReleaseVersion — the foundation of snapshots and
// checkpoints.
func (s *Store) PinVersion() *Version { return s.vs.refCurrent() }

// AcquireVersion takes an additional reference on an already-pinned
// version (e.g. for an iterator that may outlive the snapshot handle).
func (s *Store) AcquireVersion(v *Version) {
	s.vs.mu.Lock()
	v.refs++
	s.vs.mu.Unlock()
}

// ReleaseVersion drops one reference taken by PinVersion/AcquireVersion.
func (s *Store) ReleaseVersion(v *Version) { s.vs.releaseVersion(v) }

// GetAt returns the newest occurrence of key with seq <= maxSeq in the
// pinned version v.
func (s *Store) GetAt(v *Version, key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool, err error) {
	return v.getAt(s.cache, key, maxSeq)
}

// NewVersionIterator builds a merged iterator over the pinned version v,
// plus a release function dropping the iterator's table pins. The caller
// must keep v pinned for the iterator's lifetime and call release when
// done iterating.
func (s *Store) NewVersionIterator(v *Version) (InternalIterator, func(), error) {
	return v.newIterator(s.cache)
}

// NumLevelFiles returns the file count at a level.
func (s *Store) NumLevelFiles(l int) int {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return s.vs.current.NumFiles(l)
}

// NeedsStall reports whether L0 has grown past the stall threshold;
// memory components should pause writers until compaction catches up.
func (s *Store) NeedsStall() bool {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return len(s.vs.current.files[0]) >= s.opts.L0StallThreshold
}

// MaybeScheduleCompaction nudges the background workers.
func (s *Store) MaybeScheduleCompaction() {
	select {
	case s.work <- struct{}{}:
	default:
	}
}

func (s *Store) compactionWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closing:
			return
		case <-s.work:
		}
		for {
			s.vs.mu.Lock()
			c := s.pickCompaction()
			s.vs.mu.Unlock()
			if c == nil {
				break
			}
			if err := s.runCompaction(c); err != nil {
				// Inputs were unmarked by runCompaction; a production
				// system would log the error, benchmarks see it via
				// Metrics not advancing.
				break
			}
			// Wake other workers in case more levels now exceed targets.
			s.MaybeScheduleCompaction()
			select {
			case <-s.closing:
				return
			default:
			}
		}
	}
}

// WaitForCompactions blocks until no compaction work is pending, helping
// with compactions inline. Tests and benchmark setup use it to reach a
// quiescent tree.
func (s *Store) WaitForCompactions() {
	for {
		s.vs.mu.Lock()
		c := s.pickCompaction()
		if c == nil {
			if len(s.compacting) == 0 {
				s.vs.mu.Unlock()
				return
			}
			// Another worker is mid-compaction; wait for it to finish,
			// then re-evaluate.
			s.cond.Wait()
			s.vs.mu.Unlock()
			continue
		}
		s.vs.mu.Unlock()
		if err := s.runCompaction(c); err != nil {
			return
		}
	}
}

// Metrics is a snapshot of disk-component counters.
type Metrics struct {
	Flushes       uint64
	Compactions   uint64
	FilesPerLevel [NumLevels]int
	BytesPerLevel [NumLevels]int64
	CachedTables  int

	// Read-path cache and bloom-filter counters.
	BlockCacheHits      uint64
	BlockCacheMisses    uint64
	BlockCacheEvictions uint64
	BlockCacheBytes     int64
	TableCacheHits      uint64
	TableCacheMisses    uint64
	BloomChecks         uint64
	BloomNegatives      uint64
}

// Metrics returns current counters.
func (s *Store) Metrics() Metrics {
	m := Metrics{
		Flushes:        s.flushes.Load(),
		Compactions:    s.compactions.Load(),
		CachedTables:   s.cache.Len(),
		BloomChecks:    s.metrics.BloomChecks.Load(),
		BloomNegatives: s.metrics.BloomNegatives.Load(),
	}
	if s.bcache != nil {
		bst := s.bcache.Stats()
		m.BlockCacheHits = bst.Hits
		m.BlockCacheMisses = bst.Misses
		m.BlockCacheEvictions = bst.Evictions
		m.BlockCacheBytes = bst.Bytes
	}
	tst := s.cache.Stats()
	m.TableCacheHits = tst.Hits
	m.TableCacheMisses = tst.Misses
	s.vs.mu.Lock()
	for l := 0; l < NumLevels; l++ {
		m.FilesPerLevel[l] = s.vs.current.NumFiles(l)
		m.BytesPerLevel[l] = s.vs.current.SizeBytes(l)
	}
	s.vs.mu.Unlock()
	return m
}

// Dump writes a human-readable description of the tree (flodump).
func (s *Store) Dump(w io.Writer) {
	s.vs.dump(w)
}

// Close stops background work and releases resources.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.closing)
	s.wg.Wait()
	err := s.vs.close()
	s.cache.Close()
	if s.bcache != nil {
		s.bcache.Close()
	}
	return err
}

func removeFile(path string) error { return os.Remove(path) }
