package storage

import (
	"flodb/internal/cache"
	"flodb/internal/sstable"
)

// DefaultTableCacheCapacity bounds the number of concurrently open
// sstable readers when the caller does not choose one. Each cached
// reader holds one file descriptor plus its parsed index and bloom
// filter; 256 keeps the store far below the common 1024 soft fd rlimit
// even with WAL, manifest, sockets and a few hundred goroutine stacks'
// worth of incidental files on top, while still covering every table of
// a ~1 GiB store without churn. See TestTableCacheFDBudget for the
// reasoning spelled out as an executable check.
const DefaultTableCacheCapacity = 256

// tableCache maps file numbers to open sstable readers through a
// capacity-bounded LRU. Lookups return a pinned handle: the reader's
// file descriptor cannot be closed — by eviction under fd pressure or
// by Evict when compaction obsoletes the file — until the handle is
// released, so iterators mid-read on a just-compacted table keep
// working. The old implementation here was an unbounded map that only
// evicted obsolete files; a long-lived store with many small tables
// could crawl past the process fd budget.
type tableCache struct {
	dir string
	c   *cache.Cache

	// opts is threaded into every reader this cache opens, wiring the
	// store's shared block cache and bloom metrics into each table.
	opts sstable.ReaderOptions
}

func newTableCache(dir string, capacity int, opts sstable.ReaderOptions) *tableCache {
	if capacity <= 0 {
		capacity = DefaultTableCacheCapacity
	}
	// Keep stripes <= capacity so the per-shard budget never rounds to
	// zero (capacity is counted in whole handles, charge 1 each).
	shards := cache.DefaultShards
	for shards > capacity {
		shards /= 2
	}
	return &tableCache{dir: dir, c: cache.NewWithShards(int64(capacity), shards), opts: opts}
}

func closeReader(_ cache.Key, v any) { v.(*sstable.Reader).Close() }

// Get returns a pinned reader for table num, opening it on first use.
// The caller must Release the handle when done with the reader; the
// reader stays valid (fd open) until then even if the entry is evicted
// or erased meanwhile.
func (c *tableCache) Get(num uint64) (*sstable.Reader, *cache.Handle, error) {
	k := cache.Key{ID: num}
	if h := c.c.Get(k); h != nil {
		return h.Value().(*sstable.Reader), h, nil
	}
	o := c.opts
	o.CacheID = num
	r, err := sstable.OpenOptions(TableFileName(c.dir, num), o)
	if err != nil {
		return nil, nil, err
	}
	// Two opens can race on a miss; both insert and the loser's entry is
	// displaced, closing its reader once the loser's handle is released.
	// Rare (first touch of a table) and harmless.
	h := c.c.Insert(k, r, 1, closeReader)
	return r, h, nil
}

// Evict forgets the reader for num, if cached. The close is deferred
// past any outstanding pins.
func (c *tableCache) Evict(num uint64) { c.c.Erase(cache.Key{ID: num}) }

// Close releases every cached reader (pinned ones close when their
// pins drain).
func (c *tableCache) Close() { c.c.Close() }

// Len reports the number of cached readers (diagnostics).
func (c *tableCache) Len() int { return c.c.Len() }

// Stats exposes the underlying cache counters.
func (c *tableCache) Stats() cache.Stats { return c.c.Stats() }
