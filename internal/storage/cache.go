package storage

import (
	"sync"

	"flodb/internal/sstable"
)

// tableCacheShards must be a power of two. Sharding removes the global
// fd-cache lock the paper identified as a bottleneck (§4 footnote 2).
const tableCacheShards = 16

// tableCache maps file numbers to open sstable readers. Entries live until
// Evict (called when a file becomes obsolete) or Close. There is no
// capacity-based eviction: the store holds at most a few hundred open
// tables at benchmark scale and the process file-descriptor budget
// comfortably covers that; obsolete files are evicted eagerly.
type tableCache struct {
	dir    string
	shards [tableCacheShards]tableCacheShard
}

type tableCacheShard struct {
	mu sync.RWMutex
	m  map[uint64]*sstable.Reader
}

func newTableCache(dir string) *tableCache {
	c := &tableCache{dir: dir}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*sstable.Reader)
	}
	return c
}

func (c *tableCache) shard(num uint64) *tableCacheShard {
	// Mix so consecutive file numbers spread across shards.
	h := num * 0x9e3779b97f4a7c15
	return &c.shards[h>>59&(tableCacheShards-1)]
}

// Get returns the reader for table num, opening it on first use.
func (c *tableCache) Get(num uint64) (*sstable.Reader, error) {
	s := c.shard(num)
	s.mu.RLock()
	r := s.m[num]
	s.mu.RUnlock()
	if r != nil {
		return r, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.m[num]; r != nil { // raced with another opener
		return r, nil
	}
	r, err := sstable.Open(TableFileName(c.dir, num))
	if err != nil {
		return nil, err
	}
	s.m[num] = r
	return r, nil
}

// Evict closes and forgets the reader for num, if cached.
func (c *tableCache) Evict(num uint64) {
	s := c.shard(num)
	s.mu.Lock()
	r := s.m[num]
	delete(s.m, num)
	s.mu.Unlock()
	if r != nil {
		r.Close()
	}
}

// Close releases every cached reader.
func (c *tableCache) Close() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for num, r := range s.m {
			r.Close()
			delete(s.m, num)
		}
		s.mu.Unlock()
	}
}

// Len reports the number of cached readers (diagnostics).
func (c *tableCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
