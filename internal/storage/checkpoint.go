// Checkpointing: producing an openable copy of a store directory.
//
// A checkpoint is built from three ingredients, captured in this order:
//
//  1. a pinned Version — the immutable set of sstables, hard-linked into
//     the destination (falling back to a byte copy across filesystems);
//  2. the WAL tail — every segment >= the pinned version's log number,
//     copied byte-wise. A segment being appended concurrently copies as a
//     prefix; the WAL's CRC framing makes a torn final record replay as a
//     clean end-of-log, so the copy always replays to a prefix-consistent
//     state;
//  3. a fresh manifest + CURRENT naming exactly the linked tables and the
//     captured log/sequence numbers.
//
// The one race an online checkpoint must handle: a flush completing
// mid-copy advances the log number and deletes a WAL segment whose
// contents the pinned version does not contain. Copying would then leave a
// hole in the middle of history. The copy is therefore validated by
// re-reading the log number afterwards — if it moved, the attempt is
// discarded and retried against a fresh version (which now contains the
// flushed table).
package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// checkpointRetries bounds how often an online Checkpoint retries when
// flushes keep turning the WAL over mid-copy.
const checkpointRetries = 8

// Checkpoint writes an openable copy of the live store into dst, which
// must not exist or be empty. The store stays online: tables are
// hard-linked from a pinned version and the WAL tail is copied, so the
// checkpoint holds a prefix-consistent state as of some point during the
// call. Callers that buffer WAL appends should sync them first to pull
// that point close to now.
func (s *Store) Checkpoint(dst string) error {
	if err := checkDstEmpty(dst); err != nil {
		return err
	}
	for attempt := 0; attempt < checkpointRetries; attempt++ {
		retry, err := s.tryCheckpoint(dst)
		if err != nil {
			return err
		}
		if !retry {
			return nil
		}
	}
	return fmt.Errorf("storage: checkpoint %s: WAL turnover outpaced the copy %d times", dst, checkpointRetries)
}

func (s *Store) tryCheckpoint(dst string) (retry bool, err error) {
	s.vs.mu.Lock()
	v := s.vs.current
	v.refs++
	logNum := s.vs.logNum
	lastSeq := s.vs.lastSeq
	nextFileNum := s.vs.nextFileNum
	s.vs.mu.Unlock()
	defer s.vs.releaseVersion(v)

	err = writeCheckpoint(s.dir, dst, v, logNum, lastSeq, nextFileNum)
	if os.IsNotExist(err) {
		// A WAL segment (or, theoretically, a table about to be re-pinned)
		// vanished under us: a flush won the race. Start over.
		err = nil
		retry = true
	}
	if err != nil {
		return false, err
	}
	if !retry {
		// A flush completing anywhere inside the copy may have deleted a
		// segment BEFORE we listed the directory; detect it by the log
		// number having moved.
		s.vs.mu.Lock()
		retry = s.vs.logNum != logNum
		s.vs.mu.Unlock()
	}
	if retry {
		if err := wipeDir(dst); err != nil {
			return false, err
		}
	}
	return retry, nil
}

// CloneDir writes an openable copy of the store directory src into dst
// without opening (or mutating) src. It reads src's CURRENT and manifest,
// links the named tables, copies the WAL tail, and writes a fresh
// manifest — the same audited path Store.Checkpoint uses online. src must
// be quiescent (no store has it open).
func CloneDir(src, dst string) error {
	if err := checkDstEmpty(dst); err != nil {
		return err
	}
	vs := &versionSet{dir: src, fileRefs: make(map[uint64]int), nextFileNum: 1}
	if err := vs.recover(); err != nil {
		return fmt.Errorf("storage: clone %s: %w", src, err)
	}
	return writeCheckpoint(src, dst, vs.current, vs.logNum, vs.lastSeq, vs.nextFileNum)
}

// writeCheckpoint materializes one checkpoint attempt: tables of v linked
// from srcDir, WAL segments >= logNum copied, manifest + CURRENT written.
func writeCheckpoint(srcDir, dst string, v *Version, logNum, lastSeq, nextFileNum uint64) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("storage: checkpoint mkdir: %w", err)
	}
	for l := 0; l < NumLevels; l++ {
		for _, f := range v.files[l] {
			if err := linkOrCopy(TableFileName(srcDir, f.Num), TableFileName(dst, f.Num)); err != nil {
				return err
			}
		}
	}
	if err := copyWALTail(srcDir, dst, logNum); err != nil {
		return err
	}
	if err := writeCheckpointManifest(dst, v, logNum, lastSeq, nextFileNum); err != nil {
		return err
	}
	// Durability: the copied bytes are fsynced by copyFile; the directory
	// entries (links, copies, manifest, CURRENT) need the directory
	// itself synced, or a crash can silently truncate the "completed"
	// backup to an empty or partial directory.
	return SyncDir(dst)
}

// copyWALTail copies every WAL segment >= logNum from srcDir to dst.
// Segments may be mid-append; each copies as a prefix.
//
// Copy order is NEWEST FIRST, and it is load-bearing. A store creates the
// next segment's file BEFORE switching writers onto it (FloDB's
// persistCycle allocates the new memtable's WAL, then swaps the
// generation), so this listing can catch segment N still receiving
// appends while segment N+1 already exists. Copying ascending would take
// an incomplete prefix of N and THEN a copy of N+1 that may include
// records appended after the switch — a hole in the middle of history.
// Descending order restores the prefix property by construction: a record
// captured from segment N+1 proves the switch to N+1 happened before
// that copy, so every record of segment N was already durable in the
// file when N is copied afterwards.
func copyWALTail(srcDir, dst string, logNum uint64) error {
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, ent := range entries {
		kind, num := ParseFileName(ent.Name())
		if kind == KindWAL && num >= logNum {
			segs = append(segs, num)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] > segs[j] })
	for _, num := range segs {
		if err := copyFile(WALFileName(srcDir, num), WALFileName(dst, num)); err != nil {
			return err
		}
	}
	return nil
}

// writeCheckpointManifest writes a single-snapshot manifest generation and
// points CURRENT at it, making dst an openable store directory.
func writeCheckpointManifest(dst string, v *Version, logNum, lastSeq, nextFileNum uint64) error {
	// rewriteManifest allocates the manifest generation from nextFileNum,
	// which is above every inherited table and WAL number, and records the
	// advanced allocator in the snapshot — so the reopened store never
	// re-issues an inherited file number.
	vsDst := &versionSet{dir: dst, fileRefs: make(map[uint64]int), nextFileNum: nextFileNum}
	vsDst.logNum = logNum
	vsDst.lastSeq = lastSeq
	cur := *v
	cur.refs = 1
	vsDst.current = &cur
	if err := vsDst.rewriteManifest(); err != nil {
		return err
	}
	return vsDst.close()
}

func checkDstEmpty(dst string) error {
	entries, err := os.ReadDir(dst)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(entries) > 0 {
		return fmt.Errorf("storage: checkpoint destination %s is not empty", dst)
	}
	return nil
}

func wipeDir(dst string) error {
	entries, err := os.ReadDir(dst)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if err := os.RemoveAll(filepath.Join(dst, ent.Name())); err != nil {
			return err
		}
	}
	return nil
}

// linkOrCopy hard-links src to dst, degrading to a byte copy when linking
// is unsupported (cross-device destinations, restricted filesystems).
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil || os.IsNotExist(err) {
		return err
	}
	return copyFile(src, dst)
}

// copyFile copies src to dst and fsyncs the copy: a checkpoint that
// reported success must survive a crash (the rest of the store syncs its
// sstables and manifest the same way).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// SyncDir fsyncs a directory's entries, making renames into it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
