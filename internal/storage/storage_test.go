package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/sstable"
)

// memIter adapts a sorted in-memory slice to InternalIterator for flushes.
type memEntry struct {
	key   []byte
	seq   uint64
	kind  keys.Kind
	value []byte
}

type memIter struct {
	entries []memEntry
	i       int
}

func (m *memIter) SeekToFirst() { m.i = 0 }
func (m *memIter) Seek(key []byte) {
	m.i = sort.Search(len(m.entries), func(i int) bool {
		return keys.Compare(m.entries[i].key, key) >= 0
	})
}
func (m *memIter) Next()           { m.i++ }
func (m *memIter) Valid() bool     { return m.i < len(m.entries) }
func (m *memIter) Key() []byte     { return m.entries[m.i].key }
func (m *memIter) Seq() uint64     { return m.entries[m.i].seq }
func (m *memIter) Kind() keys.Kind { return m.entries[m.i].kind }
func (m *memIter) Value() []byte   { return m.entries[m.i].value }
func (m *memIter) Err() error      { return nil }

func sortedEntries(entries []memEntry) []memEntry {
	sort.Slice(entries, func(i, j int) bool {
		c := keys.Compare(entries[i].key, entries[j].key)
		if c != 0 {
			return c < 0
		}
		return entries[i].seq > entries[j].seq
	})
	return entries
}

func openTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFlushAndGet(t *testing.T) {
	s := openTestStore(t, Options{})
	var entries []memEntry
	for i := 0; i < 100; i++ {
		entries = append(entries, memEntry{
			key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 1),
			kind: keys.KindSet, value: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	fm, err := s.Flush(&memIter{entries: sortedEntries(entries)}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fm == nil || fm.Count != 100 {
		t.Fatalf("flush meta = %+v", fm)
	}
	if s.NumLevelFiles(0) != 1 {
		t.Fatalf("L0 files = %d", s.NumLevelFiles(0))
	}
	for i := 0; i < 100; i++ {
		v, seq, kind, ok, err := s.Get(keys.EncodeUint64(uint64(i)))
		if err != nil || !ok || kind != keys.KindSet || seq != uint64(i+1) {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q", i, v)
		}
	}
	if _, _, _, ok, _ := s.Get(keys.EncodeUint64(1000)); ok {
		t.Fatal("missing key found")
	}
}

func TestEmptyFlushAdvancesLog(t *testing.T) {
	s := openTestStore(t, Options{})
	fm, err := s.Flush(&memIter{}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fm != nil {
		t.Fatal("empty flush should create no file")
	}
	if s.LogNum() != 7 {
		t.Fatalf("LogNum = %d", s.LogNum())
	}
	if s.NumLevelFiles(0) != 0 {
		t.Fatal("empty flush created a file")
	}
}

func TestNewerFlushShadowsOlder(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 100}) // no compaction
	k := keys.EncodeUint64(42)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 1, kind: keys.KindSet, value: []byte("old")}}}, 2, 1)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 9, kind: keys.KindSet, value: []byte("new")}}}, 3, 9)
	v, seq, _, ok, err := s.Get(k)
	if err != nil || !ok || seq != 9 || string(v) != "new" {
		t.Fatalf("Get = %q@%d ok=%v err=%v", v, seq, ok, err)
	}
}

func TestTombstoneShadowsOnDisk(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 100})
	k := keys.EncodeUint64(42)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 1, kind: keys.KindSet, value: []byte("live")}}}, 2, 1)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 5, kind: keys.KindDelete}}}, 3, 5)
	_, seq, kind, ok, err := s.Get(k)
	if err != nil || !ok || kind != keys.KindDelete || seq != 5 {
		t.Fatalf("tombstone not returned: kind=%v seq=%d ok=%v err=%v", kind, seq, ok, err)
	}
}

func TestCompactionMergesL0(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 4, BaseLevelBytes: 1 << 30})
	// Four overlapping L0 files; trigger compaction.
	for f := 0; f < 4; f++ {
		var entries []memEntry
		for i := 0; i < 50; i++ {
			entries = append(entries, memEntry{
				key: keys.EncodeUint64(uint64(i)), seq: uint64(f*100 + i + 1),
				kind: keys.KindSet, value: []byte(fmt.Sprintf("f%d-%d", f, i)),
			})
		}
		if _, err := s.Flush(&memIter{entries: sortedEntries(entries)}, uint64(f+2), uint64(f*100+50)); err != nil {
			t.Fatal(err)
		}
	}
	s.WaitForCompactions()
	if got := s.NumLevelFiles(0); got != 0 {
		t.Fatalf("L0 files after compaction = %d", got)
	}
	if got := s.NumLevelFiles(1); got == 0 {
		t.Fatal("L1 empty after compaction")
	}
	// Newest file (f=3) must win for every key.
	for i := 0; i < 50; i++ {
		v, _, _, ok, err := s.Get(keys.EncodeUint64(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("Get(%d) after compaction: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("f3-%d", i); string(v) != want {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
	m := s.Metrics()
	if m.Compactions == 0 || m.Flushes != 4 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTombstonesDroppedAtBottom(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	k := keys.EncodeUint64(7)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 1, kind: keys.KindSet, value: []byte("v")}}}, 2, 1)
	s.Flush(&memIter{entries: []memEntry{{key: k, seq: 2, kind: keys.KindDelete}}}, 3, 2)
	s.WaitForCompactions()
	// After L0->L1 compaction with nothing deeper, both the value and the
	// tombstone must be gone.
	_, _, _, ok, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deleted key still visible on disk")
	}
	// The output table should contain zero entries for k; in fact the
	// whole level should hold no files (the only key was dropped).
	if n := s.NumLevelFiles(1); n != 0 {
		t.Fatalf("L1 files = %d, want 0 (everything was dropped)", n)
	}
}

func TestDiskIterator(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 100})
	// Two L0 files with interleaved and overlapping keys.
	s.Flush(&memIter{entries: sortedEntries([]memEntry{
		{key: keys.EncodeUint64(1), seq: 1, kind: keys.KindSet, value: []byte("a1")},
		{key: keys.EncodeUint64(3), seq: 2, kind: keys.KindSet, value: []byte("a3")},
		{key: keys.EncodeUint64(5), seq: 3, kind: keys.KindSet, value: []byte("a5")},
	})}, 2, 3)
	s.Flush(&memIter{entries: sortedEntries([]memEntry{
		{key: keys.EncodeUint64(2), seq: 4, kind: keys.KindSet, value: []byte("b2")},
		{key: keys.EncodeUint64(3), seq: 5, kind: keys.KindSet, value: []byte("b3")},
	})}, 3, 5)

	it, release, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, fmt.Sprintf("%d@%d=%s", keys.DecodeUint64(it.Key()), it.Seq(), it.Value()))
	}
	want := []string{"1@1=a1", "2@4=b2", "3@5=b3", "3@2=a3", "5@3=a5"}
	if len(got) != len(want) {
		t.Fatalf("iterated %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestIteratorSeekAcrossLevels(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	var entries []memEntry
	for i := 0; i < 100; i += 2 {
		entries = append(entries, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 1), kind: keys.KindSet, value: []byte("even")})
	}
	s.Flush(&memIter{entries: sortedEntries(entries)}, 2, 101)
	entries = nil
	for i := 1; i < 100; i += 2 {
		entries = append(entries, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 200), kind: keys.KindSet, value: []byte("odd")})
	}
	s.Flush(&memIter{entries: sortedEntries(entries)}, 3, 300)
	s.WaitForCompactions() // push everything to L1

	it, release, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	it.Seek(keys.EncodeUint64(50))
	for want := uint64(50); want < 60; want++ {
		if !it.Valid() || keys.DecodeUint64(it.Key()) != want {
			t.Fatalf("seek walk at %d: valid=%v", want, it.Valid())
		}
		it.Next()
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{L0CompactionTrigger: 100})
	if err != nil {
		t.Fatal(err)
	}
	var entries []memEntry
	for i := 0; i < 50; i++ {
		entries = append(entries, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 1), kind: keys.KindSet, value: []byte("v")})
	}
	if _, err := s.Flush(&memIter{entries: sortedEntries(entries)}, 5, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{L0CompactionTrigger: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LogNum() != 5 || s2.LastSeq() != 50 {
		t.Fatalf("recovered log=%d seq=%d", s2.LogNum(), s2.LastSeq())
	}
	if s2.NumLevelFiles(0) != 1 {
		t.Fatalf("recovered L0 = %d", s2.NumLevelFiles(0))
	}
	for i := 0; i < 50; i++ {
		if _, _, _, ok, err := s2.Get(keys.EncodeUint64(uint64(i))); !ok || err != nil {
			t.Fatalf("Get(%d) after recovery: ok=%v err=%v", i, ok, err)
		}
	}
	// File numbers must not be reused after recovery.
	if n := s2.NewFileNum(); n <= 5 {
		t.Fatalf("file numbers reused: %d", n)
	}
}

func TestRecoveryAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	for f := 0; f < 3; f++ {
		var entries []memEntry
		for i := 0; i < 20; i++ {
			entries = append(entries, memEntry{
				key: keys.EncodeUint64(uint64(i)), seq: uint64(f*100 + i + 1),
				kind: keys.KindSet, value: []byte(fmt.Sprintf("f%d", f)),
			})
		}
		s.Flush(&memIter{entries: sortedEntries(entries)}, uint64(f+2), uint64(f*100+20))
	}
	s.WaitForCompactions()
	s.Close()

	s2, err := Open(dir, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 20; i++ {
		v, _, _, ok, err := s2.Get(keys.EncodeUint64(uint64(i)))
		if err != nil || !ok || string(v) != "f2" {
			t.Fatalf("Get(%d) = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestObsoleteFilesDeleted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	defer s.Close()
	for f := 0; f < 4; f++ {
		var entries []memEntry
		for i := 0; i < 10; i++ {
			entries = append(entries, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(f*100 + i + 1), kind: keys.KindSet, value: []byte("v")})
		}
		s.Flush(&memIter{entries: sortedEntries(entries)}, uint64(f+2), uint64(f*100+10))
	}
	s.WaitForCompactions()
	// Count .sst files on disk; must equal live files in the version.
	ents, _ := os.ReadDir(dir)
	var onDisk int
	for _, e := range ents {
		if kind, _ := ParseFileName(e.Name()); kind == KindTable {
			onDisk++
		}
	}
	live := 0
	for l := 0; l < NumLevels; l++ {
		live += s.NumLevelFiles(l)
	}
	if onDisk != live {
		t.Fatalf("on disk %d tables, live %d", onDisk, live)
	}
}

func TestIteratorPinsVersion(t *testing.T) {
	s := openTestStore(t, Options{L0CompactionTrigger: 2, BaseLevelBytes: 1 << 30})
	var entries []memEntry
	for i := 0; i < 30; i++ {
		entries = append(entries, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 1), kind: keys.KindSet, value: []byte("v0")})
	}
	s.Flush(&memIter{entries: sortedEntries(entries)}, 2, 30)

	it, release, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst() // position on the old version's files

	// Compact everything away underneath the iterator.
	var e2 []memEntry
	for i := 0; i < 30; i++ {
		e2 = append(e2, memEntry{key: keys.EncodeUint64(uint64(i)), seq: uint64(i + 100), kind: keys.KindSet, value: []byte("v1")})
	}
	s.Flush(&memIter{entries: sortedEntries(e2)}, 3, 130)
	s.WaitForCompactions()

	// The pinned iterator must still read the old file contents.
	n := 0
	for ; it.Valid(); it.Next() {
		if it.Seq() <= 30 {
			n++
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("pinned iterator failed: %v", err)
	}
	if n != 30 {
		t.Fatalf("pinned iterator saw %d old entries", n)
	}
	release()
}

func TestParseFileName(t *testing.T) {
	cases := []struct {
		name string
		kind FileKind
		num  uint64
	}{
		{"000001.sst", KindTable, 1},
		{"123456.wal", KindWAL, 123456},
		{"MANIFEST-000003", KindManifest, 3},
		{"CURRENT", KindCurrent, 0},
		{"000009.tmp", KindTemp, 9},
		{"garbage", KindUnknown, 0},
		{"xxx.sst", KindUnknown, 0},
		{"MANIFEST-abc", KindUnknown, 0},
	}
	for _, tc := range cases {
		kind, num := ParseFileName(tc.name)
		if kind != tc.kind || num != tc.num {
			t.Errorf("ParseFileName(%q) = %v,%d", tc.name, kind, num)
		}
	}
}

func TestMergingIteratorOrdersBySeq(t *testing.T) {
	a := &memIter{entries: []memEntry{
		{key: keys.EncodeUint64(1), seq: 10, kind: keys.KindSet, value: []byte("new")},
	}}
	b := &memIter{entries: []memEntry{
		{key: keys.EncodeUint64(1), seq: 5, kind: keys.KindSet, value: []byte("old")},
		{key: keys.EncodeUint64(2), seq: 6, kind: keys.KindSet, value: []byte("two")},
	}}
	m := NewMergingIterator(a, b)
	m.SeekToFirst()
	if !m.Valid() || m.Seq() != 10 {
		t.Fatalf("first entry seq = %d", m.Seq())
	}
	m.Next()
	if m.Seq() != 5 {
		t.Fatalf("second entry seq = %d", m.Seq())
	}
	m.Next()
	if keys.DecodeUint64(m.Key()) != 2 {
		t.Fatal("third entry wrong key")
	}
	m.Next()
	if m.Valid() {
		t.Fatal("iterator should be exhausted")
	}
}

func TestMergingIteratorSeek(t *testing.T) {
	a := &memIter{entries: []memEntry{
		{key: keys.EncodeUint64(1), seq: 1, kind: keys.KindSet},
		{key: keys.EncodeUint64(5), seq: 2, kind: keys.KindSet},
	}}
	b := &memIter{entries: []memEntry{
		{key: keys.EncodeUint64(3), seq: 3, kind: keys.KindSet},
	}}
	m := NewMergingIterator(a, b)
	m.Seek(keys.EncodeUint64(2))
	if !m.Valid() || keys.DecodeUint64(m.Key()) != 3 {
		t.Fatal("Seek(2) should land on 3")
	}
	m.Seek(keys.EncodeUint64(6))
	if m.Valid() {
		t.Fatal("Seek past end should invalidate")
	}
	empty := NewMergingIterator()
	empty.SeekToFirst()
	if empty.Valid() {
		t.Fatal("empty merge should be invalid")
	}
}

func TestVersionInvariantsRandomized(t *testing.T) {
	// Random flushes and compactions must never produce an invalid tree.
	s := openTestStore(t, Options{L0CompactionTrigger: 3, BaseLevelBytes: 64 << 10, TargetFileSize: 16 << 10})
	rng := rand.New(rand.NewSource(3))
	seq := uint64(1)
	for round := 0; round < 20; round++ {
		var entries []memEntry
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			seq++
			entries = append(entries, memEntry{
				key:   keys.EncodeUint64(rng.Uint64() % 2000),
				seq:   seq,
				kind:  keys.KindSet,
				value: bytes.Repeat([]byte("v"), 100),
			})
		}
		// Dedup (key,seq) collisions are impossible (seq increments), but
		// duplicate keys within the batch must be collapsed to newest.
		entries = sortedEntries(entries)
		dedup := entries[:0]
		for i, e := range entries {
			if i > 0 && keys.Equal(entries[i-1].key, e.key) {
				continue
			}
			dedup = append(dedup, e)
		}
		if _, err := s.Flush(&memIter{entries: dedup}, uint64(round+2), seq); err != nil {
			t.Fatal(err)
		}
	}
	s.WaitForCompactions()
	s.vs.mu.Lock()
	err := s.vs.current.checkInvariants()
	s.vs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

func TestTableCacheSharing(t *testing.T) {
	dir := t.TempDir()
	c := newTableCache(dir, 0, sstable.ReaderOptions{})
	defer c.Close()
	w, _ := sstable.NewWriter(TableFileName(dir, 1), sstable.WriterOptions{})
	w.Add([]byte("k"), 1, keys.KindSet, []byte("v"))
	w.Finish()

	r1, h1, err := c.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	r2, h2, _ := c.Get(1)
	h2.Release()
	if r1 != r2 {
		t.Fatal("cache should return the same reader")
	}
	if c.Len() != 1 {
		t.Fatalf("cache Len = %d", c.Len())
	}
	c.Evict(1)
	if c.Len() != 0 {
		t.Fatal("evict did not remove entry")
	}
	if _, _, err := c.Get(99); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestTableCacheFDBudget documents why the default capacity is what it
// is: every cached reader holds exactly one file descriptor, so the
// cache's capacity IS the store's steady-state fd budget for tables.
// The common soft rlimit is 1024; DefaultTableCacheCapacity must leave
// comfortable headroom for WAL segments, the manifest, sockets and
// whatever else the embedding process has open. The LRU bound is what
// turns "open tables" from O(total files ever created) — the old
// unbounded map, a slow fd leak on long-lived stores with many small
// tables — into a constant.
func TestTableCacheFDBudget(t *testing.T) {
	if DefaultTableCacheCapacity >= 1024/2 {
		t.Fatalf("default table-cache capacity %d eats more than half a 1024 soft fd rlimit",
			DefaultTableCacheCapacity)
	}

	// The bound is enforced: open far more tables than the capacity and
	// check the resident count (== open fds held by the cache) stays at
	// or below it once handles are released.
	dir := t.TempDir()
	const capacity = 4
	c := newTableCache(dir, capacity, sstable.ReaderOptions{})
	defer c.Close()
	for i := uint64(1); i <= 32; i++ {
		w, err := sstable.NewWriter(TableFileName(dir, i), sstable.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Add([]byte{byte(i)}, i, keys.KindSet, []byte("v"))
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		_, h, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("table cache holds %d readers, capacity %d", got, capacity)
	}

	// A pinned reader survives eviction pressure and stays usable — the
	// fd is not closed under a live iterator.
	rPinned, hPinned, err := c.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(2); i <= 32; i++ {
		_, h, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if _, _, _, ok, err := rPinned.Get([]byte{1}); err != nil || !ok {
		t.Fatalf("pinned reader unusable after churn: ok=%v err=%v", ok, err)
	}
	hPinned.Release()
}
