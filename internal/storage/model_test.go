package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"flodb/internal/keys"
)

// TestStorageModelCheck drives random flush batches through the store
// (with aggressive compaction settings) and verifies Get against an
// oracle after every flush, plus a full iterator sweep at the end. This
// exercises L0 shadowing, level search, tombstone dropping and the
// merging iterators against ground truth.
func TestStorageModelCheck(t *testing.T) {
	s := openTestStore(t, Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      32 << 10,
		TargetFileSize:      8 << 10,
	})
	oracle := map[string]memEntry{}
	rng := rand.New(rand.NewSource(77))
	seq := uint64(0)
	const keySpace = 400

	for round := 0; round < 25; round++ {
		batch := map[string]memEntry{}
		n := 20 + rng.Intn(100)
		for i := 0; i < n; i++ {
			seq++
			k := keys.EncodeUint64(uint64(rng.Intn(keySpace)))
			e := memEntry{key: k, seq: seq, kind: keys.KindSet, value: []byte(fmt.Sprintf("r%d-%d", round, i))}
			if rng.Intn(5) == 0 {
				e.kind = keys.KindDelete
				e.value = nil
			}
			batch[string(k)] = e // newest in batch wins
		}
		var entries []memEntry
		for _, e := range batch {
			entries = append(entries, e)
			oracle[string(e.key)] = e
		}
		if _, err := s.Flush(&memIter{entries: sortedEntries(entries)}, uint64(round+2), seq); err != nil {
			t.Fatal(err)
		}
		// Verify a sample against the oracle mid-stream.
		for i := 0; i < 50; i++ {
			k := keys.EncodeUint64(uint64(rng.Intn(keySpace)))
			v, _, kind, ok, err := s.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := oracle[string(k)]
			switch {
			case !exists:
				if ok {
					t.Fatalf("round %d: phantom key %x", round, k)
				}
			case want.kind == keys.KindDelete:
				if ok && kind != keys.KindDelete {
					t.Fatalf("round %d: deleted key %x alive", round, k)
				}
			default:
				if !ok || kind != keys.KindSet || string(v) != string(want.value) {
					t.Fatalf("round %d: key %x = %q/%v/%v, want %q", round, k, v, kind, ok, want.value)
				}
			}
		}
	}
	s.WaitForCompactions()

	// Full iterator: newest version per user key must match the oracle;
	// deleted keys may appear only as tombstones (or not at all if the
	// compactor dropped them).
	it, release, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var lastKey []byte
	live := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if lastKey != nil && keys.Equal(lastKey, it.Key()) {
			continue // older version
		}
		lastKey = append(lastKey[:0], it.Key()...)
		want, exists := oracle[string(it.Key())]
		if !exists {
			t.Fatalf("iterator surfaced unknown key %x", it.Key())
		}
		if it.Kind() == keys.KindDelete {
			if want.kind != keys.KindDelete {
				t.Fatalf("live key %x shadowed by tombstone", it.Key())
			}
			continue
		}
		if want.kind == keys.KindDelete {
			t.Fatalf("deleted key %x alive in iterator", it.Key())
		}
		if string(it.Value()) != string(want.value) {
			t.Fatalf("iterator %x = %q, want %q", it.Key(), it.Value(), want.value)
		}
		live++
	}
	wantLive := 0
	for _, e := range oracle {
		if e.kind == keys.KindSet {
			wantLive++
		}
	}
	if live != wantLive {
		t.Fatalf("iterator found %d live keys, oracle has %d", live, wantLive)
	}
	m := s.Metrics()
	if m.Compactions == 0 {
		t.Fatal("model check never compacted; tighten the options")
	}
	t.Logf("model check done: %d flushes, %d compactions, levels %v", m.Flushes, m.Compactions, m.FilesPerLevel)
}

// TestConcurrentReadsDuringCompaction hammers Get from several goroutines
// while flushes and compactions churn the version tree underneath.
func TestConcurrentReadsDuringCompaction(t *testing.T) {
	s := openTestStore(t, Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      16 << 10,
		TargetFileSize:      8 << 10,
		CompactionThreads:   2,
	})
	const keySpace = 200
	seq := uint64(0)
	writeRound := func(round int) {
		var entries []memEntry
		for i := 0; i < keySpace; i++ {
			seq++
			entries = append(entries, memEntry{
				key: keys.EncodeUint64(uint64(i)), seq: seq, kind: keys.KindSet,
				value: []byte(fmt.Sprintf("round-%d", round)),
			})
		}
		if _, err := s.Flush(&memIter{entries: sortedEntries(entries)}, uint64(round+2), seq); err != nil {
			t.Error(err)
		}
	}
	writeRound(0)

	stop := make(chan struct{})
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				k := keys.EncodeUint64(uint64(rng.Intn(keySpace)))
				_, _, _, ok, err := s.Get(k)
				if err != nil {
					errs <- fmt.Errorf("Get(%x): %w", k, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("key %x vanished mid-compaction", k)
					return
				}
			}
		}(g)
	}
	for round := 1; round <= 20; round++ {
		writeRound(round)
	}
	close(stop)
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s.WaitForCompactions()
}
