package storage

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"flodb/internal/keys"
)

// flushPairs writes one L0 table holding the given (key, seq) pairs.
func flushPairs(t *testing.T, s *Store, seqBase uint64, kvs map[string]string) {
	t.Helper()
	var entries []hdrEntry
	for k, v := range kvs {
		entries = append(entries, hdrEntry{k: []byte(k), v: []byte(v)})
	}
	// sort by key for the flush iterator contract
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && keys.Compare(entries[j].k, entries[j-1].k) < 0; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	for i := range entries {
		entries[i].seq = seqBase + uint64(i)
	}
	it := &hdrIter{entries: entries, i: -1}
	if _, err := s.Flush(it, 1, seqBase+uint64(len(entries))); err != nil {
		t.Fatal(err)
	}
}

type hdrEntry struct {
	k, v []byte
	seq  uint64
}

type hdrIter struct {
	entries []hdrEntry
	i       int
}

func (h *hdrIter) SeekToFirst() { h.i = 0 }
func (h *hdrIter) Seek(key []byte) {
	for h.i = 0; h.i < len(h.entries) && keys.Compare(h.entries[h.i].k, key) < 0; h.i++ {
	}
}
func (h *hdrIter) Next()           { h.i++ }
func (h *hdrIter) Valid() bool     { return h.i >= 0 && h.i < len(h.entries) }
func (h *hdrIter) Key() []byte     { return h.entries[h.i].k }
func (h *hdrIter) Seq() uint64     { return h.entries[h.i].seq }
func (h *hdrIter) Kind() keys.Kind { return keys.KindSet }
func (h *hdrIter) Value() []byte   { return h.entries[h.i].v }
func (h *hdrIter) Err() error      { return nil }

func TestStoreCheckpointReopens(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	s, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flushPairs(t, s, 1, map[string]string{"a": "1", "b": "2", "c": "3"})

	ck := filepath.Join(dir, "ck")
	if err := s.Checkpoint(ck); err != nil {
		t.Fatal(err)
	}
	// Additional writes to the source must not appear in the checkpoint.
	flushPairs(t, s, 100, map[string]string{"d": "4"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(ck, Options{})
	if err != nil {
		t.Fatalf("checkpoint does not reopen: %v", err)
	}
	defer r.Close()
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, _, kind, ok, err := r.Get([]byte(k))
		if err != nil || !ok || kind != keys.KindSet || string(v) != want {
			t.Fatalf("checkpoint Get(%s) = %q %v %v %v", k, v, kind, ok, err)
		}
	}
	if _, _, _, ok, _ := r.Get([]byte("d")); ok {
		t.Fatal("post-checkpoint write leaked into the checkpoint")
	}
}

func TestStoreCheckpointRejectsNonEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "src"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := filepath.Join(dir, "dst")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(dst); err == nil {
		t.Fatal("non-empty destination accepted")
	}
}

func TestCloneDirMatchesSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	s, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flushPairs(t, s, 1, map[string]string{"x": "10", "y": "20"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	clone := filepath.Join(dir, "clone")
	if err := CloneDir(src, clone); err != nil {
		t.Fatal(err)
	}
	// The clone opens; the source is untouched (same CURRENT content).
	before, err := os.ReadFile(CurrentFileName(src))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(clone, Options{})
	if err != nil {
		t.Fatalf("clone does not open: %v", err)
	}
	defer r.Close()
	v, _, _, ok, err := r.Get([]byte("y"))
	if err != nil || !ok || string(v) != "20" {
		t.Fatalf("clone Get(y) = %q %v %v", v, ok, err)
	}
	after, err := os.ReadFile(CurrentFileName(src))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("CloneDir mutated the source's CURRENT")
	}
}

func TestVersionGetAtSeqBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Two L0 tables with two versions of the same key.
	it1 := &hdrIter{entries: []hdrEntry{{k: []byte("k"), v: []byte("v-old"), seq: 5}}, i: -1}
	if _, err := s.Flush(it1, 1, 5); err != nil {
		t.Fatal(err)
	}
	it2 := &hdrIter{entries: []hdrEntry{{k: []byte("k"), v: []byte("v-new"), seq: 9}}, i: -1}
	if _, err := s.Flush(it2, 1, 9); err != nil {
		t.Fatal(err)
	}
	v := s.PinVersion()
	defer s.ReleaseVersion(v)
	if val, seq, _, ok, err := s.GetAt(v, []byte("k"), 9); err != nil || !ok || seq != 9 || string(val) != "v-new" {
		t.Fatalf("GetAt(9) = %q seq=%d ok=%v err=%v", val, seq, ok, err)
	}
	if val, seq, _, ok, err := s.GetAt(v, []byte("k"), 7); err != nil || !ok || seq != 5 || string(val) != "v-old" {
		t.Fatalf("GetAt(7) = %q seq=%d ok=%v err=%v", val, seq, ok, err)
	}
	if _, _, _, ok, err := s.GetAt(v, []byte("k"), 3); err != nil || ok {
		t.Fatalf("GetAt(3) should miss, got ok=%v err=%v", ok, err)
	}
}

func TestSnapshotIterFiltersAndCancels(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	it1 := &hdrIter{entries: []hdrEntry{
		{k: []byte("a"), v: []byte("1"), seq: 1},
		{k: []byte("b"), v: []byte("2"), seq: 2},
		{k: []byte("c"), v: []byte("3"), seq: 8},
	}, i: -1}
	if _, err := s.Flush(it1, 1, 8); err != nil {
		t.Fatal(err)
	}
	v := s.PinVersion()
	m, pins, err := s.NewVersionIterator(v)
	if err != nil {
		t.Fatal(err)
	}
	si := NewSnapshotIter(context.Background(), m, SnapshotIterOptions{
		MaxSeq:  5,
		OnClose: func() { pins(); s.ReleaseVersion(v) },
	})
	defer si.Close()
	var got []string
	for ok := si.First(); ok; ok = si.Next() {
		got = append(got, string(si.Key()))
	}
	if err := si.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("seq filter: got %v, want [a b]", got)
	}

	// Cancellation stops a fresh iterator immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v2 := s.PinVersion()
	m2, pins2, err := s.NewVersionIterator(v2)
	if err != nil {
		t.Fatal(err)
	}
	si2 := NewSnapshotIter(ctx, m2, SnapshotIterOptions{
		MaxSeq:  100,
		OnClose: func() { pins2(); s.ReleaseVersion(v2) },
	})
	defer si2.Close()
	if si2.First() {
		t.Fatal("canceled iterator yielded a pair")
	}
	if err := si2.Err(); err != context.Canceled {
		t.Fatalf("canceled iterator Err = %v", err)
	}
}
