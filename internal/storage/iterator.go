package storage

import (
	"container/heap"

	"flodb/internal/cache"
	"flodb/internal/keys"
	"flodb/internal/sstable"
)

// InternalIterator is the iterator contract shared by memtable adapters,
// sstable iterators and composite iterators. Entries are visited in (user
// key ascending, sequence number descending) order.
type InternalIterator interface {
	SeekToFirst()
	Seek(key []byte)
	Next()
	Valid() bool
	Key() []byte
	Seq() uint64
	Kind() keys.Kind
	Value() []byte
	Err() error
}

// CreateSeqer is implemented by iterators over structures that update
// values in place (FloDB's memtable): CreateSeq returns the sequence
// number the current entry's node was first created with. Iterators over
// immutable structures (sstables) omit it; CreateSeqOf falls back to Seq,
// which is exact for them.
type CreateSeqer interface {
	CreateSeq() uint64
}

// CreateSeqOf returns the creation sequence of its current entry.
func CreateSeqOf(it InternalIterator) uint64 {
	if c, ok := it.(CreateSeqer); ok {
		return c.CreateSeq()
	}
	return it.Seq()
}

// tableIterAdapter lifts *sstable.Iterator to InternalIterator (method
// sets already match; the adapter exists only to keep sstable free of this
// package's interface).
type tableIterAdapter struct{ *sstable.Iterator }

// NewTableIterator wraps an sstable iterator.
func NewTableIterator(it *sstable.Iterator) InternalIterator { return tableIterAdapter{it} }

// --- Merging iterator --------------------------------------------------------

// mergingIter merges n child iterators. Ties on (key, seq) are broken by
// child rank: lower rank means fresher source (e.g. newer L0 file), so the
// freshest entry is always surfaced first.
type mergingIter struct {
	children []InternalIterator
	h        mergeHeap
	err      error
}

// NewMergingIterator merges children; child order encodes freshness (index
// 0 is the freshest source).
func NewMergingIterator(children ...InternalIterator) InternalIterator {
	return &mergingIter{children: children}
}

type mergeItem struct {
	it   InternalIterator
	rank int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if c := keys.Compare(a.it.Key(), b.it.Key()); c != 0 {
		return c < 0
	}
	if sa, sb := a.it.Seq(), b.it.Seq(); sa != sb {
		return sa > sb // newer first
	}
	return a.rank < b.rank
}
func (h mergeHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)          { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any            { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (m *mergingIter) rebuild()          { heap.Init(&m.h) }
func (m *mergingIter) Err() error        { return m.err }
func (m *mergingIter) Valid() bool       { return m.err == nil && len(m.h) > 0 }
func (m *mergingIter) Key() []byte       { return m.h[0].it.Key() }
func (m *mergingIter) Seq() uint64       { return m.h[0].it.Seq() }
func (m *mergingIter) Kind() keys.Kind   { return m.h[0].it.Kind() }
func (m *mergingIter) Value() []byte     { return m.h[0].it.Value() }
func (m *mergingIter) CreateSeq() uint64 { return CreateSeqOf(m.h[0].it) }

func (m *mergingIter) reset(position func(InternalIterator)) {
	m.err = nil
	m.h = m.h[:0]
	for rank, it := range m.children {
		position(it)
		if err := it.Err(); err != nil && m.err == nil {
			m.err = err
		}
		if it.Valid() {
			m.h = append(m.h, mergeItem{it: it, rank: rank})
		}
	}
	m.rebuild()
}

func (m *mergingIter) SeekToFirst() { m.reset(func(it InternalIterator) { it.SeekToFirst() }) }
func (m *mergingIter) Seek(key []byte) {
	m.reset(func(it InternalIterator) { it.Seek(key) })
}

func (m *mergingIter) Next() {
	if !m.Valid() {
		return
	}
	top := m.h[0]
	top.it.Next()
	if err := top.it.Err(); err != nil {
		m.err = err
		return
	}
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// --- Level (concatenating) iterator ------------------------------------------

// levelIter iterates a sorted run of non-overlapping files (an L1+ level)
// by chaining per-table iterators, opening each table lazily through the
// cache. The current table's handle stays pinned (fd guaranteed open)
// until the iterator moves to the next file; callers who abandon a level
// iterator mid-run must close() it to drop the final pin.
type levelIter struct {
	cache *tableCache
	files []*FileMeta // sorted by Smallest, non-overlapping

	fileIdx int
	cur     InternalIterator
	curH    *cache.Handle
	err     error
}

// NewLevelIterator returns an iterator over a non-overlapping file run.
func NewLevelIterator(cache *tableCache, files []*FileMeta) *levelIter {
	return &levelIter{cache: cache, files: files, fileIdx: -1}
}

// close releases the pin on the current table. The iterator becomes
// invalid; it may be re-positioned with SeekToFirst/Seek.
func (l *levelIter) close() {
	if l.curH != nil {
		l.curH.Release()
		l.curH = nil
	}
	l.cur = nil
}

func (l *levelIter) openFile(i int) bool {
	if l.curH != nil {
		l.curH.Release()
		l.curH = nil
	}
	if i >= len(l.files) {
		l.cur = nil
		return false
	}
	r, h, err := l.cache.Get(l.files[i].Num)
	if err != nil {
		l.err = err
		l.cur = nil
		return false
	}
	l.fileIdx = i
	l.curH = h
	l.cur = NewTableIterator(r.NewIterator())
	return true
}

func (l *levelIter) SeekToFirst() {
	l.err = nil
	if !l.openFile(0) {
		return
	}
	l.cur.SeekToFirst()
	l.skipExhausted()
}

func (l *levelIter) Seek(key []byte) {
	l.err = nil
	// Binary search over file ranges: first file whose Largest >= key.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(l.files[mid].Largest, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !l.openFile(lo) {
		return
	}
	l.cur.Seek(key)
	l.skipExhausted()
}

func (l *levelIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.Next()
	l.skipExhausted()
}

// skipExhausted advances to the next file while the current iterator is
// spent.
func (l *levelIter) skipExhausted() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur = nil
			return
		}
		if !l.openFile(l.fileIdx + 1) {
			return
		}
		l.cur.SeekToFirst()
	}
}

func (l *levelIter) Valid() bool {
	return l.err == nil && l.cur != nil && l.cur.Valid()
}
func (l *levelIter) Key() []byte     { return l.cur.Key() }
func (l *levelIter) Seq() uint64     { return l.cur.Seq() }
func (l *levelIter) Kind() keys.Kind { return l.cur.Kind() }
func (l *levelIter) Value() []byte   { return l.cur.Value() }
func (l *levelIter) Err() error      { return l.err }
