// Package storage implements the disk component of the LSM: a leveled
// hierarchy of sstables with a manifest, background compaction, and a
// concurrent table cache. It corresponds to the "Disk component / L0..Ln"
// box of the paper's Figure 1 and reimplements the LevelDB mechanisms the
// paper keeps unchanged ("We keep the persisting and compaction mechanisms
// of LevelDB", §4).
//
// The one deliberate deviation, taken from the paper itself (§4 footnote
// 2), is the file-descriptor cache: LevelDB's global-lock-protected
// fd-cache was a scalability bottleneck, which FloDB replaced with a
// scalable concurrent hash table. Our table cache is sharded with
// per-shard locks for the same reason.
package storage

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// FileKind identifies the role of a file in the store directory.
type FileKind int

const (
	// KindUnknown marks files the store does not manage.
	KindUnknown FileKind = iota
	// KindTable is an .sst sorted table.
	KindTable
	// KindWAL is a write-ahead log segment.
	KindWAL
	// KindManifest is a versioned MANIFEST file.
	KindManifest
	// KindCurrent is the CURRENT pointer file.
	KindCurrent
	// KindTemp is a temporary file from an interrupted operation.
	KindTemp
)

// TableFileName returns the path of table number n inside dir.
func TableFileName(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", n))
}

// WALFileName returns the path of WAL segment n inside dir.
func WALFileName(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.wal", n))
}

// ManifestFileName returns the path of manifest generation n.
func ManifestFileName(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("MANIFEST-%06d", n))
}

// CurrentFileName returns the CURRENT pointer path.
func CurrentFileName(dir string) string { return filepath.Join(dir, "CURRENT") }

// TempFileName returns a scratch path for file number n.
func TempFileName(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.tmp", n))
}

// ParseFileName classifies a base name and extracts its number when
// applicable.
func ParseFileName(base string) (kind FileKind, num uint64) {
	switch {
	case base == "CURRENT":
		return KindCurrent, 0
	case strings.HasPrefix(base, "MANIFEST-"):
		n, err := strconv.ParseUint(strings.TrimPrefix(base, "MANIFEST-"), 10, 64)
		if err != nil {
			return KindUnknown, 0
		}
		return KindManifest, n
	case strings.HasSuffix(base, ".sst"):
		n, err := strconv.ParseUint(strings.TrimSuffix(base, ".sst"), 10, 64)
		if err != nil {
			return KindUnknown, 0
		}
		return KindTable, n
	case strings.HasSuffix(base, ".wal"):
		n, err := strconv.ParseUint(strings.TrimSuffix(base, ".wal"), 10, 64)
		if err != nil {
			return KindUnknown, 0
		}
		return KindWAL, n
	case strings.HasSuffix(base, ".tmp"):
		n, err := strconv.ParseUint(strings.TrimSuffix(base, ".tmp"), 10, 64)
		if err != nil {
			return KindUnknown, 0
		}
		return KindTemp, n
	default:
		return KindUnknown, 0
	}
}
