package storage

import (
	"fmt"
	"sort"
	"time"

	"flodb/internal/keys"
	"flodb/internal/obs"
	"flodb/internal/sstable"
)

// compaction describes one unit of background work: merge `inputs` (from
// `level` and level+1) into new files at level+1.
type compaction struct {
	level   int
	inputs  []*FileMeta // files from level
	overlap []*FileMeta // files from level+1
	// bounds of the merged key range (inclusive).
	lo, hi []byte
}

func (c *compaction) allInputs() []*FileMeta {
	out := make([]*FileMeta, 0, len(c.inputs)+len(c.overlap))
	out = append(out, c.inputs...)
	out = append(out, c.overlap...)
	return out
}

// maxBytesForLevel is the size threshold beyond which level l is eligible
// for compaction.
func (s *Store) maxBytesForLevel(l int) int64 {
	n := s.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		n *= int64(s.opts.LevelMultiplier)
	}
	return n
}

// pickCompaction selects the highest-scoring compaction whose inputs are
// not already being compacted. Caller must hold vs.mu.
func (s *Store) pickCompaction() *compaction {
	v := s.vs.current

	bestLevel := -1
	bestScore := 1.0 // only pick when score >= 1
	// L0 score: file count vs trigger.
	if score := float64(len(v.files[0])) / float64(s.opts.L0CompactionTrigger); score >= bestScore {
		bestScore, bestLevel = score, 0
	}
	for l := 1; l < NumLevels-1; l++ {
		if score := float64(v.SizeBytes(l)) / float64(s.maxBytesForLevel(l)); score >= bestScore {
			bestScore, bestLevel = score, l
		}
	}
	if bestLevel < 0 {
		return nil
	}
	c := &compaction{level: bestLevel}
	if bestLevel == 0 {
		// All L0 files merge together (they may overlap each other).
		for _, f := range v.files[0] {
			if s.compacting[f.Num] {
				return nil // an L0 compaction is already running
			}
			c.inputs = append(c.inputs, f)
		}
	} else {
		// Round-robin over the level using the compaction pointer.
		files := v.files[bestLevel]
		if len(files) == 0 {
			return nil
		}
		ptr := s.compactPtr[bestLevel]
		idx := 0
		if ptr != nil {
			idx = sort.Search(len(files), func(i int) bool {
				return keys.Compare(files[i].Smallest, ptr) > 0
			})
			if idx == len(files) {
				idx = 0
			}
		}
		f := files[idx]
		if s.compacting[f.Num] {
			return nil
		}
		c.inputs = []*FileMeta{f}
	}
	c.lo, c.hi = keyRange(c.inputs)
	// Pull in the overlapping files one level down.
	for _, f := range v.overlappingFiles(c.level+1, c.lo, c.hi) {
		if s.compacting[f.Num] {
			return nil
		}
		c.overlap = append(c.overlap, f)
	}
	if len(c.overlap) > 0 {
		lo2, hi2 := keyRange(c.overlap)
		if keys.Compare(lo2, c.lo) < 0 {
			c.lo = lo2
		}
		if keys.Compare(hi2, c.hi) > 0 {
			c.hi = hi2
		}
	}
	for _, f := range c.allInputs() {
		s.compacting[f.Num] = true
	}
	return c
}

func keyRange(files []*FileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || keys.Compare(f.Smallest, lo) < 0 {
			lo = f.Smallest
		}
		if hi == nil || keys.Compare(f.Largest, hi) > 0 {
			hi = f.Largest
		}
	}
	return lo, hi
}

// runCompaction merges c's inputs into level+1 output files, keeping only
// the newest version of each user key and dropping tombstones that shadow
// nothing deeper. It unmarks c's inputs on every exit path and wakes
// WaitForCompactions waiters.
func (s *Store) runCompaction(c *compaction) error {
	var start time.Time
	if s.events != nil {
		start = time.Now()
	}
	defer func() {
		s.vs.mu.Lock()
		for _, f := range c.allInputs() {
			delete(s.compacting, f.Num)
		}
		s.cond.Broadcast()
		s.vs.mu.Unlock()
	}()
	outLevel := c.level + 1

	// Snapshot the deeper-level file ranges once for the tombstone check.
	s.vs.mu.Lock()
	var deeper [][]*FileMeta
	for l := outLevel + 1; l < NumLevels; l++ {
		deeper = append(deeper, s.vs.current.files[l])
	}
	s.vs.mu.Unlock()
	isBase := func(key []byte) bool {
		for _, files := range deeper {
			i := sort.Search(len(files), func(i int) bool {
				return keys.Compare(files[i].Largest, key) >= 0
			})
			if i < len(files) && keys.Compare(files[i].Smallest, key) <= 0 {
				return false
			}
		}
		return true
	}

	// Input tables stay pinned in the table cache for the compaction's
	// duration: eviction under fd pressure must not close a reader the
	// merge is mid-read on.
	var children []InternalIterator
	var pins []func()
	defer func() {
		for _, f := range pins {
			f()
		}
	}()
	for _, f := range c.inputs {
		r, h, err := s.cache.Get(f.Num)
		if err != nil {
			return err
		}
		pins = append(pins, h.Release)
		children = append(children, NewTableIterator(r.NewIterator()))
	}
	if len(c.overlap) > 0 {
		li := NewLevelIterator(s.cache, c.overlap)
		pins = append(pins, li.close)
		children = append(children, li)
	}
	merged := NewMergingIterator(children...)

	var (
		outputs  []FileMeta
		w        *sstable.Writer
		wNum     uint64
		lastKey  []byte
		haveLast bool
	)
	finishOutput := func() error {
		if w == nil {
			return nil
		}
		m, err := w.Finish()
		if err != nil {
			return err
		}
		outputs = append(outputs, FileMeta{
			Num: wNum, Size: m.Size, Smallest: m.Smallest, Largest: m.Largest,
			MinSeq: m.MinSeq, MaxSeq: m.MaxSeq, Count: m.Count,
		})
		w = nil
		return nil
	}
	abort := func() {
		if w != nil {
			w.Abort()
		}
		for _, o := range outputs {
			s.cache.Evict(o.Num)
			removeTable(s.dir, o.Num)
		}
	}

	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		key := merged.Key()
		if haveLast && keys.Equal(lastKey, key) {
			continue // older version of a key we already emitted
		}
		lastKey = append(lastKey[:0], key...)
		haveLast = true
		if merged.Kind() == keys.KindDelete && isBase(key) {
			continue // tombstone shadows nothing: drop it
		}
		if w == nil {
			s.vs.mu.Lock()
			wNum = s.vs.newFileNumLocked()
			s.vs.mu.Unlock()
			var err error
			w, err = sstable.NewWriter(TableFileName(s.dir, wNum), s.tableOpts())
			if err != nil {
				abort()
				return err
			}
		}
		if err := w.Add(key, merged.Seq(), merged.Kind(), merged.Value()); err != nil {
			abort()
			return err
		}
		if w.EstimatedSize() >= s.opts.TargetFileSize {
			if err := finishOutput(); err != nil {
				abort()
				return err
			}
		}
	}
	if err := merged.Err(); err != nil {
		abort()
		return fmt.Errorf("storage: compaction merge: %w", err)
	}
	if err := finishOutput(); err != nil {
		abort()
		return err
	}

	edit := &VersionEdit{}
	for _, f := range c.inputs {
		edit.Deleted = append(edit.Deleted, DeletedFile{Level: c.level, Num: f.Num})
	}
	for _, f := range c.overlap {
		edit.Deleted = append(edit.Deleted, DeletedFile{Level: outLevel, Num: f.Num})
	}
	for i := range outputs {
		edit.Added = append(edit.Added, AddedFile{Level: outLevel, Meta: outputs[i]})
	}

	s.vs.mu.Lock()
	err := s.vs.logAndApply(edit)
	if err == nil && c.level > 0 {
		s.compactPtr[c.level] = append([]byte(nil), c.hi...)
	}
	obsolete := s.vs.takeObsolete()
	s.vs.mu.Unlock()
	if err != nil {
		return err
	}
	s.vs.deleteTables(obsolete)
	s.compactions.Add(1)
	if s.events != nil {
		var inBytes, outBytes, outKeys int64
		for _, f := range c.allInputs() {
			inBytes += f.Size
		}
		for i := range outputs {
			outBytes += outputs[i].Size
			outKeys += int64(outputs[i].Count)
		}
		s.events.Emit(obs.Event{
			Type: obs.EventCompaction, Dur: time.Since(start),
			Bytes: outBytes, Keys: outKeys,
			Detail: fmt.Sprintf("L%d->L%d, %d in -> %d out files, %s in", c.level, outLevel, len(c.allInputs()), len(outputs), fmtByteSize(inBytes)),
		})
		s.noteCachePressure()
	}
	return nil
}

// fmtByteSize renders a byte count for event detail strings.
func fmtByteSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func removeTable(dir string, num uint64) {
	// Best effort: compaction abort path.
	_ = removeFile(TableFileName(dir, num))
}
