package storage

import (
	"fmt"
	"math"
	"sort"

	"flodb/internal/keys"
)

// NumLevels is the depth of the on-disk hierarchy (L0..L6, as in LevelDB).
const NumLevels = 7

// FileMeta describes one sstable in the version tree.
type FileMeta struct {
	Num      uint64
	Size     int64
	Smallest []byte // smallest user key, inclusive
	Largest  []byte // largest user key, inclusive
	MinSeq   uint64
	MaxSeq   uint64
	Count    uint64
}

func (f *FileMeta) overlaps(lo, hi []byte) bool {
	// lo == nil means -inf, hi == nil means +inf. Bounds inclusive.
	if hi != nil && keys.Compare(f.Smallest, hi) > 0 {
		return false
	}
	if lo != nil && keys.Compare(f.Largest, lo) < 0 {
		return false
	}
	return true
}

// Version is an immutable snapshot of the file tree. L0 files are ordered
// newest first (descending file number); deeper levels are sorted by
// Smallest and do not overlap.
type Version struct {
	files [NumLevels][]*FileMeta
	refs  int // guarded by versionSet.mu
}

// Level returns the files of one level (shared slice; do not mutate).
func (v *Version) Level(l int) []*FileMeta { return v.files[l] }

// NumFiles returns the file count at level l.
func (v *Version) NumFiles(l int) int { return len(v.files[l]) }

// SizeBytes returns total bytes at level l.
func (v *Version) SizeBytes(l int) int64 {
	var n int64
	for _, f := range v.files[l] {
		n += f.Size
	}
	return n
}

// TotalFiles returns the file count across levels.
func (v *Version) TotalFiles() int {
	n := 0
	for l := range v.files {
		n += len(v.files[l])
	}
	return n
}

// get searches the version for key, newest level first. Within L0 all
// overlapping files are consulted and the highest sequence number wins
// (flushes are sequential, but this is robust even if they were not).
func (v *Version) get(cache *tableCache, key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool, err error) {
	return v.getAt(cache, key, math.MaxUint64)
}

// getAt searches the version for the newest occurrence of key with
// seq <= maxSeq. Files whose version of the key is newer than maxSeq are
// skipped and the search continues in older files and deeper levels —
// the read path of a sequence-bounded snapshot over a pinned version.
func (v *Version) getAt(cache *tableCache, key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool, err error) {
	var (
		bestSeq  uint64
		bestVal  []byte
		bestKind keys.Kind
		found    bool
	)
	for _, f := range v.files[0] {
		if !f.overlaps(key, key) {
			continue
		}
		r, h, err := cache.Get(f.Num)
		if err != nil {
			return nil, 0, 0, false, err
		}
		val, s, k, hit, err := r.Get(key)
		h.Release()
		if err != nil {
			return nil, 0, 0, false, err
		}
		if hit && s <= maxSeq && (!found || s > bestSeq) {
			bestSeq, bestVal, bestKind, found = s, val, k, true
		}
	}
	if found {
		return bestVal, bestSeq, bestKind, true, nil
	}
	for l := 1; l < NumLevels; l++ {
		files := v.files[l]
		if len(files) == 0 {
			continue
		}
		i := sort.Search(len(files), func(i int) bool {
			return keys.Compare(files[i].Largest, key) >= 0
		})
		if i == len(files) || keys.Compare(files[i].Smallest, key) > 0 {
			continue
		}
		r, h, err := cache.Get(files[i].Num)
		if err != nil {
			return nil, 0, 0, false, err
		}
		val, s, k, hit, err := r.Get(key)
		h.Release()
		if err != nil {
			return nil, 0, 0, false, err
		}
		if hit && s <= maxSeq {
			return val, s, k, true, nil
		}
	}
	return nil, 0, 0, false, nil
}

// newIterator builds a merged iterator over every file in the version.
// Child order encodes freshness: L0 files newest→oldest, then L1..Ln.
// The returned release function drops every table pin the iterator holds
// (all L0 handles plus each level iterator's current file) and must be
// called when iteration is abandoned or complete.
func (v *Version) newIterator(cache *tableCache) (InternalIterator, func(), error) {
	var children []InternalIterator
	var pins []func()
	release := func() {
		for _, f := range pins {
			f()
		}
	}
	for _, f := range v.files[0] {
		r, h, err := cache.Get(f.Num)
		if err != nil {
			release()
			return nil, nil, err
		}
		pins = append(pins, h.Release)
		children = append(children, NewTableIterator(r.NewIterator()))
	}
	for l := 1; l < NumLevels; l++ {
		if len(v.files[l]) > 0 {
			li := NewLevelIterator(cache, v.files[l])
			pins = append(pins, li.close)
			children = append(children, li)
		}
	}
	return NewMergingIterator(children...), release, nil
}

// overlappingFiles returns the files in level l intersecting [lo, hi]
// (inclusive; nil bounds are infinite).
func (v *Version) overlappingFiles(l int, lo, hi []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.files[l] {
		if f.overlaps(lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

// checkInvariants validates ordering constraints; used by tests.
func (v *Version) checkInvariants() error {
	for i := 1; i < len(v.files[0]); i++ {
		if v.files[0][i-1].Num <= v.files[0][i].Num {
			return fmt.Errorf("L0 not newest-first at %d", i)
		}
	}
	for l := 1; l < NumLevels; l++ {
		files := v.files[l]
		for i := range files {
			if keys.Compare(files[i].Smallest, files[i].Largest) > 0 {
				return fmt.Errorf("L%d file %d has inverted bounds", l, files[i].Num)
			}
			if i > 0 {
				if keys.Compare(files[i-1].Largest, files[i].Smallest) >= 0 {
					return fmt.Errorf("L%d files %d and %d overlap", l, files[i-1].Num, files[i].Num)
				}
			}
		}
	}
	return nil
}

// versionBuilder applies an edit to a base version.
type versionBuilder struct {
	base    *Version
	deleted map[uint64]bool
	added   [NumLevels][]*FileMeta
}

func newVersionBuilder(base *Version) *versionBuilder {
	return &versionBuilder{base: base, deleted: make(map[uint64]bool)}
}

func (b *versionBuilder) apply(e *VersionEdit) {
	for _, d := range e.Deleted {
		b.deleted[d.Num] = true
	}
	for _, a := range e.Added {
		f := a.Meta
		b.added[a.Level] = append(b.added[a.Level], &f)
	}
}

func (b *versionBuilder) build() *Version {
	v := &Version{}
	for l := 0; l < NumLevels; l++ {
		var files []*FileMeta
		for _, f := range b.base.files[l] {
			if !b.deleted[f.Num] {
				files = append(files, f)
			}
		}
		files = append(files, b.added[l]...)
		if l == 0 {
			sort.Slice(files, func(i, j int) bool { return files[i].Num > files[j].Num })
		} else {
			sort.Slice(files, func(i, j int) bool {
				return keys.Compare(files[i].Smallest, files[j].Smallest) < 0
			})
		}
		v.files[l] = files
	}
	return v
}
