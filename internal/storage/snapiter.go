package storage

import (
	"context"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// SnapshotIterOptions configure a SnapshotIter.
type SnapshotIterOptions struct {
	// Low and High bound the range (low <= key < high; nil is open). The
	// slices are cloned.
	Low, High []byte
	// MaxSeq is the snapshot bound: versions with seq > MaxSeq are
	// invisible.
	MaxSeq uint64
	// OnClose, when non-nil, runs once on Close — typically releasing a
	// pinned Version and running the store's end-of-read critical section.
	OnClose func()
}

// NewSnapshotIter wraps a merged InternalIterator (memtables and/or a
// pinned disk Version) as a kv.Iterator that streams live pairs with
// seq <= MaxSeq in ascending key order, deduplicating versions and
// skipping tombstones. Multi-versioning makes the stream conflict-free:
// versions newer than the bound are simply skipped — the approach whose
// memory cost the paper's §3.2 criticizes, but which needs no restarts.
//
// The context is captured: every positioning call checks it, so a
// canceled or expired context makes iteration stop promptly with the
// context's error in Err.
func NewSnapshotIter(ctx context.Context, m InternalIterator, opts SnapshotIterOptions) kv.Iterator {
	return &snapshotIter{
		ctx:     ctx,
		m:       m,
		low:     keys.Clone(opts.Low),
		high:    keys.Clone(opts.High),
		snap:    opts.MaxSeq,
		onClose: opts.OnClose,
	}
}

// snapshotIter streams live pairs <= snap in key order.
type snapshotIter struct {
	ctx       context.Context
	m         InternalIterator
	low, high []byte
	snap      uint64
	onClose   func()

	lastKey    []byte
	haveLast   bool
	positioned bool
	onPair     bool
	closed     bool
	err        error
}

var _ kv.Iterator = (*snapshotIter)(nil)

// checkCtx records a context error, stopping iteration.
func (it *snapshotIter) checkCtx() bool {
	if it.err != nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		it.onPair = false
		return false
	}
	return true
}

// First positions at the first live pair of the range.
func (it *snapshotIter) First() bool {
	if it.closed || !it.checkCtx() {
		return false
	}
	it.positioned = true
	it.haveLast = false
	it.m.Seek(it.low)
	return it.settle()
}

// Seek positions at the first live pair with key >= key (clamped to low).
func (it *snapshotIter) Seek(key []byte) bool {
	if it.closed || !it.checkCtx() {
		return false
	}
	if it.low != nil && (key == nil || keys.Compare(key, it.low) < 0) {
		key = it.low
	}
	it.positioned = true
	it.haveLast = false
	it.m.Seek(key)
	return it.settle()
}

// Next advances past the current key's remaining versions to the next
// live pair; unpositioned, it is equivalent to First.
func (it *snapshotIter) Next() bool {
	if it.closed || !it.checkCtx() {
		return false
	}
	if !it.positioned {
		return it.First()
	}
	if it.m.Valid() {
		it.m.Next()
	}
	return it.settle()
}

// settle skips versions newer than the snapshot, superseded versions of an
// already-visited key, and tombstones, stopping on the next live pair.
func (it *snapshotIter) settle() bool {
	it.onPair = false
	for n := 0; it.m.Valid(); it.m.Next() {
		// A long run of invisible versions must still honor cancellation.
		if n++; n&1023 == 0 && !it.checkCtx() {
			return false
		}
		k := it.m.Key()
		if it.high != nil && keys.Compare(k, it.high) >= 0 {
			return false
		}
		if it.m.Seq() > it.snap {
			continue // newer than the snapshot: invisible
		}
		if it.haveLast && keys.Equal(it.lastKey, k) {
			continue // superseded version of a visited key
		}
		it.lastKey = append(it.lastKey[:0], k...)
		it.haveLast = true
		if it.m.Kind() == keys.KindDelete {
			continue
		}
		it.onPair = true
		return true
	}
	return false
}

// Key returns the current key; the slice is valid until the next advance.
func (it *snapshotIter) Key() []byte {
	if !it.onPair {
		return nil
	}
	return it.m.Key()
}

// Value returns the current value, under the same aliasing rule as Key.
func (it *snapshotIter) Value() []byte {
	if !it.onPair {
		return nil
	}
	return it.m.Value()
}

// Err returns the first error: a context error or the underlying merge's.
func (it *snapshotIter) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.m.Err()
}

// Close releases the iterator's pinned resources. It is idempotent.
func (it *snapshotIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.onPair = false
	if it.onClose != nil {
		it.onClose()
	}
	return nil
}
