package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"flodb/internal/wal"
)

// VersionEdit is one manifest record: a delta applied to the version tree.
// Encoded as JSON inside a CRC-framed WAL record, giving the manifest the
// same torn-tail tolerance as the commit log.
type VersionEdit struct {
	// LogNum, when non-nil, records the oldest WAL whose contents are NOT
	// yet persisted in tables; recovery replays WALs >= LogNum.
	LogNum *uint64 `json:"log,omitempty"`
	// NextFileNum, when non-nil, advances the file-number allocator.
	NextFileNum *uint64 `json:"next,omitempty"`
	// LastSeq, when non-nil, records the newest persisted sequence number.
	LastSeq *uint64 `json:"seq,omitempty"`
	// Added and Deleted list file changes.
	Added   []AddedFile   `json:"add,omitempty"`
	Deleted []DeletedFile `json:"del,omitempty"`
}

// AddedFile places Meta at Level.
type AddedFile struct {
	Level int      `json:"level"`
	Meta  FileMeta `json:"meta"`
}

// DeletedFile removes file Num from Level.
type DeletedFile struct {
	Level int    `json:"level"`
	Num   uint64 `json:"num"`
}

// versionSet owns the current version, the manifest, and the file-number
// and sequence allocators. All fields are guarded by mu unless noted.
type versionSet struct {
	mu  sync.Mutex
	dir string

	current     *Version
	fileRefs    map[uint64]int // table file -> referencing live versions
	manifest    *wal.Writer
	manifestNum uint64
	nextFileNum uint64
	logNum      uint64
	lastSeq     uint64

	cache *tableCache

	// obsoleteTables queues files whose refcount hit zero for deletion.
	obsoleteTables []uint64
}

var errNoCurrent = errors.New("storage: CURRENT file missing")

// openVersionSet recovers the version set from dir, creating a fresh store
// when none exists.
func openVersionSet(dir string, cache *tableCache) (*versionSet, error) {
	vs := &versionSet{
		dir:         dir,
		fileRefs:    make(map[uint64]int),
		nextFileNum: 1,
		cache:       cache,
	}
	err := vs.recover()
	switch {
	case errors.Is(err, errNoCurrent):
		vs.current = &Version{}
		vs.current.refs = 1 // the "current" reference
	case err != nil:
		return nil, err
	}
	vs.refFiles(vs.current)
	// Start a fresh manifest generation containing a full snapshot.
	if err := vs.rewriteManifest(); err != nil {
		return nil, err
	}
	vs.removeOrphans()
	return vs, nil
}

// recover loads CURRENT and replays the manifest it names.
func (vs *versionSet) recover() error {
	cur, err := os.ReadFile(CurrentFileName(vs.dir))
	if err != nil {
		if os.IsNotExist(err) {
			return errNoCurrent
		}
		return fmt.Errorf("storage: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	kind, num := ParseFileName(name)
	if kind != KindManifest {
		return fmt.Errorf("storage: CURRENT names %q, not a manifest", name)
	}
	vs.manifestNum = num

	// Apply edits one at a time: an edit sequence may add a file and later
	// delete it (flush then compaction), which a single accumulated delta
	// would resurrect.
	v := &Version{}
	err = wal.ReplayAll(filepath.Join(vs.dir, name), func(rec []byte) error {
		var e VersionEdit
		if err := json.Unmarshal(rec, &e); err != nil {
			return fmt.Errorf("storage: manifest record: %w", err)
		}
		b := newVersionBuilder(v)
		b.apply(&e)
		v = b.build()
		if e.LogNum != nil {
			vs.logNum = *e.LogNum
		}
		if e.NextFileNum != nil {
			vs.nextFileNum = *e.NextFileNum
		}
		if e.LastSeq != nil {
			vs.lastSeq = *e.LastSeq
		}
		return nil
	})
	if err != nil {
		return err
	}
	// WAL numbers are allocated by the DB layer; never hand them out again.
	if vs.logNum >= vs.nextFileNum {
		vs.nextFileNum = vs.logNum + 1
	}
	if err := v.checkInvariants(); err != nil {
		return fmt.Errorf("storage: recovered version invalid: %w", err)
	}
	v.refs = 1
	vs.current = v
	return nil
}

// rewriteManifest starts a new manifest generation seeded with a snapshot
// of the current version, then atomically repoints CURRENT.
func (vs *versionSet) rewriteManifest() error {
	num := vs.nextFileNum
	vs.nextFileNum++
	path := ManifestFileName(vs.dir, num)
	w, err := wal.Create(path, wal.Options{})
	if err != nil {
		return err
	}
	snap := VersionEdit{
		LogNum:      ptr(vs.logNum),
		NextFileNum: ptr(vs.nextFileNum),
		LastSeq:     ptr(vs.lastSeq),
	}
	for l := 0; l < NumLevels; l++ {
		for _, f := range vs.current.files[l] {
			snap.Added = append(snap.Added, AddedFile{Level: l, Meta: *f})
		}
	}
	rec, err := json.Marshal(&snap)
	if err != nil {
		w.Close()
		return err
	}
	if _, err := w.Append(rec); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	if err := setCurrent(vs.dir, num); err != nil {
		w.Close()
		return err
	}
	if vs.manifest != nil {
		vs.manifest.Close()
		os.Remove(ManifestFileName(vs.dir, vs.manifestNum))
	}
	vs.manifest = w
	vs.manifestNum = num
	return nil
}

func ptr[T any](v T) *T { return &v }

// setCurrent atomically points CURRENT at manifest num via rename.
func setCurrent(dir string, num uint64) error {
	tmp := filepath.Join(dir, "CURRENT.tmp")
	content := filepath.Base(ManifestFileName(dir, num)) + "\n"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	return os.Rename(tmp, CurrentFileName(dir))
}

// logAndApply writes edit to the manifest and installs the resulting
// version as current. Caller must hold mu.
func (vs *versionSet) logAndApply(e *VersionEdit) error {
	if e.LogNum != nil {
		vs.logNum = *e.LogNum
	}
	if e.LastSeq != nil && *e.LastSeq > vs.lastSeq {
		vs.lastSeq = *e.LastSeq
	}
	e.NextFileNum = ptr(vs.nextFileNum)

	rec, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := vs.manifest.Append(rec); err != nil {
		return err
	}
	if err := vs.manifest.Sync(); err != nil {
		return err
	}

	b := newVersionBuilder(vs.current)
	b.apply(e)
	v := b.build()
	v.refs = 1
	vs.refFiles(v)
	old := vs.current
	vs.current = v
	vs.unrefLocked(old)
	return nil
}

// refVersion takes a reference on the current version for a reader.
// Callers release with releaseVersion.
func (vs *versionSet) refCurrent() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v := vs.current
	v.refs++
	return v
}

func (vs *versionSet) releaseVersion(v *Version) {
	vs.mu.Lock()
	vs.unrefLocked(v)
	obsolete := vs.takeObsolete()
	vs.mu.Unlock()
	vs.deleteTables(obsolete)
}

// unrefLocked drops one reference; at zero the version's files are
// unreferenced and any that reach zero overall are queued for deletion.
func (vs *versionSet) unrefLocked(v *Version) {
	v.refs--
	if v.refs > 0 {
		return
	}
	for l := 0; l < NumLevels; l++ {
		for _, f := range v.files[l] {
			vs.fileRefs[f.Num]--
			if vs.fileRefs[f.Num] <= 0 {
				delete(vs.fileRefs, f.Num)
				vs.obsoleteTables = append(vs.obsoleteTables, f.Num)
			}
		}
	}
}

func (vs *versionSet) refFiles(v *Version) {
	for l := 0; l < NumLevels; l++ {
		for _, f := range v.files[l] {
			vs.fileRefs[f.Num]++
		}
	}
}

func (vs *versionSet) takeObsolete() []uint64 {
	obs := vs.obsoleteTables
	vs.obsoleteTables = nil
	return obs
}

func (vs *versionSet) deleteTables(nums []uint64) {
	for _, num := range nums {
		vs.cache.Evict(num)
		os.Remove(TableFileName(vs.dir, num))
	}
}

// newFileNum allocates a file number. Caller must hold mu.
func (vs *versionSet) newFileNumLocked() uint64 {
	n := vs.nextFileNum
	vs.nextFileNum++
	return n
}

// removeOrphans deletes temp files and table files not referenced by the
// current version (crash leftovers). WAL files are the DB layer's to
// manage; only WALs older than logNum are removed.
func (vs *versionSet) removeOrphans() {
	entries, err := os.ReadDir(vs.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		kind, num := ParseFileName(ent.Name())
		switch kind {
		case KindTemp:
			os.Remove(filepath.Join(vs.dir, ent.Name()))
		case KindTable:
			if _, live := vs.fileRefs[num]; !live {
				os.Remove(filepath.Join(vs.dir, ent.Name()))
			}
		case KindWAL:
			if num < vs.logNum {
				os.Remove(filepath.Join(vs.dir, ent.Name()))
			}
		case KindManifest:
			if num != vs.manifestNum {
				os.Remove(filepath.Join(vs.dir, ent.Name()))
			}
		}
	}
}

// close releases the manifest.
func (vs *versionSet) close() error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.manifest != nil {
		return vs.manifest.Close()
	}
	return nil
}

// dump writes a human-readable tree description (flodump).
func (vs *versionSet) dump(w io.Writer) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	fmt.Fprintf(w, "manifest=%d next-file=%d log=%d last-seq=%d\n",
		vs.manifestNum, vs.nextFileNum, vs.logNum, vs.lastSeq)
	for l := 0; l < NumLevels; l++ {
		files := vs.current.files[l]
		if len(files) == 0 {
			continue
		}
		fmt.Fprintf(w, "L%d (%d files, %d bytes):\n", l, len(files), vs.current.SizeBytes(l))
		for _, f := range files {
			fmt.Fprintf(w, "  #%06d %8d bytes  [%x .. %x] seq %d..%d count %d\n",
				f.Num, f.Size, f.Smallest, f.Largest, f.MinSeq, f.MaxSeq, f.Count)
		}
	}
}
