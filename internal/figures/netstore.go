package figures

import (
	"context"
	"net"
	"time"

	"flodb/internal/client"
	"flodb/internal/core"
	"flodb/internal/diskenv"
	"flodb/internal/harness"
	"flodb/internal/kv"
	"flodb/internal/server"
)

// netStore is FloDB/net: a FloDB engine served by an in-process
// flodbd-style server over a loopback TCP socket, accessed EXCLUSIVELY
// through the remote client — every operation the harness or a
// conformance suite issues pays a real network round trip, the wire
// encode/decode, and the server's pipelined dispatch. The embedded
// Client provides the whole kv.Store contract; the wrapper adds only
// the lifecycle the suites need in-process: Close tears down the full
// stack, CrashForTesting models the server PROCESS dying (sockets cut,
// no drain, no close-time WAL sync), and WaitDiskQuiesce reaches the
// inner engine directly — it is a test-setup barrier, not part of the
// remote contract.
type netStore struct {
	*client.Client
	srv   *server.Server
	inner *core.DB
}

// openNet builds the loopback service stack over a fresh FloDB engine.
func openNet(dir string, memBytes int64, lim *diskenv.Limiter, walOn bool) (kv.Store, error) {
	cfg := core.Config{
		Dir:            dir,
		MemoryBytes:    memBytes,
		DisableWAL:     !walOn,
		PersistLimiter: lim,
		Storage:        storageOpts(memBytes),
	}
	applyAdaptiveForTest(&cfg)
	inner, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		inner.Close()
		return nil, err
	}
	srv := server.New(server.Config{Store: inner})
	go srv.Serve(l)
	cl, err := client.Dial(l.Addr().String())
	if err != nil {
		srv.Close()
		inner.Close()
		return nil, err
	}
	return &netStore{Client: cl, srv: srv, inner: inner}, nil
}

// Close shuts the stack down the way flodbd's SIGTERM path does: client
// gone, server drained, then the store's close-time WAL sync.
func (n *netStore) Close() error {
	n.Client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	return n.inner.Close()
}

// CrashForTesting abandons the whole service process: connections cut
// mid-flight, no drain, and the engine loses its staged WAL tail — the
// acked-but-buffered window a real server crash loses.
func (n *netStore) CrashForTesting() {
	n.Client.Close()
	n.srv.Close()
	n.inner.CrashForTesting()
}

// WaitDiskQuiesce settles the inner engine's background work (§5.2's
// pre-measurement barrier).
func (n *netStore) WaitDiskQuiesce() { n.inner.WaitDiskQuiesce() }

var (
	_ kv.Store         = (*netStore)(nil)
	_ harness.Quiescer = (*netStore)(nil)
)
