package figures

import (
	"fmt"

	"flodb/internal/harness"
	"flodb/internal/workload"
)

// Fig9 — write-only workload (50% inserts / 50% deletes), throughput vs
// threads, fresh store per cell (§5.2: "the write-only workload is run on
// a fresh data store"). Expected shape: FloDB highest at every thread
// count (paper: 1.9–3.5× over HyperLevelDB); LevelDB and RocksDB flat
// (single write leader / short-lock serialization); HyperLevelDB scales
// some.
func Fig9(c Config) (*harness.Table, error) {
	c.Defaults()
	tbl := harness.NewTable("Fig 9: write-only workload", "threads", "Mops/s",
		threadCols(c.Threads), systemRows())
	err := c.systemsThreadSweep("fig9", tbl, c.Threads,
		true /* fresh store */, false, false, /* no init: fresh */
		harness.RunOptions{Mix: workload.WriteOnly},
		func(r harness.Result) float64 { return r.MopsPerSec() })
	if c.DiskBytesPerSec > 0 {
		tbl.AddNote("persistence limited to %.0f bytes/s (the paper's dashed line)", c.DiskBytesPerSec)
	}
	return tbl, err
}

// Fig10 — read-only workload after sequential initialization, throughput
// vs threads up to 128. Expected shape: FloDB and RocksDB/cLSM scale with
// threads; LevelDB and HyperLevelDB plateau early (global mutex on the
// read path).
func Fig10(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if c.Quick {
		threads = []int{1, 8, 64}
	}
	tbl := harness.NewTable("Fig 10: read-only workload, sequential initialization", "threads", "Mops/s",
		threadCols(threads), systemRows())
	err := c.systemsThreadSweep("fig10", tbl, threads,
		false /* init once per system */, true /* sorted init */, true,
		harness.RunOptions{Mix: workload.ReadOnly},
		func(r harness.Result) float64 { return r.MopsPerSec() })
	return tbl, err
}

// Fig11 — mixed workload (50% reads, 25% inserts, 25% deletes) vs
// threads. Expected: FloDB ahead across the sweep.
func Fig11(c Config) (*harness.Table, error) {
	c.Defaults()
	tbl := harness.NewTable("Fig 11: mixed read-write workload", "threads", "Mops/s",
		threadCols(c.Threads), systemRows())
	err := c.systemsThreadSweep("fig11", tbl, c.Threads,
		false, false, true, /* random half init once */
		harness.RunOptions{Mix: workload.Balanced},
		func(r harness.Result) float64 { return r.MopsPerSec() })
	return tbl, err
}

// Fig12 — one writer, many readers, vs total threads. Expected: FloDB
// ahead; baselines limited by read-path synchronization.
func Fig12(c Config) (*harness.Table, error) {
	c.Defaults()
	tbl := harness.NewTable("Fig 12: mixed workload, one writer many readers", "threads", "Mops/s",
		threadCols(c.Threads), systemRows())
	err := c.systemsThreadSweep("fig12", tbl, c.Threads,
		false, false, true,
		harness.RunOptions{OneWriter: true},
		func(r harness.Result) float64 { return r.MopsPerSec() })
	return tbl, err
}

// Fig13 — scan-write workload (95% updates, 5% scans of 100 keys),
// key-throughput vs threads (§5.2 measures scans in keys accessed per
// second). Expected: FloDB first; HyperLevelDB competitive (43–90% of
// FloDB in the paper, thanks to its low file count).
func Fig13(c Config) (*harness.Table, error) {
	c.Defaults()
	// Scan-update conflict probability scales with scanLength/keyspace —
	// an absolute, not a ratio — so the scan figures run at 8x the scaled
	// keyspace to stay in the paper's conflict regime (1.2 G keys there).
	// See EXPERIMENTS.md.
	c.Keys *= 8
	tbl := harness.NewTable("Fig 13: mixed scan-write workload", "threads", "Mkeys/s",
		threadCols(c.Threads), systemRows())
	err := c.systemsThreadSweep("fig13", tbl, c.Threads,
		false, false, true,
		harness.RunOptions{Mix: workload.ScanWrite, ScanLength: 100},
		func(r harness.Result) float64 { return r.MkeysPerSec() })
	tbl.AddNote("keyspace x8 (%d keys) to match the paper's scan-conflict regime", c.Keys)
	return tbl, err
}

// Fig14 — impact of the scan ratio at a fixed thread count: operation
// throughput falls with more scans while key throughput rises. Three rows:
// write ops/s, scan ops/s, and keys/s (the paper's two panels).
func Fig14(c Config) (*harness.Table, error) {
	c.Defaults()
	c.Keys *= 8 // scan-conflict regime; see Fig13
	ratios := []int{2, 5, 10, 25, 50}
	if c.Quick {
		ratios = []int{2, 10, 50}
	}
	cols := make([]string, len(ratios))
	for i, r := range ratios {
		cols[i] = fmt.Sprintf("%d%%", r)
	}
	tbl := harness.NewTable("Fig 14: impact of scan ratio (FloDB, 16 threads)", "scan %", "throughput",
		cols, []string{"write Mops/s", "scan Kops/s", "total Mkeys/s"})

	threads := 16
	if c.Quick {
		threads = 4
	}
	dir, err := c.cellDir("fig14")
	if err != nil {
		return nil, err
	}
	store, err := openSystem(SysFloDB, dir, c.MemBytes, c.limiter())
	if err != nil {
		return nil, err
	}
	defer store.Close()
	if err := initHalf(store, c.Keys, false); err != nil {
		return nil, err
	}
	for i, ratio := range ratios {
		res := harness.Run(store, harness.RunOptions{
			Threads:    threads,
			Duration:   c.Duration,
			Mix:        workload.ScanWithPct(ratio),
			Keys:       c.Keys,
			ScanLength: 100,
		})
		tbl.Set(0, i, res.WriteMopsPerSec())
		tbl.Set(1, i, res.ScanOpsPerSec()/1e3)
		tbl.Set(2, i, res.MkeysPerSec())
		c.logf("fig14 scan%%=%d -> write=%.3f Mops/s scans=%.1f Kops/s keys=%.3f Mkeys/s",
			ratio, res.WriteMopsPerSec(), res.ScanOpsPerSec()/1e3, res.MkeysPerSec())
	}
	return tbl, nil
}

// Fig15 — write-only burst with increasing memory component size.
// Expected shape: FloDB's throughput grows with memory (bigger buffer
// absorbs a longer burst); the baselines DEGRADE as memory grows (larger
// skiplist ⇒ slower inserts).
func Fig15(c Config) (*harness.Table, error) {
	c.Defaults()
	// The paper's burst draws from a 1.2 G-key space: during a burst,
	// writes are effectively always-fresh keys. A scaled-down keyspace
	// would saturate (every write an overwrite) once memory approaches
	// the dataset size, so the burst draws from a huge keyspace here.
	c.Keys = 1 << 34
	sizes := c.memorySweepSizes()
	tbl := harness.NewTable("Fig 15: write-only burst, increasing memory component size",
		"memory component (paper scale)", "Mops/s", sizeCols(sizes), systemRows())
	threads := 16
	if c.Quick {
		threads = 4
	}
	for si, sys := range AllSystems {
		for mi, mem := range sizes {
			dir, err := c.cellDir(fmt.Sprintf("fig15-%d-%d", si, mi))
			if err != nil {
				return nil, err
			}
			store, err := openSystem(sys, dir, mem, c.limiter())
			if err != nil {
				return nil, err
			}
			// A burst "empirically chosen such that the system is not
			// limited to its steady-state write throughput" (§5.3): run
			// for the configured duration on a fresh store.
			res := harness.Run(store, harness.RunOptions{
				Threads:  threads,
				Duration: c.Duration,
				Mix:      workload.WriteOnly,
				Keys:     c.Keys,
			})
			store.Close()
			tbl.Set(si, mi, res.MopsPerSec())
			c.logf("fig15 %s mem=%s -> %.3f Mops/s", sys, harness.ByteSize(mem), res.MopsPerSec())
		}
	}
	return tbl, nil
}

// Fig16 — skewed mixed workload (50% reads / 50% updates, 98% of
// operations on 2% of the keys) with increasing memory. Expected shape:
// once the memory component exceeds the hot set (2% of the dataset),
// FloDB's in-place updates capture the whole working set in memory and
// throughput takes off (paper: 8× average, 17× peak); the multi-versioned
// baselines stay flat because duplicate versions keep filling their
// memtables at any size.
func Fig16(c Config) (*harness.Table, error) {
	c.Defaults()
	sizes := c.memorySweepSizes()
	tbl := harness.NewTable("Fig 16: skewed (98%/2%) read-write workload, increasing memory",
		"memory component (paper scale)", "Mops/s", sizeCols(sizes), systemRows())
	threads := 16
	if c.Quick {
		threads = 4
	}
	for si, sys := range AllSystems {
		for mi, mem := range sizes {
			dir, err := c.cellDir(fmt.Sprintf("fig16-%d-%d", si, mi))
			if err != nil {
				return nil, err
			}
			store, err := openSystem(sys, dir, mem, c.limiter())
			if err != nil {
				return nil, err
			}
			if err := initHalf(store, c.Keys, false); err != nil {
				store.Close()
				return nil, err
			}
			res := harness.Run(store, harness.RunOptions{
				Threads:  threads,
				Duration: c.Duration,
				Mix:      workload.ReadUpdate,
				Keys:     c.Keys,
				KeyGen: func(int) workload.KeyGen {
					return workload.NewHotSet(c.Keys, 0.02, 98)
				},
			})
			store.Close()
			tbl.Set(si, mi, res.MopsPerSec())
			c.logf("fig16 %s mem=%s -> %.3f Mops/s", sys, harness.ByteSize(mem), res.MopsPerSec())
		}
	}
	hot := float64(c.Keys) * 0.02 * (workload.DefaultKeySize + workload.DefaultValueSize)
	tbl.AddNote("hot set ≈ %s of entries; expect FloDB take-off once memory exceeds it", harness.ByteSize(int64(hot)))
	return tbl, nil
}
