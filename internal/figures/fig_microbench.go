package figures

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/baseline"
	"flodb/internal/harness"
	"flodb/internal/membuffer"
	"flodb/internal/skiplist"
	"flodb/internal/workload"
)

// latencyVsMemory is the shared engine of Figs 3 and 4: RocksDB-style
// store, readwhilewriting (8 readers + 1 writer on a 1M-entry database),
// median read and write latency as memory grows, normalized to the first
// size.
func latencyVsMemory(c Config, kind baseline.MemKind, title string) (*harness.Table, error) {
	c.Defaults()
	sizes := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	if c.Quick {
		sizes = []int64{128 << 10, 1 << 20, 8 << 20}
	}
	dbKeys := c.Keys
	if dbKeys > 1<<20 {
		dbKeys = 1 << 20 // the paper uses a 1 million-entry database
	}
	tbl := harness.NewTable(title, "memory component (paper scale)", "normalized median latency",
		sizeCols(sizes), []string{"Read Latency", "Write Latency"})

	var baseRead, baseWrite float64
	for mi, mem := range sizes {
		dir, err := c.cellDir(fmt.Sprintf("fig34-%d-%d", kind, mi))
		if err != nil {
			return nil, err
		}
		store, err := baseline.NewRocksDB(baseline.Config{
			Dir: dir, MemBytes: mem, MemKind: kind, DisableWAL: true,
			Storage: storageOpts(mem),
		})
		if err != nil {
			return nil, err
		}
		if err := initHalf(store, dbKeys, false); err != nil {
			store.Close()
			return nil, err
		}
		res := harness.Run(store, harness.RunOptions{
			Threads:        9, // 8 readers + 1 writer via OneWriter
			OneWriter:      true,
			Duration:       c.Duration,
			Keys:           dbKeys,
			MeasureLatency: true,
		})
		store.Close()
		readMed := float64(res.ReadLat.Median())
		writeMed := float64(res.WriteLat.Median())
		if mi == 0 {
			baseRead, baseWrite = readMed, writeMed
			if baseRead == 0 {
				baseRead = 1
			}
			if baseWrite == 0 {
				baseWrite = 1
			}
		}
		tbl.Set(0, mi, readMed/baseRead)
		tbl.Set(1, mi, writeMed/baseWrite)
		c.logf("%s mem=%s -> read=%.0fns write=%.0fns", title, harness.ByteSize(mem), readMed, writeMed)
	}
	tbl.AddNote("latencies normalized to the %s memory component, as in the paper", sizeCols(sizes)[0])
	return tbl, nil
}

// Fig3 — RocksDB with a skiplist memtable: write latency RISES with
// memory size (O(log n) inserts into an ever-larger skiplist); read
// latency roughly flat (most reads hit disk).
func Fig3(c Config) (*harness.Table, error) {
	return latencyVsMemory(c, baseline.MemSkiplist,
		"Fig 3: RocksDB skiplist memtable, median latency vs memory size")
}

// Fig4 — RocksDB with a hash memtable: write latency rises even more
// steeply (writers stall behind the linearithmic pre-flush sort).
func Fig4(c Config) (*harness.Table, error) {
	return latencyVsMemory(c, baseline.MemHash,
		"Fig 4: RocksDB hash memtable, median latency vs memory size")
}

// rawStructureSweep drives Figs 5 and 7: raw concurrent structure
// throughput on a 50/50 read-write mix across thread counts and dataset
// sizes. The paper's sizes are 32K/1M/33M/1B entries; the largest two
// scale down (DESIGN.md).
func rawStructureSweep(c Config, run func(size uint64, threads int, d time.Duration) float64, title string) (*harness.Table, error) {
	c.Defaults()
	sizes := []uint64{32 << 10, 1 << 20, 4 << 20}
	labels := []string{"32K", "1M", "4M (scaled 33M/1B)"}
	if c.Quick {
		sizes = []uint64{32 << 10, 1 << 20}
		labels = labels[:2]
	}
	threads := c.Threads
	tbl := harness.NewTable(title, "threads", "Mops/s", threadCols(threads), labels)
	for si, size := range sizes {
		for ti, th := range threads {
			mops := run(size, th, c.Duration)
			tbl.Set(si, ti, mops)
			c.logf("%s size=%s threads=%d -> %.2f Mops/s", title, labels[si], th, mops)
		}
	}
	return tbl, nil
}

// Fig5 — concurrent hash table (the Membuffer structure) raw throughput:
// high absolute numbers, scales with threads, insensitive to size.
func Fig5(c Config) (*harness.Table, error) {
	return rawStructureSweep(c, func(size uint64, threads int, d time.Duration) float64 {
		buf := membuffer.New(membuffer.Config{
			Buckets:        int(size / 2), // ~50% occupancy at |size| entries
			SlotsPerBucket: 4,
			PartitionBits:  6,
		})
		var fill [8]byte
		for i := uint64(0); i < size; i++ {
			buf.Add(workload.PutUint64(fill[:], i*0x9e3779b97f4a7c15), []byte("v"), false)
		}
		return runRaw(threads, d, func(rng *rand.Rand, key []byte) {
			k := workload.PutUint64(key, (rng.Uint64()%size)*0x9e3779b97f4a7c15)
			if rng.Intn(2) == 0 {
				buf.Get(k)
			} else {
				// Add retains the key slice (slots alias their inputs), so
				// the reused buffer must be cloned — the same per-write
				// copy the store layer pays before handing keys over.
				buf.Add(append([]byte(nil), k...), []byte("v"), false)
			}
		})
	}, "Fig 5: concurrent hash table, mixed read-write")
}

// Fig7 — concurrent skiplist (the Memtable structure) raw throughput:
// one to two orders of magnitude below the hash table, degrading with
// size — the gap that motivates the two-level design.
func Fig7(c Config) (*harness.Table, error) {
	return rawStructureSweep(c, func(size uint64, threads int, d time.Duration) float64 {
		list := skiplist.New()
		var fill [8]byte
		e := &skiplist.Entry{Value: []byte("v")}
		for i := uint64(0); i < size; i++ {
			list.Insert(append([]byte(nil), workload.PutUint64(fill[:], i*0x9e3779b97f4a7c15)...), e)
		}
		return runRaw(threads, d, func(rng *rand.Rand, key []byte) {
			k := workload.PutUint64(key, (rng.Uint64()%size)*0x9e3779b97f4a7c15)
			if rng.Intn(2) == 0 {
				list.Get(k)
			} else {
				list.Insert(append([]byte(nil), k...), &skiplist.Entry{Value: []byte("v"), Seq: rng.Uint64()})
			}
		})
	}, "Fig 7: concurrent skiplist, mixed read-write")
}

// runRaw drives op() from `threads` goroutines for duration d and returns
// Mops/s.
func runRaw(threads int, d time.Duration, op func(rng *rand.Rand, key []byte)) float64 {
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t + 1)))
			key := make([]byte, 8)
			var n uint64
			for !stop.Load() {
				op(rng, key)
				n++
			}
			ops.Add(n)
		}(t)
	}
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	return float64(ops.Load()) / time.Since(start).Seconds() / 1e6
}

// Fig8 — simple inserts vs 5-key multi-inserts as a function of
// neighborhood size. Path reuse pays off more as batches get more local:
// multi-insert's advantage grows as the neighborhood shrinks.
func Fig8(c Config) (*harness.Table, error) {
	c.Defaults()
	// Paper: neighborhood sizes 10, 100, 1000, 10000, None over a 100M
	// element skiplist; scaled initial size below.
	neighborhoods := []struct {
		label string
		bits  uint
	}{
		{"10", 16}, {"100", 20}, {"1000", 24}, {"10000", 28}, {"None", 64},
	}
	initial := uint64(1 << 20)
	if c.Quick {
		initial = 1 << 17
	}
	cols := make([]string, len(neighborhoods))
	for i, n := range neighborhoods {
		cols[i] = n.label
	}
	tbl := harness.NewTable("Fig 8: simple insert vs 5-key multi-insert by neighborhood size",
		"neighborhood size", "Mops/s", cols, []string{"Simple insert", "Multi-insert"})

	threads := 4
	if c.Quick {
		threads = 2
	}
	const batchKeys = 5
	for ni, nb := range neighborhoods {
		for mode := 0; mode < 2; mode++ {
			list := skiplist.New()
			var fill [8]byte
			seed := &skiplist.Entry{Value: []byte("v")}
			for i := uint64(0); i < initial; i++ {
				list.Insert(append([]byte(nil), workload.PutUint64(fill[:], i*0x9e3779b97f4a7c15)...), seed)
			}
			gen := workload.NewNeighborhood(1<<62, nb.bits)
			multi := mode == 1
			mops := runRaw(threads, c.Duration, makeFig8Op(list, gen, batchKeys, multi))
			// runRaw counts op() calls; each op inserts batchKeys keys.
			mops *= batchKeys
			tbl.Set(mode, ni, mops)
			c.logf("fig8 nbhd=%s multi=%v -> %.3f Mkeys/s", nb.label, multi, mops)
		}
	}
	tbl.AddNote("initial skiplist size %d keys (paper: 100M)", initial)
	return tbl, nil
}

func makeFig8Op(list *skiplist.List, gen *workload.Neighborhood, batchKeys int, multi bool) func(rng *rand.Rand, key []byte) {
	return func(rng *rand.Rand, key []byte) {
		var scratch [8]uint64
		batch := gen.NextBatch(rng, batchKeys, scratch[:0])
		if multi {
			kvs := make([]skiplist.KV, len(batch))
			for i, k := range batch {
				kvs[i] = skiplist.KV{
					Key:   workload.PutUint64(make([]byte, 8), k),
					Entry: &skiplist.Entry{Value: []byte("m"), Seq: k},
				}
			}
			list.MultiInsert(kvs)
		} else {
			for _, k := range batch {
				list.Insert(workload.PutUint64(make([]byte, 8), k), &skiplist.Entry{Value: []byte("s"), Seq: k})
			}
		}
	}
}
