package figures

import (
	"fmt"
	"time"

	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/workload"
)

// FigAdaptive is the §4.4 adaptation ablation: adaptive FloDB against
// fixed Membuffer fractions across a PHASE-SHIFTING workload run
// back-to-back on each store (harness.RunPhased) —
//
//	write-burst — pure inserts under mild spread-Zipfian skew (the
//	              hashed-hot-key shape): the hot working set is resident
//	              in a LARGE Membuffer and absorbed as in-place updates
//	              with no drain debt — §4.4's update-heavy case
//	scan-heavy  — 50% range scans over uniform keys; wants the SMALLEST
//	              Membuffer (every master scan drains the Membuffer
//	              before its sequence point, so a big one taxes exactly
//	              the scans)
//	mixed       — the balanced read/write blend with an occasional
//	              (4%) range scan, uniform keys — the steady-state
//	              OLTP-plus-reporting shape
//
// Like the Fig 17 ablations, the store runs memory-component-only
// (DropPersist) at the ablation budget, so the cells measure the
// Membuffer↔Memtable split itself rather than disk-flush scheduling.
// The fixed rows are the controller's own bounds (0.05, 0.60) plus the
// paper's 0.25, so the table reads as a regret bound: a working
// controller lands near the best fixed fraction in EVERY phase, while
// at least one fixed fraction pays badly somewhere (0.60 in the
// scan-heavy phase is the canonical loss). Nothing is reset between
// phases, so the adaptive row also pays its re-convergence cost at each
// boundary — the honest number.
func FigAdaptive(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := c.Threads[len(c.Threads)/2]
	// The ablation budget of ablate.go: big enough that the split is the
	// variable, small enough that drains and seals stay hot.
	const memBytes = 4 << 20
	// The controller needs several sensor windows per phase to converge:
	// scale the window to the phase duration, floored at 5ms.
	window := c.Duration / 25
	if window < 5*time.Millisecond {
		window = 5 * time.Millisecond
	}

	type variant struct {
		name     string
		adaptive bool
		frac     float64
	}
	variants := []variant{
		{"FloDB adaptive", true, 0.25},
		{"FloDB fixed 0.05", false, 0.05},
		{"FloDB fixed 0.25", false, 0.25},
		{"FloDB fixed 0.60", false, 0.60},
	}
	phaseNames := []string{"write-burst", "scan-heavy", "mixed"}
	phaseMixes := []workload.Mix{workload.WriteBurst, workload.ScanHeavy, workload.MixedOps}
	// Write bursts are skewed (hot keys, hashed — the spread-Zipfian
	// shape); the scan and mixed phases draw uniformly.
	keyCount := c.Keys
	burstGen := func(int) workload.KeyGen {
		return workload.NewZipfian(keyCount, 1.01)
	}
	phaseGens := []func(int) workload.KeyGen{burstGen, nil, nil}

	rows := make([]string, len(variants))
	for i, v := range variants {
		rows[i] = v.name
	}
	tbl := harness.NewTable("Adaptive memory sizing: phase-shifting workload (§4.4)",
		fmt.Sprintf("phase (%d threads, run back-to-back per store)", threads),
		"Mops/s", phaseNames, rows)

	for vi, v := range variants {
		cfg := core.Config{
			DropPersist:       true,
			MemoryBytes:       memBytes,
			MembufferFraction: v.frac,
			AdaptiveMemory:    v.adaptive,
			AdaptiveWindow:    window,
		}
		db, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		var trace string
		phases := make([]harness.Phase, len(phaseNames))
		for i, name := range phaseNames {
			phases[i] = harness.Phase{Name: name, Opts: harness.RunOptions{
				Mix:      phaseMixes[i],
				KeyGen:   phaseGens[i],
				Threads:  threads,
				Duration: c.Duration,
				Keys:     c.Keys,
			}}
			if v.adaptive {
				name := name
				phases[i].OnDone = func(harness.Result) {
					trace += fmt.Sprintf(" %s=%.2f", name, db.Stats().MembufferFraction)
				}
			}
		}
		for pi, res := range harness.RunPhased(db, phases) {
			tbl.Set(vi, pi, res.MopsPerSec())
			c.logf("adaptive %s %s -> %.3f Mops/s", v.name, phaseNames[pi], res.MopsPerSec())
		}
		if v.adaptive {
			tbl.AddNote("adaptive fraction after each phase:%s (%d resizes, window %v)",
				trace, db.Stats().MembufferResizes, window)
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	tbl.AddNote("memory-component-only (DropPersist) at %s, the Fig 17 ablation shape", harness.ByteSize(memBytes))
	tbl.AddNote("phases run consecutively on one store; the adaptive row re-converges at each phase boundary")
	return tbl, nil
}
