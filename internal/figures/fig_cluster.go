package figures

import (
	"fmt"
	"time"

	"flodb/internal/harness"
	"flodb/internal/workload"
)

// ClusterBench measures the distribution tier: a consistent-hash ring of
// in-process flodbd nodes under one cluster.Client coordinator, swept by
// node count. At one node the "cluster" is a plain remote store (R=1 —
// the coordination floor); at two and three nodes every write fans to
// R=2 owners and acks at W=2, so the columns price replication against
// netbench's single-socket ceiling. The availability rows re-run the
// mixed workload on the 2- and 3-node rings while one replica is killed
// (kill -9 shape: sockets cut, engine abandoned) mid-measurement and
// then after it restarts and its hints drain — the throughput the ring
// sustains THROUGH a replica death, not just before and after one.
func ClusterBench(c Config) (*harness.Table, error) {
	c.Defaults()
	nodeCounts := []int{1, 2, 3}
	threads := 16
	if c.Quick {
		threads = 8
	}

	cols := make([]string, len(nodeCounts))
	for i, n := range nodeCounts {
		cols[i] = fmt.Sprintf("%d", n)
	}
	rows := []string{
		"throughput Kops/s",
		"read p99 µs",
		"write p99 µs",
		"kill-one Kops/s",
		"healed Kops/s",
	}
	tbl := harness.NewTable("Distribution tier: quorum throughput, latency, and kill-one-replica availability vs node count",
		fmt.Sprintf("ring nodes, R=min(2,n), W=R, Rq=1 (%d threads)", threads), "Kops/s / µs", cols, rows)

	for ci, nodes := range nodeCounts {
		dir, err := c.cellDir(fmt.Sprintf("clusterbench-%d", nodes))
		if err != nil {
			return nil, err
		}
		cs, err := openClusterN(dir, nodes, c.MemBytes, c.limiter(), false)
		if err != nil {
			return nil, err
		}
		if err := initHalf(cs, c.Keys, false); err != nil {
			cs.Close()
			return nil, err
		}

		res := harness.Run(cs, harness.RunOptions{
			Mix:            workload.ReadUpdate,
			Threads:        threads,
			Duration:       c.Duration,
			Keys:           c.Keys,
			MeasureLatency: true,
		})
		if res.Errors > 0 {
			cs.Close()
			return nil, fmt.Errorf("clusterbench: nodes=%d: %d errors", nodes, res.Errors)
		}
		tbl.Set(0, ci, res.MopsPerSec()*1000)
		tbl.Set(1, ci, float64(res.ReadLat.P99())/1e3)
		tbl.Set(2, ci, float64(res.WriteLat.P99())/1e3)
		c.logf("clusterbench nodes=%d -> %.1f Kops/s, read p99 %.0f µs",
			nodes, res.MopsPerSec()*1000, float64(res.ReadLat.P99())/1e3)

		// Availability series: only meaningful when a key's owner set has a
		// survivor (R=2 needs >= 2 nodes). A 1-node ring dies with its node;
		// those cells stay zero.
		if nodes >= 2 {
			killKops, healKops, err := clusterAvailability(cs, threads, c)
			if err != nil {
				cs.Close()
				return nil, fmt.Errorf("clusterbench: nodes=%d availability: %w", nodes, err)
			}
			tbl.Set(3, ci, killKops)
			tbl.Set(4, ci, healKops)
			c.logf("clusterbench nodes=%d -> kill-one %.1f Kops/s, healed %.1f Kops/s", nodes, killKops, healKops)
		}

		if err := cs.Close(); err != nil {
			return nil, err
		}
	}

	tbl.AddNote("loopback TCP; every op fans out to its owners through internal/cluster's quorum coordinator")
	tbl.AddNote("kill-one: a replica is killed (sockets cut, engine abandoned) as the measured window opens — writes degrade to hinted handoff, reads fall back to the surviving owner")
	tbl.AddNote("healed: the replica restarted, probes marked it up, and the hint backlog drained before measuring")
	tbl.AddNote("1-node availability cells are zero by construction: R=1 has no surviving owner to degrade onto")
	return tbl, nil
}

// clusterAvailability kills one replica at the start of a measured
// window, measures the degraded throughput, restarts the replica, waits
// for the ring to heal (mark-up + hint drain), and measures again.
func clusterAvailability(cs *clusterStore, threads int, c Config) (killKops, healKops float64, err error) {
	victim := cs.nodes[len(cs.nodes)-1]
	victim.kill()

	res := harness.Run(cs, harness.RunOptions{
		Mix:      workload.ReadUpdate,
		Threads:  threads,
		Duration: c.Duration,
		Keys:     c.Keys,
	})
	if res.Errors > 0 {
		return 0, 0, fmt.Errorf("%d errors during single-replica outage", res.Errors)
	}
	killKops = res.MopsPerSec() * 1000

	if err := victim.start(cs.epoch); err != nil {
		return 0, 0, fmt.Errorf("restart replica: %w", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cs.NodeStates()[victim.id] && cs.HintsPending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("ring did not heal: up=%v pending=%d",
				cs.NodeStates()[victim.id], cs.HintsPending())
		}
		time.Sleep(20 * time.Millisecond)
	}

	res = harness.Run(cs, harness.RunOptions{
		Mix:      workload.ReadUpdate,
		Threads:  threads,
		Duration: c.Duration,
		Keys:     c.Keys,
	})
	if res.Errors > 0 {
		return 0, 0, fmt.Errorf("%d errors after heal", res.Errors)
	}
	return killKops, res.MopsPerSec() * 1000, nil
}
