package figures

import (
	"fmt"

	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/workload"
)

// ObsBench measures what telemetry costs on the hot path: the same
// FloDB engine, same workloads, with the op histograms and event log on
// (the default) and off (Config.DisableTelemetry). Instrumentation is
// two atomic adds and one clock read per operation, so the rows should
// sit within a few percent of each other — the micro-figure is the
// regression guard that keeps it that way. Counters stay on in both
// rows (kv.Stats is load-bearing, not optional), so the delta isolates
// exactly what WithTelemetry(false) buys.
func ObsBench(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := c.Threads[len(c.Threads)/2]
	cols := []string{"write Mops/s", "read Mops/s", "mixed Mops/s"}
	rows := []string{"FloDB instrumented", "FloDB telemetry off"}
	tbl := harness.NewTable("Telemetry overhead: op histograms + event log on vs off",
		fmt.Sprintf("workload (%d threads)", threads), "Mops/s", cols, rows)

	mixes := []struct {
		mix  workload.Mix
		fill bool
	}{
		{mix: workload.WriteOnly},
		{mix: workload.ReadOnly, fill: true},
		{mix: workload.Balanced, fill: true},
	}
	for ri, disable := range []bool{false, true} {
		for ci, m := range mixes {
			dir, err := c.cellDir(fmt.Sprintf("obs-%d-%d", ri, ci))
			if err != nil {
				return nil, err
			}
			cfg := core.Config{
				Dir:              dir,
				MemoryBytes:      c.MemBytes,
				DisableWAL:       true,
				DisableTelemetry: disable,
				PersistLimiter:   c.limiter(),
				Storage:          storageOpts(c.MemBytes),
			}
			store, err := core.Open(cfg)
			if err != nil {
				return nil, err
			}
			if m.fill {
				if err := initHalf(store, c.Keys, false); err != nil {
					store.Close()
					return nil, err
				}
			}
			res := harness.Run(store, harness.RunOptions{
				Mix:      m.mix,
				Threads:  threads,
				Duration: c.Duration,
				Keys:     c.Keys,
			})
			if err := store.Close(); err != nil {
				return nil, err
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("obsbench: %s %s: %d errors", rows[ri], cols[ci], res.Errors)
			}
			tbl.Set(ri, ci, res.MopsPerSec())
			c.logf("obsbench %s %s -> %.3f", rows[ri], cols[ci], res.MopsPerSec())
		}
	}
	tbl.AddNote("both rows keep kv.Stats counters; the delta is the histogram Observe (clock read + 2 atomic adds) and rare event emission")
	tbl.AddNote("regression guard: instrumented should stay within ~3%% of telemetry-off on every column")
	return tbl, nil
}
