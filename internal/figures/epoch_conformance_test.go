package figures

import "testing"

// TestConformanceAcrossEpochChange reruns the view- and durability-
// conformance suites UNMODIFIED over the dynamic sharded engine: the
// rebalance controller is live and every store additionally performs
// one forced split and one forced merge mid-workload (epochChurner), so
// snapshot isolation, cancellation mid-scan, checkpoints, per-op
// durability classes, the Sync barrier, group commit and crash
// prefix-consistency are all asserted against a store whose topology
// crossed at least one epoch boundary while the suite ran. A topology
// rewrite must be invisible to every contract the static layout
// honors — this test is what keeps it invisible.
func TestConformanceAcrossEpochChange(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns both conformance suites")
	}
	dynamicShardForTest = true
	defer func() { dynamicShardForTest = false }()

	t.Run("SnapshotIsolation", TestAllSystemsSnapshotIsolation)
	t.Run("ContextCanceledScan", TestAllSystemsContextCanceledScan)
	t.Run("CheckpointReopens", TestAllSystemsCheckpointReopens)
	t.Run("PerOpDurabilityClasses", TestAllSystemsPerOpDurabilityClasses)
	t.Run("SyncBarrierPromotesAcked", TestAllSystemsSyncBarrierPromotesAcked)
	t.Run("CrashMidStreamPrefix", TestAllSystemsCrashMidStreamPrefix)
}
