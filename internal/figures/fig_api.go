package figures

import (
	"fmt"

	"flodb/internal/harness"
	"flodb/internal/workload"
)

// APIBench exercises the batch, cursor, read-view and durability surface
// of the kv.Store contract across the six systems (the paper's five plus
// the sharded engine) — the API shapes the paper's figures do not cover.
// The FloDB/4shards row against the FloDB row is the shard-scaling
// signal: the write-heavy columns (batch-write, durable-write) should
// rise with shard count since each shard drains, flushes and
// group-commits independently. Five workloads per system, at the mid
// thread count of the sweep:
//
//	batch-write: every op is a 32-mutation atomic Apply (Mops/s counts
//	             individual mutations)
//	iter-scan:   the Fig 13 scan-write mix, scans driven through
//	             NewIterator instead of Scan (Mkeys/s)
//	scan:        the same mix through materializing Scan, for comparison
//	snap-read:   the SnapshotRead mix — 2% of ops pin a Snapshot view and
//	             serve point reads through it amid live reads and writes
//	             (Mops/s). Snapshots are O(1) everywhere: the baselines
//	             are multi-versioned, and FloDB seals the Membuffer and
//	             pins a sequence bound over the live skiplist instead of
//	             materializing a flush, so this row measures read-view
//	             traffic, not flush bandwidth.
//	durable-write: WAL on, every insert Sync-class (acked only after a
//	             disk barrier covers it). The column measures the paper's
//	             thesis under durability: with group commit the
//	             concurrent committers coalesce onto shared fsyncs
//	             instead of serializing the write path behind the log —
//	             without it, every system flattens to disk-barrier speed.
func APIBench(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := c.Threads[len(c.Threads)/2]
	cols := []string{"batch-write Mops/s", "iter-scan Mkeys/s", "scan Mkeys/s", "snap-read Mops/s", "durable-write Kops/s"}
	tbl := harness.NewTable("API bench: atomic batches, streaming iterators, durable writes",
		fmt.Sprintf("workload (%d threads)", threads), "throughput", cols, systemRows())

	type cell struct {
		opts    harness.RunOptions
		metric  func(harness.Result) float64
		fill    bool
		durable bool // open with the WAL on (Buffered default)
	}
	cells := []cell{
		{
			opts:   harness.RunOptions{Mix: workload.BatchWrite, BatchSize: 32},
			metric: func(r harness.Result) float64 { return float64(r.Writes) / r.Elapsed.Seconds() / 1e6 },
		},
		{
			opts:   harness.RunOptions{Mix: workload.ScanWrite, IteratorScans: true},
			metric: harness.Result.MkeysPerSec,
			fill:   true,
		},
		{
			opts:   harness.RunOptions{Mix: workload.ScanWrite},
			metric: harness.Result.MkeysPerSec,
			fill:   true,
		},
		{
			opts:   harness.RunOptions{Mix: workload.SnapshotRead},
			metric: harness.Result.MopsPerSec,
			fill:   true,
		},
		{
			opts: harness.RunOptions{Mix: workload.DurableWrite, SyncWrites: true},
			// Kops/s: fsync-bound throughput is orders of magnitude below
			// the memory-speed columns.
			metric:  func(r harness.Result) float64 { return float64(r.Writes) / r.Elapsed.Seconds() / 1e3 },
			durable: true,
		},
	}
	for si, sys := range AllSystems {
		for ci, cl := range cells {
			dir, err := c.cellDir(fmt.Sprintf("api-%d-%d", si, ci))
			if err != nil {
				return nil, err
			}
			open := openSystem
			if cl.durable {
				open = openSystemDurable
			}
			store, err := open(sys, dir, c.MemBytes, c.limiter())
			if err != nil {
				return nil, err
			}
			if cl.fill {
				if err := initHalf(store, c.Keys, false); err != nil {
					store.Close()
					return nil, err
				}
			}
			ro := cl.opts
			ro.Threads = threads
			ro.Duration = c.Duration
			ro.Keys = c.Keys
			res := harness.Run(store, ro)
			if err := store.Close(); err != nil {
				return nil, err
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("apibench: %s %s: %d errors", sys, cols[ci], res.Errors)
			}
			tbl.Set(si, ci, cl.metric(res))
			c.logf("apibench %s %s -> %.3f", sys, cols[ci], cl.metric(res))
		}
	}
	tbl.AddNote("batch-write counts mutations (32 per Apply); scans report keys accessed per second")
	tbl.AddNote("snap-read: 2%% of ops pin a Snapshot and serve 16 gets through it (O(1) everywhere: FloDB pins a seq bound over the live memory component)")
	tbl.AddNote("durable-write: WAL on, every insert Sync-class; group commit coalesces concurrent fsyncs (note Kops/s, not Mops/s)")
	return tbl, nil
}
