package figures

import (
	"fmt"

	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/workload"
)

// The paper fixes several design parameters empirically (§4.1, §5.1):
// the 1:4 Membuffer:Memtable split, the drain-thread count, the
// multi-insert batch size and the partition bits ℓ. These ablations sweep
// each one on a write-heavy workload so the choices can be re-validated on
// new hardware (DESIGN.md §4.5).

// ablateFloDB runs a write-only burst against a FloDB configured by
// mutate, returning Mops/s and the direct-Membuffer share.
func (c *Config) ablateFloDB(threads int, mutate func(*core.Config)) (float64, float64, error) {
	cfg := core.Config{
		DropPersist: true, // isolate the memory component, as in Fig 17
		MemoryBytes: 4 << 20,
	}
	mutate(&cfg)
	db, err := core.Open(cfg)
	if err != nil {
		return 0, 0, err
	}
	res := harness.Run(db, harness.RunOptions{
		Threads:  threads,
		Duration: c.Duration,
		Mix:      workload.WriteOnly,
		Keys:     c.Keys,
	})
	st := db.Stats()
	db.Close()
	total := st.MembufferHits + st.MemtableWrites
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(st.MembufferHits) / float64(total)
	}
	return res.MopsPerSec(), pct, nil
}

// AblateSplit sweeps the Membuffer fraction of the memory budget. The
// paper chose 1/4 empirically (§5.1); the sweep shows the trade-off of
// §4.1: too small a Membuffer overflows into the Memtable, too large a
// one drains slowly.
func AblateSplit(c Config) (*harness.Table, error) {
	c.Defaults()
	fractions := []float64{0.05, 0.125, 0.25, 0.5, 0.75}
	if c.Quick {
		fractions = []float64{0.125, 0.25, 0.5}
	}
	cols := make([]string, len(fractions))
	for i, f := range fractions {
		cols[i] = fmt.Sprintf("%g", f)
	}
	tbl := harness.NewTable("Ablation: Membuffer fraction of the memory budget (paper: 0.25)",
		"membuffer fraction", "Mops/s", cols, []string{"write Mops/s", "direct-Membuffer %"})
	threads := 8
	if c.Quick {
		threads = 4
	}
	for i, f := range fractions {
		mops, pct, err := c.ablateFloDB(threads, func(cfg *core.Config) { cfg.MembufferFraction = f })
		if err != nil {
			return nil, err
		}
		tbl.Set(0, i, mops)
		tbl.Set(1, i, pct)
		c.logf("ablate-split f=%g -> %.3f Mops/s (%.0f%% direct)", f, mops, pct)
	}
	return tbl, nil
}

// AblateDrainThreads sweeps the background drain parallelism (§4.2 allows
// "one or more dedicated background threads").
func AblateDrainThreads(c Config) (*harness.Table, error) {
	c.Defaults()
	counts := []int{1, 2, 4, 8}
	if c.Quick {
		counts = []int{1, 4}
	}
	cols := make([]string, len(counts))
	for i, n := range counts {
		cols[i] = fmt.Sprintf("%d", n)
	}
	tbl := harness.NewTable("Ablation: draining threads (default 2)",
		"drain threads", "Mops/s", cols, []string{"write Mops/s", "direct-Membuffer %"})
	threads := 8
	if c.Quick {
		threads = 4
	}
	for i, n := range counts {
		mops, pct, err := c.ablateFloDB(threads, func(cfg *core.Config) { cfg.DrainThreads = n })
		if err != nil {
			return nil, err
		}
		tbl.Set(0, i, mops)
		tbl.Set(1, i, pct)
		c.logf("ablate-drain n=%d -> %.3f Mops/s (%.0f%% direct)", n, mops, pct)
	}
	return tbl, nil
}

// AblateDrainBatch sweeps the multi-insert batch size (the paper's Fig 8
// uses 5-key batches for the microbenchmark; the system default is 64).
func AblateDrainBatch(c Config) (*harness.Table, error) {
	c.Defaults()
	batches := []int{1, 5, 16, 64, 256}
	if c.Quick {
		batches = []int{5, 64}
	}
	cols := make([]string, len(batches))
	for i, b := range batches {
		cols[i] = fmt.Sprintf("%d", b)
	}
	tbl := harness.NewTable("Ablation: multi-insert drain batch size (default 64)",
		"batch size", "Mops/s", cols, []string{"write Mops/s", "direct-Membuffer %"})
	threads := 8
	if c.Quick {
		threads = 4
	}
	for i, b := range batches {
		mops, pct, err := c.ablateFloDB(threads, func(cfg *core.Config) { cfg.DrainBatch = b })
		if err != nil {
			return nil, err
		}
		tbl.Set(0, i, mops)
		tbl.Set(1, i, pct)
		c.logf("ablate-batch b=%d -> %.3f Mops/s (%.0f%% direct)", b, mops, pct)
	}
	return tbl, nil
}

// AblatePartitionBits sweeps ℓ, the Membuffer partition selector (§4.3):
// more partitions mean tighter multi-insert neighborhoods but greater
// skew sensitivity.
func AblatePartitionBits(c Config) (*harness.Table, error) {
	c.Defaults()
	bits := []uint{0, 2, 4, 6, 8, 10}
	if c.Quick {
		bits = []uint{0, 6}
	}
	cols := make([]string, len(bits))
	for i, b := range bits {
		cols[i] = fmt.Sprintf("%d", b)
	}
	tbl := harness.NewTable("Ablation: Membuffer partition bits ℓ (default 6)",
		"partition bits", "Mops/s", cols, []string{"uniform Mops/s", "skewed Mops/s"})
	threads := 8
	if c.Quick {
		threads = 4
	}
	for i, b := range bits {
		uni, _, err := c.ablateFloDB(threads, func(cfg *core.Config) { cfg.PartitionBits = b })
		if err != nil {
			return nil, err
		}
		tbl.Set(0, i, uni)
		// Skewed: hot-set keygen stresses one partition (§4.3's
		// "vulnerable to data skew").
		cfg := core.Config{DropPersist: true, MemoryBytes: 4 << 20, PartitionBits: b}
		db, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		res := harness.Run(db, harness.RunOptions{
			Threads:  threads,
			Duration: c.Duration,
			Mix:      workload.WriteOnly,
			Keys:     c.Keys,
			KeyGen:   func(int) workload.KeyGen { return workload.NewHotSet(c.Keys, 0.02, 98) },
		})
		db.Close()
		tbl.Set(1, i, res.MopsPerSec())
		c.logf("ablate-bits l=%d -> uniform %.3f, skewed %.3f Mops/s", b, uni, res.MopsPerSec())
	}
	return tbl, nil
}
