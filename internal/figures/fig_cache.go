package figures

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/keys"
)

// CacheBench measures the block cache on FloDB's disk read path: a
// dataset is written, flushed (the store is closed and reopened, so the
// memory component is empty and both caches are cold), then the whole
// keyspace is streamed twice through an iterator. The COLD pass pays a
// file read, checksum and block decode per block; the WARM pass should
// serve every block from the cache when the dataset fits. Rows sweep
// the cache budget from "nothing fits" (a 1-byte cache — the uncached
// read path) to 2x the dataset; columns report both passes, their
// ratio, and the warm pass's block/table-cache hit rates (from
// kv.Stats deltas).
//
// The interesting shape: warm/cold hugs 1.0 while the cache is a small
// fraction of the dataset (a sequential scan is the adversarial
// eviction pattern: LRU evicts every block exactly before its reuse),
// then jumps once the dataset fits — the classic working-set cliff, at
// the paper's scale ratio rather than its absolute sizes.
func CacheBench(c Config) (*harness.Table, error) {
	c.Defaults()

	// Fixed-work bench: a bounded dataset so a full scan runs in
	// milliseconds however large -keys is. ~64K records x 260 B ≈ 16 MB
	// on disk (quick: 16K ≈ 4 MB).
	n := c.Keys
	if lim := uint64(1 << 16); n > lim {
		n = lim
	}
	if c.Quick && n > 1<<14 {
		n = 1 << 14
	}
	const valBytes = 252 // + 8 B key ≈ the paper's 260 B record
	dataset := int64(n) * (valBytes + 8)

	type row struct {
		label string
		bytes int64
	}
	rows := []row{
		{"no cache (1 B)", 1},
		{"ds/16", dataset / 16},
		{"ds/4", dataset / 4},
		{"dataset", dataset},
		{"2x dataset", 2 * dataset},
	}
	rowLabels := make([]string, len(rows))
	for i, r := range rows {
		rowLabels[i] = fmt.Sprintf("%s (%s)", r.label, fmtBytes(r.bytes))
	}
	cols := []string{"cold scan Mkeys/s", "warm scan Mkeys/s", "warm/cold", "block hit %", "table hit %"}
	tbl := harness.NewTable("Block cache: cold scan vs warm re-scan vs cache budget",
		"cache budget", "Mkeys/s", cols, rowLabels)

	for ri, r := range rows {
		dir, err := c.cellDir(fmt.Sprintf("cache-%d", ri))
		if err != nil {
			return nil, err
		}
		mkConfig := func() core.Config {
			so := storageOpts(c.MemBytes)
			so.BlockCacheBytes = r.bytes
			return core.Config{
				Dir:         dir,
				MemoryBytes: c.MemBytes,
				DisableWAL:  true,
				Storage:     so,
			}
		}
		// Load, then close: Close flushes the memory component, so the
		// reopened store serves every key from sstables with cold caches.
		db, err := core.Open(mkConfig())
		if err != nil {
			return nil, err
		}
		val := make([]byte, valBytes)
		for i := uint64(0); i < n; i++ {
			if err := db.Put(context.Background(), keys.EncodeUint64(i), val); err != nil {
				db.Close()
				return nil, err
			}
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		// COLD: median of 3 independent reopen cycles. Each reopen starts
		// with empty caches, and the quiesce wait keeps a straggling
		// background compaction from stealing cycles mid-scan. The GC runs
		// before every timed pass so one pass's decode garbage is not
		// collected on the next pass's clock.
		colds := make([]time.Duration, 0, 3)
		for len(colds) < cap(colds) {
			db, err = core.Open(mkConfig())
			if err != nil {
				return nil, err
			}
			db.WaitDiskQuiesce()
			runtime.GC()
			d, err := timedFullScan(db, n)
			if err != nil {
				db.Close()
				return nil, err
			}
			colds = append(colds, d)
			if err := db.Close(); err != nil {
				return nil, err
			}
		}
		cold := median(colds)

		// WARM: one untimed priming scan populates the caches, then the
		// median of 3 timed re-scans. Hit rates are deltas spanning only
		// the timed passes.
		db, err = core.Open(mkConfig())
		if err != nil {
			return nil, err
		}
		db.WaitDiskQuiesce()
		if _, err := timedFullScan(db, n); err != nil {
			db.Close()
			return nil, err
		}
		s1 := db.Stats()
		warms := make([]time.Duration, 0, 3)
		for len(warms) < cap(warms) {
			runtime.GC()
			d, err := timedFullScan(db, n)
			if err != nil {
				db.Close()
				return nil, err
			}
			warms = append(warms, d)
		}
		warm := median(warms)
		s2 := db.Stats()
		if err := db.Close(); err != nil {
			return nil, err
		}

		coldR := float64(n) / cold.Seconds() / 1e6
		warmR := float64(n) / warm.Seconds() / 1e6
		tbl.Set(ri, 0, coldR)
		tbl.Set(ri, 1, warmR)
		tbl.Set(ri, 2, warmR/coldR)
		tbl.Set(ri, 3, pct(s2.BlockCacheHits-s1.BlockCacheHits, s2.BlockCacheMisses-s1.BlockCacheMisses))
		tbl.Set(ri, 4, pct(s2.TableCacheHits-s1.TableCacheHits, s2.TableCacheMisses-s1.TableCacheMisses))
		c.logf("cachebench %s: cold %.3f warm %.3f Mkeys/s (%.2fx)", rowLabels[ri], coldR, warmR, warmR/coldR)
	}
	tbl.AddNote("fixed work: %d records (~%s on disk), memory component emptied by a close/reopen before the cold pass", n, fmtBytes(dataset))
	tbl.AddNote("hit rates are deltas over the warm pass; a sequential scan under LRU gets ~0%% until the dataset fits (the working-set cliff)")
	return tbl, nil
}

// median returns the middle duration; the samples are few enough that
// sorting a copy in place is free.
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// timedFullScan streams the whole keyspace once and checks the count.
func timedFullScan(db *core.DB, want uint64) (time.Duration, error) {
	it, err := db.NewIterator(context.Background(), nil, nil)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var got uint64
	start := time.Now()
	for ok := it.First(); ok; ok = it.Next() {
		got++
	}
	elapsed := time.Since(start)
	if err := it.Err(); err != nil {
		return 0, err
	}
	if got != want {
		return 0, fmt.Errorf("cachebench: scan saw %d keys, want %d", got, want)
	}
	return elapsed, nil
}

func pct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
