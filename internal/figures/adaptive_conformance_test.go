package figures

import "testing"

// TestConformanceWithAdaptiveMemory reruns the view- and durability-
// conformance suites UNMODIFIED with every FloDB engine (single and
// sharded) running the adaptive memory controller at a fast window:
// snapshots pinned across resize epochs, cancellation mid-scan while
// the split moves, checkpoints of a self-resizing store, per-op
// durability classes across a crash, Sync-barrier promotion, group
// commit, and crash prefix-consistency must all hold exactly as with a
// fixed split — a resize epoch is just a generation switch, and this
// test is the contract that keeps it one.
func TestConformanceWithAdaptiveMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns both conformance suites")
	}
	adaptiveFloDBForTest = true
	defer func() { adaptiveFloDBForTest = false }()

	t.Run("SnapshotIsolation", TestAllSystemsSnapshotIsolation)
	t.Run("ContextCanceledScan", TestAllSystemsContextCanceledScan)
	t.Run("CheckpointReopens", TestAllSystemsCheckpointReopens)
	t.Run("PerOpDurabilityClasses", TestAllSystemsPerOpDurabilityClasses)
	t.Run("SyncBarrierPromotesAcked", TestAllSystemsSyncBarrierPromotesAcked)
	t.Run("CrashMidStreamPrefix", TestAllSystemsCrashMidStreamPrefix)
}
