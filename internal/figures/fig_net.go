package figures

import (
	"context"
	"fmt"
	"net"
	"runtime"

	"flodb/internal/client"
	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/server"
	"flodb/internal/workload"
)

// NetBench measures the service tier: one flodbd-style server over one
// FloDB engine, swept by client connection-pool size. Every column
// re-dials a fresh pool of N connections against the SAME running server
// and store, then drives a fixed offered concurrency (the thread count)
// of read/update pairs through it, so the sweep isolates the wire path —
// how far pipelined dispatch on few connections carries, and what more
// connections buy once a single socket's frame serialization and reader
// loop saturate. Kops/s (not Mops/s: every op pays a loopback round
// trip) plus read p50/p99 and write p99 per connection tier.
func NetBench(c Config) (*harness.Table, error) {
	c.Defaults()
	conns := []int{1, 4, 16, 64}
	threads := 32
	if c.Quick {
		conns = []int{1, 4, 16}
		threads = 16
	}

	dir, err := c.cellDir("netbench")
	if err != nil {
		return nil, err
	}
	inner, err := core.Open(core.Config{
		Dir:            dir,
		MemoryBytes:    c.MemBytes,
		DisableWAL:     true, // loader shape, like the other throughput figures
		PersistLimiter: c.limiter(),
		Storage:        storageOpts(c.MemBytes),
	})
	if err != nil {
		return nil, err
	}
	defer inner.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Store: inner})
	go srv.Serve(l)
	defer srv.Close()

	if err := initHalf(inner, c.Keys, false); err != nil {
		return nil, err
	}

	cols := make([]string, len(conns))
	for i, n := range conns {
		cols[i] = fmt.Sprintf("%d", n)
	}
	rows := []string{"throughput Kops/s", "read p50 µs", "read p99 µs", "write p99 µs"}
	tbl := harness.NewTable("Service tier: throughput and latency vs client connections (one server, one store)",
		fmt.Sprintf("pooled connections (%d threads)", threads), "Kops/s / µs", cols, rows)

	var lastStats *client.Client
	for ci, n := range conns {
		cl, err := client.Dial(l.Addr().String(), client.WithConns(n))
		if err != nil {
			return nil, err
		}
		res := harness.Run(cl, harness.RunOptions{
			Mix:            workload.ReadUpdate,
			Threads:        threads,
			Duration:       c.Duration,
			Keys:           c.Keys,
			MeasureLatency: true,
		})
		if res.Errors > 0 {
			cl.Close()
			return nil, fmt.Errorf("netbench: conns=%d: %d errors", n, res.Errors)
		}
		tbl.Set(0, ci, res.MopsPerSec()*1000)
		tbl.Set(1, ci, float64(res.ReadLat.Median())/1e3)
		tbl.Set(2, ci, float64(res.ReadLat.P99())/1e3)
		tbl.Set(3, ci, float64(res.WriteLat.P99())/1e3)
		c.logf("netbench conns=%d -> %.1f Kops/s, read p99 %.0f µs",
			n, res.MopsPerSec()*1000, float64(res.ReadLat.P99())/1e3)
		if ci == len(conns)-1 {
			lastStats = cl
			defer cl.Close()
		} else {
			cl.Close()
		}
	}

	if lastStats != nil {
		if _, info, err := lastStats.FullStats(context.Background()); err == nil {
			tbl.AddNote("server lifetime: %d requests over %d connections, %s in / %s out, %d slow (>1s)",
				info.Requests, info.ConnsTotal, harness.ByteSize(int64(info.BytesIn)),
				harness.ByteSize(int64(info.BytesOut)), info.SlowRequests)
		}
	}
	tbl.AddNote("loopback TCP; every op is one wire round trip through internal/wire; fixed offered concurrency per column")
	if p := runtime.GOMAXPROCS(0); p < 4 {
		tbl.AddNote("GOMAXPROCS=%d: pipelined dispatch cannot spread — connection scaling only manifests on multi-core runners", p)
	}
	return tbl, nil
}
