package figures

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"flodb/internal/core"
	"flodb/internal/diskenv"
	"flodb/internal/harness"
	"flodb/internal/kv"
	"flodb/internal/shard"
	"flodb/internal/workload"
)

// ShardBench measures how write throughput scales with shard count — the
// scaling axis past a single memory component. The first column is the
// single-instance baseline: one unsharded FloDB at the full memory
// budget. Every shard column opens a fresh sharded store of N
// range-partitioned FloDB instances sharing that SAME total budget, so
// the sweep isolates partitioning itself; each row is a key
// distribution:
//
//	uniform:            the paper's spread draws — every shard carries an
//	                    equal slice, the best case; throughput rises with
//	                    N until cores or the disk saturate
//	zipf:               Zipfian popularity skew with SPREAD keys
//	                    (hashed-ID shape) — hot keys scatter across
//	                    shards, so scaling holds
//	hot-shard:          Zipfian skew CLUSTERED into one contiguous range —
//	                    the adversarial case where most writes land on one
//	                    shard and added shards mostly idle (F2's
//	                    partitioned-design losing case); the per-shard
//	                    imbalance is reported as a note
//	hot-shard adaptive: the same adversarial workload over a store with
//	                    the sensor-driven rebalance controller ON — it
//	                    splits the hot range (growing that range's share
//	                    of the memory budget) and merges the idle
//	                    remainder, so the static hot-shard line is the
//	                    one it has to beat
func ShardBench(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := c.Threads[len(c.Threads)/2]
	counts := []int{1, 2, 4, 8}
	if c.Quick {
		counts = []int{1, 2, 4}
	}
	maxCount := counts[len(counts)-1]
	// Every cell gets the same TOTAL memory — sized so the largest
	// fan-out still has a workable per-shard budget (at bench scale,
	// splitting the base budget N ways would drown the partitioning
	// signal in per-shard flush churn).
	totalMem := c.MemBytes * int64(maxCount)

	type row struct {
		name     string
		mix      workload.Mix
		gen      func(thread int) workload.KeyGen // nil = uniform default
		adaptive bool
	}
	keyCount := c.Keys
	hotGen := func(int) workload.KeyGen { return workload.NewHotShardZipfian(keyCount, workload.DefaultZipfS) }
	rows := []row{
		{name: "uniform write", mix: workload.WriteOnly},
		{name: "zipf write", mix: workload.WriteOnly,
			gen: func(int) workload.KeyGen { return workload.NewZipfian(keyCount, workload.DefaultZipfS) }},
		{name: "hot-shard write", mix: workload.HotShardWrite, gen: hotGen},
		{name: "hot-shard adaptive", mix: workload.HotShardWrite, gen: hotGen, adaptive: true},
	}

	cols := make([]string, 0, len(counts)+1)
	cols = append(cols, "core")
	for _, n := range counts {
		cols = append(cols, fmt.Sprintf("%d", n))
	}
	rowNames := make([]string, len(rows))
	for i, r := range rows {
		rowNames[i] = r.name
	}
	tbl := harness.NewTable("Shard scaling: write throughput vs shard count (equal total memory)",
		fmt.Sprintf("shards (%d threads; core = one unsharded FloDB)", threads), "write Mops/s", cols, rowNames)

	var adaptiveFinal []string
	for ri, r := range rows {
		for ci := range cols {
			dir, err := c.cellDir(fmt.Sprintf("shardbench-%d-%d", ri, ci))
			if err != nil {
				return nil, err
			}
			var store kv.Store
			switch {
			case ci == 0:
				// The single-instance baseline every shard column is
				// judged against: one FloDB, full budget, no pipeline.
				store, err = core.Open(core.Config{
					Dir: dir, MemoryBytes: totalMem, DisableWAL: true,
					PersistLimiter: c.limiter(), Storage: storageOpts(totalMem),
				})
			case r.adaptive:
				store, err = openShardAdaptive(dir, counts[ci-1], maxCount, totalMem, c.limiter())
			default:
				store, err = openShard(dir, counts[ci-1], totalMem, c.limiter(), false)
			}
			if err != nil {
				return nil, err
			}
			opts := harness.RunOptions{
				Mix:      r.mix,
				KeyGen:   r.gen,
				Threads:  threads,
				Duration: c.Duration,
				Keys:     c.Keys,
			}
			// Unmeasured warmup: every cell measures its steady state, not
			// the empty-store transient — and the adaptive row's controller
			// gets its split/merge churn (the FENCE-COPY-SWAP copies) out
			// of the way so the measured phase sees the converged topology.
			harness.Run(store, opts)
			res := harness.Run(store, opts)
			if ss, ok := store.(*shard.Store); ok {
				// Imbalance: the hottest shard's share of puts. 1/n is a
				// perfect spread; ~1.0 is a single hot shard.
				if n := counts[ci-1]; n == maxCount && strings.HasPrefix(r.name, "hot-shard") {
					var total, hottest uint64
					for _, st := range ss.PerShard() {
						total += st.Puts
						if st.Puts > hottest {
							hottest = st.Puts
						}
					}
					if total > 0 {
						tbl.AddNote("%s @ %d shards: hottest shard carried %.0f%% of puts (even = %.0f%%)",
							r.name, len(ss.PerShard()), 100*float64(hottest)/float64(total), 100/float64(len(ss.PerShard())))
					}
				}
				if r.adaptive {
					st := ss.Stats()
					adaptiveFinal = append(adaptiveFinal, fmt.Sprintf("%d->%d (%d splits, %d merges)",
						counts[ci-1], ss.Topology().Shards, st.ShardSplits, st.ShardMerges))
				}
			}
			if err := store.Close(); err != nil {
				return nil, err
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("shardbench: %s col=%s: %d errors", r.name, cols[ci], res.Errors)
			}
			tbl.Set(ri, ci, res.WriteMopsPerSec())
			c.logf("shardbench %s shards=%s -> %.3f Mops/s", r.name, cols[ci], res.WriteMopsPerSec())
		}
	}
	if len(adaptiveFinal) > 0 {
		tbl.AddNote("adaptive topology per column: %s", strings.Join(adaptiveFinal, ", "))
	}
	tbl.AddNote("every cell shares one total memory budget split across its shards; WAL off (loader shape)")
	if p := runtime.GOMAXPROCS(0); p < 4 {
		tbl.AddNote("GOMAXPROCS=%d: shard commit pipelines are flat-combined onto producer threads, so columns measure partitioning overhead only — parallel scaling needs a multi-core runner", p)
	}
	return tbl, nil
}

// openShardAdaptive builds the dynamic engine the adaptive row runs: a
// range-partitioned store whose rebalance controller may split hot
// shards and merge cold ones between MinShards=1 and maxShards, on a
// sensor window fast enough to act within a bench cell.
func openShardAdaptive(dir string, shards, maxShards int, memBytes int64, lim *diskenv.Limiter) (kv.Store, error) {
	perShard := memBytes / int64(shards)
	cfg := core.Config{
		MemoryBytes:    memBytes,
		DisableWAL:     true,
		PersistLimiter: lim,
		Storage:        storageOpts(perShard),
	}
	applyAdaptiveForTest(&cfg)
	return shard.Open(shard.Config{
		Dir: dir, Shards: shards, Core: cfg,
		// Damped controller: a 50ms sensor window converges within the
		// warmup phase, and the longer hysteresis/cooldown keep the
		// measured phase from paying oscillating split/merge copies.
		Dynamic: shard.Dynamic{
			Enabled:      true,
			MinShards:    1,
			MaxShards:    maxShards,
			Interval:     50 * time.Millisecond,
			MinWindowOps: 256,
			Hysteresis:   3,
			Cooldown:     6,
		},
	})
}
