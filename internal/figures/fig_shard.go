package figures

import (
	"fmt"
	"runtime"

	"flodb/internal/harness"
	"flodb/internal/shard"
	"flodb/internal/workload"
)

// ShardBench measures how write throughput scales with shard count — the
// scaling axis past a single memory component. Each column opens a fresh
// sharded store of N range-partitioned FloDB instances sharing the SAME
// total memory budget, so the sweep isolates partitioning itself; each
// row is a key distribution:
//
//	uniform:   the paper's spread draws — every shard carries an equal
//	           slice, the best case; throughput should rise with N until
//	           cores or the disk saturate
//	zipf:      Zipfian popularity skew with SPREAD keys (hashed-ID
//	           shape) — hot keys scatter across shards, so scaling holds
//	hot-shard: Zipfian skew CLUSTERED into one contiguous range — the
//	           adversarial case where most writes land on one shard and
//	           added shards mostly idle (F2's partitioned-design losing
//	           case); the per-shard imbalance is reported as a note
func ShardBench(c Config) (*harness.Table, error) {
	c.Defaults()
	threads := c.Threads[len(c.Threads)/2]
	counts := []int{1, 2, 4, 8}
	if c.Quick {
		counts = []int{1, 2, 4}
	}
	// Every column gets the same TOTAL memory — sized so the largest
	// fan-out still has a workable per-shard budget (at bench scale,
	// splitting the base budget N ways would drown the parallelism
	// signal in per-shard flush churn).
	totalMem := c.MemBytes * int64(counts[len(counts)-1])

	type row struct {
		name string
		mix  workload.Mix
		gen  func(thread int) workload.KeyGen // nil = uniform default
	}
	keyCount := c.Keys
	rows := []row{
		{name: "uniform write", mix: workload.WriteOnly},
		{name: "zipf write", mix: workload.WriteOnly,
			gen: func(int) workload.KeyGen { return workload.NewZipfian(keyCount, workload.DefaultZipfS) }},
		{name: "hot-shard write", mix: workload.HotShardWrite,
			gen: func(int) workload.KeyGen { return workload.NewHotShardZipfian(keyCount, workload.DefaultZipfS) }},
	}

	cols := make([]string, len(counts))
	for i, n := range counts {
		cols[i] = fmt.Sprintf("%d", n)
	}
	rowNames := make([]string, len(rows))
	for i, r := range rows {
		rowNames[i] = r.name
	}
	tbl := harness.NewTable("Shard scaling: write throughput vs shard count (equal total memory)",
		fmt.Sprintf("shards (%d threads)", threads), "write Mops/s", cols, rowNames)

	for ri, r := range rows {
		for ci, n := range counts {
			dir, err := c.cellDir(fmt.Sprintf("shardbench-%d-%d", ri, ci))
			if err != nil {
				return nil, err
			}
			store, err := openShard(dir, n, totalMem, c.limiter(), false)
			if err != nil {
				return nil, err
			}
			res := harness.Run(store, harness.RunOptions{
				Mix:      r.mix,
				KeyGen:   r.gen,
				Threads:  threads,
				Duration: c.Duration,
				Keys:     c.Keys,
			})
			// Imbalance: the hottest shard's share of puts. 1/n is a
			// perfect spread; ~1.0 is a single hot shard.
			if ss, ok := store.(*shard.Store); ok && n == counts[len(counts)-1] {
				var total, hottest uint64
				for _, st := range ss.PerShard() {
					total += st.Puts
					if st.Puts > hottest {
						hottest = st.Puts
					}
				}
				if total > 0 {
					tbl.AddNote("%s @ %d shards: hottest shard carried %.0f%% of puts (even = %.0f%%)",
						r.name, n, 100*float64(hottest)/float64(total), 100/float64(n))
				}
			}
			if err := store.Close(); err != nil {
				return nil, err
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("shardbench: %s shards=%d: %d errors", r.name, n, res.Errors)
			}
			tbl.Set(ri, ci, res.WriteMopsPerSec())
			c.logf("shardbench %s shards=%d -> %.3f Mops/s", r.name, n, res.WriteMopsPerSec())
		}
	}
	tbl.AddNote("every cell shares one total memory budget split across its shards; WAL off (loader shape)")
	if p := runtime.GOMAXPROCS(0); p < 4 {
		tbl.AddNote("GOMAXPROCS=%d: shard parallelism cannot manifest — columns only scale on multi-core runners", p)
	}
	return tbl, nil
}
