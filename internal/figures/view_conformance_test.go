package figures

// Conformance of the read-view surface across the paper's five systems:
// every kv.Store the harness drives must provide repeatable-read
// snapshots, honor context cancellation mid-scan, and produce openable
// checkpoints. This is the contract the apibench figure (and the next
// PRs' server layer) relies on.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"flodb/internal/baseline"
	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
)

var bg = context.Background()

func openSys(t *testing.T, sys System, dir string) kv.Store {
	t.Helper()
	s, err := openSystem(sys, dir, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// openSysWAL opens one of the five systems with the commit log ON, so
// checkpoints capture the memory component through the WAL tail.
func openSysWAL(t *testing.T, sys System, dir string) kv.Store {
	t.Helper()
	var s kv.Store
	var err error
	switch sys {
	case SysFloDB:
		cfg := core.Config{Dir: dir, MemoryBytes: 1 << 20, Storage: storageOpts(1 << 20)}
		applyAdaptiveForTest(&cfg)
		s, err = core.Open(cfg)
	case SysShard:
		s, err = openShard(dir, ShardCount, 1<<20, nil, true)
	case SysNet:
		s, err = openNet(dir, 1<<20, nil, true)
	case SysCluster:
		s, err = openCluster(dir, 1<<20, nil, true)
	default:
		cfg := baseline.Config{Dir: dir, MemBytes: 1 << 20, Storage: storageOpts(1 << 20)}
		switch sys {
		case SysRocks:
			s, err = baseline.NewRocksDB(cfg)
		case SysCLSM:
			s, err = baseline.NewCLSM(cfg)
		case SysHyper:
			s, err = baseline.NewHyperLevelDB(cfg)
		case SysLevel:
			s, err = baseline.NewLevelDB(cfg)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllSystemsSnapshotIsolation(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			s := openSys(t, sys, t.TempDir())
			defer s.Close()
			const n = 200
			for i := 0; i < n; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), []byte(fmt.Sprintf("old-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := s.Snapshot(bg)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			for i := 0; i < n; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), []byte("new")); err != nil {
					t.Fatal(err)
				}
			}
			// Repeatable read of the pre-snapshot state, twice.
			for pass := 0; pass < 2; pass++ {
				pairs, err := snap.Scan(bg, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(pairs) != n {
					t.Fatalf("pass %d: snapshot scan %d pairs, want %d", pass, len(pairs), n)
				}
				for _, p := range pairs {
					want := fmt.Sprintf("old-%d", keys.DecodeUint64(p.Key))
					if string(p.Value) != want {
						t.Fatalf("pass %d: snapshot leaked %q for key %d", pass, p.Value, keys.DecodeUint64(p.Key))
					}
				}
			}
			if v, ok, err := snap.Get(bg, keys.EncodeUint64(3)); err != nil || !ok || string(v) != "old-3" {
				t.Fatalf("snapshot Get = %q %v %v", v, ok, err)
			}
			if v, ok, err := s.Get(bg, keys.EncodeUint64(3)); err != nil || !ok || string(v) != "new" {
				t.Fatalf("live Get = %q %v %v", v, ok, err)
			}
			// Released handles return the typed error.
			snap.Close()
			if _, _, err := snap.Get(bg, keys.EncodeUint64(3)); !errors.Is(err, kv.ErrSnapshotReleased) {
				t.Fatalf("released snapshot Get: %v", err)
			}
		})
	}
}

func TestAllSystemsContextCanceledScan(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			s := openSys(t, sys, t.TempDir())
			defer s.Close()
			for i := 0; i < 3000; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithCancel(bg)
			defer cancel()
			it, err := s.NewIterator(ctx, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			n := 0
			for ok := it.First(); ok; ok = it.Next() {
				if n++; n == 100 {
					cancel()
				}
			}
			if err := it.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("iterator err after mid-scan cancel: %v (saw %d pairs)", err, n)
			}
			if n >= 3000 {
				t.Fatal("iteration ran to completion despite cancellation")
			}
			if _, err := s.Scan(ctx, nil, nil); !errors.Is(err, context.Canceled) {
				t.Fatalf("Scan with canceled ctx: %v", err)
			}
			if err := s.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
				t.Fatalf("Put with canceled ctx: %v", err)
			}
		})
	}
}

func TestAllSystemsCheckpointReopens(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			base := t.TempDir()
			s := openSysWAL(t, sys, filepath.Join(base, "src"))
			defer s.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			ck := filepath.Join(base, "ck")
			if err := s.Checkpoint(bg, ck); err != nil {
				t.Fatal(err)
			}
			// With the WAL on, the synced tail captures the whole write
			// history: the checkpoint must reopen (as the same system)
			// holding every pair, each intact.
			r := openSysWAL(t, sys, ck)
			pairs, err := r.Scan(bg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			if len(pairs) != n {
				t.Fatalf("checkpoint reopened with %d pairs, want %d", len(pairs), n)
			}
			for _, p := range pairs {
				if keys.DecodeUint64(p.Key) != keys.DecodeUint64(p.Value) {
					t.Fatalf("corrupt pair in checkpoint: %x=%x", p.Key, p.Value)
				}
			}
		})
	}
}
