package figures

import (
	"fmt"

	"flodb/internal/core"
	"flodb/internal/harness"
	"flodb/internal/workload"
)

// Fig17 — the Membuffer/multi-insert ablation (§5.5): write-only
// throughput of three FloDB variants with persistence disabled
// (immutable memtables dropped), across memory sizes:
//
//	"No HT"                — membuffer disabled (classic single-level LSM
//	                         memory component): degrades as memory grows.
//	"HT, simple insert SL" — two levels, per-entry drain inserts.
//	"HT, multi-insert SL"  — two levels, batched multi-insert drains: best.
//
// The paper's column clusters are {1GB,1t} then {1,2,4,8GB}×8t (scaled
// /1024 here); the boxed annotation — the proportion of updates completing
// directly in the Membuffer — is reported as a note per cell.
func Fig17(c Config) (*harness.Table, error) {
	c.Defaults()
	type cluster struct {
		label   string
		mem     int64
		threads int
	}
	clusters := []cluster{
		{"1GB,1t", 1 << 20, 1},
		{"1GB,8t", 1 << 20, 8},
		{"2GB,8t", 2 << 20, 8},
		{"4GB,8t", 4 << 20, 8},
		{"8GB,8t", 8 << 20, 8},
	}
	if c.Quick {
		clusters = []cluster{{"1GB,1t", 1 << 20, 1}, {"1GB,8t", 1 << 20, 4}, {"8GB,8t", 8 << 20, 4}}
	}
	variants := []struct {
		label  string
		mutate func(*core.Config)
	}{
		{"HT, multi-insert SL", func(cfg *core.Config) {}},
		{"HT, simple insert SL", func(cfg *core.Config) { cfg.SimpleInsertDrain = true }},
		{"No HT", func(cfg *core.Config) { cfg.DisableMembuffer = true }},
	}
	cols := make([]string, len(clusters))
	for i, cl := range clusters {
		cols[i] = cl.label
	}
	rows := make([]string, len(variants))
	for i, v := range variants {
		rows[i] = v.label
	}
	tbl := harness.NewTable("Fig 17: Membuffer and multi-insert draining (persistence disabled)",
		"memory size (paper scale), threads", "Mops/s", cols, rows)

	for vi, v := range variants {
		for ci, cl := range clusters {
			cfg := core.Config{
				DropPersist: true, // §5.5: "we disable the disk persisting"
				MemoryBytes: cl.mem,
			}
			v.mutate(&cfg)
			db, err := core.Open(cfg)
			if err != nil {
				return nil, err
			}
			res := harness.Run(db, harness.RunOptions{
				Threads:  cl.threads,
				Duration: c.Duration,
				Mix:      workload.WriteOnly,
				Keys:     c.Keys,
			})
			st := db.Stats()
			db.Close()
			tbl.Set(vi, ci, res.MopsPerSec())
			total := st.MembufferHits + st.MemtableWrites
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(st.MembufferHits) / float64(total)
			}
			if vi == 0 { // annotate direct-Membuffer share on the full variant
				tbl.AddNote("%s: %.0f%% of updates completed directly in the Membuffer", cl.label, pct)
			}
			c.logf("fig17 %s %s -> %.3f Mops/s (direct-HT %.0f%%)", v.label, cl.label, res.MopsPerSec(), pct)
		}
	}
	return tbl, nil
}

// ScanStats reproduces the §5.2 claim that the fallback mechanism engages
// on under 1% of scans: it sweeps scan ranges and memory sizes and reports
// the fallback ratio.
func ScanStats(c Config) (*harness.Table, error) {
	c.Defaults()
	ranges := []int{10, 100, 1000, 10000}
	mems := []int64{128 << 10, 1 << 20, 4 << 20}
	if c.Quick {
		ranges = []int{10, 1000}
		mems = []int64{128 << 10, 1 << 20}
	}
	cols := make([]string, len(ranges))
	for i, r := range ranges {
		cols[i] = fmt.Sprintf("%d keys", r)
	}
	rows := make([]string, len(mems))
	for i, m := range mems {
		rows[i] = harness.ByteSize(m * 1024)
	}
	tbl := harness.NewTable("Scan fallback ratio (§5.2: expected < 1%)",
		"scan range", "fallback scans / scans (%)", cols, rows)
	threads := 16
	if c.Quick {
		threads = 4
	}
	for mi, mem := range mems {
		for ri, rng := range ranges {
			dir, err := c.cellDir(fmt.Sprintf("scanstats-%d-%d", mi, ri))
			if err != nil {
				return nil, err
			}
			db, err := core.Open(core.Config{
				Dir: dir, MemoryBytes: mem, DisableWAL: true, Storage: storageOpts(mem),
			})
			if err != nil {
				return nil, err
			}
			if err := initHalf(db, c.Keys, false); err != nil {
				db.Close()
				return nil, err
			}
			res := harness.Run(db, harness.RunOptions{
				Threads:    threads,
				Duration:   c.Duration,
				Mix:        workload.ScanWrite,
				Keys:       c.Keys,
				ScanLength: rng,
			})
			st := db.Stats()
			db.Close()
			ratio := 0.0
			if st.Scans > 0 {
				ratio = 100 * float64(st.FallbackScans) / float64(st.Scans)
			}
			tbl.Set(mi, ri, ratio)
			c.logf("scanstats mem=%s range=%d -> fallback %.3f%% (restarts %d / scans %d, ops %d)",
				harness.ByteSize(mem), rng, ratio, st.ScanRestarts, st.Scans, res.Ops)
		}
	}
	return tbl, nil
}
