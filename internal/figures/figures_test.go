package figures

import (
	"testing"
	"time"

	"flodb/internal/harness"
)

// tiny returns the smallest config that still exercises every code path.
func tiny(t *testing.T) Config {
	t.Helper()
	return Config{
		ScratchDir: t.TempDir(),
		Duration:   50 * time.Millisecond,
		Keys:       1 << 12,
		MemBytes:   64 << 10,
		Threads:    []int{1, 2},
		Quick:      true,
	}
}

// TestEveryFigureRuns smoke-tests every figure end to end: each must
// produce a fully-populated table without errors. This is the integration
// test tying stores, workloads, harness and reporting together.
func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	figs := map[string]func(Config) (*harness.Table, error){
		"fig5":       Fig5,
		"fig7":       Fig7,
		"fig8":       Fig8,
		"fig9":       Fig9,
		"fig11":      Fig11,
		"fig12":      Fig12,
		"fig14":      Fig14,
		"fig17":      Fig17,
		"scanstats":  ScanStats,
		"shardbench": ShardBench,
		"adaptive":   FigAdaptive,
		// clusterbench is the slowest figure (three ring sizes, kill and
		// heal segments) but it is the only tier-1 coverage of the full
		// quorum plane under load, so it stays in the smoke set.
		"clusterbench": ClusterBench,
	}
	for name, fn := range figs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			tbl, err := fn(tiny(t))
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 || len(tbl.Cols) == 0 {
				t.Fatal("empty table")
			}
			if name == "scanstats" {
				// Cells are fallback percentages: all-zero means no scan
				// ever needed the fallback — the healthy outcome.
				return
			}
			nonZero := 0
			for i := range tbl.Rows {
				for j := range tbl.Cols {
					if tbl.Cells[i][j] > 0 {
						nonZero++
					}
				}
			}
			if nonZero == 0 {
				t.Fatalf("%s produced an all-zero table", name)
			}
		})
	}
}

// TestLatencyFigures exercises Figs 3/4 (slow because of per-op timing).
func TestLatencyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	for name, fn := range map[string]func(Config) (*harness.Table, error){"fig3": Fig3, "fig4": Fig4} {
		t.Run(name, func(t *testing.T) {
			tbl, err := fn(tiny(t))
			if err != nil {
				t.Fatal(err)
			}
			// First column is the normalization base: exactly 1.0.
			if tbl.Cells[0][0] != 1 || tbl.Cells[1][0] != 1 {
				t.Fatalf("normalization base wrong: %v %v", tbl.Cells[0][0], tbl.Cells[1][0])
			}
		})
	}
}

// TestMemorySweepFigures exercises Figs 10/15/16 at minimum size.
func TestMemorySweepFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	cfg := tiny(t)
	for name, fn := range map[string]func(Config) (*harness.Table, error){
		"fig10": Fig10, "fig13": Fig13, "fig15": Fig15, "fig16": Fig16,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := fn(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOpenSystemUnknown(t *testing.T) {
	if _, err := openSystem(System("nope"), t.TempDir(), 1<<20, nil); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestDefaultsQuick(t *testing.T) {
	c := Config{Quick: true}
	c.Defaults()
	if c.Keys > 1<<18 {
		t.Fatal("quick mode should trim the keyspace")
	}
	if len(c.Threads) == 0 || c.Duration == 0 || c.MemBytes == 0 {
		t.Fatal("defaults incomplete")
	}
}
