package figures

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"flodb/internal/cluster"
	"flodb/internal/core"
	"flodb/internal/diskenv"
	"flodb/internal/harness"
	"flodb/internal/kv"
	"flodb/internal/server"
)

// Cluster topology for SysCluster: 3 nodes, every key on 2 of them,
// writes acked at both owners, reads answered by any one (with
// read-repair catching the other up).
const (
	ClusterNodes       = 3
	ClusterReplication = 2
	ClusterWriteQuorum = 2
	ClusterReadQuorum  = 1
)

// clusterStore is FloDB/cluster: N in-process flodbd-style servers on
// loopback sockets, each serving its own FloDB engine, under a
// cluster.Client coordinator — every operation pays the quorum fan-out
// over real TCP round trips. The node engines run the WAL in
// write-through mode, which is what makes a WHOLE-cluster crash
// prefix-consistent: replicas of consecutive writes land on different
// node pairs, so per-node staged-tail loss would punch cross-node holes
// in commit order; write-through pins every acked record to the OS
// before the ack, closing that window to machine crashes only.
type clusterStore struct {
	*cluster.Client
	nodes []*benchNode
	epoch uint64
}

// benchNode remembers enough to kill a node abruptly and restart it at
// the same identity and address — the availability series in
// ClusterBench and the heal paths in the conformance runs.
type benchNode struct {
	id    string
	dir   string
	addr  string
	cfg   core.Config
	inner *core.DB
	srv   *server.Server
}

func (n *benchNode) start(epoch uint64) error {
	inner, err := core.Open(n.cfg)
	if err != nil {
		return err
	}
	var l net.Listener
	for i := 0; ; i++ {
		l, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		if i > 100 {
			inner.Close()
			return err
		}
		time.Sleep(20 * time.Millisecond) // previous incarnation's port lingering
	}
	if n.addr == "127.0.0.1:0" {
		n.addr = l.Addr().String()
	}
	n.inner = inner
	n.srv = server.New(server.Config{Store: inner, NodeID: n.id, RingEpoch: epoch})
	go n.srv.Serve(l)
	return nil
}

// kill cuts the node down like SIGKILL: sockets dropped, engine
// abandoned mid-flight, nothing drained.
func (n *benchNode) kill() {
	if n.srv != nil {
		n.srv.Close()
		n.inner.CrashForTesting()
		n.srv, n.inner = nil, nil
	}
}

// openCluster builds the standard 3-node loopback ring (the eighth
// benched system).
func openCluster(dir string, memBytes int64, lim *diskenv.Limiter, walOn bool) (kv.Store, error) {
	return openClusterN(dir, ClusterNodes, memBytes, lim, walOn)
}

// openClusterN builds an n-node loopback ring at R=min(2,n), W=R, Rq=1.
// The directory layout is stable (dir/n1..nN engines, dir/hints for
// handoff logs) and member IDs are the subdirectory names, so reopening
// the same dir — including a checkpoint directory produced by
// Checkpoint — reassembles the same ring over the recovered engines,
// whatever ports the nodes get.
func openClusterN(dir string, nodeCount int, memBytes int64, lim *diskenv.Limiter, walOn bool) (*clusterStore, error) {
	replication := ClusterReplication
	if replication > nodeCount {
		replication = nodeCount
	}
	perNode := memBytes / int64(nodeCount)
	if perNode < 64<<10 {
		perNode = 64 << 10
	}

	// The ring epoch depends only on IDs and quorum config, so it is
	// known before any server starts and each server can vend it from
	// health probes.
	ids := make([]cluster.Member, nodeCount)
	for i := range ids {
		ids[i] = cluster.Member{ID: fmt.Sprintf("n%d", i+1)}
	}
	ring, err := cluster.NewRing(ids, cluster.DefaultVnodes, replication)
	if err != nil {
		return nil, err
	}

	cs := &clusterStore{epoch: ring.Epoch()}
	fail := func(err error) (*clusterStore, error) {
		cs.teardownNodes()
		return nil, err
	}
	members := make([]cluster.Member, 0, nodeCount)
	for i := 0; i < nodeCount; i++ {
		id := fmt.Sprintf("n%d", i+1)
		cfg := core.Config{
			Dir:             filepath.Join(dir, id),
			MemoryBytes:     perNode,
			DisableWAL:      !walOn,
			WALWriteThrough: walOn,
			PersistLimiter:  lim,
			Storage:         storageOpts(perNode),
		}
		applyAdaptiveForTest(&cfg)
		n := &benchNode{id: id, dir: cfg.Dir, addr: "127.0.0.1:0", cfg: cfg}
		if err := n.start(ring.Epoch()); err != nil {
			return fail(err)
		}
		cs.nodes = append(cs.nodes, n)
		members = append(members, cluster.Member{ID: id, Addr: n.addr})
	}

	cl, err := cluster.Open(cluster.Config{
		Members:       members,
		Replication:   replication,
		WriteQuorum:   replication, // W=R: quorum acks mean every owner logged it
		ReadQuorum:    ClusterReadQuorum,
		HintDir:       filepath.Join(dir, "hints"),
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return fail(err)
	}
	cs.Client = cl
	return cs, nil
}

func (c *clusterStore) teardownNodes() {
	for _, n := range c.nodes {
		if n.srv != nil {
			n.srv.Close()
			n.inner.Close()
			n.srv, n.inner = nil, nil
		}
	}
}

// Close shuts down coordinator-first (drains hints, closes pools), then
// each node the way flodbd's SIGTERM path does.
func (c *clusterStore) Close() error {
	err := c.Client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, n := range c.nodes {
		if n.srv == nil {
			continue
		}
		n.srv.Shutdown(ctx)
		if cerr := n.inner.Close(); cerr != nil && err == nil {
			err = cerr
		}
		n.srv, n.inner = nil, nil
	}
	return err
}

// CrashForTesting kills the WHOLE cluster at once: coordinator abandoned
// (hints stay on disk, no drain), every server's sockets cut, every
// engine losing whatever the write-through WAL had not yet handed to the
// OS (nothing acked).
func (c *clusterStore) CrashForTesting() {
	c.Client.CrashForTesting()
	for _, n := range c.nodes {
		n.kill()
	}
}

// WaitDiskQuiesce settles every live node's background work.
func (c *clusterStore) WaitDiskQuiesce() {
	for _, n := range c.nodes {
		if n.inner != nil {
			n.inner.WaitDiskQuiesce()
		}
	}
}

var (
	_ kv.Store         = (*clusterStore)(nil)
	_ harness.Quiescer = (*clusterStore)(nil)
)
