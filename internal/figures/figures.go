// Package figures regenerates every figure of the paper's evaluation
// (§5, Figs 3–17 less the architecture diagrams). Each function produces a
// harness.Table whose rows are the paper's series and whose columns are
// the paper's x-axis, at a configurable scale.
//
// Scaling (see DESIGN.md §3): the paper's machine is a 20-core Xeon with
// 256 GB RAM and a 300 GB dataset; sizes here default to 1/1024 of the
// paper's (128 MB→128 KB … 192 GB→192 MB, 300 GB→~300 MB) so every ratio
// that drives the results — memory:dataset, membuffer:memtable, hot-set:
// memory — is preserved while cells run in seconds. Absolute Mops/s are
// not comparable to the paper's hardware; the SHAPES (who wins, by what
// factor, where the crossovers sit) are what EXPERIMENTS.md validates.
package figures

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"flodb/internal/baseline"
	"flodb/internal/core"
	"flodb/internal/diskenv"
	"flodb/internal/harness"
	"flodb/internal/kv"
	"flodb/internal/shard"
	"flodb/internal/storage"
	"flodb/internal/workload"
)

// System identifies one of the evaluated stores.
type System string

// The five systems of §5.1, plus the sharded engine (ShardCount
// independent FloDB instances behind one kv.Store — the scaling axis
// past a single memory component) and the networked engine (a FloDB
// instance behind an in-process flodbd server, every operation paying a
// loopback round trip through internal/wire).
const (
	SysFloDB   System = "FloDB"
	SysShard   System = "FloDB/4shards"
	SysNet     System = "FloDB/net"
	SysCluster System = "FloDB/cluster"
	SysRocks   System = "RocksDB"
	SysCLSM    System = "RocksDB/cLSM"
	SysHyper   System = "HyperLevelDB"
	SysLevel   System = "LevelDB"
)

// ShardCount is the shard fan-out SysShard runs with. Its memory budget
// is the same TOTAL the other systems get, split across shards, so the
// comparison isolates partitioning, not extra memory.
const ShardCount = 4

// AllSystems lists the systems in legend order: the paper's five plus
// the sharded sixth, the networked seventh, and the replicated eighth
// (a 3-node ring at R=2, every operation a quorum fan-out), so every
// conformance suite and figure sweeps them too.
var AllSystems = []System{SysFloDB, SysShard, SysNet, SysCluster, SysRocks, SysCLSM, SysHyper, SysLevel}

// Config scales an experiment run.
type Config struct {
	// ScratchDir hosts the store directories (one per cell).
	ScratchDir string
	// Duration per measured cell.
	Duration time.Duration
	// Keys is the dataset keyspace (paper: ~1.2 G keys for 300 GB).
	Keys uint64
	// MemBytes is the default memory-component size (paper: 128 MB).
	MemBytes int64
	// Threads is the thread sweep for the thread-scaling figures.
	Threads []int
	// DiskBytesPerSec, when > 0, rate-limits persists to model the
	// paper's SSD bound (Fig 9's dashed line).
	DiskBytesPerSec float64
	// Quick trims sweeps for smoke runs.
	Quick bool
	// Out receives progress lines (nil silences them).
	Out io.Writer
}

// Defaults fills unset fields with the scaled defaults.
func (c *Config) Defaults() {
	if c.ScratchDir == "" {
		c.ScratchDir = filepath.Join(os.TempDir(), "flodb-bench")
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Keys == 0 {
		c.Keys = 1 << 20 // ~290 MB of 277 B records ≈ 300 GB / 1024
	}
	if c.MemBytes == 0 {
		c.MemBytes = 128 << 10 // 128 MB / 1024
	}
	if len(c.Threads) == 0 {
		if c.Quick {
			c.Threads = []int{1, 4, 16}
		} else {
			c.Threads = []int{1, 2, 4, 8, 16}
		}
	}
	if c.Quick && c.Keys > 1<<18 {
		c.Keys = 1 << 18
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

func (c *Config) limiter() *diskenv.Limiter {
	if c.DiskBytesPerSec > 0 {
		return diskenv.NewLimiter(c.DiskBytesPerSec)
	}
	return nil
}

// storageOpts scales the disk component with the memory component so the
// level geometry stays proportionate.
func storageOpts(memBytes int64) storage.Options {
	base := memBytes * 4
	if base < 1<<20 {
		base = 1 << 20
	}
	target := memBytes
	if target < 256<<10 {
		target = 256 << 10
	}
	o := storage.Options{BaseLevelBytes: base, TargetFileSize: target}
	if tinyCachesForTest {
		// A 1-byte block cache admits nothing (every block read is a
		// miss) and 2 table handles force constant reader reopen/close
		// churn — the cache-starvation configuration the tiny-cache
		// conformance rerun drives the suites through.
		o.BlockCacheBytes = 1
		o.TableCacheCapacity = 2
	}
	return o
}

// tinyCachesForTest, when set, opens every store with a pathologically
// small block cache (1 byte) and table cache (2 handles), so the
// conformance suites exercise the miss/eviction/reopen paths instead of
// the warm ones. Flipped by the tiny-cache conformance test.
var tinyCachesForTest bool

// openSystem builds one of the six stores. Benchmarks run with the WAL
// disabled, like the paper's db_bench-style loaders (no fsync per write);
// cells that measure the durable write path use openSystemDurable.
func openSystem(sys System, dir string, memBytes int64, lim *diskenv.Limiter) (kv.Store, error) {
	return openSystemMode(sys, dir, memBytes, lim, false)
}

// openSystemDurable builds one of the six stores with the commit log ON
// (Buffered default durability) — the configuration the durable-write
// apibench column and the durability conformance suite measure.
func openSystemDurable(sys System, dir string, memBytes int64, lim *diskenv.Limiter) (kv.Store, error) {
	return openSystemMode(sys, dir, memBytes, lim, true)
}

// adaptiveFloDBForTest, when set, opens every FloDB engine (single and
// sharded) with the adaptive memory controller on at a fast window —
// the switch the adaptive-conformance test flips to drive the view and
// durability suites UNMODIFIED over a self-resizing store.
var adaptiveFloDBForTest bool

func applyAdaptiveForTest(cfg *core.Config) {
	if adaptiveFloDBForTest {
		cfg.AdaptiveMemory = true
		cfg.AdaptiveWindow = 2 * time.Millisecond
	}
}

func openSystemMode(sys System, dir string, memBytes int64, lim *diskenv.Limiter, walOn bool) (kv.Store, error) {
	switch sys {
	case SysFloDB:
		cfg := core.Config{
			Dir:            dir,
			MemoryBytes:    memBytes,
			DisableWAL:     !walOn,
			PersistLimiter: lim,
			Storage:        storageOpts(memBytes),
		}
		applyAdaptiveForTest(&cfg)
		return core.Open(cfg)
	case SysShard:
		return openShard(dir, ShardCount, memBytes, lim, walOn)
	case SysNet:
		return openNet(dir, memBytes, lim, walOn)
	case SysCluster:
		return openCluster(dir, memBytes, lim, walOn)
	}
	cfg := baseline.Config{
		Dir: dir, MemBytes: memBytes, DisableWAL: !walOn,
		PersistLimiter: lim, Storage: storageOpts(memBytes),
	}
	switch sys {
	case SysRocks:
		return baseline.NewRocksDB(cfg)
	case SysCLSM:
		return baseline.NewCLSM(cfg)
	case SysHyper:
		return baseline.NewHyperLevelDB(cfg)
	case SysLevel:
		return baseline.NewLevelDB(cfg)
	default:
		return nil, fmt.Errorf("figures: unknown system %q", sys)
	}
}

// openShard builds the sharded engine: shards × core.DB behind one
// kv.Store, range-partitioned uniformly, sharing the total memory budget
// and the disk limiter (one physical disk however many shards).
func openShard(dir string, shards int, memBytes int64, lim *diskenv.Limiter, walOn bool) (kv.Store, error) {
	perShard := memBytes / int64(shards)
	cfg := core.Config{
		MemoryBytes:    memBytes,
		DisableWAL:     !walOn,
		PersistLimiter: lim,
		Storage:        storageOpts(perShard),
	}
	applyAdaptiveForTest(&cfg)
	sc := shard.Config{Dir: dir, Shards: shards, Core: cfg}
	if dynamicShardForTest {
		// Dynamic adoption also makes reopen-after-crash paths work: the
		// manifest's post-churn shard count wins over the static hint.
		sc.Dynamic = shard.Dynamic{Enabled: true, MinShards: 1, MaxShards: shards * 2}
	}
	st, err := shard.Open(sc)
	if err != nil {
		return nil, err
	}
	if dynamicShardForTest {
		return &epochChurner{Store: st}, nil
	}
	return st, nil
}

// dynamicShardForTest, when set, opens every sharded engine with the
// rebalance controller ON and wraps it in an epochChurner, so the view
// and durability conformance suites run over a store whose topology is
// guaranteed to change epochs mid-suite. Flipped by the epoch-change
// conformance rerun.
var dynamicShardForTest bool

// epochChurner forces deterministic topology churn into whatever
// workload runs over it: the 64th mutation performs a split and the
// 192nd a merge, synchronously on the mutating goroutine — every
// conformance assertion that follows runs against a store that crossed
// at least one epoch boundary. Churn failures surface through the op
// that triggered them, so the suites report them instead of silently
// losing the forced epoch change.
type epochChurner struct {
	*shard.Store
	ops atomic.Uint64
}

func (c *epochChurner) churn() error {
	switch c.ops.Add(1) {
	case 64:
		return c.Store.Split(0)
	case 192:
		return c.Store.Merge(0)
	}
	return nil
}

func (c *epochChurner) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	if err := c.churn(); err != nil {
		return fmt.Errorf("figures: forced epoch churn: %w", err)
	}
	return c.Store.Put(ctx, key, value, opts...)
}

func (c *epochChurner) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	if err := c.churn(); err != nil {
		return fmt.Errorf("figures: forced epoch churn: %w", err)
	}
	return c.Store.Delete(ctx, key, opts...)
}

func (c *epochChurner) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if err := c.churn(); err != nil {
		return fmt.Errorf("figures: forced epoch churn: %w", err)
	}
	return c.Store.Apply(ctx, b, opts...)
}

// cellDir allocates a fresh store directory.
func (c *Config) cellDir(name string) (string, error) {
	dir := filepath.Join(c.ScratchDir, name)
	if err := os.RemoveAll(dir); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// initHalf fills half the dataset (§5.2's mixed-workload initialization),
// in spread (random-ish) or ascending key order.
func initHalf(store kv.Store, keyCount uint64, sorted bool) error {
	n := keyCount / 2
	buf := make([]byte, workload.DefaultKeySize)
	gen := workload.NewUniform(keyCount)
	var fill func(i uint64) []byte
	if sorted {
		fill = func(i uint64) []byte { return workload.PutUint64(buf, i) }
	} else {
		fill = func(i uint64) []byte { return gen.KeyAt(i, buf) }
	}
	if err := harness.Fill(store, fill, n, workload.DefaultValueSize); err != nil {
		return err
	}
	harness.Quiesce(store)
	return nil
}

// systemsThreadSweep is the common engine for Figs 9–13: for each system,
// optionally initialize once, then sweep thread counts measuring with the
// given extractor.
func (c *Config) systemsThreadSweep(
	figName string,
	tbl *harness.Table,
	threads []int,
	freshPerCell bool,
	sorted bool,
	initFill bool,
	opts harness.RunOptions,
	metric func(harness.Result) float64,
) error {
	for si, sys := range AllSystems {
		var store kv.Store
		var err error
		if !freshPerCell {
			dir, derr := c.cellDir(fmt.Sprintf("%s-%d", figName, si))
			if derr != nil {
				return derr
			}
			store, err = openSystem(sys, dir, c.MemBytes, c.limiter())
			if err != nil {
				return err
			}
			if initFill {
				if err := initHalf(store, c.Keys, sorted); err != nil {
					store.Close()
					return err
				}
			}
		}
		for ti, th := range threads {
			if freshPerCell {
				dir, derr := c.cellDir(fmt.Sprintf("%s-%d-%d", figName, si, ti))
				if derr != nil {
					return derr
				}
				store, err = openSystem(sys, dir, c.MemBytes, c.limiter())
				if err != nil {
					return err
				}
				if initFill {
					if err := initHalf(store, c.Keys, sorted); err != nil {
						store.Close()
						return err
					}
				}
			}
			ro := opts
			ro.Threads = th
			ro.Duration = c.Duration
			ro.Keys = c.Keys
			res := harness.Run(store, ro)
			tbl.Set(si, ti, metric(res))
			c.logf("%s %s threads=%d -> %.3f", figName, sys, th, metric(res))
			if freshPerCell {
				store.Close()
			}
		}
		if !freshPerCell {
			store.Close()
		}
	}
	return nil
}

func threadCols(threads []int) []string {
	cols := make([]string, len(threads))
	for i, t := range threads {
		cols[i] = fmt.Sprintf("%d", t)
	}
	return cols
}

func systemRows() []string {
	rows := make([]string, len(AllSystems))
	for i, s := range AllSystems {
		rows[i] = string(s)
	}
	return rows
}

// memorySweepSizes returns the Fig 15/16 x-axis: the paper's
// 128 MB..192 GB scaled by 1/1024.
func (c *Config) memorySweepSizes() []int64 {
	all := []int64{
		128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
		8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20, 192 << 20,
	}
	if c.Quick {
		return []int64{128 << 10, 1 << 20, 8 << 20, 64 << 20}
	}
	return all
}

func sizeCols(sizes []int64) []string {
	cols := make([]string, len(sizes))
	for i, s := range sizes {
		// Label with the PAPER's size (scale × 1024) so tables read like
		// the figures.
		cols[i] = harness.ByteSize(s * 1024)
	}
	return cols
}
