package figures

// Conformance of the durability surface across the paper's five systems:
// every kv.Store the harness drives must honor per-operation durability
// classes, promote the acked-but-buffered window on Sync, coalesce
// concurrent committers in the group-commit queue, and recover a
// prefix-consistent state (no holes in commit order) after a crash that
// loses buffered writes. This is the contract the durable-write apibench
// column measures.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// crasher is implemented (for tests only) by all five systems: it
// abandons the store without the close-time flush, losing every WAL
// record past the last fsync/OS-flush — the acked-but-lost window.
type crasher interface{ CrashForTesting() }

func crashStore(t *testing.T, s kv.Store) {
	t.Helper()
	c, ok := s.(crasher)
	if !ok {
		t.Fatalf("%T does not support crash simulation", s)
	}
	c.CrashForTesting()
}

func openDurable(t *testing.T, sys System, dir string, memBytes int64) kv.Store {
	t.Helper()
	s, err := openSystemDurable(sys, dir, memBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stats(t *testing.T, s kv.Store) kv.Stats {
	t.Helper()
	sp, ok := s.(kv.StatsProvider)
	if !ok {
		t.Fatalf("%T does not report stats", s)
	}
	return sp.Stats()
}

// TestAllSystemsPerOpDurabilityClasses writes one key under each class,
// crashes, and checks each class's contract: Sync survives, None is gone,
// and the boundary counters are coherent.
func TestAllSystemsPerOpDurabilityClasses(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, sys, dir, 1<<20)

			// Sync first, buffered and none after: the later records sit
			// past the barrier, in the staging buffer the crash loses.
			if err := s.Put(bg, []byte("k-sync"), []byte("v-sync"), kv.WithSync()); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(bg, []byte("k-buf"), []byte("v-buf")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(bg, []byte("k-none"), []byte("v-none"), kv.WithDurability(kv.DurabilityNone)); err != nil {
				t.Fatal(err)
			}

			st := stats(t, s)
			if st.AckedSeq < 2 {
				t.Fatalf("AckedSeq = %d, want >= 2 (sync + buffered logged; none not)", st.AckedSeq)
			}
			if st.DurableSeq < 1 || st.DurableSeq > st.AckedSeq {
				t.Fatalf("DurableSeq = %d outside [1, AckedSeq=%d]", st.DurableSeq, st.AckedSeq)
			}
			if st.WALSyncs < 1 || st.WALSyncRequests < 1 {
				t.Fatalf("sync write issued no barrier: %+v", st)
			}

			crashStore(t, s)
			r := openDurable(t, sys, dir, 1<<20)
			defer r.Close()
			if v, ok, err := r.Get(bg, []byte("k-sync")); err != nil || !ok || string(v) != "v-sync" {
				t.Fatalf("Sync-class write lost in crash: %q %v %v", v, ok, err)
			}
			if _, ok, _ := r.Get(bg, []byte("k-none")); ok {
				t.Fatal("None-class write survived a crash it was promised not to")
			}
			// k-buf is inside the documented acked-but-lost window: either
			// outcome is legal, but a recovered value must be intact.
			if v, ok, _ := r.Get(bg, []byte("k-buf")); ok && string(v) != "v-buf" {
				t.Fatalf("buffered write recovered corrupt: %q", v)
			}
		})
	}
}

// TestAllSystemsLoggedClassWithoutWALRejected: a WAL-less store cannot
// honor Buffered or Sync; it must say so rather than silently downgrade.
func TestAllSystemsLoggedClassWithoutWALRejected(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			s := openSys(t, sys, t.TempDir()) // WAL disabled
			defer s.Close()
			if err := s.Put(bg, []byte("k"), []byte("v"), kv.WithSync()); !errors.Is(err, kv.ErrNotSupported) {
				t.Fatalf("Sync put on WAL-less store: %v, want ErrNotSupported", err)
			}
			if err := s.Put(bg, []byte("k"), []byte("v"), kv.WithDurability(kv.DurabilityBuffered)); !errors.Is(err, kv.ErrNotSupported) {
				t.Fatalf("Buffered put on WAL-less store: %v, want ErrNotSupported", err)
			}
			b := kv.NewBatch()
			b.Put([]byte("k"), []byte("v"))
			if err := s.Apply(bg, b, kv.WithSync()); !errors.Is(err, kv.ErrNotSupported) {
				t.Fatalf("Sync batch on WAL-less store: %v, want ErrNotSupported", err)
			}
			// Default writes (None) and the barrier (vacuously satisfied)
			// still work.
			if err := s.Put(bg, []byte("k"), []byte("v")); err != nil {
				t.Fatalf("default put on WAL-less store: %v", err)
			}
			if err := s.Sync(bg); err != nil {
				t.Fatalf("Sync barrier on WAL-less store: %v", err)
			}
		})
	}
}

// TestAllSystemsSyncBarrierPromotesAcked writes a buffered prefix,
// raises the barrier, writes a buffered suffix, crashes — everything
// before the barrier must survive, and what survives overall must be a
// hole-free prefix of commit order.
func TestAllSystemsSyncBarrierPromotesAcked(t *testing.T) {
	const durable, extra = 100, 50
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, sys, dir, 1<<20)
			for i := 0; i < durable; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Sync(bg); err != nil {
				t.Fatal(err)
			}
			st := stats(t, s)
			if st.DurableSeq != st.AckedSeq {
				t.Fatalf("barrier left a gap: durable %d < acked %d", st.DurableSeq, st.AckedSeq)
			}
			if st.SyncBarriers != 1 {
				t.Fatalf("SyncBarriers = %d, want 1", st.SyncBarriers)
			}
			for i := durable; i < durable+extra; i++ {
				if err := s.Put(bg, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			crashStore(t, s)

			r := openDurable(t, sys, dir, 1<<20)
			defer r.Close()
			missingFrom := -1
			for i := 0; i < durable+extra; i++ {
				v, ok, err := r.Get(bg, keys.EncodeUint64(uint64(i)))
				if err != nil {
					t.Fatal(err)
				}
				switch {
				case !ok && i < durable:
					t.Fatalf("pre-barrier write %d lost across crash", i)
				case !ok && missingFrom < 0:
					missingFrom = i
				case ok && missingFrom >= 0:
					t.Fatalf("hole in commit order: key %d recovered but key %d was not", i, missingFrom)
				case ok && keys.DecodeUint64(v) != uint64(i):
					t.Fatalf("key %d recovered corrupt: %x", i, v)
				}
			}
		})
	}
}

// TestAllSystemsGroupCommitCoalesces proves fsync coalescing at the store
// level: N concurrent committers drive the commit queue and must trigger
// strictly fewer fsyncs than requests (counted via the WAL stats hook),
// while every one of their writes is durable across a crash.
func TestAllSystemsGroupCommitCoalesces(t *testing.T) {
	const (
		writers       = 8
		barriers      = 8 // concurrent Sync(ctx) calls after a buffered load
		syncPerWriter = 8 // concurrent Sync-class puts per writer
	)
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, sys, dir, 1<<20)

			// Phase 1 — buffered load from all writers, no barriers.
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						k := []byte(fmt.Sprintf("buf-%d-%d", w, i))
						if err := s.Put(bg, k, k); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			// Phase 2 — every append already staged, so the FIRST barrier
			// leader covers them all: concurrent barriers must coalesce to
			// strictly fewer fsyncs than requests, deterministically.
			before := stats(t, s)
			for i := 0; i < barriers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := s.Sync(bg); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			mid := stats(t, s)
			barrierSyncs := mid.WALSyncs - before.WALSyncs
			if barrierSyncs >= barriers {
				t.Fatalf("concurrent barriers did not coalesce: %d fsyncs for %d barriers", barrierSyncs, barriers)
			}
			if mid.DurableSeq != mid.AckedSeq {
				t.Fatalf("barriers left a gap: durable %d < acked %d", mid.DurableSeq, mid.AckedSeq)
			}

			// Phase 3 — concurrent Sync-class writers hammer the queue.
			// Coalescing here depends on real overlap, which the scheduler
			// (especially under -race) may deny, so the strict fewer-
			// fsyncs-than-committers assertion lives in phase 2 and in the
			// wal package's deterministic leader/follower tests; this
			// phase checks accounting sanity and (below) that every
			// sync-acked write is actually durable.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < syncPerWriter; i++ {
						k := []byte(fmt.Sprintf("sync-%d-%d", w, i))
						if err := s.Put(bg, k, k, kv.WithSync()); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			after := stats(t, s)
			reqs := after.WALSyncRequests - mid.WALSyncRequests
			syncs := after.WALSyncs - mid.WALSyncs
			if reqs < writers*syncPerWriter {
				t.Fatalf("sync requests = %d, want >= %d", reqs, writers*syncPerWriter)
			}
			if syncs > reqs {
				t.Fatalf("more fsyncs than durability requests: %d > %d", syncs, reqs)
			}
			t.Logf("%s: %d sync requests served by %d fsyncs (%.1fx coalescing)",
				sys, reqs, syncs, float64(reqs)/float64(max64(syncs, 1)))

			// Every sync-acked write survives the crash.
			crashStore(t, s)
			r := openDurable(t, sys, dir, 1<<20)
			defer r.Close()
			for w := 0; w < writers; w++ {
				for i := 0; i < syncPerWriter; i++ {
					k := []byte(fmt.Sprintf("sync-%d-%d", w, i))
					if _, ok, err := r.Get(bg, k); err != nil || !ok {
						t.Fatalf("sync-acked write %s lost: ok=%v err=%v", k, ok, err)
					}
				}
			}
		})
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestAllSystemsCrashMidStreamPrefix opens the acked-but-lost window for
// real: a writer streams buffered writes while the store crashes under
// it. Whatever recovers must be a contiguous prefix of the issue order —
// a lost suffix is the documented Buffered contract, a hole is a bug.
func TestAllSystemsCrashMidStreamPrefix(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(string(sys), func(t *testing.T) {
			dir := t.TempDir()
			// Small memory component: the stream forces memtable switches,
			// exercising the cross-segment prefix (seal-time flush).
			s := openDurable(t, sys, dir, 128<<10)

			ctx, cancel := context.WithTimeout(bg, 30*time.Second)
			defer cancel()
			var issuedN atomic.Int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					issuedN.Store(int64(i + 1))
					if err := s.Put(ctx, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
						issuedN.Store(int64(i)) // the failed write may or may not have landed; exclude it
						return
					}
				}
			}()
			// Let the stream run, then make sure enough writes are actually
			// in before pulling the plug: under -race the networked systems
			// can take tens of milliseconds per quorum round-trip, so a
			// fixed sleep alone crashes an empty store on slow machines.
			time.Sleep(30 * time.Millisecond)
			// >= 11, not 10: the counter is stored optimistically before
			// each Put, and the crash fails the in-flight write, rolling
			// the count back by one.
			for limit := time.Now().Add(20 * time.Second); issuedN.Load() < 11 && time.Now().Before(limit); {
				time.Sleep(5 * time.Millisecond)
			}
			crashStore(t, s)
			<-done
			issued := int(issuedN.Load())
			if issued < 10 {
				t.Fatalf("writer only issued %d writes before the crash", issued)
			}

			r := openDurable(t, sys, dir, 128<<10)
			defer r.Close()
			recovered, missingFrom := 0, -1
			// Scan one past the issued horizon: the in-flight write may
			// have landed, anything beyond it must not exist.
			for i := 0; i <= issued; i++ {
				v, ok, err := r.Get(bg, keys.EncodeUint64(uint64(i)))
				if err != nil {
					t.Fatal(err)
				}
				switch {
				case ok && missingFrom >= 0:
					t.Fatalf("hole in commit order: key %d recovered but key %d was not (issued %d)", i, missingFrom, issued)
				case ok && keys.DecodeUint64(v) != uint64(i):
					t.Fatalf("key %d recovered corrupt: %x", i, v)
				case ok:
					recovered++
				case missingFrom < 0:
					missingFrom = i
				}
			}
			t.Logf("%s: issued ~%d, recovered prefix of %d", sys, issued, recovered)
		})
	}
}
