package figures

import "testing"

// TestConformanceWithTinyCaches reruns the view- and durability-
// conformance suites UNMODIFIED with every store's read caches starved:
// a 1-byte block cache (no block ever admitted — each disk read misses,
// decodes, and immediately evicts) and a 2-handle table cache (every
// read past two tables closes and reopens readers behind the LRU).
// Snapshot isolation, cancellation, checkpoints, durability classes and
// crash prefix-consistency must hold bit-for-bit: the caches are a pure
// performance layer, and this rerun is the contract that keeps eviction
// and reader-reopen races out of the correctness paths. Run it under
// -race — the interesting failures here are pin/evict lifetime races,
// not wrong values.
func TestConformanceWithTinyCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns both conformance suites")
	}
	tinyCachesForTest = true
	defer func() { tinyCachesForTest = false }()

	t.Run("SnapshotIsolation", TestAllSystemsSnapshotIsolation)
	t.Run("ContextCanceledScan", TestAllSystemsContextCanceledScan)
	t.Run("CheckpointReopens", TestAllSystemsCheckpointReopens)
	t.Run("PerOpDurabilityClasses", TestAllSystemsPerOpDurabilityClasses)
	t.Run("SyncBarrierPromotesAcked", TestAllSystemsSyncBarrierPromotesAcked)
	t.Run("CrashMidStreamPrefix", TestAllSystemsCrashMidStreamPrefix)
}
