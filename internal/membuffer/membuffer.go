// Package membuffer implements FloDB's top in-memory level: a small, fast,
// unsorted concurrent hash table in the style of CLHT (cache-line hash
// table) that the paper uses as the Membuffer (§4.1).
//
// Structure:
//
//   - The table is an array of fixed-capacity buckets. A bucket holds a
//     small number of slots (entries) and a lock; updates lock only their
//     bucket, reads are lock-free (each slot is an atomic pointer to an
//     immutable pair).
//   - The bucket array is split into 2^ℓ contiguous *partitions*; the ℓ
//     most significant bits of the key select the partition and the rest
//     of the key hashes to a bucket inside it (§4.3). Keys that are close
//     numerically land in the same partition, so a drained batch is a
//     small skiplist "neighborhood" — the property that makes multi-insert
//     path reuse effective (Fig 8).
//   - There is no chaining and no resizing: when a bucket is full, Add
//     fails and the caller (FloDB's Put) writes to the Memtable instead
//     (Algorithm 2). This bounds both memory and tail latency.
//
// Draining protocol (Figure 6): a drainer marks a pair (claiming it against
// other drainers), copies it to the memtable, then releases it. Marks live
// on the immutable pair object, so an in-place update — which replaces the
// slot's pair wholesale — silently invalidates the claim: Release only
// clears the slot if it still holds the identical pair. An overwritten-
// while-draining value therefore remains in the Membuffer, above the stale
// copy the drainer pushed into the Memtable, preserving freshest-level-wins.
package membuffer

import (
	"sync"
	"sync/atomic"

	"flodb/internal/keys"
)

// DefaultSlotsPerBucket mirrors CLHT's cache-line budget: 3–4 entries per
// bucket. Four keeps the failure ("bucket full") probability low at the
// occupancies FloDB targets.
const DefaultSlotsPerBucket = 4

// pair is an immutable key/value snapshot stored in a slot. The drained
// flag is the drain claim; it transitions false→true exactly once.
type pair struct {
	key       []byte
	value     []byte
	tombstone bool
	drained   atomic.Bool
}

type bucket struct {
	mu    sync.Mutex
	slots []atomic.Pointer[pair]
}

// Config sizes a Buffer.
type Config struct {
	// Buckets is the total bucket count; it is rounded up to a multiple of
	// the partition count.
	Buckets int
	// SlotsPerBucket is the entry capacity of each bucket.
	SlotsPerBucket int
	// PartitionBits is ℓ: the table has 2^ℓ partitions keyed by the most
	// significant key bits. 0 disables partitioning (one partition).
	PartitionBits uint
}

// ConfigForBytes sizes a buffer to hold roughly capacityBytes of entries
// of the given average size (key+value), at the default slot count.
func ConfigForBytes(capacityBytes int64, avgEntryBytes int, partitionBits uint) Config {
	if avgEntryBytes <= 0 {
		avgEntryBytes = 64
	}
	entries := capacityBytes / int64(avgEntryBytes)
	buckets := int(entries / DefaultSlotsPerBucket)
	if buckets < 1 {
		buckets = 1
	}
	return Config{Buckets: buckets, SlotsPerBucket: DefaultSlotsPerBucket, PartitionBits: partitionBits}
}

// Buffer is the Membuffer. Create with New.
type Buffer struct {
	buckets        []bucket
	partitions     int
	perPart        int // buckets per partition
	slotsPerBucket int
	partBits       uint

	frozen atomic.Bool
	live   atomic.Int64 // live (non-drained-and-removed) entries
	bytes  atomic.Int64 // approximate bytes of live entries

	// drainCursor hands out partitions round-robin to draining threads.
	drainCursor atomic.Uint64

	// fullFailures counts Adds rejected because the target bucket was
	// full — the benchmarks report the "direct Membuffer update" fraction
	// (Fig 17) from this.
	fullFailures atomic.Int64
}

// New builds an empty buffer from cfg.
func New(cfg Config) *Buffer {
	if cfg.SlotsPerBucket <= 0 {
		cfg.SlotsPerBucket = DefaultSlotsPerBucket
	}
	if cfg.PartitionBits > 16 {
		cfg.PartitionBits = 16
	}
	parts := 1 << cfg.PartitionBits
	if cfg.Buckets < parts {
		cfg.Buckets = parts
	}
	if rem := cfg.Buckets % parts; rem != 0 {
		cfg.Buckets += parts - rem
	}
	b := &Buffer{
		buckets:        make([]bucket, cfg.Buckets),
		partitions:     parts,
		perPart:        cfg.Buckets / parts,
		slotsPerBucket: cfg.SlotsPerBucket,
		partBits:       cfg.PartitionBits,
	}
	for i := range b.buckets {
		b.buckets[i].slots = make([]atomic.Pointer[pair], cfg.SlotsPerBucket)
	}
	return b
}

// fnv1a hashes key without allocating. FNV-1a's multiply only propagates
// entropy toward high bits, so keys differing only in their first bytes
// would collide modulo a power of two; the murmur3 finalizer mixes the
// bits back down before the caller reduces the hash.
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// bucketFor maps a key to its bucket index: partition by MSBs, hash within.
func (b *Buffer) bucketFor(key []byte) int {
	p := int(keys.PartitionOf(key, b.partBits))
	h := fnv1a(key)
	return p*b.perPart + int(h%uint64(b.perPart))
}

// Add inserts key→value (or a tombstone) into the buffer, updating in place
// if the key is already present. It returns false — and the caller must
// fall through to the Memtable — if the buffer is frozen or the target
// bucket is full.
func (b *Buffer) Add(key, value []byte, tombstone bool) bool {
	ok, _ := b.Put(key, value, tombstone)
	return ok
}

// Put is Add distinguishing its two success modes: inPlace reports that
// the key was already resident and was overwritten in its slot. An
// in-place update absorbs a write with NO new drain debt — the signal
// the adaptive-sizing sensor uses to tell "the working set fits this
// buffer" (grow it) from "everything flows through" (§4.4).
func (b *Buffer) Put(key, value []byte, tombstone bool) (stored, inPlace bool) {
	if b.frozen.Load() {
		return false, false
	}
	bk := &b.buckets[b.bucketFor(key)]
	np := &pair{key: key, value: value, tombstone: tombstone}
	bk.mu.Lock()
	// Re-check under the lock: Freeze's caller synchronizes via RCU, but
	// the cheap double check keeps helpers honest in tests.
	if b.frozen.Load() {
		bk.mu.Unlock()
		return false, false
	}
	free := -1
	for i := range bk.slots {
		p := bk.slots[i].Load()
		if p == nil {
			if free < 0 {
				free = i
			}
			continue
		}
		if keys.Equal(p.key, key) {
			// In-place update: replace the pair. Any drain claim on the
			// old pair is invalidated by pointer identity.
			bk.slots[i].Store(np)
			b.bytes.Add(int64(len(value)) - int64(len(p.value)))
			bk.mu.Unlock()
			return true, true
		}
	}
	if free < 0 {
		bk.mu.Unlock()
		b.fullFailures.Add(1)
		return false, false
	}
	bk.slots[free].Store(np)
	b.live.Add(1)
	b.bytes.Add(int64(len(key)) + int64(len(value)))
	bk.mu.Unlock()
	return true, false
}

// Get returns the freshest value for key in this buffer. ok is false if the
// key is absent. Lock-free.
func (b *Buffer) Get(key []byte) (value []byte, tombstone, ok bool) {
	bk := &b.buckets[b.bucketFor(key)]
	for i := range bk.slots {
		p := bk.slots[i].Load()
		if p != nil && keys.Equal(p.key, key) {
			return p.value, p.tombstone, true
		}
	}
	return nil, false, false
}

// Freeze makes the buffer immutable: all subsequent Adds fail. Used when a
// scan or the core installs a fresh Membuffer and this one becomes IMM_MBF.
func (b *Buffer) Freeze() { b.frozen.Store(true) }

// Frozen reports whether Freeze was called.
func (b *Buffer) Frozen() bool { return b.frozen.Load() }

// Len returns the number of live entries.
func (b *Buffer) Len() int { return int(b.live.Load()) }

// ApproxBytes returns the approximate bytes held.
func (b *Buffer) ApproxBytes() int64 { return b.bytes.Load() }

// Capacity returns the total slot count.
func (b *Buffer) Capacity() int { return len(b.buckets) * b.slotsPerBucket }

// Occupancy returns live entries / capacity in [0,1].
func (b *Buffer) Occupancy() float64 {
	return float64(b.live.Load()) / float64(b.Capacity())
}

// FullFailures returns how many Adds were rejected on a full bucket.
func (b *Buffer) FullFailures() int64 { return b.fullFailures.Load() }

// Partitions returns the partition count (2^ℓ).
func (b *Buffer) Partitions() int { return b.partitions }

// NextPartition hands out partition indices round-robin across draining
// threads.
func (b *Buffer) NextPartition() int {
	return int(b.drainCursor.Add(1)-1) % b.partitions
}

// Drained is a claimed entry handed to a draining thread. The drainer must
// call Release after the entry has been safely inserted downstream.
type Drained struct {
	Key       []byte
	Value     []byte
	Tombstone bool

	bucketIdx int
	slotIdx   int
	p         *pair
}

// DrainPartition claims up to max unclaimed entries from partition part.
// Claimed entries stay visible to readers (and to in-place updaters) until
// Release removes them — exactly the mark→insert→delete sequence of
// Figure 6. A max of 0 or less claims everything in the partition.
func (b *Buffer) DrainPartition(part, max int) []Drained {
	if part < 0 || part >= b.partitions {
		return nil
	}
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	var out []Drained
	start := part * b.perPart
	for bi := start; bi < start+b.perPart && len(out) < max; bi++ {
		bk := &b.buckets[bi]
		for si := range bk.slots {
			if len(out) >= max {
				break
			}
			p := bk.slots[si].Load()
			if p == nil {
				continue
			}
			if !p.drained.CompareAndSwap(false, true) {
				continue // another drainer owns it
			}
			out = append(out, Drained{
				Key: p.key, Value: p.value, Tombstone: p.tombstone,
				bucketIdx: bi, slotIdx: si, p: p,
			})
		}
	}
	return out
}

// DrainAll claims every unclaimed entry in the buffer. Used for the full
// pre-scan drain of an immutable Membuffer.
func (b *Buffer) DrainAll() []Drained {
	var out []Drained
	for part := 0; part < b.partitions; part++ {
		out = append(out, b.DrainPartition(part, 0)...)
	}
	return out
}

// Release removes drained entries from the buffer. A slot is cleared only
// if it still holds the identical pair: if a writer updated the key in
// place after the claim, the newer pair stays (it will be drained later
// with a newer sequence number).
func (b *Buffer) Release(drained []Drained) {
	for i := range drained {
		d := &drained[i]
		bk := &b.buckets[d.bucketIdx]
		bk.mu.Lock()
		if bk.slots[d.slotIdx].Load() == d.p {
			bk.slots[d.slotIdx].Store(nil)
			b.live.Add(-1)
			b.bytes.Add(-int64(len(d.Key)) - int64(len(d.Value)))
		}
		bk.mu.Unlock()
	}
}

// Abort returns claimed entries to the unclaimed state without removing
// them. Drainers use it when the downstream insert fails (e.g. shutdown).
func (b *Buffer) Abort(drained []Drained) {
	for i := range drained {
		drained[i].p.drained.Store(false)
	}
}

// ForEach calls fn for every live entry (including drain-claimed ones).
// Iteration order is bucket order, not key order. fn must not mutate the
// buffer. Used by tests and by the flodb CLI's stats command.
func (b *Buffer) ForEach(fn func(key, value []byte, tombstone bool)) {
	for bi := range b.buckets {
		bk := &b.buckets[bi]
		for si := range bk.slots {
			if p := bk.slots[si].Load(); p != nil {
				fn(p.key, p.value, p.tombstone)
			}
		}
	}
}

// PartitionLen counts live entries in one partition (diagnostics).
func (b *Buffer) PartitionLen(part int) int {
	if part < 0 || part >= b.partitions {
		return 0
	}
	n := 0
	start := part * b.perPart
	for bi := start; bi < start+b.perPart; bi++ {
		bk := &b.buckets[bi]
		for si := range bk.slots {
			if bk.slots[si].Load() != nil {
				n++
			}
		}
	}
	return n
}
