package membuffer

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"flodb/internal/keys"
)

func newSmall() *Buffer {
	return New(Config{Buckets: 64, SlotsPerBucket: 4, PartitionBits: 2})
}

func TestAddGet(t *testing.T) {
	b := newSmall()
	if !b.Add([]byte("k"), []byte("v"), false) {
		t.Fatal("Add failed on empty buffer")
	}
	v, tomb, ok := b.Get([]byte("k"))
	if !ok || tomb || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, tomb, ok)
	}
	if _, _, ok := b.Get([]byte("missing")); ok {
		t.Fatal("missing key should miss")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestInPlaceUpdate(t *testing.T) {
	b := newSmall()
	b.Add([]byte("k"), []byte("v1"), false)
	b.Add([]byte("k"), []byte("v2longer"), false)
	v, _, ok := b.Get([]byte("k"))
	if !ok || string(v) != "v2longer" {
		t.Fatalf("Get after update = %q, %v", v, ok)
	}
	if b.Len() != 1 {
		t.Fatalf("in-place update must not grow Len, got %d", b.Len())
	}
}

func TestTombstone(t *testing.T) {
	b := newSmall()
	b.Add([]byte("k"), nil, true)
	_, tomb, ok := b.Get([]byte("k"))
	if !ok || !tomb {
		t.Fatal("tombstone should be stored and flagged")
	}
}

func TestBucketFullRejects(t *testing.T) {
	// One bucket, 2 slots: the third distinct key must be rejected.
	b := New(Config{Buckets: 1, SlotsPerBucket: 2, PartitionBits: 0})
	if !b.Add([]byte("a"), []byte("1"), false) || !b.Add([]byte("b"), []byte("2"), false) {
		t.Fatal("first two adds should succeed")
	}
	if b.Add([]byte("c"), []byte("3"), false) {
		t.Fatal("third distinct key should be rejected (bucket full)")
	}
	if b.FullFailures() != 1 {
		t.Fatalf("FullFailures = %d", b.FullFailures())
	}
	// Updating an existing key still works when full.
	if !b.Add([]byte("a"), []byte("1'"), false) {
		t.Fatal("in-place update should succeed even when bucket is full")
	}
}

func TestFreeze(t *testing.T) {
	b := newSmall()
	b.Add([]byte("k"), []byte("v"), false)
	b.Freeze()
	if !b.Frozen() {
		t.Fatal("Frozen should report true")
	}
	if b.Add([]byte("k2"), []byte("v2"), false) {
		t.Fatal("Add after Freeze should fail")
	}
	// Reads still work on a frozen buffer (it is IMM_MBF in Algorithm 2).
	if _, _, ok := b.Get([]byte("k")); !ok {
		t.Fatal("reads must work on frozen buffer")
	}
}

func TestPartitioningIsMSBBased(t *testing.T) {
	b := New(Config{Buckets: 256, SlotsPerBucket: 4, PartitionBits: 4})
	if b.Partitions() != 16 {
		t.Fatalf("Partitions = %d", b.Partitions())
	}
	// Keys sharing high bits land in the same partition.
	k1 := keys.EncodeUint64(0x1234_0000_0000_0000)
	k2 := keys.EncodeUint64(0x1fff_ffff_0000_0000)
	k3 := keys.EncodeUint64(0xf000_0000_0000_0000)
	p1, p2, p3 := b.bucketFor(k1)/b.perPart, b.bucketFor(k2)/b.perPart, b.bucketFor(k3)/b.perPart
	if p1 != p2 {
		t.Errorf("keys with same top nibble split: %d vs %d", p1, p2)
	}
	if p1 == p3 {
		t.Errorf("keys with different top nibble collided: %d", p1)
	}
	b.Add(k1, []byte("v"), false)
	if got := b.PartitionLen(p1); got != 1 {
		t.Errorf("PartitionLen(%d) = %d", p1, got)
	}
}

func TestBucketsRoundedToPartitions(t *testing.T) {
	b := New(Config{Buckets: 5, SlotsPerBucket: 1, PartitionBits: 2})
	if len(b.buckets)%4 != 0 {
		t.Fatalf("buckets (%d) not a multiple of partitions", len(b.buckets))
	}
}

func TestConfigForBytes(t *testing.T) {
	c := ConfigForBytes(1<<20, 264, 4)
	if c.Buckets <= 0 {
		t.Fatal("ConfigForBytes produced no buckets")
	}
	b := New(c)
	// Capacity should be in the right ballpark: 1MiB / 264B ≈ 3970 entries.
	if b.Capacity() < 2000 || b.Capacity() > 8000 {
		t.Fatalf("capacity %d out of expected range", b.Capacity())
	}
	if got := ConfigForBytes(100, 0, 0); got.Buckets < 1 {
		t.Fatal("degenerate config must still have a bucket")
	}
}

func TestDrainReleaseCycle(t *testing.T) {
	b := New(Config{Buckets: 16, SlotsPerBucket: 4, PartitionBits: 1})
	for i := 0; i < 20; i++ {
		b.Add(keys.EncodeUint64(uint64(i)<<59), []byte("v"), false) // spread partitions
	}
	total := 0
	for p := 0; p < b.Partitions(); p++ {
		d := b.DrainPartition(p, 0)
		total += len(d)
		// Claimed entries are still readable before Release.
		for _, e := range d {
			if _, _, ok := b.Get(e.Key); !ok {
				t.Fatal("claimed entry should remain visible")
			}
		}
		b.Release(d)
		for _, e := range d {
			if _, _, ok := b.Get(e.Key); ok {
				t.Fatal("released entry should be gone")
			}
		}
	}
	if total != 20 {
		t.Fatalf("drained %d entries, want 20", total)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after full drain = %d", b.Len())
	}
}

func TestDrainClaimsAreExclusive(t *testing.T) {
	b := New(Config{Buckets: 4, SlotsPerBucket: 4, PartitionBits: 0})
	for i := 0; i < 10; i++ {
		b.Add(keys.EncodeUint64(uint64(i)), []byte("v"), false)
	}
	d1 := b.DrainPartition(0, 0)
	d2 := b.DrainPartition(0, 0)
	if len(d1) != 10 || len(d2) != 0 {
		t.Fatalf("claims not exclusive: %d + %d", len(d1), len(d2))
	}
	b.Abort(d1)
	d3 := b.DrainPartition(0, 0)
	if len(d3) != 10 {
		t.Fatalf("Abort should unclaim: redrained %d", len(d3))
	}
}

func TestDrainMaxRespected(t *testing.T) {
	b := New(Config{Buckets: 4, SlotsPerBucket: 4, PartitionBits: 0})
	for i := 0; i < 12; i++ {
		b.Add(keys.EncodeUint64(uint64(i)), []byte("v"), false)
	}
	d := b.DrainPartition(0, 5)
	if len(d) != 5 {
		t.Fatalf("DrainPartition(max=5) returned %d", len(d))
	}
	b.Abort(d)
}

func TestUpdateDuringDrainIsNotLost(t *testing.T) {
	// The scenario from the package comment: claim, then in-place update,
	// then release. The NEW value must survive in the buffer.
	b := New(Config{Buckets: 1, SlotsPerBucket: 4, PartitionBits: 0})
	b.Add([]byte("k"), []byte("old"), false)
	d := b.DrainPartition(0, 0)
	if len(d) != 1 || string(d[0].Value) != "old" {
		t.Fatalf("claimed %v", d)
	}
	if !b.Add([]byte("k"), []byte("new"), false) {
		t.Fatal("in-place update during drain should succeed")
	}
	b.Release(d)
	v, _, ok := b.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("new value lost: %q, %v", v, ok)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	// The replacement pair is unclaimed, so a later drain picks it up.
	d2 := b.DrainPartition(0, 0)
	if len(d2) != 1 || string(d2[0].Value) != "new" {
		t.Fatalf("redrain got %v", d2)
	}
	b.Release(d2)
	if b.Len() != 0 {
		t.Fatal("buffer should be empty after final release")
	}
}

func TestDrainAll(t *testing.T) {
	b := New(Config{Buckets: 64, SlotsPerBucket: 4, PartitionBits: 3})
	n := 0
	for i := 0; i < 200; i++ {
		if b.Add(keys.EncodeUint64(rand.Uint64()), []byte("v"), false) {
			n++
		}
	}
	d := b.DrainAll()
	if len(d) != n {
		t.Fatalf("DrainAll claimed %d, want %d", len(d), n)
	}
	b.Release(d)
	if b.Len() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestNextPartitionRoundRobin(t *testing.T) {
	b := New(Config{Buckets: 8, SlotsPerBucket: 1, PartitionBits: 2})
	seen := make(map[int]int)
	for i := 0; i < 8; i++ {
		seen[b.NextPartition()]++
	}
	for p := 0; p < 4; p++ {
		if seen[p] != 2 {
			t.Fatalf("partition %d visited %d times, want 2", p, seen[p])
		}
	}
}

func TestForEachSeesEverything(t *testing.T) {
	b := newSmall()
	want := map[string]string{}
	for i := 0; i < 30; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)
		if b.Add([]byte(k), []byte(v), false) {
			want[k] = v
		}
	}
	got := map[string]string{}
	b.ForEach(func(k, v []byte, tomb bool) { got[string(k)] = string(v) })
	if len(got) != len(want) {
		t.Fatalf("ForEach saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestPropertyGetAfterAdd(t *testing.T) {
	b := New(Config{Buckets: 4096, SlotsPerBucket: 4, PartitionBits: 4})
	err := quick.Check(func(k uint64, v []byte) bool {
		key := keys.EncodeUint64(k)
		if !b.Add(key, v, false) {
			return true // bucket full is a legal outcome
		}
		got, tomb, ok := b.Get(key)
		return ok && !tomb && bytes.Equal(got, v)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestConcurrentAddGetDrain(t *testing.T) {
	b := New(Config{Buckets: 1 << 12, SlotsPerBucket: 4, PartitionBits: 4})
	stop := make(chan struct{})
	var writers, background sync.WaitGroup

	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := keys.EncodeUint64(rng.Uint64() % 4096)
				b.Add(k, keys.EncodeUint64(uint64(i)), false)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		background.Add(1)
		go func(r int) {
			defer background.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
					b.Get(keys.EncodeUint64(rng.Uint64() % 4096))
				}
			}
		}(r)
	}
	background.Add(1)
	go func() { // drainer
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d := b.DrainPartition(b.NextPartition(), 64)
				b.Release(d)
			}
		}
	}()

	writers.Wait()
	close(stop)
	background.Wait()

	// Drain what remains and check accounting closes to zero.
	rest := b.DrainAll()
	b.Release(rest)
	if b.Len() != 0 {
		t.Fatalf("Len = %d after full drain", b.Len())
	}
	if b.ApproxBytes() != 0 {
		t.Fatalf("ApproxBytes = %d after full drain", b.ApproxBytes())
	}
}

func BenchmarkAdd(b *testing.B) {
	buf := New(Config{Buckets: 1 << 16, SlotsPerBucket: 4, PartitionBits: 6})
	val := bytes.Repeat([]byte("x"), 256)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			buf.Add(keys.EncodeUint64(rng.Uint64()), val, false)
		}
	})
}

func BenchmarkGetHit(b *testing.B) {
	buf := New(Config{Buckets: 1 << 14, SlotsPerBucket: 4, PartitionBits: 6})
	const n = 1 << 14
	for i := 0; i < n; i++ {
		buf.Add(keys.EncodeUint64(uint64(i)), []byte("v"), false)
	}
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			buf.Get(keys.EncodeUint64(rng.Uint64() % n))
		}
	})
}
