package core

import (
	"errors"

	"flodb/internal/keys"
	"flodb/internal/skiplist"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

// memtable bundles the sorted in-memory level (§3.1's Memtable: a
// concurrent skiplist with per-entry sequence numbers and in-place
// updates) with the WAL segment that logs its generation.
type memtable struct {
	list   *skiplist.List
	wal    *wal.Writer // nil when the WAL is disabled
	walNum uint64
}

func (m *memtable) approxBytes() int64 {
	return m.list.ApproxBytes()
}

// get returns the entry for key.
func (m *memtable) get(key []byte) (*skiplist.Entry, bool) {
	return m.list.Get(key)
}

// closeWAL flushes and closes the segment (nil-safe).
func (m *memtable) closeWAL() error {
	if m.wal == nil {
		return nil
	}
	return m.wal.Close()
}

// syncWAL forces the segment's tail durable (nil-safe). A segment closed
// by a completed persist is already durable through its sstable flush, so
// wal.ErrClosed reports success.
func (m *memtable) syncWAL() error {
	if m.wal == nil {
		return nil
	}
	if err := m.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	return nil
}

// memtableIter adapts the skiplist iterator to storage.InternalIterator
// for flushing and scanning. FloDB memtables hold unique user keys, so the
// (key asc, seq desc) contract holds trivially.
type memtableIter struct {
	it *skiplist.Iterator
}

func newMemtableIter(m *memtable) *memtableIter {
	return &memtableIter{it: m.list.NewIterator()}
}

func (a *memtableIter) SeekToFirst()    { a.it.SeekToFirst() }
func (a *memtableIter) Seek(key []byte) { a.it.Seek(key) }
func (a *memtableIter) Next()           { a.it.Next() }
func (a *memtableIter) Valid() bool     { return a.it.Valid() }
func (a *memtableIter) Key() []byte     { return a.it.Key() }
func (a *memtableIter) Seq() uint64     { return a.it.Entry().Seq }
func (a *memtableIter) Value() []byte   { return a.it.Entry().Value }
func (a *memtableIter) Err() error      { return nil }

// CreateSeq exposes the node's creation sequence for scan conflict
// refinement (see skiplist.Entry.CreateSeq).
func (a *memtableIter) CreateSeq() uint64 {
	e := a.it.Entry()
	if e.CreateSeq != 0 {
		return e.CreateSeq
	}
	return e.Seq
}
func (a *memtableIter) Kind() keys.Kind {
	if a.it.Entry().Tombstone {
		return keys.KindDelete
	}
	return keys.KindSet
}

var _ storage.InternalIterator = (*memtableIter)(nil)

// boundListIter iterates a skiplist at a snapshot bound: each visited
// node's version chain is resolved to the newest version with
// Seq <= maxSeq, and nodes with no such version (created after the
// bound) are skipped. This is what lets an O(1) snapshot iterate the
// LIVE memtable while writers keep updating it in place — the retained
// chain (skiplist.Retention) guarantees the resolved version survives
// however many overwrites land after the bound.
type boundListIter struct {
	it     *skiplist.Iterator
	maxSeq uint64
	entry  *skiplist.Entry
}

func newBoundListIter(l *skiplist.List, maxSeq uint64) *boundListIter {
	return &boundListIter{it: l.NewIterator(), maxSeq: maxSeq}
}

// settle resolves the current node at the bound, advancing past nodes
// the bound cannot see.
func (a *boundListIter) settle() {
	for a.it.Valid() {
		if e, ok := skiplist.ResolveAt(a.it.Entry(), a.maxSeq); ok {
			a.entry = e
			return
		}
		a.it.Next()
	}
	a.entry = nil
}

func (a *boundListIter) SeekToFirst()    { a.it.SeekToFirst(); a.settle() }
func (a *boundListIter) Seek(key []byte) { a.it.Seek(key); a.settle() }
func (a *boundListIter) Next() {
	if !a.it.Valid() {
		return
	}
	a.it.Next()
	a.settle()
}
func (a *boundListIter) Valid() bool   { return a.entry != nil }
func (a *boundListIter) Key() []byte   { return a.it.Key() }
func (a *boundListIter) Seq() uint64   { return a.entry.Seq }
func (a *boundListIter) Value() []byte { return a.entry.Value }
func (a *boundListIter) Err() error    { return nil }
func (a *boundListIter) CreateSeq() uint64 {
	if a.entry.CreateSeq != 0 {
		return a.entry.CreateSeq
	}
	return a.entry.Seq
}
func (a *boundListIter) Kind() keys.Kind {
	if a.entry.Tombstone {
		return keys.KindDelete
	}
	return keys.KindSet
}

var _ storage.InternalIterator = (*boundListIter)(nil)
