package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSnapshotDoesNotFlush pins the O(1) design: taking a snapshot
// seals the Membuffer (a generation switch, same as a master scan) but
// must NOT force the memtable to disk. The old design paid one flush
// per snapshot; this test is the regression fence against it coming
// back.
func TestSnapshotDoesNotFlush(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := uint64(0); i < 500; i++ {
		if err := db.Put(bg, spreadKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats().Flushes
	for i := 0; i < 5; i++ {
		snap, err := db.Snapshot(bg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := snap.Get(bg, spreadKey(1)); err != nil {
			t.Fatal(err)
		}
		snap.Close()
	}
	if after := db.Stats().Flushes; after != before {
		t.Fatalf("5 snapshots forced %d flushes; snapshots must be O(1), not drain-and-flush", after-before)
	}
}

// TestSnapshotRepeatableUnderConcurrentOverwrites hammers every key
// with overwrites from four writers while four readers repeatedly read
// through a pinned snapshot: every snapshot read must return the
// pre-snapshot value, every live read a post-snapshot one. This is the
// version-chain machinery under contention — run it with -race.
func TestSnapshotRepeatableUnderConcurrentOverwrites(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	const nKeys = 128
	for i := uint64(0); i < nKeys; i++ {
		if err := db.Put(bg, spreadKey(i), []byte(fmt.Sprintf("base-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := uint64(0); i < nKeys; i++ {
					if err := db.Put(bg, spreadKey(i), []byte("hot")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for round := 0; round < 50; round++ {
				for i := uint64(0); i < nKeys; i++ {
					v, ok, err := snap.Get(bg, spreadKey(i))
					if err != nil || !ok {
						t.Errorf("snapshot Get(%d) = %v %v", i, ok, err)
						return
					}
					if want := fmt.Sprintf("base-%d", i); string(v) != want {
						t.Errorf("snapshot Get(%d) = %q, want %q: post-snapshot write leaked in", i, v, want)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	// The live view sees the overwrites.
	if v, ok, err := db.Get(bg, spreadKey(0)); err != nil || !ok || string(v) != "hot" {
		t.Fatalf("live Get = %q %v %v, want hot", v, ok, err)
	}
}

// TestSnapshotCloseUnpinsVersionChains verifies the memory-cost side of
// the contract: while a snapshot is open, overwritten keys keep their
// displaced version chained; once every snapshot closes, the next
// overwrite prunes the chain back to a single version (§3.2's
// single-versioned memory component is restored).
func TestSnapshotCloseUnpinsVersionChains(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	key := spreadKey(7)
	if err := db.Put(bg, key, []byte("base")); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite until the displaced version lands in the skiplist (the
	// Membuffer drains in the background, so poll).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := db.Put(bg, key, []byte("next")); err != nil {
			t.Fatal(err)
		}
		if e, ok := db.gen.Load().mtb.list.Get(key); ok && e.PrevVersion() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("displaced version never chained while snapshot open")
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok, err := snap.Get(bg, key); err != nil || !ok || string(v) != "base" {
		t.Fatalf("snapshot Get = %q %v %v, want base", v, ok, err)
	}
	snap.Close()

	// With no bounds active, overwrites prune: poll until the chain is
	// back to one version.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := db.Put(bg, key, []byte("final")); err != nil {
			t.Fatal(err)
		}
		e, ok := db.gen.Load().mtb.list.Get(key)
		if ok && e.PrevVersion() == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("version chain not pruned after snapshot close")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManySnapshotsBoundChainLength opens K snapshots across a write
// history and checks a hot key's chain never exceeds K+1 versions —
// the retain() guarantee surfaced at the store level.
func TestManySnapshotsBoundChainLength(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	key := spreadKey(3)
	const snaps = 4
	var handles []interface{ Close() error }
	for s := 0; s < snaps; s++ {
		if err := db.Put(bg, key, []byte(fmt.Sprintf("epoch-%d", s))); err != nil {
			t.Fatal(err)
		}
		snap, err := db.Snapshot(bg)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, snap)
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	for i := 0; i < 200; i++ {
		if err := db.Put(bg, key, []byte("hot")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the overwrites to drain into the skiplist, then measure
	// the chain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if e, ok := db.gen.Load().mtb.list.Get(key); ok && string(e.Value) == "hot" {
			n := 0
			for ; e != nil; e = e.PrevVersion() {
				n++
			}
			if n > snaps+1 {
				t.Fatalf("chain length %d with %d snapshots open, want <= %d", n, snaps, snaps+1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("overwrites never reached the skiplist")
		}
		if err := db.Put(bg, key, []byte("hot")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}
