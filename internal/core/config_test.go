package core

import (
	"errors"
	"strings"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// TestOpenRejectsOutOfRangeConfig: invalid values fail Open with a
// descriptive error naming the field — never a silent clamp.
func TestOpenRejectsOutOfRangeConfig(t *testing.T) {
	base := func() Config { return Config{Dir: t.TempDir(), MemoryBytes: 1 << 20} }
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative memory", func(c *Config) { c.MemoryBytes = -1 }, "MemoryBytes"},
		{"fraction at 1", func(c *Config) { c.MembufferFraction = 1 }, "MembufferFraction"},
		{"fraction negative", func(c *Config) { c.MembufferFraction = -0.5 }, "MembufferFraction"},
		{"partition bits 17", func(c *Config) { c.PartitionBits = 17 }, "PartitionBits"},
		{"negative drain threads", func(c *Config) { c.DrainThreads = -2 }, "DrainThreads"},
		{"negative drain batch", func(c *Config) { c.DrainBatch = -1 }, "DrainBatch"},
		{"negative restart threshold", func(c *Config) { c.RestartThreshold = -1 }, "RestartThreshold"},
		{"negative piggyback chain", func(c *Config) { c.MaxPiggybackChain = -1 }, "MaxPiggybackChain"},
		{"negative entry hint", func(c *Config) { c.EntryBytesHint = -1 }, "EntryBytesHint"},
		{"invalid durability", func(c *Config) { c.Durability = kv.Durability(42) }, "Durability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			db, err := Open(cfg)
			if err == nil {
				db.Close()
				t.Fatal("out-of-range config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending field %q", err, tc.want)
			}
		})
	}
}

// TestOpenRejectsLoggedDefaultWithoutWAL: a WAL-less store cannot promise
// a logged default durability.
func TestOpenRejectsLoggedDefaultWithoutWAL(t *testing.T) {
	for _, d := range []kv.Durability{kv.DurabilityBuffered, kv.DurabilitySync} {
		cfg := Config{Dir: t.TempDir(), MemoryBytes: 1 << 20, DisableWAL: true, Durability: d}
		if db, err := Open(cfg); !errors.Is(err, kv.ErrNotSupported) {
			if err == nil {
				db.Close()
			}
			t.Fatalf("DisableWAL + default %v: err = %v, want ErrNotSupported", d, err)
		}
	}
	// None (and the unset default, which resolves to None) are fine.
	cfg := Config{Dir: t.TempDir(), MemoryBytes: 1 << 20, DisableWAL: true}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

// TestSyncDurabilityRecoversEveryWrite: every Sync-class write survives a
// crash, including ones that completed in the Membuffer fast path.
func TestSyncDurabilityRecoversEveryWrite(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 1 << 20, Durability: kv.DurabilitySync}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := db.Put(bg, spreadKey(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.DurableSeq != s.AckedSeq {
		t.Fatalf("sync-default store left a window: durable %d < acked %d", s.DurableSeq, s.AckedSeq)
	}
	if s.MembufferHits == 0 {
		t.Fatal("expected some fast-path (Membuffer) sync writes")
	}
	db.CrashForTesting()

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, ok, err := db2.Get(bg, spreadKey(uint64(i)))
		if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
			t.Fatalf("sync write %d lost: %x %v %v", i, v, ok, err)
		}
	}
}
