package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/storage"
)

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 1 << 20}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put(spreadKey(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(spreadKey(7))

	// Simulate a crash: sync the active WAL but skip the graceful flush.
	g := db.gen.Load()
	if g.mtb.wal != nil {
		if err := g.mtb.wal.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the DB without Close (goroutines die with the test process;
	// the store is reopened from disk state only).
	db.closed.Store(true)
	close(db.closing)
	db.wg.Wait()
	db.store.Close()

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, ok, err := db2.Get(spreadKey(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if ok {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after recovery: %q, %v", i, v, ok)
		}
	}
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.Put(spreadKey(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// After a clean close, no WAL segments should remain (all flushed).
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := storage.ParseFileName(e.Name()); kind == storage.KindWAL {
			t.Fatalf("WAL %s left after clean close", e.Name())
		}
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 300; i++ {
		v, ok, _ := db2.Get(spreadKey(uint64(i)))
		if !ok || keys.DecodeUint64(v) != uint64(i) {
			t.Fatalf("key %d lost across clean restart", i)
		}
	}
}

func TestRecoveryWithTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put(spreadKey(uint64(i)), []byte("v"))
	}
	g := db.gen.Load()
	walPath := storage.WALFileName(dir, g.mtb.walNum)
	g.mtb.wal.Sync()
	db.closed.Store(true)
	close(db.closing)
	db.wg.Wait()
	db.store.Close()

	// Tear the WAL tail: recovery must keep every fully-written record.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// At most the torn final record may be missing.
	missing := 0
	for i := 0; i < 100; i++ {
		if _, ok, _ := db2.Get(spreadKey(uint64(i))); !ok {
			missing++
		}
	}
	if missing > 1 {
		t.Fatalf("%d records lost to a 3-byte tear", missing)
	}
}

func TestSeqMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put(spreadKey(uint64(i)), []byte("v"))
	}
	db.Close()

	db2, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	defer db2.Close()
	seqBefore := db2.Seq()
	if seqBefore == 0 {
		t.Fatal("restart must resume from the persisted sequence number")
	}
	// Membuffer writes take no seq (assigned at drain, §4.2); a scan does.
	db2.Put([]byte("new"), []byte("v"))
	if _, err := db2.Scan(nil, nil); err != nil {
		t.Fatal(err)
	}
	if db2.Seq() <= seqBefore {
		t.Fatal("sequence numbers must advance after restart")
	}
	// Overwrites after restart must win over recovered data.
	db2.Put(spreadKey(50), []byte("post-restart"))
	v, ok, _ := db2.Get(spreadKey(50))
	if !ok || string(v) != "post-restart" {
		t.Fatalf("post-restart overwrite lost: %q %v", v, ok)
	}
}

func TestDisableWALMode(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 1 << 20, DisableWAL: true}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put(spreadKey(uint64(i)), []byte("v"))
	}
	// No WAL files should exist.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := storage.ParseFileName(e.Name()); kind == storage.KindWAL {
			t.Fatalf("WAL %s created with DisableWAL", e.Name())
		}
	}
	// Clean close still flushes to disk.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		if _, ok, _ := db2.Get(spreadKey(uint64(i))); !ok {
			t.Fatalf("key %d lost across clean DisableWAL restart", i)
		}
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir should fail")
	}
}

func TestOpenBadDir(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "blocked")
	os.WriteFile(path, []byte("x"), 0o644)
	if _, err := Open(Config{Dir: path}); err == nil {
		t.Fatal("Open on a file path should fail")
	}
}
