package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 1 << 20}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put(bg, spreadKey(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(bg, spreadKey(7))

	// Simulate a crash: sync the active WAL but skip the graceful flush.
	g := db.gen.Load()
	if g.mtb.wal != nil {
		if err := g.mtb.wal.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the DB without Close (goroutines die with the test process;
	// the store is reopened from disk state only).
	db.closed.Store(true)
	close(db.closing)
	db.wg.Wait()
	db.store.Close()

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, ok, err := db2.Get(bg, spreadKey(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if ok {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after recovery: %q, %v", i, v, ok)
		}
	}
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.Put(bg, spreadKey(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// After a clean close, no WAL segments should remain (all flushed).
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := storage.ParseFileName(e.Name()); kind == storage.KindWAL {
			t.Fatalf("WAL %s left after clean close", e.Name())
		}
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 300; i++ {
		v, ok, _ := db2.Get(bg, spreadKey(uint64(i)))
		if !ok || keys.DecodeUint64(v) != uint64(i) {
			t.Fatalf("key %d lost across clean restart", i)
		}
	}
}

func TestRecoveryWithTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put(bg, spreadKey(uint64(i)), []byte("v"))
	}
	g := db.gen.Load()
	walPath := storage.WALFileName(dir, g.mtb.walNum)
	g.mtb.wal.Sync()
	db.closed.Store(true)
	close(db.closing)
	db.wg.Wait()
	db.store.Close()

	// Tear the WAL tail: recovery must keep every fully-written record.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// At most the torn final record may be missing.
	missing := 0
	for i := 0; i < 100; i++ {
		if _, ok, _ := db2.Get(bg, spreadKey(uint64(i))); !ok {
			missing++
		}
	}
	if missing > 1 {
		t.Fatalf("%d records lost to a 3-byte tear", missing)
	}
}

func TestSeqMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put(bg, spreadKey(uint64(i)), []byte("v"))
	}
	db.Close()

	db2, _ := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	defer db2.Close()
	seqBefore := db2.Seq()
	if seqBefore == 0 {
		t.Fatal("restart must resume from the persisted sequence number")
	}
	// Membuffer writes take no seq (assigned at drain, §4.2); a scan does.
	db2.Put(bg, []byte("new"), []byte("v"))
	if _, err := db2.Scan(bg, nil, nil); err != nil {
		t.Fatal(err)
	}
	if db2.Seq() <= seqBefore {
		t.Fatal("sequence numbers must advance after restart")
	}
	// Overwrites after restart must win over recovered data.
	db2.Put(bg, spreadKey(50), []byte("post-restart"))
	v, ok, _ := db2.Get(bg, spreadKey(50))
	if !ok || string(v) != "post-restart" {
		t.Fatalf("post-restart overwrite lost: %q %v", v, ok)
	}
}

// crashDB simulates a crash: syncs the active WAL (so the log is on
// disk), then abandons the instance without the graceful close-time flush.
func crashDB(t *testing.T, db *DB) {
	t.Helper()
	g := db.gen.Load()
	if g.mtb.wal != nil {
		if err := g.mtb.wal.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	db.closed.Store(true)
	close(db.closing)
	db.wg.Wait()
	db.store.Close()
}

// TestBatchIsOneWALRecord proves the amortization claim at the log level:
// a WriteBatch with N operations produces exactly ONE WAL record, and the
// whole batch recovers after a crash.
func TestBatchIsOneWALRecord(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	const n = 100
	b := kv.NewBatch()
	for i := 0; i < n; i++ {
		b.Put(spreadKey(uint64(i)), []byte(fmt.Sprintf("b%d", i)))
	}
	b.Delete(spreadKey(3))
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	walPath := storage.WALFileName(dir, db.gen.Load().mtb.walNum)
	crashDB(t, db)

	records, ops := 0, 0
	err = wal.ReplayAll(walPath, func(rec []byte) error {
		records++
		if !kv.IsBatchRecord(rec) {
			t.Fatalf("record %d is not a batch record", records)
		}
		return kv.ForEachOp(rec, func(keys.Kind, []byte, []byte) error {
			ops++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != 1 {
		t.Fatalf("batch of %d ops produced %d WAL records, want exactly 1", n+1, records)
	}
	if ops != n+1 {
		t.Fatalf("batch record carries %d ops, want %d", ops, n+1)
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, ok, err := db2.Get(bg, spreadKey(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if ok {
				t.Fatal("batched delete lost in recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("b%d", i) {
			t.Fatalf("batched key %d after crash: %q %v", i, v, ok)
		}
	}
}

// TestBatchRecoversAllOrNothing tears the WAL inside the batch record and
// verifies recovery applies NONE of the batch — while the preceding
// single-op record survives intact.
func TestBatchRecoversAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bg, []byte("anchor"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch()
	for i := 0; i < 50; i++ {
		b.Put(spreadKey(uint64(i)), []byte("batched"))
	}
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	walPath := storage.WALFileName(dir, db.gen.Load().mtb.walNum)
	crashDB(t, db)

	// Tear the tail mid-record: the torn record is the batch.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok, _ := db2.Get(bg, []byte("anchor")); !ok || string(v) != "kept" {
		t.Fatalf("pre-batch record lost: %q %v", v, ok)
	}
	for i := 0; i < 50; i++ {
		if _, ok, _ := db2.Get(bg, spreadKey(uint64(i))); ok {
			t.Fatalf("torn batch partially applied: key %d visible", i)
		}
	}
}

func TestDisableWALMode(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 1 << 20, DisableWAL: true}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put(bg, spreadKey(uint64(i)), []byte("v"))
	}
	// No WAL files should exist.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := storage.ParseFileName(e.Name()); kind == storage.KindWAL {
			t.Fatalf("WAL %s created with DisableWAL", e.Name())
		}
	}
	// Clean close still flushes to disk.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		if _, ok, _ := db2.Get(bg, spreadKey(uint64(i))); !ok {
			t.Fatalf("key %d lost across clean DisableWAL restart", i)
		}
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir should fail")
	}
}

func TestOpenBadDir(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "blocked")
	os.WriteFile(path, []byte("x"), 0o644)
	if _, err := Open(Config{Dir: path}); err == nil {
		t.Fatal("Open on a file path should fail")
	}
}
