package core

import (
	"runtime"
	"time"

	"flodb/internal/membuffer"
	"flodb/internal/skiplist"
)

// drainTask is a published full drain of an immutable Membuffer into a
// specific memtable. Writers blocked by pauseWriters and background
// drainers help by claiming batches from src until it is empty — the
// paper's helpDrain (Algorithm 2 line 14). Helping "ensures that the drain
// completes even if the scanner thread is slow" (§4.4).
type drainTask struct {
	src *membuffer.Buffer
	dst *memtable
}

// drainLowWater is the Membuffer occupancy below which the background
// drainers drop from full speed to a trickle (one partition batch per
// drainTrickle). Above it they trim round-robin at full speed, keeping
// enough slack that bucket-full rejections stay rare; below it every
// entry left resident is a chance for the next update to land in
// place, so eviction slows to just enough to keep an idle buffer
// converging toward the skiplist.
const (
	drainLowWater = 0.5
	drainTrickle  = time.Millisecond
)

// drainLoop is a background draining thread (§4.2): a continuously ongoing
// process keeping Membuffer occupancy low, so writes complete in the fast
// level. Each round claims up to DrainBatch entries from one partition —
// a skiplist "neighborhood" (§4.3) — and moves them with one multi-insert.
func (db *DB) drainLoop() {
	defer db.wg.Done()
	h := db.domain.Reader()
	idle := 0
	for {
		select {
		case <-db.closing:
			return
		default:
		}
		if db.pauseDraining.Load() {
			// A master scan is preparing; stay out of the Memtable so the
			// scan's drain-then-sequence step stays cheap (Algorithm 3).
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if t := db.fullDrain.Load(); t != nil {
			db.helpDrain(t)
			continue
		}

		g := db.gen.Load()
		if g.mbf == nil {
			return
		}
		// Backpressure: when the Memtable is far over target, stop feeding
		// it — the bounded Membuffer then rejects writers into the stalled
		// slow path until the persister catches up. (Those writers' stall
		// time feeds the adaptive sensor, §4.4 — the drainer's own sleep
		// does not: SensorStallPct measures blocked WRITERS.)
		if g.mtb.approxBytes() > 2*db.memtableTarget() {
			db.signalPersist()
			time.Sleep(50 * time.Microsecond)
			continue
		}
		// Low-water gate: draining exists to keep the Membuffer from
		// rejecting writers into the slow path, not to empty it — a
		// resident working set absorbing updates in place, with no drain
		// debt at all, is the buffer's whole win (§4.4) and the signal
		// the adaptive controller sizes it by. Below the mark, throttle
		// to a trickle instead of sweeping the buffer clean.
		trickle := g.mbf.Occupancy() < drainLowWater
		h.Enter()
		g = db.gen.Load()
		if g.mbf == nil {
			h.Exit()
			return
		}
		part := g.mbf.NextPartition()
		batch := g.mbf.DrainPartition(part, db.cfg.DrainBatch)
		if len(batch) > 0 {
			db.insertDrained(g.mtb, batch)
			g.mbf.Release(batch)
			db.stats.drainBatches.Add(1)
			db.stats.drainedEntries.Add(uint64(len(batch)))
		}
		h.Exit()

		if len(batch) == 0 {
			idle++
			if idle > g.mbf.Partitions() {
				// Whole buffer looked empty: back off instead of spinning.
				time.Sleep(50 * time.Microsecond)
				idle = 0
			}
		} else {
			idle = 0
			if g.mtb.approxBytes() >= db.memtableTarget() {
				db.signalPersist()
			}
		}
		if trickle {
			time.Sleep(drainTrickle)
		}
	}
}

// insertDrained moves claimed entries into dst, assigning each a fresh
// sequence number. Multi-insert is the default (Figure 6 step 2 with the
// Algorithm 1 batch optimization); SimpleInsertDrain is the Fig 17
// ablation.
func (db *DB) insertDrained(dst *memtable, batch []membuffer.Drained) {
	if db.cfg.SimpleInsertDrain {
		for i := range batch {
			d := &batch[i]
			dst.list.Insert(d.Key, &skiplist.Entry{
				Value:     d.Value,
				Seq:       db.seq.Add(1),
				Tombstone: d.Tombstone,
			})
		}
		return
	}
	kvs := make([]skiplist.KV, len(batch))
	for i := range batch {
		d := &batch[i]
		kvs[i] = skiplist.KV{
			Key: d.Key,
			Entry: &skiplist.Entry{
				Value:     d.Value,
				Seq:       db.seq.Add(1),
				Tombstone: d.Tombstone,
			},
		}
	}
	dst.list.MultiInsert(kvs)
}

// helpDrain claims one batch from the published full drain and applies it.
// Returns true if it did work.
func (db *DB) helpDrain(t *drainTask) bool {
	// Partition claims spread helpers across the buffer.
	part := t.src.NextPartition()
	batch := t.src.DrainPartition(part, db.cfg.DrainBatch)
	if len(batch) == 0 {
		// The round-robin partition may be empty while others are not;
		// sweep everything that remains.
		batch = t.src.DrainAll()
	}
	if len(batch) == 0 {
		runtime.Gosched()
		return false
	}
	db.insertDrained(t.dst, batch)
	t.src.Release(batch)
	db.stats.drainedEntries.Add(uint64(len(batch)))
	db.stats.drainBatches.Add(1)
	return true
}

// drainBufferInto fully drains src into dst, publishing the task so other
// threads help, and returns when src is empty. minSleep throttles the
// completion poll (0 is fine: claimed entries are released quickly).
func (db *DB) drainBufferInto(src *membuffer.Buffer, dst *memtable, minSleep time.Duration) {
	t := &drainTask{src: src, dst: dst}
	db.fullDrain.Store(t)
	for {
		db.helpDrain(t)
		if src.Len() == 0 {
			break
		}
		if minSleep > 0 {
			time.Sleep(minSleep)
		}
	}
	db.fullDrain.CompareAndSwap(t, nil)
}
