// Package core implements FloDB: the two-level memory component of §3–§4
// on top of the disk component in internal/storage.
//
// Memory layout (Figure 1):
//
//	Membuffer  — small concurrent hash table (internal/membuffer), absorbs
//	             updates in O(1); partitioned by key MSBs.
//	Memtable   — large concurrent skiplist (internal/skiplist) with
//	             sequence numbers and in-place updates; directly flushable.
//	Disk       — leveled sstables (internal/storage).
//
// Data flows downward: background draining threads move Membuffer entries
// into the Memtable with multi-inserts; the persisting thread flushes full
// Memtables to L0. Component switches use RCU (internal/rcu): install the
// new component, wait a grace period so no in-flight operation still
// writes the old one, then hand the old component to its consumer —
// exactly the never-blocking switch of §4.2.
//
// # The active pair
//
// The active Membuffer and Memtable are published as ONE atomic pointer to
// a generation pair. An operation loads the pair once inside an RCU read
// section and uses both components from it. This single-pointer design is
// what makes WAL truncation sound: an update is logged to the WAL segment
// of the pair's Memtable and lands in that same pair's Membuffer or
// Memtable, so when table W reaches disk — persist switches the pair and
// fully drains the old Membuffer into the sealed Memtable first — every
// update in WAL generations ≤ W is on disk and those segments can go.
//
// The paper's Get invariant (upper levels hold fresher data) is preserved
// by two rules with paper counterparts: within a pair the Membuffer always
// holds the newest version of any key present in it (in-place updates,
// §3.2), and while an immutable Membuffer exists writers may not take the
// direct-to-Memtable path — pauseWriters sends them to help drain instead
// (Algorithm 2 lines 12–16).
package core

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/membuffer"
	"flodb/internal/obs"
	"flodb/internal/rcu"
	"flodb/internal/skiplist"
	"flodb/internal/storage"
	"flodb/internal/wal"
)

// generation is the atomically-published active pair. mbf is nil when the
// Membuffer is disabled (the Fig 17 "No HT" ablation).
type generation struct {
	mbf *membuffer.Buffer
	mtb *memtable
}

// DB is a FloDB instance.
type DB struct {
	cfg Config

	store *storage.Store // nil iff cfg.DropPersist

	// seq is the global sequence number ("obtained via an atomic
	// increment operation", §4.2).
	seq atomic.Uint64

	// gen is the active (Membuffer, Memtable) pair; immMbf/immMtb are the
	// immutable components of Algorithm 2's Get order.
	gen    atomic.Pointer[generation]
	immMbf atomic.Pointer[membuffer.Buffer]
	immMtb atomic.Pointer[memtable]

	// mbfFrac is the LIVE Membuffer share of MemoryBytes (float64 bits):
	// cfg.MembufferFraction at Open, then whatever the adaptive
	// controller or SetMembufferFraction last installed (§4.4). The
	// Memtable persist target is derived from it (memtableTarget).
	mbfFrac atomic.Uint64
	// sensor publishes the workload sensor's last-window rates.
	sensor sensorRates

	// domain covers every operation that loads gen and writes through it;
	// switches synchronize on it.
	domain *rcu.Domain

	// pauseWriters blocks the direct-to-Memtable write path while an
	// immutable Membuffer drains; writers help instead (Algorithm 2).
	pauseWriters atomic.Bool
	// pauseDraining halts background drainers (Algorithm 3 line 4).
	pauseDraining atomic.Bool

	// drainMu serializes the switch+drain critical flows (persist seals
	// and master scans).
	drainMu sync.Mutex
	// persistMu serializes whole persist cycles (persistOnce and
	// Checkpoint's forced flush), so two flushes never interleave their
	// seal→write→install steps. Snapshot does not take it: pinning is a
	// seal + seq bound under drainMu alone.
	persistMu sync.Mutex
	// fullDrain publishes an in-progress full drain so writers and
	// drainers can help (Put's helpDrain, Algorithm 2 line 14).
	fullDrain atomic.Pointer[drainTask]

	// scanState publishes the active scan for piggybacking (§4.4).
	scanState atomic.Pointer[scanState]

	// snapMu guards snapBounds, the refcounted set of active snapshot
	// sequence bounds (snapshot handles and their iterators each hold a
	// ref). retention publishes the sorted bound set to every memtable
	// skiplist so in-place updates chain the versions those bounds still
	// need; with no open snapshots the set is empty and updates stay
	// destructive (§3.2's single-versioned memory component).
	snapMu     sync.Mutex
	snapBounds map[uint64]int
	retention  skiplist.Retention

	persistCh chan struct{}
	// persistErr records the first background persist failure; surfaced
	// on subsequent writes and Close.
	persistErr atomic.Pointer[error]

	// walMetrics is shared by every WAL segment the store creates, so
	// the acked-vs-durable boundary (Stats.AckedSeq/DurableSeq) spans
	// generation switches.
	walMetrics wal.Metrics

	// handles recycles RCU reader handles across operations.
	handles *sync.Pool

	closing chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup

	// reg is the metrics registry (internal/obs) every stat counter
	// lives in; tel is the optional histogram/event half, nil when
	// Config.DisableTelemetry (see telemetry.go).
	reg   *obs.Registry
	tel   *telemetry
	stats statCounters
}

// statCounters are the DB's operation counters. Each field is a counter
// REGISTERED in db.reg (initObs wires them), so kv.Stats and the
// /metrics exposition read the same atomics — the Stats struct is a
// view over the registry, not a second set of counts. Recording is
// still a single atomic add.
type statCounters struct {
	puts, gets, deletes, scans    *obs.Counter
	batches, batchOps, iterators  *obs.Counter
	snapshots, checkpoints        *obs.Counter
	scanRestarts, fallbackScans   *obs.Counter
	membufferHits, memtableWrites *obs.Counter
	drainedEntries, drainBatches  *obs.Counter
	persists                      *obs.Counter
	masterScans, piggybackScans   *obs.Counter
	helpDrains                    *obs.Counter
	syncBarriers                  *obs.Counter
	// resizes counts completed Membuffer resize epochs; stallNanos
	// accumulates time WRITERS (Put/Delete/Apply) spent stalled on
	// drains and memory-component backpressure — the sensor's
	// drain-stall input (background drainers' own sleeps are excluded).
	// inPlaceHits counts Membuffer updates that overwrote a resident
	// key in place (no new drain debt) — the sensor's working-set-fits
	// signal.
	resizes     *obs.Counter
	stallNanos  *obs.Counter
	inPlaceHits *obs.Counter
}

// Open creates or opens a FloDB store.
func Open(cfg Config) (*DB, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	db := &DB{
		cfg:        cfg,
		domain:     rcu.NewDomain(),
		persistCh:  make(chan struct{}, 1),
		closing:    make(chan struct{}),
		snapBounds: make(map[uint64]int),
	}
	db.handles = &sync.Pool{New: func() any { return db.domain.Reader() }}
	// The registry must exist before the first counter increment or
	// event emission — i.e. before recovery and the background loops.
	db.initObs()

	if !cfg.DropPersist {
		scfg := cfg.Storage
		scfg.Events = db.eventLog()
		store, err := storage.Open(cfg.Dir, scfg)
		if err != nil {
			return nil, err
		}
		db.store = store
		db.seq.Store(store.LastSeq())
		if err := db.recoverWALs(); err != nil {
			store.Close()
			return nil, err
		}
	}

	mt, err := db.newMemtable()
	if err != nil {
		if db.store != nil {
			db.store.Close()
		}
		return nil, err
	}
	db.mbfFrac.Store(math.Float64bits(cfg.MembufferFraction))
	g := &generation{mtb: mt}
	if !cfg.DisableMembuffer {
		g.mbf = db.newMembufferNow()
	}
	db.gen.Store(g)
	if db.store != nil && !cfg.DisableWAL {
		if err := db.store.SetLogNum(mt.walNum, db.seq.Load()); err != nil {
			db.store.Close()
			return nil, err
		}
	}

	if !cfg.DisableMembuffer {
		for i := 0; i < cfg.DrainThreads; i++ {
			db.wg.Add(1)
			go db.drainLoop()
		}
		if cfg.AdaptiveMemory {
			db.wg.Add(1)
			go db.adaptLoop()
		}
	}
	db.wg.Add(1)
	go db.persistLoop()
	return db, nil
}

// registerBound adds (or re-references) an active snapshot bound and
// republishes the retention set. Snapshot calls it while writers are
// paused, so the first post-bound overwrite of any key is guaranteed to
// observe the bound and chain the displaced version; iterator refs on an
// already-registered bound need no pause.
func (db *DB) registerBound(b uint64) {
	db.snapMu.Lock()
	db.snapBounds[b]++
	db.publishBoundsLocked()
	db.snapMu.Unlock()
}

// unregisterBound drops one reference; chains retained for a fully
// released bound are pruned lazily by subsequent updates.
func (db *DB) unregisterBound(b uint64) {
	db.snapMu.Lock()
	if db.snapBounds[b]--; db.snapBounds[b] <= 0 {
		delete(db.snapBounds, b)
	}
	db.publishBoundsLocked()
	db.snapMu.Unlock()
}

func (db *DB) publishBoundsLocked() {
	bounds := make([]uint64, 0, len(db.snapBounds))
	for b := range db.snapBounds {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	db.retention.Set(bounds)
}

// newMemtable allocates a fresh memtable with its WAL segment.
func (db *DB) newMemtable() (*memtable, error) {
	m := &memtable{list: skiplist.New()}
	m.list.SetRetention(&db.retention)
	if db.cfg.DisableWAL || db.store == nil {
		return m, nil
	}
	m.walNum = db.store.NewFileNum()
	w, err := wal.Create(storage.WALFileName(db.cfg.Dir, m.walNum), wal.Options{
		Metrics:      &db.walMetrics,
		WriteThrough: db.cfg.WALWriteThrough,
		Events:       db.eventLog(),
	})
	if err != nil {
		return nil, err
	}
	m.wal = w
	return m, nil
}

// recoverWALs replays WAL segments >= the manifest's log number, flushing
// each recovered memtable to L0 (LevelDB's recovery shape).
func (db *DB) recoverWALs() error {
	if db.cfg.DisableWAL {
		return nil
	}
	logNum := db.store.LogNum()
	entries, err := os.ReadDir(db.cfg.Dir)
	if err != nil {
		return err
	}
	var segs []uint64
	for _, ent := range entries {
		kind, num := storage.ParseFileName(ent.Name())
		if kind == storage.KindWAL && num >= logNum {
			segs = append(segs, num)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, num := range segs {
		list := skiplist.New()
		// ForEachOp handles both single-op records and multi-op batch
		// records. Atomicity of a batch is inherited from WAL framing: a
		// torn batch record fails its CRC as a whole, so recovery replays
		// either every op of a batch or none.
		err := wal.ReplayAll(storage.WALFileName(db.cfg.Dir, num), func(rec []byte) error {
			return kv.ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
				e := &skiplist.Entry{
					Value:     keys.Clone(value),
					Seq:       db.seq.Add(1),
					Tombstone: kind == keys.KindDelete,
				}
				list.Insert(keys.Clone(key), e)
				return nil
			})
		})
		if err != nil {
			return fmt.Errorf("core: replay wal %d: %w", num, err)
		}
		if !list.Empty() {
			m := &memtable{list: list, walNum: num}
			if _, err := db.store.Flush(newMemtableIter(m), num+1, db.seq.Load()); err != nil {
				return fmt.Errorf("core: flush recovered wal %d: %w", num, err)
			}
		}
		os.Remove(storage.WALFileName(db.cfg.Dir, num))
	}
	return nil
}

// Close drains and flushes the memory component, then shuts down.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	close(db.closing)
	select {
	case db.persistCh <- struct{}{}:
	default:
	}
	db.wg.Wait()

	firstErr := db.loadPersistErr()

	g := db.gen.Load()
	flushed := false
	if db.store != nil && firstErr == nil {
		// Final persist: drain the membuffer into the memtable and flush.
		if g.mbf != nil {
			g.mbf.Freeze()
			db.domain.Synchronize()
			db.drainBufferInto(g.mbf, g.mtb, 0)
		}
		if !g.mtb.list.Empty() {
			newLog := g.mtb.walNum + 1
			if db.cfg.DisableWAL {
				newLog = db.store.NewFileNum()
			}
			if _, err := db.store.Flush(newMemtableIter(g.mtb), newLog, db.seq.Load()); err != nil {
				firstErr = err
			} else {
				flushed = true
				if !db.cfg.DisableWAL {
					if g.mtb.wal != nil {
						g.mtb.wal.MarkContentsDurable()
					}
					os.Remove(storage.WALFileName(db.cfg.Dir, g.mtb.walNum))
				}
			}
		} else {
			flushed = true // nothing unpersisted; the WAL tail is redundant
		}
	}
	// When the final flush was skipped (background persist failure) or
	// failed, the WAL tail is the only copy of acked writes — and
	// wal.Writer.Close does not fsync. Sync it so a clean shutdown never
	// widens the acked-but-lost window, then close. A persist failure may
	// also strand the sealed generation: its segment still holds acked
	// records, so it gets the same sync-then-close treatment.
	if !flushed {
		if err := g.mtb.syncWAL(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := g.mtb.closeWAL(); err != nil && firstErr == nil {
		firstErr = err
	}
	if imm := db.immMtb.Load(); imm != nil && imm.wal != nil {
		if err := imm.syncWAL(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := imm.closeWAL(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db.store != nil {
		if err := db.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync is the durability barrier of the kv.Store contract: it blocks
// until every mutation acknowledged before the call is crash-durable.
// One group-committed fsync per live WAL segment (at most two: the sealed
// generation's and the active one's) promotes the whole acked-but-
// buffered window; concurrent barriers and Sync-class writes coalesce in
// the commit queue. With the WAL disabled there is no buffered window to
// promote and the barrier is a no-op.
func (db *DB) Sync(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	db.stats.syncBarriers.Add(1)
	if db.store == nil || db.cfg.DisableWAL {
		return nil
	}
	// A failed persist means sealed-generation records may be neither in
	// sstables nor syncable — don't claim a durable barrier over them.
	if err := db.loadPersistErr(); err != nil {
		return err
	}
	// Active generation loaded first: if a switch races us, the pair we
	// loaded becomes the sealed one and we still sync the segment that
	// holds every pre-call record. Segments retired meanwhile are durable
	// through their sstable flush (syncWAL maps ErrClosed to nil).
	g := db.gen.Load()
	if imm := db.immMtb.Load(); imm != nil {
		if err := imm.syncWAL(); err != nil {
			return err
		}
	}
	return g.mtb.syncWAL()
}

func (db *DB) loadPersistErr() error {
	if p := db.persistErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (db *DB) setPersistErr(err error) {
	if err == nil {
		return
	}
	db.persistErr.CompareAndSwap(nil, &err)
}

// CrashForTesting abandons the store the way a crash would: background
// threads stop, every live WAL segment is Abandoned (its unflushed
// staging tail is LOST, modeling the buffers a crash takes), and no
// close-time flush or sync runs. The directory is left exactly as a
// post-crash recovery would find it. Durability tests use it to open the
// acked-but-lost window deliberately; production code must use Close.
func (db *DB) CrashForTesting() {
	if db.closed.Swap(true) {
		return
	}
	close(db.closing)
	db.wg.Wait()
	if imm := db.immMtb.Load(); imm != nil && imm.wal != nil {
		imm.wal.Abandon()
	}
	if g := db.gen.Load(); g.mtb.wal != nil {
		g.mtb.wal.Abandon()
	}
	if db.store != nil {
		db.store.Close()
	}
}

// Stats returns a snapshot of operation counters.
func (db *DB) Stats() kv.Stats {
	s := kv.Stats{
		Puts:           db.stats.puts.Load(),
		Gets:           db.stats.gets.Load(),
		Deletes:        db.stats.deletes.Load(),
		Scans:          db.stats.scans.Load(),
		Batches:        db.stats.batches.Load(),
		BatchOps:       db.stats.batchOps.Load(),
		Iterators:      db.stats.iterators.Load(),
		Snapshots:      db.stats.snapshots.Load(),
		Checkpoints:    db.stats.checkpoints.Load(),
		ScanRestarts:   db.stats.scanRestarts.Load(),
		FallbackScans:  db.stats.fallbackScans.Load(),
		MembufferHits:  db.stats.membufferHits.Load(),
		MemtableWrites: db.stats.memtableWrites.Load(),
		SyncBarriers:   db.stats.syncBarriers.Load(),
	}
	if !db.cfg.DisableMembuffer {
		s.MembufferFraction = db.membufferFraction()
	}
	s.MembufferResizes = db.stats.resizes.Load()
	s.SensorPutRate = loadFloat(&db.sensor.putRate)
	s.SensorGetRate = loadFloat(&db.sensor.getRate)
	s.SensorScanRate = loadFloat(&db.sensor.scanRate)
	s.SensorStallPct = loadFloat(&db.sensor.stallPct)
	ws := db.walMetrics.Snapshot()
	s.AckedSeq = ws.Appends
	s.DurableSeq = ws.Durable
	s.WALSyncs = ws.Syncs
	s.WALSyncRequests = ws.SyncRequests
	if db.store != nil {
		m := db.store.Metrics()
		s.Flushes = m.Flushes
		s.Compactions = m.Compactions
		s.BlockCacheHits = m.BlockCacheHits
		s.BlockCacheMisses = m.BlockCacheMisses
		s.BlockCacheEvictions = m.BlockCacheEvictions
		s.BlockCacheBytes = m.BlockCacheBytes
		s.TableCacheHits = m.TableCacheHits
		s.TableCacheMisses = m.TableCacheMisses
		s.BloomChecks = m.BloomChecks
		s.BloomMisses = m.BloomNegatives
	}
	return s
}

// InternalStats exposes FloDB-specific counters for the harness and the
// Fig 17 ablation (the "proportion of direct Membuffer updates").
type InternalStats struct {
	DrainedEntries     uint64
	DrainBatches       uint64
	Persists           uint64
	MasterScans        uint64
	PiggybackScans     uint64
	HelpDrains         uint64
	MembufferLen       int
	MemtableBytes      int64
	MembufferOccupancy float64
	// InPlaceHits counts Membuffer updates that overwrote a resident
	// key in place — writes absorbed with no drain debt, the adaptive
	// sensor's working-set-fits signal (§4.4).
	InPlaceHits uint64
}

// Internal returns FloDB-internal counters.
func (db *DB) Internal() InternalStats {
	s := InternalStats{
		DrainedEntries: db.stats.drainedEntries.Load(),
		DrainBatches:   db.stats.drainBatches.Load(),
		Persists:       db.stats.persists.Load(),
		MasterScans:    db.stats.masterScans.Load(),
		PiggybackScans: db.stats.piggybackScans.Load(),
		HelpDrains:     db.stats.helpDrains.Load(),
		InPlaceHits:    db.stats.inPlaceHits.Load(),
	}
	g := db.gen.Load()
	if g.mbf != nil {
		s.MembufferLen = g.mbf.Len()
		s.MembufferOccupancy = g.mbf.Occupancy()
	}
	s.MemtableBytes = g.mtb.approxBytes()
	return s
}

// Store exposes the disk component (diagnostics; nil in DropPersist mode).
func (db *DB) Store() *storage.Store { return db.store }

// WaitDiskQuiesce blocks until pending persists and compactions settle —
// the "wait until draining to disk and compactions have completed" step
// of the paper's experiment setup (§5.2).
func (db *DB) WaitDiskQuiesce() {
	for db.needsPersist() || db.immMtb.Load() != nil {
		db.signalPersist()
		time.Sleep(time.Millisecond)
	}
	if db.store != nil {
		db.store.WaitForCompactions()
	}
}

// Seq returns the current global sequence number (diagnostics).
func (db *DB) Seq() uint64 { return db.seq.Load() }

var (
	_ kv.Store         = (*DB)(nil)
	_ kv.StatsProvider = (*DB)(nil)
)
