package core

import (
	"fmt"
	"time"

	"flodb/internal/diskenv"
	"flodb/internal/kv"
	"flodb/internal/membuffer"
	"flodb/internal/storage"
)

// Config parameterizes a FloDB instance. The defaults mirror the paper's
// experimental setup scaled to a development machine: the memory budget is
// split 1/4 Membuffer : 3/4 Memtable (§5.1), keys of ~8 B and values of
// ~256 B size the hash table, and scans fall back after a bounded number
// of restarts (§4.4).
type Config struct {
	// Dir is the database directory.
	Dir string

	// MemoryBytes is the total memory-component budget (Membuffer +
	// Memtable). Default 64 MiB.
	MemoryBytes int64
	// MembufferFraction is the share of MemoryBytes given to the
	// Membuffer. Default 0.25 (the paper's empirically chosen 1:4 split).
	// With AdaptiveMemory it is the STARTING fraction; the controller
	// moves the live split from there.
	MembufferFraction float64

	// AdaptiveMemory enables workload-adaptive resizing of the
	// Membuffer↔Memtable split (§4.4): a windowed sensor measures the
	// put/get/scan mix and drain-stall time, and a controller shifts the
	// byte budget between the two levels inside MemoryBytes —
	// update-heavy phases grow the Membuffer (more O(1) absorption),
	// scan/read-heavy phases shrink it (cheaper master-scan drains, the
	// skiplist stays authoritative). A resize is one generation switch
	// through the existing immutable-Membuffer drain path: seal at the
	// old capacity, open at the new one — never a stop-the-world rehash.
	AdaptiveMemory bool
	// AdaptiveMinFraction / AdaptiveMaxFraction bound the controller.
	// Defaults 0.05 and 0.60. The starting MembufferFraction must lie
	// inside [min, max].
	AdaptiveMinFraction float64
	AdaptiveMaxFraction float64
	// AdaptiveWindow is the sensor window: the controller re-evaluates
	// the split once per window. Default 100ms.
	AdaptiveWindow time.Duration
	// PartitionBits is ℓ, the number of most-significant key bits that
	// select a Membuffer partition (§4.3). Default 6 (64 partitions).
	PartitionBits uint
	// EntryBytesHint approximates key+value size for bucket sizing.
	// Default 264 (the paper's 8 B keys + 256 B values).
	EntryBytesHint int

	// DrainThreads is the number of background draining threads (§4.2).
	// Default 2.
	DrainThreads int
	// DrainBatch is the number of entries claimed per partition visit and
	// inserted with one multi-insert. Default 64.
	DrainBatch int
	// SimpleInsertDrain makes drains use one skiplist insert per entry
	// instead of multi-insert — the "HT, simple insert SL" ablation of
	// Fig 17.
	SimpleInsertDrain bool
	// DisableMembuffer removes the top level entirely — the "No HT"
	// ablation of Fig 17 (a classic single-level LSM memory component).
	DisableMembuffer bool

	// RestartThreshold is the number of scan restarts tolerated before
	// the fallback scan blocks writers (Algorithm 3). Default 3.
	RestartThreshold int
	// MaxPiggybackChain bounds the master→piggyback reuse chain to avoid
	// scans running with arbitrarily stale sequence numbers (§4.4).
	// Default 8.
	MaxPiggybackChain int

	// DisableWAL skips commit logging entirely (the paper's benchmarks,
	// like LevelDB's defaults, run without a per-write log). Without a
	// log every write is DurabilityNone; requesting a logged class per
	// operation fails with kv.ErrNotSupported.
	DisableWAL bool
	// WALWriteThrough pushes every WAL append to the OS before it is
	// acknowledged (no extra fsyncs — the buffered window shrinks from
	// "process or machine crash" to "machine crash only"). Replica nodes
	// in a cluster run with it on so a kill -9 of one process never loses
	// a quorum-acked write.
	WALWriteThrough bool
	// Durability is the default durability class for writes that don't
	// override it per operation. DurabilityDefault resolves to Buffered
	// (log without fsync) — or None when the WAL is disabled. Sync makes
	// every write group-commit an fsync before acknowledging.
	Durability kv.Durability

	// DropPersist discards immutable Memtables instead of flushing them —
	// the memory-component-only mode of Fig 17. Implies no recovery of
	// dropped data; WAL is forced off.
	DropPersist bool
	// PersistLimiter, when non-nil, rate-limits flush bytes to model a
	// slower disk (Fig 9's persistence-throughput line).
	PersistLimiter *diskenv.Limiter
	// FlushFault injects errors into the persist path (tests).
	FlushFault *diskenv.FaultPoint

	// DisableTelemetry turns off the optional half of the observability
	// layer: per-op latency histograms and the structured event log
	// (every time.Now() on the hot paths). The stat counters stay on —
	// they are single atomic adds and kv.Stats depends on them. The
	// obsbench figure measures the delta this flag removes.
	DisableTelemetry bool

	// Storage configures the disk component.
	Storage storage.Options
}

// fillDefaults validates the configuration and resolves zero values to
// the paper's defaults. Out-of-range values are REJECTED with a
// descriptive error, never silently clamped: a store that opens with a
// different geometry than the caller asked for is a misconfiguration
// nobody notices until the performance (or durability) is wrong.
func (c *Config) fillDefaults() error {
	if c.Dir == "" && !c.DropPersist {
		return fmt.Errorf("core: Config.Dir is required")
	}
	if c.MemoryBytes < 0 {
		return fmt.Errorf("core: MemoryBytes %d is negative; want > 0 (or 0 for the 64 MiB default)", c.MemoryBytes)
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 64 << 20
	}
	if c.MembufferFraction < 0 || c.MembufferFraction >= 1 {
		return fmt.Errorf("core: MembufferFraction %v outside (0,1); want the Membuffer's share of MemoryBytes (or 0 for the default 0.25)", c.MembufferFraction)
	}
	fracDefaulted := c.MembufferFraction == 0
	if fracDefaulted {
		c.MembufferFraction = 0.25
	}
	if c.AdaptiveMinFraction < 0 || c.AdaptiveMinFraction >= 1 {
		return fmt.Errorf("core: AdaptiveMinFraction %v outside (0,1); want the smallest Membuffer share the controller may choose (or 0 for the default 0.05)", c.AdaptiveMinFraction)
	}
	if c.AdaptiveMaxFraction < 0 || c.AdaptiveMaxFraction >= 1 {
		return fmt.Errorf("core: AdaptiveMaxFraction %v outside (0,1); want the largest Membuffer share the controller may choose (or 0 for the default 0.60)", c.AdaptiveMaxFraction)
	}
	if c.AdaptiveWindow < 0 {
		return fmt.Errorf("core: AdaptiveWindow %v is negative; want the sensor window (or 0 for the default 100ms)", c.AdaptiveWindow)
	}
	if c.AdaptiveMemory {
		if c.DisableMembuffer {
			return fmt.Errorf("core: AdaptiveMemory resizes the Membuffer, but DisableMembuffer removes it")
		}
		if c.AdaptiveMinFraction == 0 {
			c.AdaptiveMinFraction = 0.05
		}
		if c.AdaptiveMaxFraction == 0 {
			c.AdaptiveMaxFraction = 0.60
		}
		if c.AdaptiveMinFraction >= c.AdaptiveMaxFraction {
			return fmt.Errorf("core: AdaptiveMinFraction %v >= AdaptiveMaxFraction %v; want min < max", c.AdaptiveMinFraction, c.AdaptiveMaxFraction)
		}
		if c.MembufferFraction < c.AdaptiveMinFraction || c.MembufferFraction > c.AdaptiveMaxFraction {
			// The DEFAULT starting fraction follows the caller's range
			// (clamped in); only an explicitly chosen fraction that
			// contradicts an explicitly chosen range is a
			// misconfiguration worth rejecting.
			if !fracDefaulted {
				return fmt.Errorf("core: starting MembufferFraction %v outside the adaptive range [%v, %v]", c.MembufferFraction, c.AdaptiveMinFraction, c.AdaptiveMaxFraction)
			}
			if c.MembufferFraction < c.AdaptiveMinFraction {
				c.MembufferFraction = c.AdaptiveMinFraction
			} else {
				c.MembufferFraction = c.AdaptiveMaxFraction
			}
		}
		if c.AdaptiveWindow == 0 {
			c.AdaptiveWindow = 100 * time.Millisecond
		}
	}
	if c.PartitionBits > 16 {
		return fmt.Errorf("core: PartitionBits %d exceeds 16 (2^16 partitions is the supported maximum)", c.PartitionBits)
	}
	if c.PartitionBits == 0 {
		c.PartitionBits = 6
	}
	if c.EntryBytesHint < 0 {
		return fmt.Errorf("core: EntryBytesHint %d is negative; want an approximate key+value size (or 0 for the default 264)", c.EntryBytesHint)
	}
	if c.EntryBytesHint == 0 {
		c.EntryBytesHint = 264
	}
	if c.DrainThreads < 0 {
		return fmt.Errorf("core: DrainThreads %d is negative; want > 0 (or 0 for the default 2)", c.DrainThreads)
	}
	if c.DrainThreads == 0 {
		c.DrainThreads = 2
	}
	if c.DrainBatch < 0 {
		return fmt.Errorf("core: DrainBatch %d is negative; want > 0 (or 0 for the default 64)", c.DrainBatch)
	}
	if c.DrainBatch == 0 {
		c.DrainBatch = 64
	}
	if c.RestartThreshold < 0 {
		return fmt.Errorf("core: RestartThreshold %d is negative; want > 0 (or 0 for the default 3)", c.RestartThreshold)
	}
	if c.RestartThreshold == 0 {
		c.RestartThreshold = 3
	}
	if c.MaxPiggybackChain < 0 {
		return fmt.Errorf("core: MaxPiggybackChain %d is negative; want > 0 (or 0 for the default 8)", c.MaxPiggybackChain)
	}
	if c.MaxPiggybackChain == 0 {
		c.MaxPiggybackChain = 8
	}
	if c.DropPersist {
		c.DisableWAL = true
	}
	if !c.Durability.Valid() {
		return fmt.Errorf("core: invalid Durability %v", c.Durability)
	}
	if c.DisableWAL {
		if c.Durability == kv.DurabilityBuffered || c.Durability == kv.DurabilitySync {
			return fmt.Errorf("core: default Durability %v requires the WAL, but the WAL is disabled: %w", c.Durability, kv.ErrNotSupported)
		}
		c.Durability = kv.DurabilityNone
	} else if c.Durability == kv.DurabilityDefault {
		c.Durability = kv.DurabilityBuffered
	}
	return nil
}

// membufferBytesAt returns the Membuffer budget at the given fraction.
// The fraction is a parameter, not a field read, because the adaptive
// controller moves the live split at runtime (DB.membufferFraction).
func (c *Config) membufferBytesAt(frac float64) int64 {
	return int64(float64(c.MemoryBytes) * frac)
}

// memtableTargetBytesAt returns the Memtable size that triggers
// persisting when the Membuffer holds the given fraction.
func (c *Config) memtableTargetBytesAt(frac float64) int64 {
	return c.MemoryBytes - c.membufferBytesAt(frac)
}

// newMembufferAt builds a Membuffer sized at the given fraction.
func (c *Config) newMembufferAt(frac float64) *membuffer.Buffer {
	return membuffer.New(membuffer.ConfigForBytes(c.membufferBytesAt(frac), c.EntryBytesHint, c.PartitionBits))
}
