package core

import (
	"fmt"

	"flodb/internal/diskenv"
	"flodb/internal/membuffer"
	"flodb/internal/storage"
)

// Config parameterizes a FloDB instance. The defaults mirror the paper's
// experimental setup scaled to a development machine: the memory budget is
// split 1/4 Membuffer : 3/4 Memtable (§5.1), keys of ~8 B and values of
// ~256 B size the hash table, and scans fall back after a bounded number
// of restarts (§4.4).
type Config struct {
	// Dir is the database directory.
	Dir string

	// MemoryBytes is the total memory-component budget (Membuffer +
	// Memtable). Default 64 MiB.
	MemoryBytes int64
	// MembufferFraction is the share of MemoryBytes given to the
	// Membuffer. Default 0.25 (the paper's empirically chosen 1:4 split).
	MembufferFraction float64
	// PartitionBits is ℓ, the number of most-significant key bits that
	// select a Membuffer partition (§4.3). Default 6 (64 partitions).
	PartitionBits uint
	// EntryBytesHint approximates key+value size for bucket sizing.
	// Default 264 (the paper's 8 B keys + 256 B values).
	EntryBytesHint int

	// DrainThreads is the number of background draining threads (§4.2).
	// Default 2.
	DrainThreads int
	// DrainBatch is the number of entries claimed per partition visit and
	// inserted with one multi-insert. Default 64.
	DrainBatch int
	// SimpleInsertDrain makes drains use one skiplist insert per entry
	// instead of multi-insert — the "HT, simple insert SL" ablation of
	// Fig 17.
	SimpleInsertDrain bool
	// DisableMembuffer removes the top level entirely — the "No HT"
	// ablation of Fig 17 (a classic single-level LSM memory component).
	DisableMembuffer bool

	// RestartThreshold is the number of scan restarts tolerated before
	// the fallback scan blocks writers (Algorithm 3). Default 3.
	RestartThreshold int
	// MaxPiggybackChain bounds the master→piggyback reuse chain to avoid
	// scans running with arbitrarily stale sequence numbers (§4.4).
	// Default 8.
	MaxPiggybackChain int

	// DisableWAL skips commit logging (the paper's benchmarks, like
	// LevelDB's defaults, run without synchronous logging; the WAL is on
	// by default here and fsync is opt-in via SyncWAL).
	DisableWAL bool
	// SyncWAL fsyncs the log on every update.
	SyncWAL bool

	// DropPersist discards immutable Memtables instead of flushing them —
	// the memory-component-only mode of Fig 17. Implies no recovery of
	// dropped data; WAL is forced off.
	DropPersist bool
	// PersistLimiter, when non-nil, rate-limits flush bytes to model a
	// slower disk (Fig 9's persistence-throughput line).
	PersistLimiter *diskenv.Limiter
	// FlushFault injects errors into the persist path (tests).
	FlushFault *diskenv.FaultPoint

	// Storage configures the disk component.
	Storage storage.Options
}

func (c *Config) fillDefaults() error {
	if c.Dir == "" && !c.DropPersist {
		return fmt.Errorf("core: Config.Dir is required")
	}
	if c.MemoryBytes <= 0 {
		c.MemoryBytes = 64 << 20
	}
	if c.MembufferFraction <= 0 || c.MembufferFraction >= 1 {
		c.MembufferFraction = 0.25
	}
	if c.PartitionBits == 0 {
		c.PartitionBits = 6
	}
	if c.PartitionBits > 16 {
		c.PartitionBits = 16
	}
	if c.EntryBytesHint <= 0 {
		c.EntryBytesHint = 264
	}
	if c.DrainThreads <= 0 {
		c.DrainThreads = 2
	}
	if c.DrainBatch <= 0 {
		c.DrainBatch = 64
	}
	if c.RestartThreshold <= 0 {
		c.RestartThreshold = 3
	}
	if c.MaxPiggybackChain <= 0 {
		c.MaxPiggybackChain = 8
	}
	if c.DropPersist {
		c.DisableWAL = true
	}
	return nil
}

// membufferBytes returns the Membuffer budget.
func (c *Config) membufferBytes() int64 {
	return int64(float64(c.MemoryBytes) * c.MembufferFraction)
}

// memtableTargetBytes returns the Memtable size that triggers persisting.
func (c *Config) memtableTargetBytes() int64 {
	return c.MemoryBytes - c.membufferBytes()
}

// newMembuffer builds a Membuffer per the config.
func (c *Config) newMembuffer() *membuffer.Buffer {
	return membuffer.New(membuffer.ConfigForBytes(c.membufferBytes(), c.EntryBytesHint, c.PartitionBits))
}
