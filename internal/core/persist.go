package core

import (
	"fmt"
	"os"
	"time"

	"flodb/internal/obs"
	"flodb/internal/storage"
)

// persistLoop is the dedicated persisting thread (§4.2): when the Memtable
// is full it installs a fresh generation, fully drains the sealed
// Membuffer into the sealed Memtable, and writes the sorted result to L0
// — "little more than a direct copy of the component to disk" (§2.3).
func (db *DB) persistLoop() {
	defer db.wg.Done()
	for {
		select {
		case <-db.closing:
			return
		case <-db.persistCh:
		}
		for db.needsPersist() {
			if err := db.persistOnce(); err != nil {
				db.setPersistErr(err)
				return
			}
			select {
			case <-db.closing:
				return
			default:
			}
		}
	}
}

func (db *DB) needsPersist() bool {
	return db.gen.Load().mtb.approxBytes() >= db.memtableTarget()
}

// persistOnce runs one seal→drain→flush cycle under persistMu, which
// serializes the persisting thread with Snapshot's forced cycles.
func (db *DB) persistOnce() error {
	db.persistMu.Lock()
	defer db.persistMu.Unlock()
	_, err := db.persistCycle()
	return err
}

// persistCycle runs one seal→drain→flush cycle. The caller must hold
// persistMu. It returns the sequence number taken after the old
// Membuffer fully drained: every update that completed before the
// generation switch has a sequence number <= the bound and is contained
// in the flushed Memtable (or older tables), and every later update gets
// a larger one — the linearization bound Snapshot pins.
//
// Switch protocol (see the package comment for why the pair is one
// pointer):
//
//  1. Under drainMu (mutual exclusion with master scans), set pauseWriters
//     so no writer starts a direct-to-Memtable insert against the new
//     generation while the old Membuffer still holds fresher data.
//  2. Install the new generation; freeze the old Membuffer.
//  3. RCU-synchronize: every in-flight operation against the old pair has
//     completed ("RCU is used first to make sure that all pending updates
//     to the immutable Memtable have completed", §4.2).
//  4. Fully drain the old Membuffer into the old (sealed) Memtable, with
//     writers helping. This bounds WAL replay and keeps Get's freshness
//     order intact.
//  5. Release writers, flush the sealed Memtable to L0, advance the log
//     number, delete the old WAL segment.
func (db *DB) persistCycle() (seqBound uint64, err error) {
	db.drainMu.Lock()

	var sealStart time.Time
	var sealBytes int64
	if db.tel != nil {
		sealStart = time.Now()
	}
	old := db.gen.Load()
	next, err := db.newMemtable()
	if err != nil {
		db.drainMu.Unlock()
		return 0, err
	}
	g := &generation{mtb: next}
	if old.mbf != nil {
		g.mbf = db.newMembufferNow()
	}

	db.pauseWriters.Store(true)
	db.pauseDraining.Store(true)
	// The immutable components are published BEFORE the new pair: any
	// writer that reaches the new generation's WAL segment observes the
	// sealed generation through immMtb, which is what lets a Sync-class
	// commit in the new segment extend its barrier over the sealed
	// segment's tail (commitSync's prefix rule). Readers tolerate the
	// transient double-publication (the same table reachable as both
	// active and immutable) because the Get order just checks it twice.
	if old.mbf != nil {
		old.mbf.Freeze()
		db.immMbf.Store(old.mbf)
	}
	db.immMtb.Store(old.mtb)
	db.gen.Store(g)
	db.domain.Synchronize()

	// Seal-time flush: push the sealed segment's staging buffer to the
	// OS before the successor accumulates enough to flush its own. A
	// crash then never recovers later records while earlier ones are
	// still trapped in a lost bufio tail — the replay prefix has no
	// cross-segment holes.
	var sealErr error
	if old.mtb.wal != nil {
		sealErr = old.mtb.wal.Flush()
	}

	if old.mbf != nil {
		db.drainBufferInto(old.mbf, old.mtb, 0)
		db.immMbf.Store(nil)
	}
	// Taken while writers are still paused and drainers stopped: every
	// pre-switch update has a smaller sequence number and sits in old.mtb
	// or older tables; every post-switch update will draw a larger one.
	seqBound = db.seq.Add(1)
	db.pauseWriters.Store(false)
	db.pauseDraining.Store(false)
	if t := db.tel; t != nil {
		sealBytes = old.mtb.approxBytes()
		t.events.Emit(obs.Event{
			Type: obs.EventSeal, Dur: time.Since(sealStart),
			Bytes: sealBytes, Detail: "generation switch + drain",
		})
	}
	db.drainMu.Unlock()
	if sealErr != nil {
		return 0, sealErr
	}

	db.stats.persists.Add(1)

	if db.store == nil {
		// DropPersist (Fig 17): the sealed Memtable is simply discarded.
		db.immMtb.Store(nil)
		return seqBound, nil
	}

	if err := db.cfg.FlushFault.Check(); err != nil {
		return 0, err
	}
	// Model the paper's bounded persistence throughput, if configured.
	db.cfg.PersistLimiter.Acquire(old.mtb.approxBytes())

	newLog := next.walNum
	if db.cfg.DisableWAL {
		newLog = db.store.NewFileNum()
	}
	if _, err := db.store.Flush(newMemtableIter(old.mtb), newLog, db.seq.Load()); err != nil {
		return 0, err
	}
	// The old Memtable's data is in tables; RCU ensures in-flight readers
	// finish before the component is dropped (§4.2's second use of RCU —
	// with Go's GC the drop is a pointer store, the grace period is what
	// keeps the Get order sensible).
	db.domain.Synchronize()
	db.immMtb.Store(nil)
	if old.mtb.wal != nil {
		// The generation's contents just reached sstables: every record
		// in its segment is durable through the flush, whether or not an
		// fsync ever covered it. Advance the acked-vs-durable boundary
		// before retiring the segment.
		old.mtb.wal.MarkContentsDurable()
	}
	if err := old.mtb.closeWAL(); err != nil {
		return 0, err
	}
	if !db.cfg.DisableWAL {
		os.Remove(storage.WALFileName(db.cfg.Dir, old.mtb.walNum))
		if t := db.tel; t != nil {
			t.events.Emit(obs.Event{
				Type: obs.EventWALRotate, Bytes: sealBytes,
				Detail: fmt.Sprintf("segment %d -> %d", old.mtb.walNum, next.walNum),
			})
		}
	}
	return seqBound, nil
}
