package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"flodb/internal/kv"
	"flodb/internal/membuffer"
	"flodb/internal/obs"
)

// Adaptive memory-component sizing (§4.4).
//
// The paper fixes the Membuffer:Memtable split at 1:4 empirically, and
// notes that the right split is a property of the WORKLOAD: update-heavy
// streams want a large Membuffer (more updates complete in O(1) and the
// drain batches stay full), while scan- and read-heavy streams want a
// small one (every master scan must drain the Membuffer before it can
// take a sequence point, so a big buffer taxes exactly the operations
// that least benefit from it). This file implements that feedback loop:
//
//	sensor     — windowed rates of puts/gets/scans and drain-stall time,
//	             derived from the cumulative op counters every
//	             AdaptiveWindow (no new hot-path work beyond one stall
//	             clock in the slow write path).
//	controller — maps the window's write share to a target fraction in
//	             [AdaptiveMinFraction, AdaptiveMaxFraction], smooths it,
//	             and triggers a resize epoch when the live split is off
//	             target by more than a deadband.
//	resize     — one generation switch under drainMu through the
//	             existing immutable-Membuffer drain path: seal the old
//	             buffer at its old capacity, open a fresh one at the new
//	             capacity, drain the sealed one into the Memtable with
//	             writers helping. Readers never block; there is no
//	             rehash. The Memtable persist target moves in the
//	             opposite direction automatically (target = total −
//	             membuffer share).

const (
	// adaptScanWeight prices one scan/iterator against point ops. A
	// master scan's Membuffer cost is a full drain plus the fresh
	// buffer's allocation — thousands of entry-moves at the default
	// geometry — amortized over at most MaxPiggybackChain piggybacking
	// scans, so one scan op weighs several hundred point ops: even a
	// few-percent scan mix makes an oversized Membuffer the dominant
	// cost and should pull the split down hard.
	adaptScanWeight = 400
	// adaptShareGain smooths the measured shares across windows (EWMA),
	// so one bursty window does not trigger an epoch; the fraction then
	// jumps straight to the smoothed target — one resize per phase
	// shift instead of a staircase of them.
	adaptShareGain = 0.7
	// adaptScanAttackGain is the asymmetric fast path for scan ONSET:
	// when the scan share rises, waiting costs a full oversized drain
	// per master scan, so the controller reacts at nearly full speed;
	// scan decay uses the normal gain.
	adaptScanAttackGain = 0.9
	// adaptWriteCap is how far a FLOW-THROUGH update stream pulls the
	// target below the max: every inserted Membuffer byte must
	// eventually drain, and the seal-time full drain pauses writers in
	// proportion to occupancy, so the heavier the flow-through stream,
	// the lower the drain-optimal size. The value is calibrated so a
	// uniform (zero-reuse) write burst at the default bounds lands on
	// ~0.25 — the paper's empirically write-optimal 1:4 split (§5.1),
	// which the ablate-split sweep reproduces. Two kinds of traffic
	// escape the cap: reads (no drain cost; hits on recently-written
	// keys complete in the hash table) and in-place updates (the §4.4
	// update-heavy case — a skewed working set resident in the buffer
	// absorbs its writes with no drain debt at all), both of which
	// afford the max.
	adaptWriteCap = 0.64
	// adaptRelDeadband suppresses resizes that would change the
	// Membuffer's size by less than this RELATIVE amount, with
	// adaptMinStep as an absolute floor. Relative, because the costs a
	// resize corrects are proportional to the buffer's size (each
	// master scan re-allocates a fraction-sized buffer; each seal
	// drains one), so a 0.02 correction matters near the floor and is
	// noise near the ceiling — while the epoch itself costs a full
	// drain either way.
	adaptRelDeadband = 0.2
	adaptMinStep     = 0.01
	// adaptMinWindowOps is the idle floor: windows with less WEIGHTED
	// traffic than this carry no signal and keep the current split.
	// Weighted, because a window holding a handful of scans is not idle
	// — it is exactly the window the controller must react to.
	adaptMinWindowOps = 64
)

// sensorRates publishes the last window's measurements for Stats, as
// float64 bits.
type sensorRates struct {
	putRate, getRate, scanRate atomic.Uint64
	stallPct                   atomic.Uint64
}

func storeFloat(u *atomic.Uint64, v float64) { u.Store(math.Float64bits(v)) }
func loadFloat(u *atomic.Uint64) float64     { return math.Float64frombits(u.Load()) }

// sensorSample is one reading of the cumulative counters.
type sensorSample struct {
	writes, gets, scans uint64
	inPlace             uint64
	stallNs             uint64
	at                  time.Time
}

func (db *DB) sensorSampleNow() sensorSample {
	return sensorSample{
		// Hits+memtable falls counts every user mutation exactly once
		// (batch ops included), unlike Puts which misses batch traffic.
		writes:  db.stats.membufferHits.Load() + db.stats.memtableWrites.Load(),
		gets:    db.stats.gets.Load(),
		scans:   db.stats.scans.Load() + db.stats.iterators.Load(),
		inPlace: db.stats.inPlaceHits.Load(),
		stallNs: db.stats.stallNanos.Load(),
		at:      time.Now(),
	}
}

// membufferFraction returns the LIVE Membuffer share of the memory
// budget — the configured fraction until the controller (or
// SetMembufferFraction) first moves it.
func (db *DB) membufferFraction() float64 {
	return math.Float64frombits(db.mbfFrac.Load())
}

// memtableTarget is the live Memtable size that triggers persisting:
// the complement of the Membuffer share. Every former call site of the
// static cfg.memtableTargetBytes reads this instead.
func (db *DB) memtableTarget() int64 {
	return db.cfg.memtableTargetBytesAt(db.membufferFraction())
}

// newMembufferNow builds a Membuffer at the live fraction.
func (db *DB) newMembufferNow() *membuffer.Buffer {
	return db.cfg.newMembufferAt(db.membufferFraction())
}

// MembufferFraction reports the live Membuffer share (diagnostics; also
// surfaced as Stats.MembufferFraction).
func (db *DB) MembufferFraction() float64 { return db.membufferFraction() }

// SetMembufferFraction resizes the Membuffer to the given share of the
// memory budget in one resize epoch: the active buffer is sealed at its
// old capacity and drained through the immutable-Membuffer path while a
// fresh buffer at the new capacity absorbs writes. Safe to call
// concurrently with all operations. With AdaptiveMemory enabled the
// controller may move the split again on its next window; pin a fixed
// split by opening without AdaptiveMemory instead.
func (db *DB) SetMembufferFraction(f float64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if f <= 0 || f >= 1 {
		return fmt.Errorf("core: SetMembufferFraction(%v): fraction must be in (0,1)", f)
	}
	if db.gen.Load().mbf == nil {
		return fmt.Errorf("core: SetMembufferFraction: membuffer disabled: %w", kv.ErrNotSupported)
	}
	db.resizeEpoch(f)
	return nil
}

// resizeEpoch performs one Membuffer resize: the same switch protocol as
// a master scan's seal (Algorithm 3 lines 4–11), except the incoming
// buffer has a different capacity and no sequence point is taken. Under
// drainMu it is mutually exclusive with persist seals, master scans,
// fallback scans and batch application, so the Get freshness order and
// the WAL-truncation invariant hold unchanged — to every other thread a
// resize is indistinguishable from a scan's generation switch.
func (db *DB) resizeEpoch(frac float64) {
	db.drainMu.Lock()
	if db.closed.Load() {
		db.drainMu.Unlock()
		return
	}
	old := db.gen.Load()
	if old.mbf == nil {
		db.drainMu.Unlock()
		return
	}
	oldFrac := db.membufferFraction()
	var start time.Time
	if db.tel != nil {
		start = time.Now()
	}
	// Publish the fraction first so the new buffer and every target
	// computation after the switch agree on the new split.
	db.mbfFrac.Store(math.Float64bits(frac))

	db.pauseWriters.Store(true)
	db.pauseDraining.Store(true)
	db.gen.Store(&generation{mbf: db.newMembufferNow(), mtb: old.mtb})
	old.mbf.Freeze()
	db.immMbf.Store(old.mbf)
	db.domain.Synchronize()
	db.drainBufferInto(old.mbf, old.mtb, 0)
	db.immMbf.Store(nil)
	db.pauseWriters.Store(false)
	db.pauseDraining.Store(false)
	db.drainMu.Unlock()

	db.stats.resizes.Add(1)
	if t := db.tel; t != nil {
		t.events.Emit(obs.Event{
			Type: obs.EventResize, Dur: time.Since(start),
			Detail: fmt.Sprintf("membuffer fraction %.3f -> %.3f", oldFrac, frac),
		})
	}
	// A shrink of the Membuffer grows the Memtable's share and vice
	// versa; if the new target is already exceeded, wake the persister.
	if db.gen.Load().mtb.approxBytes() >= db.memtableTarget() {
		db.signalPersist()
	}
}

// adaptLoop is the resize controller: once per AdaptiveWindow it turns
// the counter deltas into window rates, distils them into two smoothed
// shares —
//
//	scan share         — weighted scans over all traffic. The dominant
//	                     shrink signal: every master scan drains the
//	                     whole Membuffer before its sequence point, so
//	                     its cost is linear in the buffer size while
//	                     its benefit is zero.
//	flow-through share — updates that INSERT (as opposed to updating a
//	                     resident key in place), over point traffic. A
//	                     mild cap: inserted bytes must all drain back
//	                     out, and the seal-time full drain pauses
//	                     writers in proportion to occupancy, so a
//	                     zero-reuse update stream is best served by a
//	                     mid-sized buffer (adaptWriteCap). In-place
//	                     updates are the opposite — §4.4's update-heavy
//	                     case, a working set resident in the buffer,
//	                     absorbed with no drain debt — and push back
//	                     toward the max, as does read-mostly traffic.
//
// and maps them onto [AdaptiveMinFraction, AdaptiveMaxFraction]:
//
//	target = min + (max-min) · (1 − scanShare) · (1 − cap·writeShare·(1 − inPlaceShare))
//
// A resize epoch fires when the live split is off the target by more
// than the relative deadband (adaptRelDeadband).
func (db *DB) adaptLoop() {
	defer db.wg.Done()
	tick := time.NewTicker(db.cfg.AdaptiveWindow)
	defer tick.Stop()
	last := db.sensorSampleNow()
	// The smoothed shares start at "no scans, balanced point traffic,
	// no reuse" — agreeing with the default starting fraction rather
	// than forcing a resize before the first real window.
	smoothScan, smoothWrite, smoothInPlace := 0.0, 0.5, 0.0
	for {
		select {
		case <-db.closing:
			return
		case <-tick.C:
		}
		cur := db.sensorSampleNow()
		secs := cur.at.Sub(last.at).Seconds()
		if secs <= 0 {
			continue
		}
		dw := cur.writes - last.writes
		dg := cur.gets - last.gets
		ds := cur.scans - last.scans
		dip := cur.inPlace - last.inPlace
		dstall := cur.stallNs - last.stallNs
		last = cur

		storeFloat(&db.sensor.putRate, float64(dw)/secs)
		storeFloat(&db.sensor.getRate, float64(dg)/secs)
		storeFloat(&db.sensor.scanRate, float64(ds)/secs)
		// Stall percentage of the wall window, summed across stalled
		// writers — can exceed 100 under a multi-threaded write storm.
		storeFloat(&db.sensor.stallPct, 100*float64(dstall)/(secs*1e9))

		wf, gf, sf := float64(dw), float64(dg), adaptScanWeight*float64(ds)
		if wf+gf+sf < adaptMinWindowOps {
			continue // idle window: no signal, keep the split
		}
		scanShare := sf / (wf + gf + sf)
		writeShare := 1.0
		if wf+gf > 0 {
			writeShare = wf / (wf + gf)
		}
		inPlaceShare := 0.0
		if dw > 0 {
			inPlaceShare = float64(dip) / float64(dw)
		}
		if scanShare > smoothScan {
			smoothScan += adaptScanAttackGain * (scanShare - smoothScan)
		} else {
			smoothScan += adaptShareGain * (scanShare - smoothScan)
		}
		smoothWrite += adaptShareGain * (writeShare - smoothWrite)
		smoothInPlace += adaptShareGain * (inPlaceShare - smoothInPlace)
		target := db.cfg.AdaptiveMinFraction +
			(db.cfg.AdaptiveMaxFraction-db.cfg.AdaptiveMinFraction)*
				(1-smoothScan)*(1-adaptWriteCap*smoothWrite*(1-smoothInPlace))
		target = math.Max(db.cfg.AdaptiveMinFraction, math.Min(db.cfg.AdaptiveMaxFraction, target))
		curFrac := db.membufferFraction()
		diff := math.Abs(target - curFrac)
		if diff < adaptMinStep || diff/math.Max(curFrac, target) < adaptRelDeadband {
			continue
		}
		db.resizeEpoch(target)
	}
}
