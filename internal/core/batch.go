package core

import (
	"context"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/skiplist"
	"flodb/internal/wal"
)

// Apply commits every mutation in b atomically.
//
// Durability and recovery are all-or-nothing: the whole batch is appended
// as ONE WAL record (kv.EncodeBatchRecord), so the log's per-record CRC
// framing guarantees that after a crash either every operation replays or
// none does — and under DurabilitySync the batch costs a single
// group-committed fsync, amortized across its operations the way the
// paper's drain threads amortize skiplist traversals across a
// multi-insert batch (§4.2).
//
// The memory-component application runs under drainMu, which serializes it
// with generation switches (persist seals, master scans, fallback scans).
// That exclusion is what makes the per-op routing safe: with no immutable
// Membuffer in existence and no switch in flight, an operation either
// completes in the Membuffer (in-place update or insert) or — only when
// its key is absent from the Membuffer and the target bucket is full —
// goes directly into the Memtable as part of one multi-insert holding a
// contiguous sequence range, without ever being shadowed by a staler
// Membuffer entry (the Get freshness invariant of Algorithm 2).
//
// Visibility: scans never observe a partial batch. A scan whose sequence
// number predates the batch skips every batch entry (or restarts, per
// Algorithm 3); a scan led after Apply returns drains the Membuffer first
// and sees every entry. Point Gets racing with Apply may observe a prefix
// of the batch — the atomicity contract is about durability and scans, not
// read isolation.
func (db *DB) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadPersistErr(); err != nil {
		return err
	}
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	if b == nil || b.Len() == 0 {
		return nil
	}
	db.stats.batches.Add(1)
	db.stats.batchOps.Add(uint64(b.Len()))

	if err := db.applyBackpressure(ctx); err != nil {
		return err
	}

	var applyStart time.Time
	if t := db.tel; t != nil {
		applyStart = time.Now()
		defer func() { t.batchLat.Observe(time.Since(applyStart)) }()
	}
	syncW, syncOff, err := db.applyLocked(b, d)
	if err != nil {
		return err
	}
	// The fsync wait of a Sync-class batch runs AFTER drainMu is
	// released: the batch is already applied and logged, and holding the
	// store's switch/scan lock across a disk barrier would hand every
	// scanner and the persister the fsync's latency.
	if d == kv.DurabilitySync {
		return db.commitSync(syncW, syncOff)
	}
	return nil
}

// applyBackpressure waits out memory-component and L0 backpressure
// before a batch application, mirroring update's slow path: a full
// Memtable with a pending persist, a badly overshot Memtable, and an
// overloaded L0 all stall the caller. Each lap is a cancellation point —
// this wait is unbounded — and the stalled time feeds the adaptive
// sensor (§4.4), exactly as per-op writes do.
func (db *DB) applyBackpressure(ctx context.Context) error {
	var stallStart time.Time
	for spins := 0; ; spins++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if db.closed.Load() {
			return ErrClosed
		}
		if err := db.loadPersistErr(); err != nil {
			return err
		}
		g := db.gen.Load()
		if over := g.mtb.approxBytes(); over > db.memtableTarget() {
			db.signalPersist()
			if db.immMtb.Load() != nil || over > 2*db.memtableTarget() {
				if stallStart.IsZero() {
					stallStart = time.Now()
				}
				db.backoff(spins)
				continue
			}
		}
		if db.store != nil && db.store.NeedsStall() {
			db.store.MaybeScheduleCompaction()
			db.backoff(spins)
			continue
		}
		break
	}
	if !stallStart.IsZero() {
		stall := time.Since(stallStart)
		db.stats.stallNanos.Add(uint64(stall))
		if t := db.tel; t != nil {
			t.stallLat.Observe(stall)
		}
	}
	return nil
}

// ResolveDurability folds per-op write options over the store's default
// durability class, rejecting logged classes on a store with no log.
// Committer pipelines resolve at enqueue time — grouping enqueued
// operations into durability runs needs the resolved class before the
// engine sees the op.
func (db *DB) ResolveDurability(opts ...kv.WriteOption) (kv.Durability, error) {
	return db.resolveDurability(opts)
}

// CommitBatch is the committer-pipeline commit primitive: it applies b
// exactly like Apply — one WAL record, one drainMu hold, one RCU read
// section, one multi-insert for the Memtable spill — but attributes the
// batch as the puts individual Puts and deletes individual Deletes it
// coalesced, not as one logical batch. The sharded engine's per-shard
// committers drain their queues into CommitBatch calls, so a write storm
// pays the per-operation bookkeeping (stats, WAL framing, lock and RCU
// transitions) once per drained group instead of once per op, while
// Stats still counts what callers actually did.
//
// d must already be resolved (ResolveDurability); batch entries commit
// under that one class. Under DurabilitySync the call returns after one
// group-committed fsync covers the whole group.
func (db *DB) CommitBatch(ctx context.Context, b *kv.Batch, d kv.Durability, puts, deletes uint64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadPersistErr(); err != nil {
		return err
	}
	if b == nil || b.Len() == 0 {
		return nil
	}
	db.stats.puts.Add(puts)
	db.stats.deletes.Add(deletes)
	if err := db.applyBackpressure(ctx); err != nil {
		return err
	}
	var start time.Time
	if db.tel != nil {
		start = time.Now()
	}
	syncW, syncOff, err := db.applyLocked(b, d)
	if err != nil {
		return err
	}
	if d == kv.DurabilitySync {
		if err := db.commitSync(syncW, syncOff); err != nil {
			return err
		}
	}
	if t := db.tel; t != nil {
		// Each coalesced op records the group's commit latency in its
		// own op histogram — the engine-side cost its caller paid,
		// excluding queue wait — so the per-op quantiles keep counting
		// ops whether they arrived solo or pipelined.
		el := time.Since(start)
		t.batchLat.Observe(el)
		for i := uint64(0); i < puts; i++ {
			t.putLat.Observe(el)
		}
		for i := uint64(0); i < deletes; i++ {
			t.deleteLat.Observe(el)
		}
	}
	return nil
}

// CommitOne is CommitBatch's singleton form: a committer pipeline whose
// drain produced a run of one op skips the batch arena and the drainMu
// hold and routes the op through the same Membuffer-first update path a
// direct Put takes — restoring the paper's lock-free fast path for an
// uncontended shard. key and value are cloned here, exactly as
// Put/Delete clone; d must already be resolved.
func (db *DB) CommitOne(ctx context.Context, key, value []byte, tombstone bool, d kv.Durability) error {
	if tombstone {
		db.stats.deletes.Add(1)
		value = tombstoneMarker
	} else {
		db.stats.puts.Add(1)
		value = keys.Clone(value)
	}
	if t := db.tel; t != nil {
		start := time.Now()
		err := db.update(ctx, keys.Clone(key), value, tombstone, d)
		if tombstone {
			t.deleteLat.Observe(time.Since(start))
		} else {
			t.putLat.Observe(time.Since(start))
		}
		return err
	}
	return db.update(ctx, keys.Clone(key), value, tombstone, d)
}

// applyLocked logs and applies the batch under drainMu, returning the
// commit-record position for a Sync-class caller to group-commit.
func (db *DB) applyLocked(b *kv.Batch, d kv.Durability) (*wal.Writer, int64, error) {
	db.drainMu.Lock()
	defer db.drainMu.Unlock()
	if db.closed.Load() {
		return nil, 0, ErrClosed
	}

	// Under drainMu, pauseWriters is stably false and immMbf stably nil:
	// both are only set by drainMu holders and cleared before release. The
	// RCU read section still brackets the mutation so a switch that starts
	// right after we release the lock synchronizes behind us.
	h := db.handle()
	defer db.putHandle(h)
	h.Enter()
	defer h.Exit()

	g := db.gen.Load()
	var syncW *wal.Writer
	var syncOff int64
	if d != kv.DurabilityNone && g.mtb.wal != nil {
		off, err := g.mtb.wal.Append(kv.EncodeBatchRecord(b))
		if err != nil {
			return nil, 0, err
		}
		syncW, syncOff = g.mtb.wal, off
	}

	ops := b.Ops()
	var direct []skiplist.KV
	for i := range ops {
		op := &ops[i]
		tomb := op.Kind == keys.KindDelete
		val := op.Value
		if tomb {
			val = tombstoneMarker
		}
		if g.mbf != nil {
			if ok, inPlace := g.mbf.Put(op.Key, val, tomb); ok {
				db.stats.membufferHits.Add(1)
				if inPlace {
					db.stats.inPlaceHits.Add(1)
				}
				continue
			}
		}
		direct = append(direct, skiplist.KV{Key: op.Key, Entry: &skiplist.Entry{Value: val, Tombstone: tomb}})
	}
	if len(direct) > 0 {
		// One contiguous sequence range for the whole spill, assigned in
		// batch order so a later op on the same key wins the multi-insert.
		end := db.seq.Add(uint64(len(direct)))
		start := end - uint64(len(direct)) + 1
		for i := range direct {
			direct[i].Entry.Seq = start + uint64(i)
		}
		g.mtb.list.MultiInsert(direct)
		db.stats.memtableWrites.Add(uint64(len(direct)))
	}
	if g.mtb.approxBytes() >= db.memtableTarget() {
		db.signalPersist()
	}
	return syncW, syncOff, nil
}
