package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"flodb/internal/keys"
)

// TestIteratorMatchesScan drives random data through drains and persists,
// then checks that the streaming iterator yields exactly what Scan
// materializes, in the same order.
func TestIteratorMatchesScan(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10 // tiny: constant drains and persists
	db := openTestDB(t, cfg)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		k := spreadKey(uint64(rng.Intn(900)))
		if rng.Intn(6) == 0 {
			if err := db.Delete(bg, k); err != nil {
				t.Fatal(err)
			}
		} else if err := db.Put(bg, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	bounds := [][2][]byte{
		{nil, nil},
		{spreadKey(100), spreadKey(400)},
		{spreadKey(0), spreadKey(1)},
	}
	for _, bd := range bounds {
		low, high := bd[0], bd[1]
		want, err := db.Scan(bg, low, high)
		if err != nil {
			t.Fatal(err)
		}
		it, err := db.NewIterator(bg, low, high)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if i >= len(want) {
				t.Fatalf("iterator yielded more than Scan's %d pairs", len(want))
			}
			if !bytes.Equal(it.Key(), want[i].Key) || !bytes.Equal(it.Value(), want[i].Value) {
				t.Fatalf("pair %d: iterator (%x,%q) != scan (%x,%q)",
					i, it.Key(), it.Value(), want[i].Key, want[i].Value)
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(want) {
			t.Fatalf("iterator yielded %d pairs, Scan %d", i, len(want))
		}
		it.Close()
	}
}

// TestIteratorStreamsWithoutMaterializing iterates a range much larger
// than the memory component and asserts — white-box — that the iterator
// never buffers more than one prefetch chunk.
func TestIteratorStreamsWithoutMaterializing(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10 // 64 KiB memory component
	db := openTestDB(t, cfg)

	const n = 20000
	val := bytes.Repeat([]byte("x"), 64) // ~1.4 MiB total: >> memory component
	for i := 0; i < n; i++ {
		if err := db.Put(bg, spreadKey(uint64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitDiskQuiesce()

	iter, err := db.NewIterator(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer iter.Close()
	st, ok := iter.(*iterState)
	if !ok {
		t.Fatalf("NewIterator returned %T, want *iterState", iter)
	}
	count, maxBuf := 0, 0
	for ok := iter.First(); ok; ok = iter.Next() {
		if len(st.buf) > maxBuf {
			maxBuf = len(st.buf)
		}
		count++
	}
	if err := iter.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d of %d keys", count, n)
	}
	if maxBuf > defaultIteratorChunk {
		t.Fatalf("iterator buffered %d pairs, chunk bound is %d", maxBuf, defaultIteratorChunk)
	}
	t.Logf("streamed %d keys with at most %d pairs resident", count, maxBuf)
}

// TestIteratorSeekAndContract covers the cursor contract: Seek positioning
// and clamping, Next-implies-First, exhaustion, and Close.
func TestIteratorSeekAndContract(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := 0; i < 100; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i*2)), keys.EncodeUint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}

	it, err := db.NewIterator(bg, keys.EncodeUint64(10), keys.EncodeUint64(50))
	if err != nil {
		t.Fatal(err)
	}

	// Next on an unpositioned iterator behaves like First.
	if !it.Next() || keys.DecodeUint64(it.Key()) != 10 {
		t.Fatalf("Next-as-First got %x", it.Key())
	}
	// Seek to an absent key positions at the next present one.
	if !it.Seek(keys.EncodeUint64(31)) || keys.DecodeUint64(it.Key()) != 32 {
		t.Fatalf("Seek(31) got %x", it.Key())
	}
	// Seek below low clamps to low.
	if !it.Seek(keys.EncodeUint64(2)) || keys.DecodeUint64(it.Key()) != 10 {
		t.Fatalf("Seek below low got %x", it.Key())
	}
	// Seek past high exhausts.
	if it.Seek(keys.EncodeUint64(60)) {
		t.Fatalf("Seek past high still valid at %x", it.Key())
	}
	// Full drive: 10,12,...,48.
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if got := keys.DecodeUint64(it.Key()); got != uint64(10+2*count) {
			t.Fatalf("pair %d: key %d", count, got)
		}
		count++
	}
	if count != 20 {
		t.Fatalf("drove %d pairs, want 20", count)
	}
	if it.Key() != nil || it.Value() != nil {
		t.Fatal("Key/Value must be nil when exhausted")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if it.First() || it.Next() {
		t.Fatal("closed iterator repositioned")
	}
}

// TestScanChunkDetectsInPlaceOverwriteConflict pins the Algorithm 3
// conflict rule deterministically: an in-place Memtable overwrite that
// destroys a pre-snapshot value must flag a conflict, while a
// post-snapshot INSERT (CreateSeq > scanSeq) must be skipped silently.
func TestScanChunkDetectsInPlaceOverwriteConflict(t *testing.T) {
	cfg := testConfig(t)
	cfg.DisableMembuffer = true // writes take Memtable seqs immediately
	db := openTestDB(t, cfg)

	for i := 0; i < 10; i++ {
		if err := db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.seq.Load()

	// A brand-new key after the snapshot: skipped, no conflict.
	if err := db.Put(bg, keys.EncodeUint64(100), []byte("new-key")); err != nil {
		t.Fatal(err)
	}
	pairs, _, conflict, err := db.scanChunk(bg, nil, false, nil, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conflict {
		t.Fatal("post-snapshot insert must not conflict")
	}
	if len(pairs) != 10 {
		t.Fatalf("snapshot read saw %d pairs, want 10", len(pairs))
	}

	// An in-place overwrite of a pre-snapshot key: the old value is gone,
	// the snapshot is unrecoverable — conflict.
	if err := db.Put(bg, keys.EncodeUint64(5), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	_, _, conflict, err = db.scanChunk(bg, nil, false, nil, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !conflict {
		t.Fatal("in-place overwrite of a pre-snapshot value must conflict")
	}

	// The public paths self-heal: a fresh iterator takes a fresh snapshot
	// and must see the overwrite.
	it, err := db.NewIterator(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Seek(keys.EncodeUint64(5)) || string(it.Value()) != "overwritten" {
		t.Fatalf("fresh iterator: %q", it.Value())
	}
}

// TestIteratorUnderConcurrentWriters streams a stable key region while
// writers hammer a disjoint region, verifying the cursor's output equals
// both Scan and the expected stable contents despite restarts; then
// streams a region whose VALUES are being overwritten in place and checks
// the key set stays exact.
func TestIteratorUnderConcurrentWriters(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10
	db := openTestDB(t, cfg)

	// Region A (stable): keys [0,2000). Region B (churn): keys
	// [2000,6000).
	const stable = 2000
	want := map[string]string{}
	for i := 0; i < stable; i++ {
		k, v := spreadKey(uint64(i)), fmt.Sprintf("stable%d", i)
		if err := db.Put(bg, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[string(k)] = v
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				k := spreadKey(uint64(stable + rng.Intn(4000)))
				if err := db.Put(bg, k, []byte(fmt.Sprintf("churn%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// The spread permutation interleaves regions A and B across the whole
	// keyspace, so churn writes land between stable keys: every chunk
	// refill races with in-place updates nearby.
	for round := 0; round < 20; round++ {
		got := map[string]string{}
		it, err := db.NewIterator(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for ok := it.First(); ok; ok = it.Next() {
			got[string(it.Key())] = string(it.Value())
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("round %d: stable key %x = %q, want %q", round, k, got[k], v)
			}
		}
	}
	stop.Store(false) // keep writers running for the in-place phase

	// In-place churn over the STABLE region: keys fixed, values changing.
	// The key set the iterator reports must stay exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := spreadKey(uint64(i % stable))
			if err := db.Put(bg, k, []byte(fmt.Sprintf("rewrite%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 10; round++ {
		seen := 0
		it, err := db.NewIterator(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for ok := it.First(); ok; ok = it.Next() {
			if _, isStable := want[string(it.Key())]; isStable {
				seen++
			}
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		it.Close()
		if seen != stable {
			t.Fatalf("round %d: saw %d of %d stable keys", round, seen, stable)
		}
	}
	stop.Store(true)
	wg.Wait()
	s := db.Stats()
	t.Logf("restarts=%d fallbacks=%d iterators=%d", s.ScanRestarts, s.FallbackScans, s.Iterators)
}
