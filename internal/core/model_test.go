package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// TestModelCheckSequential runs a long random operation sequence against
// both FloDB and an in-memory oracle map, comparing every read and every
// scan. Sequential execution makes the expected state exact, so this
// catches any divergence across the membuffer/memtable/disk boundaries,
// tombstone handling, and drain races with a single client.
func TestModelCheckSequential(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10 // tiny: constant drains and persists
	db := openTestDB(t, cfg)

	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(12345))
	const ops = 30000
	const keySpace = 700

	randKey := func() []byte { return spreadKey(uint64(rng.Intn(keySpace))) }

	for i := 0; i < ops; i++ {
		switch rng.Intn(12) {
		case 10, 11: // atomic write batch
			b := kv.NewBatch()
			for n := 1 + rng.Intn(8); n > 0; n-- {
				k := randKey()
				if rng.Intn(5) == 0 {
					b.Delete(k)
					delete(oracle, string(k))
				} else {
					v := fmt.Sprintf("b%d-%d", i, n)
					b.Put(k, []byte(v))
					oracle[string(k)] = v
				}
			}
			if err := db.Apply(bg, b); err != nil {
				t.Fatal(err)
			}
		case 0, 1, 2, 3: // put
			k := randKey()
			v := fmt.Sprintf("v%d", i)
			if err := db.Put(bg, k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[string(k)] = v
		case 4: // delete
			k := randKey()
			if err := db.Delete(bg, k); err != nil {
				t.Fatal(err)
			}
			delete(oracle, string(k))
		case 5, 6, 7, 8: // get
			k := randKey()
			v, found, err := db.Get(bg, k)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := oracle[string(k)]
			if found != ok {
				t.Fatalf("op %d: Get(%x) found=%v oracle=%v", i, k, found, ok)
			}
			if found && string(v) != want {
				t.Fatalf("op %d: Get(%x) = %q, oracle %q", i, k, v, want)
			}
		case 9: // occasionally scan everything and compare, both ways
			if i%1000 != 999 {
				continue
			}
			pairs, err := db.Scan(bg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != len(oracle) {
				t.Fatalf("op %d: scan %d pairs, oracle %d", i, len(pairs), len(oracle))
			}
			for _, p := range pairs {
				if oracle[string(p.Key)] != string(p.Value) {
					t.Fatalf("op %d: scan %x = %q, oracle %q", i, p.Key, p.Value, oracle[string(p.Key)])
				}
			}
			// The streaming iterator must agree with Scan pair for pair.
			it, err := db.NewIterator(bg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			j := 0
			for ok := it.First(); ok; ok = it.Next() {
				if j >= len(pairs) || !bytes.Equal(it.Key(), pairs[j].Key) || !bytes.Equal(it.Value(), pairs[j].Value) {
					t.Fatalf("op %d: iterator diverged from scan at %d", i, j)
				}
				j++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			it.Close()
			if j != len(pairs) {
				t.Fatalf("op %d: iterator %d pairs, scan %d", i, j, len(pairs))
			}
		}
	}
	// Final full verification.
	for k, want := range oracle {
		v, found, err := db.Get(bg, []byte(k))
		if err != nil || !found || string(v) != want {
			t.Fatalf("final: key %x = %q/%v/%v, want %q", k, v, found, err, want)
		}
	}
	t.Logf("model check: %d ops, final size %d, internal=%+v", ops, len(oracle), db.Internal())
}

// TestModelCheckAcrossRestart extends the model check across a clean
// restart: the oracle must match after reopen.
func TestModelCheckAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemoryBytes: 64 << 10}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(999))
	for i := 0; i < 5000; i++ {
		k := spreadKey(uint64(rng.Intn(300)))
		if rng.Intn(5) == 0 {
			db.Delete(bg, k)
			delete(oracle, string(k))
		} else {
			v := fmt.Sprintf("r%d", i)
			db.Put(bg, k, []byte(v))
			oracle[string(k)] = v
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	pairs, err := db2.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(oracle) {
		t.Fatalf("after restart: %d pairs, oracle %d", len(pairs), len(oracle))
	}
	for _, p := range pairs {
		if oracle[string(p.Key)] != string(p.Value) {
			t.Fatalf("after restart: %x = %q, want %q", p.Key, p.Value, oracle[string(p.Key)])
		}
	}
}

// TestValuesAreStableUnderDrain verifies values survive the full
// membuffer→memtable→disk journey bit-exactly, including binary content.
func TestValuesAreStableUnderDrain(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10
	db := openTestDB(t, cfg)
	rng := rand.New(rand.NewSource(5))
	want := make(map[string][]byte)
	for i := 0; i < 2000; i++ {
		k := spreadKey(uint64(i))
		v := make([]byte, rng.Intn(300))
		rng.Read(v)
		if err := db.Put(bg, k, v); err != nil {
			t.Fatal(err)
		}
		want[string(k)] = v
	}
	db.WaitDiskQuiesce()
	for k, v := range want {
		got, found, err := db.Get(bg, []byte(k))
		if err != nil || !found || !bytes.Equal(got, v) {
			t.Fatalf("binary value corrupted for %x (len %d vs %d)", k, len(got), len(v))
		}
	}
}

// TestEmptyValueAndEmptyKey covers degenerate shapes end to end.
func TestEmptyValueAndEmptyKey(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	if err := db.Put(bg, []byte{}, []byte{}); err != nil {
		t.Fatal(err)
	}
	v, found, err := db.Get(bg, []byte{})
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty key/value: %v %v %v", v, found, err)
	}
	if err := db.Put(bg, []byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, found, _ = db.Get(bg, []byte("k"))
	if !found || len(v) != 0 {
		t.Fatalf("nil value: %v %v", v, found)
	}
	// Tombstone for the empty key.
	if err := db.Delete(bg, []byte{}); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.Get(bg, []byte{}); found {
		t.Fatal("deleted empty key visible")
	}
}

func TestLargeValues(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	big := bytes.Repeat([]byte("B"), 1<<20) // 1 MiB value > memtable target
	if err := db.Put(bg, []byte("big"), big); err != nil {
		t.Fatal(err)
	}
	db.WaitDiskQuiesce()
	v, found, err := db.Get(bg, []byte("big"))
	if err != nil || !found || !bytes.Equal(v, big) {
		t.Fatalf("large value: found=%v len=%d err=%v", found, len(v), err)
	}
	keysList := make([][]byte, 0, 4)
	for i := 0; i < 4; i++ {
		k := keys.EncodeUint64(uint64(i))
		db.Put(bg, k, big)
		keysList = append(keysList, k)
	}
	db.WaitDiskQuiesce()
	for _, k := range keysList {
		if _, found, _ := db.Get(bg, k); !found {
			t.Fatalf("large value for %x lost", k)
		}
	}
}
