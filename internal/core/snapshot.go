package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/skiplist"
	"flodb/internal/storage"
)

// ErrSnapshotReleased is returned by reads on a Closed snapshot. It wraps
// kv.ErrSnapshotReleased.
var ErrSnapshotReleased = fmt.Errorf("flodb: %w", kv.ErrSnapshotReleased)

// Snapshot returns a read-only view pinned at the current state, in O(1)
// disk work: no memtable flush.
//
// Design note — how a single-versioned memory component serves
// repeatable reads. The paper's memory levels deliberately update in
// place (§3.2): the Membuffer overwrites hash slots and the Memtable
// swaps skiplist entries, so the version a long-lived reader needs is
// destroyed by the very next write of the same key. Earlier revisions
// therefore materialized every snapshot — a forced drain AND flush, so a
// handle cost an L0 table and snap-read ran 6× behind the baselines.
//
// The flush was never load-bearing, only the seal was. Snapshot now
// performs exactly the master-scan seal of Algorithm 3 lines 4–11 (swap
// in a fresh Membuffer, RCU-wait, drain the old one into the live
// Memtable — memory-to-memory, cheap) and then draws a sequence bound B
// while writers are still paused: every pre-seal write has seq < B and
// sits in the live Memtable, the sealed-but-unflushed Memtable, or
// sstables; every later write draws seq > B. The bound is registered
// with the skiplists' Retention before writers resume, which switches
// in-place updates from destructive swaps to version chaining
// (skiplist.Entry.PrevVersion) for exactly the versions active bounds
// still need — at most one retained version per open snapshot per hot
// key. Reads then resolve the live Memtable at B, fall through to the
// sealed Memtable and the pinned disk Version (GetAt filters seq <= B),
// and Close unregisters the bound so chains collapse back to single
// versions on the next overwrite. The memory component stays
// single-versioned whenever no snapshot is open; snapshots pay only for
// the keys overwritten while they live.
func (db *DB) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if db.store == nil {
		return nil, fmt.Errorf("flodb: snapshot without a disk component: %w", kv.ErrNotSupported)
	}
	if err := db.loadPersistErr(); err != nil {
		return nil, err
	}
	db.stats.snapshots.Add(1)
	var start time.Time
	if db.tel != nil {
		start = time.Now()
	}

	db.drainMu.Lock()
	db.pauseDraining.Store(true)
	db.pauseWriters.Store(true)

	old := db.gen.Load()
	if old.mbf != nil {
		// The Membuffer is unsequenced, so it cannot be bounded in place:
		// seal and drain it into the live Memtable first (Algorithm 3's
		// seal, no disk I/O).
		db.gen.Store(&generation{mbf: db.newMembufferNow(), mtb: old.mtb})
		old.mbf.Freeze()
		db.immMbf.Store(old.mbf)
		db.domain.Synchronize()
		db.drainBufferInto(old.mbf, old.mtb, 0)
		db.immMbf.Store(nil)
	} else {
		// Still wait the grace period: an in-flight writer may have drawn
		// a sequence number below the bound without having inserted yet.
		db.domain.Synchronize()
	}

	// Writers paused and drained: B cleanly separates past from future.
	bound := db.seq.Add(1)
	// Registered before writers resume, so the first post-B overwrite of
	// any key already chains the displaced pre-B version.
	db.registerBound(bound)

	// Capture the sealed-but-unflushed Memtable BEFORE pinning the disk
	// version. persistCycle's flush order (flush → install version →
	// synchronize → clear immMtb) guarantees that if the load returns nil
	// the data is already in the version we pin next; if it returns the
	// memtable, the captured list plus the pinned version together cover
	// everything (the merge dedups any overlap).
	var imm *skiplist.List
	if m := db.immMtb.Load(); m != nil && m != old.mtb {
		imm = m.list
	}
	v := db.store.PinVersion()

	db.pauseWriters.Store(false)
	db.pauseDraining.Store(false)
	db.drainMu.Unlock()

	if t := db.tel; t != nil {
		d := time.Since(start)
		t.snapLat.Observe(d)
		t.events.Emit(obs.Event{Type: obs.EventSnapshotPin, Dur: d, Detail: fmt.Sprintf("seq bound %d", bound)})
	}
	return &snapshot{db: db, seq: bound, ver: v, live: old.mtb.list, imm: imm}, nil
}

// snapshot is a sequence-bounded read view: the live memtable resolved
// through version chains at the bound, the sealed memtable captured at
// creation (if a flush was in flight), and a pinned disk version.
type snapshot struct {
	db     *DB
	seq    uint64
	ver    *storage.Version
	live   *skiplist.List
	imm    *skiplist.List // nil when no flush was in flight
	closed atomic.Bool
}

var _ kv.View = (*snapshot)(nil)

func (s *snapshot) check(ctx context.Context) error {
	if s.closed.Load() {
		return ErrSnapshotReleased
	}
	if s.db.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// Get returns the value key had at the snapshot point. The returned slice
// is a copy.
func (s *snapshot) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := s.check(ctx); err != nil {
		return nil, false, err
	}
	// Freshness order: live memtable (every entry there postdates the
	// sealed one), then the sealed memtable, then disk. Each level serves
	// the newest version <= bound or passes.
	for _, l := range [...]*skiplist.List{s.live, s.imm} {
		if l == nil {
			continue
		}
		if e, ok := l.GetAt(key, s.seq); ok {
			if e.Tombstone {
				return nil, false, nil
			}
			return keys.Clone(e.Value), true, nil
		}
	}
	v, _, kind, ok, err := s.db.store.GetAt(s.ver, key, s.seq)
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return keys.Clone(v), true, nil
}

// Scan materializes all pairs with low <= key < high at the snapshot
// point.
func (s *snapshot) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := s.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// NewIterator streams the snapshot's range. The iterator takes its own
// pin on the version and its own reference on the sequence bound, so it
// stays valid (and its versions stay retained) even if the snapshot
// handle is Closed mid-iteration.
func (s *snapshot) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	db := s.db
	// The bound reference is taken BEFORE the closed check: if it passed,
	// the handle's own reference was still registered at that moment, so
	// the bound's refcount never touches zero and no chain the iterator
	// needs is pruned.
	db.registerBound(s.seq)
	if err := s.check(ctx); err != nil {
		db.unregisterBound(s.seq)
		return nil, err
	}
	db.stats.iterators.Add(1)

	its := []storage.InternalIterator{newBoundListIter(s.live, s.seq)}
	if s.imm != nil {
		its = append(its, newBoundListIter(s.imm, s.seq))
	}
	db.store.AcquireVersion(s.ver)
	m, pins, err := db.store.NewVersionIterator(s.ver)
	if err != nil {
		db.store.ReleaseVersion(s.ver)
		db.unregisterBound(s.seq)
		return nil, err
	}
	its = append(its, m)
	ver, bound := s.ver, s.seq
	return storage.NewSnapshotIter(ctx, storage.NewMergingIterator(its...), storage.SnapshotIterOptions{
		Low: low, High: high, MaxSeq: bound,
		OnClose: func() {
			pins()
			db.store.ReleaseVersion(ver)
			db.unregisterBound(bound)
		},
	}), nil
}

// Close releases the snapshot's pinned version and retires its sequence
// bound (retained version chains collapse on subsequent overwrites).
// Reads after Close return ErrSnapshotReleased; iterators already
// created hold their own pin and bound reference and stay valid. Close
// is idempotent.
func (s *snapshot) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.db.unregisterBound(s.seq)
	s.db.store.ReleaseVersion(s.ver)
	if t := s.db.tel; t != nil {
		t.events.Emit(obs.Event{Type: obs.EventSnapshotUnpin, Detail: fmt.Sprintf("seq bound %d", s.seq)})
	}
	return nil
}
