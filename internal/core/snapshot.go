package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
)

// ErrSnapshotReleased is returned by reads on a Closed snapshot. It wraps
// kv.ErrSnapshotReleased.
var ErrSnapshotReleased = fmt.Errorf("flodb: %w", kv.ErrSnapshotReleased)

// Snapshot returns a read-only view pinned at the current state.
//
// Design note — why FloDB snapshots materialize the memory component
// rather than pinning it: the paper's memory levels are deliberately
// single-versioned. The Membuffer updates slots in place (§3.2) and the
// Memtable overwrites skiplist entries in place, so a version that a
// long-lived reader would need is destroyed by the very next write of the
// same key. Algorithm 3's restart machinery papers over that window for
// the duration of one scan, but a named snapshot has no bounded duration
// to restart across. A repeatable-read handle therefore cannot depend on
// the memory component at all: Snapshot runs one forced persist cycle —
// the master-scan seal of Algorithm 3 lines 4–11 (drain the Membuffer
// into the sealed Memtable), then a sequence point, then the Memtable
// flush of §4.2 — which materializes the drained delta as an L0 table,
// and pins the resulting immutable disk Version together with the
// sequence bound. Reads are then served purely from pinned immutable
// sstables, filtered at the bound; the multi-versioned baselines instead
// pin their native (memtable, sequence) snapshot for the handle's
// lifetime.
//
// The cost asymmetry is the paper's trade-off surfacing in the API:
// FloDB buys O(1) in-place writes by making point-in-time handles pay a
// flush, where the baselines pay for every write so handles are free.
func (db *DB) Snapshot(ctx context.Context) (kv.View, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if db.store == nil {
		return nil, fmt.Errorf("flodb: snapshot without a disk component: %w", kv.ErrNotSupported)
	}
	if err := db.loadPersistErr(); err != nil {
		return nil, err
	}
	db.stats.snapshots.Add(1)

	// persistMu held across cycle AND pin: no newer flush can land in
	// between, so every entry in the pinned version has seq <= bound and
	// the version holds exactly the state at the bound. (Compactions may
	// still install versions concurrently, but they only rearrange that
	// same <=bound data.)
	db.persistMu.Lock()
	bound, err := db.persistCycle()
	if err != nil {
		db.persistMu.Unlock()
		db.setPersistErr(err)
		return nil, err
	}
	v := db.store.PinVersion()
	db.persistMu.Unlock()

	return &snapshot{db: db, seq: bound, ver: v}, nil
}

// snapshot is a sequence-bounded read view over a pinned disk version.
type snapshot struct {
	db     *DB
	seq    uint64
	ver    *storage.Version
	closed atomic.Bool
}

var _ kv.View = (*snapshot)(nil)

func (s *snapshot) check(ctx context.Context) error {
	if s.closed.Load() {
		return ErrSnapshotReleased
	}
	if s.db.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// Get returns the value key had at the snapshot point. The returned slice
// is a copy.
func (s *snapshot) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := s.check(ctx); err != nil {
		return nil, false, err
	}
	v, _, kind, ok, err := s.db.store.GetAt(s.ver, key, s.seq)
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return keys.Clone(v), true, nil
}

// Scan materializes all pairs with low <= key < high at the snapshot
// point.
func (s *snapshot) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := s.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// NewIterator streams the snapshot's range. The iterator takes its own
// pin on the version, so it stays valid even if the snapshot handle is
// Closed mid-iteration.
func (s *snapshot) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	s.db.stats.iterators.Add(1)
	s.db.store.AcquireVersion(s.ver)
	m, err := s.db.store.NewVersionIterator(s.ver)
	if err != nil {
		s.db.store.ReleaseVersion(s.ver)
		return nil, err
	}
	ver := s.ver
	db := s.db
	return storage.NewSnapshotIter(ctx, m, storage.SnapshotIterOptions{
		Low: low, High: high, MaxSeq: s.seq,
		OnClose: func() { db.store.ReleaseVersion(ver) },
	}), nil
}

// Close releases the snapshot's pinned version. Reads after Close return
// ErrSnapshotReleased; iterators already created keep their own pin and
// stay valid. Close is idempotent.
func (s *snapshot) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.db.store.ReleaseVersion(s.ver)
	return nil
}
