package core

import (
	"context"
	"errors"
	"fmt"

	"flodb/internal/kv"
	"flodb/internal/wal"
)

// Checkpoint writes an openable copy of the store into dir (which must
// not exist or be empty) while the store stays online: immutable sstables
// are hard-linked from a pinned version, the manifest is rewritten, and
// the WAL tail is copied. Reopening the checkpoint replays that tail, so
// the copy holds a prefix-consistent state — every update in it was
// applied here before some point during the call, with no holes in WAL
// order. The active WAL segment is synced first, pulling that point as
// close to "now" as the write stream allows.
//
// With the WAL disabled the memory component is not captured: the
// checkpoint holds exactly the persisted (flushed) state.
func (db *DB) Checkpoint(ctx context.Context, dir string) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if db.store == nil {
		return fmt.Errorf("flodb: checkpoint without a disk component: %w", kv.ErrNotSupported)
	}
	if err := db.loadPersistErr(); err != nil {
		return err
	}
	db.stats.checkpoints.Add(1)

	// persistMu excludes generation switches for the whole copy. This is
	// what makes the WAL tail a clean prefix: WAL appends are buffered
	// (bufio), so around a switch the sealed segment's FILE can lag its
	// logical contents while the successor segment accumulates newer
	// records — copying in that window bakes a hole into the middle of
	// history (observed as a ~buffer-sized gap by the crash-consistency
	// test). With switches excluded, exactly one segment is active: we
	// sync it, and any appends racing the copy are a same-segment suffix
	// past our prefix — never a hole. Persists (and Snapshots) queue
	// behind the checkpoint; the copy is hard-links plus a WAL tail, so
	// the pause is short.
	db.persistMu.Lock()
	defer db.persistMu.Unlock()
	if g := db.gen.Load(); g.mtb.wal != nil {
		if err := g.mtb.wal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return err
		}
	}
	return db.store.Checkpoint(dir)
}
