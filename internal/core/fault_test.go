package core

import (
	"errors"
	"testing"
	"time"

	"flodb/internal/diskenv"
)

// TestFlushFaultSurfacesOnWrites injects a failure into the persist path
// and verifies the store degrades cleanly: the error reaches writers and
// Close, and nothing panics or hangs.
func TestFlushFaultSurfacesOnWrites(t *testing.T) {
	boom := errors.New("injected flush failure")
	fault := &diskenv.FaultPoint{}
	fault.Arm(boom, 1)

	cfg := testConfig(t)
	cfg.MemoryBytes = 32 << 10
	cfg.FlushFault = fault
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Write until the persist path trips the fault and surfaces it.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for i := 0; ; i++ {
		lastErr = db.Put(bg, spreadKey(uint64(i)), make([]byte, 128))
		if lastErr != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fault never surfaced to writers")
		}
	}
	if !errors.Is(lastErr, boom) {
		t.Fatalf("writer saw %v, want injected fault", lastErr)
	}
	if fault.Fired() != 1 {
		t.Fatalf("fault fired %d times", fault.Fired())
	}
	// Reads still work on the data that is in memory/disk.
	if _, _, err := db.Get(bg, spreadKey(0)); err != nil {
		t.Fatalf("reads should survive a persist failure: %v", err)
	}
	if err := db.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want injected fault", err)
	}
}

// TestPersistLimiterBoundsThroughput checks that a limiter on the persist
// path actually gates steady-state writes (the Fig 9 disk model).
func TestPersistLimiterBoundsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10
	cfg.DisableWAL = true
	cfg.PersistLimiter = diskenv.NewLimiter(64 << 10) // 64 KiB/s: very slow disk
	db := openTestDB(t, cfg)

	start := time.Now()
	written := 0
	// Write ~256 KiB of distinct keys: at 64 KiB/s persist and ~48 KiB
	// memtable target, backpressure must make this take >= ~2s.
	for i := 0; time.Since(start) < 5*time.Second; i++ {
		if err := db.Put(bg, spreadKey(uint64(i)), make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
		written += 264
		if written >= 256<<10 {
			break
		}
	}
	elapsed := time.Since(start)
	if written >= 256<<10 && elapsed < time.Second {
		t.Fatalf("limiter ignored: wrote %d bytes in %v", written, elapsed)
	}
	t.Logf("wrote %d bytes in %v under a 64KiB/s persist limiter", written, elapsed)
}
