package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb/internal/keys"
)

// TestScanSnapshotConsistency is the core serializability check: a writer
// updates a group of keys to the same version counter in one burst; scans
// must never observe two different counters for keys of one burst unless
// the burst was concurrent with the scan's sequence point. We verify the
// stronger monotonic property the paper's design gives: all values a scan
// returns for the group were current at some single point (no value older
// than another group member's by more than the in-flight burst).
func TestScanSnapshotConsistency(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 1 << 20
	db := openTestDB(t, cfg)

	const groupSize = 16
	groupKeys := make([][]byte, groupSize)
	for i := range groupKeys {
		// Spread across partitions so the group straddles membuffer areas.
		groupKeys[i] = spreadKey(uint64(i))
	}
	// Scans need bounds covering all group keys: use the full range.
	for _, k := range groupKeys {
		db.Put(bg, k, keys.EncodeUint64(0))
	}

	stop := make(chan struct{})
	var version atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: bump the whole group to version v, then v+1, ...
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := version.Load() + 1
			for _, k := range groupKeys {
				if err := db.Put(bg, k, keys.EncodeUint64(v)); err != nil {
					panic(err)
				}
			}
			version.Store(v) // burst complete
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	scans := 0
	for time.Now().Before(deadline) {
		before := version.Load()
		pairs, err := db.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		after := version.Load()
		got := map[uint64]int{}
		found := 0
		for _, p := range pairs {
			for _, k := range groupKeys {
				if keys.Equal(p.Key, k) {
					got[keys.DecodeUint64(p.Value)]++
					found++
				}
			}
		}
		if found != groupSize {
			t.Fatalf("scan returned %d group keys, want %d", found, groupSize)
		}
		// A consistent snapshot can straddle at most the bursts in flight
		// between before and after+1: observed versions must span at most
		// [before, after+1] and contain at most 2 distinct values (one
		// in-flight burst boundary).
		for v := range got {
			if v+1 < before || v > after+1 {
				t.Fatalf("scan observed version %d outside window [%d, %d]", v, before, after+1)
			}
		}
		if len(got) > 2 {
			t.Fatalf("scan observed %d distinct versions %v — torn snapshot", len(got), got)
		}
		scans++
	}
	close(stop)
	wg.Wait()
	if scans == 0 {
		t.Fatal("no scans completed")
	}
	t.Logf("completed %d scans, stats: %+v", scans, db.Stats())
}

func TestConcurrentScansPiggyback(t *testing.T) {
	cfg := testConfig(t)
	db := openTestDB(t, cfg)
	for i := 0; i < 1000; i++ {
		db.Put(bg, spreadKey(uint64(i)), []byte("v"))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Scan(bg, nil, nil); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	st := db.Internal()
	if st.MasterScans == 0 {
		t.Fatal("no master scans recorded")
	}
	if st.MasterScans+st.PiggybackScans < 160 {
		t.Fatalf("scan accounting: %+v", st)
	}
	t.Logf("master=%d piggyback=%d", st.MasterScans, st.PiggybackScans)
}

func TestScanWhileWriteHeavy(t *testing.T) {
	// The paper's 95/5 scan-write mix in miniature: heavy updates with
	// concurrent scans. Scans must always return sorted, deduplicated,
	// in-range results.
	cfg := testConfig(t)
	cfg.MemoryBytes = 256 << 10
	db := openTestDB(t, cfg)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				db.Put(bg, spreadKey(i%4096), keys.EncodeUint64(i))
			}
		}(w)
	}

	for s := 0; s < 50; s++ {
		pairs, err := db.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(pairs); i++ {
			if keys.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
				t.Fatal("scan results unsorted or duplicated")
			}
		}
	}
	close(stop)
	wg.Wait()
	st := db.Stats()
	t.Logf("restarts=%d fallbacks=%d scans=%d", st.ScanRestarts, st.FallbackScans, st.Scans)
}

func TestFallbackScanTriggers(t *testing.T) {
	// With a restart threshold of 1 and constant writes, fallback scans
	// must engage and still return correct results.
	cfg := testConfig(t)
	cfg.RestartThreshold = 1
	cfg.MemoryBytes = 128 << 10
	db := openTestDB(t, cfg)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			db.Put(bg, spreadKey(i%512), keys.EncodeUint64(i))
		}
	}()
	sawFallback := false
	for s := 0; s < 100 && !sawFallback; s++ {
		if _, err := db.Scan(bg, nil, nil); err != nil {
			t.Fatal(err)
		}
		sawFallback = db.Stats().FallbackScans > 0
	}
	close(stop)
	wg.Wait()
	// Fallback may legitimately not trigger if no restart happened, but
	// with threshold 1 and constant writes it overwhelmingly does; accept
	// either, but verify the counters are coherent.
	st := db.Stats()
	if st.FallbackScans > st.Scans {
		t.Fatalf("more fallbacks than scans: %+v", st)
	}
	t.Logf("restarts=%d fallbacks=%d", st.ScanRestarts, st.FallbackScans)
}

// TestScanSkipsPostSnapshotInserts pins the CreateSeq refinement: a key
// INSERTED (not overwritten) after the scan's sequence point must not
// force a restart — it simply is not part of the snapshot.
func TestScanSkipsPostSnapshotInserts(t *testing.T) {
	cfg := testConfig(t)
	cfg.RestartThreshold = 1000000 // make any restart visible in stats
	db := openTestDB(t, cfg)
	for i := 0; i < 100; i++ {
		db.Put(bg, spreadKey(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // insert brand-new keys only
		defer wg.Done()
		i := uint64(1 << 40)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			db.Put(bg, spreadKey(i), []byte("new"))
		}
	}()
	for s := 0; s < 50; s++ {
		if _, err := db.Scan(bg, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	st := db.Stats()
	// Fresh inserts may still occasionally conflict via drain-time
	// in-place rewrites of hot buckets; the overwhelming majority of
	// scans must complete without restarting.
	if st.ScanRestarts > st.Scans/2 {
		t.Fatalf("insert-only writers caused %d restarts over %d scans", st.ScanRestarts, st.Scans)
	}
	t.Logf("restarts=%d scans=%d", st.ScanRestarts, st.Scans)
}

func TestScanDuringPersist(t *testing.T) {
	// Scans racing persists must never lose keys: write a fixed key set,
	// then scan repeatedly while persists are forced.
	cfg := testConfig(t)
	cfg.MemoryBytes = 128 << 10
	db := openTestDB(t, cfg)
	const n = 1000
	for i := 0; i < n; i++ {
		db.Put(bg, spreadKey(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn distinct keys to force persists
		defer wg.Done()
		i := uint64(n)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			db.Put(bg, spreadKey(i), []byte("churn"))
		}
	}()
	for s := 0; s < 30; s++ {
		pairs, err := db.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, p := range pairs {
			if len(p.Value) == 8 && keys.DecodeUint64(p.Value) < n {
				seen++
			}
		}
		if seen != n {
			t.Fatalf("scan %d lost keys: saw %d of %d", s, seen, n)
		}
	}
	close(stop)
	wg.Wait()
}
