package core

import (
	"flodb/internal/obs"
	"flodb/internal/storage"
)

// telemetry is the optional half of the observability layer: latency
// histograms and the structured event log. It is nil when
// Config.DisableTelemetry is set, and every hot path guards its
// time.Now() calls behind that nil check — the counters (which are
// plain atomic adds) stay on unconditionally, so kv.Stats is always
// complete.
type telemetry struct {
	events *obs.EventLog

	putLat    *obs.Histogram
	getLat    *obs.Histogram
	deleteLat *obs.Histogram
	scanLat   *obs.Histogram
	batchLat  *obs.Histogram
	snapLat   *obs.Histogram
	// stallLat distributes the per-op writer stall time whose total
	// already feeds stats.stallNanos — the histogram is what makes a few
	// 100ms stalls distinguishable from many 1ms ones.
	stallLat *obs.Histogram
}

// initObs builds the DB's metrics registry. Every statCounters field IS
// a registered counter — kv.Stats reads the same atomics /metrics
// exports, so nothing double-counts — and the layers that keep their
// own atomics (wal.Metrics, storage.Metrics, the caches) get
// CounterFunc/GaugeFunc views computed at scrape time. Histograms and
// the event log are only created when telemetry is enabled.
func (db *DB) initObs() {
	reg := obs.NewRegistry()
	db.reg = reg
	s := &db.stats
	s.puts = reg.Counter("flodb_puts_total", "Put operations.")
	s.gets = reg.Counter("flodb_gets_total", "Get operations.")
	s.deletes = reg.Counter("flodb_deletes_total", "Delete operations.")
	s.scans = reg.Counter("flodb_scans_total", "Scan operations.")
	s.batches = reg.Counter("flodb_batches_total", "Atomic batches applied.")
	s.batchOps = reg.Counter("flodb_batch_ops_total", "Operations inside applied batches.")
	s.iterators = reg.Counter("flodb_iterators_total", "Iterators opened.")
	s.snapshots = reg.Counter("flodb_snapshots_total", "Snapshots taken.")
	s.checkpoints = reg.Counter("flodb_checkpoints_total", "Checkpoints taken.")
	s.scanRestarts = reg.Counter("flodb_scan_restarts_total", "Scan chunks restarted by a generation switch.")
	s.fallbackScans = reg.Counter("flodb_fallback_scans_total", "Scans that fell back to blocking writers (Algorithm 3).")
	s.membufferHits = reg.Counter("flodb_membuffer_hits_total", "Writes absorbed by the Membuffer fast path.")
	s.memtableWrites = reg.Counter("flodb_memtable_writes_total", "Writes that took the direct-to-Memtable path.")
	s.drainedEntries = reg.Counter("flodb_drained_entries_total", "Entries drained Membuffer->Memtable.")
	s.drainBatches = reg.Counter("flodb_drain_batches_total", "Drain multi-insert batches.")
	s.persists = reg.Counter("flodb_persists_total", "Seal->drain->flush persist cycles.")
	s.masterScans = reg.Counter("flodb_master_scans_total", "Master scans (sealed a Membuffer generation).")
	s.piggybackScans = reg.Counter("flodb_piggyback_scans_total", "Scans piggybacked on a master's sequence point.")
	s.helpDrains = reg.Counter("flodb_help_drains_total", "Writer visits to the help-drain path.")
	s.syncBarriers = reg.Counter("flodb_sync_barriers_total", "Explicit Sync durability barriers.")
	s.resizes = reg.Counter("flodb_membuffer_resizes_total", "Adaptive Membuffer resize epochs (4.4).")
	s.stallNanos = reg.Counter("flodb_write_stall_nanoseconds_total", "Writer time stalled on drains and memory backpressure.")
	s.inPlaceHits = reg.Counter("flodb_inplace_hits_total", "Membuffer updates that overwrote a resident key in place.")

	// Views over the WAL's own metrics: the acked-vs-durable boundary.
	reg.CounterFunc("flodb_wal_appends_total", "WAL records appended (acked commit index).",
		func() uint64 { return db.walMetrics.Snapshot().Appends })
	reg.CounterFunc("flodb_wal_durable_total", "Highest WAL commit index known crash-durable.",
		func() uint64 { return db.walMetrics.Snapshot().Durable })
	reg.CounterFunc("flodb_wal_syncs_total", "fsyncs issued by the group-commit queue.",
		func() uint64 { return db.walMetrics.Snapshot().Syncs })
	reg.CounterFunc("flodb_wal_sync_requests_total", "Durability requests served by the commit queue.",
		func() uint64 { return db.walMetrics.Snapshot().SyncRequests })

	// Views over the disk component and its caches.
	storeMetric := func(f func(m *storageMetrics) uint64) func() uint64 {
		return func() uint64 {
			if db.store == nil {
				return 0
			}
			m := db.store.Metrics()
			return f(&m)
		}
	}
	reg.CounterFunc("flodb_flushes_total", "Memtable flushes to L0.", storeMetric(func(m *storageMetrics) uint64 { return m.Flushes }))
	reg.CounterFunc("flodb_compactions_total", "Background compactions completed.", storeMetric(func(m *storageMetrics) uint64 { return m.Compactions }))
	reg.CounterFunc("flodb_block_cache_hits_total", "Block cache hits.", storeMetric(func(m *storageMetrics) uint64 { return m.BlockCacheHits }))
	reg.CounterFunc("flodb_block_cache_misses_total", "Block cache misses.", storeMetric(func(m *storageMetrics) uint64 { return m.BlockCacheMisses }))
	reg.CounterFunc("flodb_block_cache_evictions_total", "Block cache evictions.", storeMetric(func(m *storageMetrics) uint64 { return m.BlockCacheEvictions }))
	reg.CounterFunc("flodb_table_cache_hits_total", "Table-handle cache hits.", storeMetric(func(m *storageMetrics) uint64 { return m.TableCacheHits }))
	reg.CounterFunc("flodb_table_cache_misses_total", "Table-handle cache misses.", storeMetric(func(m *storageMetrics) uint64 { return m.TableCacheMisses }))
	reg.CounterFunc("flodb_bloom_checks_total", "Bloom filter checks.", storeMetric(func(m *storageMetrics) uint64 { return m.BloomChecks }))
	reg.CounterFunc("flodb_bloom_negatives_total", "Bloom filter negatives (table reads skipped).", storeMetric(func(m *storageMetrics) uint64 { return m.BloomNegatives }))
	reg.GaugeFunc("flodb_block_cache_bytes", "Bytes resident in the block cache.", func() int64 {
		if db.store == nil {
			return 0
		}
		return db.store.Metrics().BlockCacheBytes
	})

	// Live memory-component geometry.
	reg.GaugeFunc("flodb_memtable_bytes", "Approximate live Memtable bytes.", func() int64 {
		if g := db.gen.Load(); g != nil {
			return g.mtb.approxBytes()
		}
		return 0
	})
	reg.GaugeFunc("flodb_membuffer_fraction_ppm", "Live Membuffer share of MemoryBytes, parts per million.", func() int64 {
		return int64(db.membufferFraction() * 1e6)
	})

	if db.cfg.DisableTelemetry {
		return
	}
	t := &telemetry{events: obs.NewEventLog(0)}
	opHist := func(op string) *obs.Histogram {
		return reg.Histogram(`flodb_op_latency_seconds{op="`+op+`"}`, "Operation latency by op.")
	}
	t.putLat = opHist("put")
	t.getLat = opHist("get")
	t.deleteLat = opHist("delete")
	t.scanLat = opHist("scan")
	t.batchLat = opHist("batch")
	t.snapLat = opHist("snapshot")
	t.stallLat = reg.Histogram("flodb_write_stall_seconds", "Per-op writer stall time on drains and backpressure.")
	db.tel = t
}

// storageMetrics aliases the disk component's metrics struct for the
// view closures above.
type storageMetrics = storage.Metrics

// eventLog returns the structured event log, nil when telemetry is
// disabled — the value threaded into storage and WAL options (both
// treat nil as "drop events for free").
func (db *DB) eventLog() *obs.EventLog {
	if db.tel == nil {
		return nil
	}
	return db.tel.events
}

// TelemetrySnapshot freezes the metrics registry plus per-type event
// counts — the /metrics source, mergeable across shards.
func (db *DB) TelemetrySnapshot() obs.Snapshot {
	s := db.reg.Snapshot()
	if db.tel != nil {
		s.Metrics = append(s.Metrics, obs.EventCountMetrics(db.tel.events)...)
	}
	return s
}

// TelemetryEvents returns up to n recent structured events (n <= 0:
// all retained); nil when telemetry is disabled.
func (db *DB) TelemetryEvents(n int) []obs.Event {
	if db.tel == nil {
		return nil
	}
	return db.tel.events.Recent(n)
}
