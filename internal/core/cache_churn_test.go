package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCacheChurnStress drives the read path through pathologically
// starved caches while flushes and compactions churn the table set
// underneath it: a 1-byte block cache (every block read is an
// insert-then-immediate-evict) and a 2-handle table cache (every read
// past two tables evicts and closes a reader some other goroutine may
// be pinning). Concurrent getters, scanners, snapshot readers and
// overwriting writers must agree on values throughout — the lifetime
// bugs this hunts (a reader closed mid-use, a block freed under an
// iterator, an eviction double-close) are races, so the nightly run
// executes it under -race.
func TestCacheChurnStress(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 256 << 10 // small: constant flush/compaction churn
	cfg.Storage.BlockCacheBytes = 1
	cfg.Storage.TableCacheCapacity = 2
	db := openTestDB(t, cfg)

	// ~200 B values across 2K keys overflow the 192 KB memtable target
	// several times over, so the working set lives in sstables and every
	// read exercises the starved caches.
	const nKeys = 2048
	val := func(i uint64) []byte {
		v := make([]byte, 200)
		copy(v, fmt.Sprintf("v-%d", i))
		return v
	}
	for i := uint64(0); i < nKeys; i++ {
		if err := db.Put(bg, spreadKey(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	dur := 2 * time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup

	// Writers: overwrite with self-describing values so readers can
	// verify whatever vintage they observe.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				for i := uint64(0); i < nKeys; i++ {
					if err := db.Put(bg, spreadKey(i), val(i)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Getters: every key must resolve to its self-describing value.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				for i := uint64(0); i < nKeys; i++ {
					v, ok, err := db.Get(bg, spreadKey(i))
					if err != nil || !ok || string(v) != string(val(i)) {
						t.Errorf("Get(%d) = %q %v %v", i, v, ok, err)
						return
					}
				}
			}
		}()
	}
	// Scanners: full iterations pin table readers for their whole
	// lifetime while the 2-handle cache evicts underneath them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			it, err := db.NewIterator(bg, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			n := 0
			for ok := it.First(); ok; ok = it.Next() {
				n++
			}
			err = it.Err()
			it.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if n != nKeys {
				t.Errorf("scan saw %d keys, want %d", n, nKeys)
				return
			}
		}
	}()
	// Snapshot churn: pin a view, read through it, drop it — the
	// version-chain register/unregister path under cache starvation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			snap, err := db.Snapshot(bg)
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < nKeys; i += 37 {
				v, ok, err := snap.Get(bg, spreadKey(i))
				if err != nil || !ok || string(v) != string(val(i)) {
					t.Errorf("snapshot Get(%d) = %q %v %v", i, v, ok, err)
					snap.Close()
					return
				}
			}
			snap.Close()
		}
	}()
	wg.Wait()

	// The starved caches really were starved: the block cache admitted
	// nothing (or evicted immediately), so disk reads missed.
	s := db.Stats()
	if s.BlockCacheMisses == 0 {
		t.Fatal("stress never touched the disk read path (no block cache misses)")
	}
}
