package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/rcu"
	"flodb/internal/skiplist"
	"flodb/internal/wal"
)

// ErrClosed is returned by operations on a closed DB. It wraps
// kv.ErrClosed, so errors.Is(err, kv.ErrClosed) holds.
var ErrClosed = fmt.Errorf("flodb: %w", kv.ErrClosed)

// tombstoneMarker is the special value FloDB writes for deletes (§3.2 "a
// delete is done by inserting a special tombstone value"). It never leaves
// the store: the public API reports deleted keys as absent.
var tombstoneMarker = []byte(nil)

// handle returns a pooled RCU reader handle; worker threads get an
// uncontended slot without per-op allocation.
func (db *DB) handle() *rcu.Handle {
	return db.handles.Get().(*rcu.Handle)
}

func (db *DB) putHandle(h *rcu.Handle) {
	db.handles.Put(h)
}

// Get implements Algorithm 2: search MBF, IMM_MBF, MTB, IMM_MTB, DISK in
// order and return the first occurrence — the levels are checked in the
// direction of data flow, so the first hit is the freshest.
func (db *DB) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if t := db.tel; t != nil {
		start := time.Now()
		v, ok, err := db.get(ctx, key)
		t.getLat.Observe(time.Since(start))
		return v, ok, err
	}
	return db.get(ctx, key)
}

func (db *DB) get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if db.closed.Load() {
		return nil, false, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.gets.Add(1)

	g := db.gen.Load()
	if g.mbf != nil {
		if v, tomb, ok := g.mbf.Get(key); ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	if imm := db.immMbf.Load(); imm != nil {
		if v, tomb, ok := imm.Get(key); ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	if e, ok := g.mtb.get(key); ok {
		if e.Tombstone {
			return nil, false, nil
		}
		return e.Value, true, nil
	}
	if imm := db.immMtb.Load(); imm != nil {
		if e, ok := imm.get(key); ok {
			if e.Tombstone {
				return nil, false, nil
			}
			return e.Value, true, nil
		}
	}
	if db.store == nil {
		return nil, false, nil
	}
	v, _, kind, ok, err := db.store.Get(key)
	if err != nil {
		return nil, false, err
	}
	if !ok || kind == keys.KindDelete {
		return nil, false, nil
	}
	return v, true, nil
}

// Put inserts or overwrites key. The key and value are copied, so the
// caller may reuse its buffers immediately — the memory component retains
// every slice it is handed (Membuffer slots and skiplist nodes alias
// their inputs), so ownership must be taken here, exactly as LevelDB-
// lineage memtables copy into an arena.
func (db *DB) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	db.stats.puts.Add(1)
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	if t := db.tel; t != nil {
		start := time.Now()
		err := db.update(ctx, keys.Clone(key), keys.Clone(value), false, d)
		t.putLat.Observe(time.Since(start))
		return err
	}
	return db.update(ctx, keys.Clone(key), keys.Clone(value), false, d)
}

// Delete writes a tombstone for key (§3.2: "a Put with a special tombstone
// value"). The key is copied.
func (db *DB) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	db.stats.deletes.Add(1)
	d, err := db.resolveDurability(opts)
	if err != nil {
		return err
	}
	if t := db.tel; t != nil {
		start := time.Now()
		err := db.update(ctx, keys.Clone(key), tombstoneMarker, true, d)
		t.deleteLat.Observe(time.Since(start))
		return err
	}
	return db.update(ctx, keys.Clone(key), tombstoneMarker, true, d)
}

// resolveDurability folds per-op options over the configured default and
// rejects logged classes on a store that has no log to back them.
func (db *DB) resolveDurability(opts []kv.WriteOption) (kv.Durability, error) {
	d := db.cfg.Durability
	if len(opts) > 0 {
		d = kv.ResolveWriteOptions(db.cfg.Durability, opts...).Durability
	}
	if !d.Valid() {
		return 0, fmt.Errorf("flodb: invalid durability %v", d)
	}
	if d != kv.DurabilityNone && (db.cfg.DisableWAL || db.store == nil) {
		return 0, fmt.Errorf("flodb: %v durability without a WAL: %w", d, kv.ErrNotSupported)
	}
	return d, nil
}

// commitSync is the commit point of a Sync-class write: it blocks until
// the group-commit queue covers the record appended at off. Durability is
// prefix-ordered: if a sealed generation's segment is still live, its
// tail is synced FIRST, so a Sync-acked write never survives a crash
// that loses an earlier acked write (no holes in commit order). A
// segment closed underneath us was retired by a completed persist, so
// its contents are durable through sstables and the barrier is satisfied.
func (db *DB) commitSync(w *wal.Writer, off int64) error {
	if w == nil {
		return nil
	}
	// persistCycle publishes immMtb before the new generation, so a
	// writer whose record landed in the successor segment is guaranteed
	// to see the sealed one here while it is still live.
	if imm := db.immMtb.Load(); imm != nil && imm.wal != nil && imm.wal != w {
		if err := imm.syncWAL(); err != nil {
			return err
		}
	}
	if err := w.SyncTo(off); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	return nil
}

// update is Algorithm 2's Put. The fast path tries the Membuffer; if the
// target bucket is full (or the buffer is disabled) the update goes
// directly to the Memtable, first honoring pauseWriters (helping with the
// drain) and Memtable backpressure. key and value are owned by the store
// (Put/Delete clone at entry).
//
// Durability routing: DurabilityNone skips the WAL append entirely;
// Buffered appends and returns; Sync appends, completes the memory-
// component insert, and only then joins the group-commit queue — the
// fsync wait happens OUTSIDE the RCU read section, so a stalled disk
// barrier never delays a generation switch's grace period.
func (db *DB) update(ctx context.Context, key, value []byte, tombstone bool, d kv.Durability) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.loadPersistErr(); err != nil {
		return err
	}

	kind := keys.KindSet
	if tombstone {
		kind = keys.KindDelete
	}
	logged := d != kv.DurabilityNone
	var rec []byte // encoded lazily, only when a WAL append happens
	// The last successful append is the op's commit record (the fast
	// path's append may be superseded by the slow path's re-log; replay
	// applies both, idempotently, and the later one alone reconstructs
	// the op).
	var syncW *wal.Writer
	var syncOff int64

	h := db.handle()
	defer db.putHandle(h)

	// --- Fast path: complete in the Membuffer (Algorithm 2 lines 10–11).
	h.Enter()
	g := db.gen.Load()
	if g.mbf != nil {
		if logged && g.mtb.wal != nil {
			rec = kv.EncodeRecord(kind, key, value)
			off, err := g.mtb.wal.Append(rec)
			if err != nil {
				h.Exit()
				return err
			}
			syncW, syncOff = g.mtb.wal, off
		}
		if ok, inPlace := g.mbf.Put(key, value, tombstone); ok {
			h.Exit()
			db.stats.membufferHits.Add(1)
			if inPlace {
				db.stats.inPlaceHits.Add(1)
			}
			if d == kv.DurabilitySync {
				return db.commitSync(syncW, syncOff)
			}
			return nil
		}
		// Bucket full or buffer frozen: fall through to the Memtable. The
		// record above is already logged; the Memtable path below logs to
		// the then-current WAL again, which recovery tolerates (duplicate
		// application of the same record is idempotent under last-writer-
		// wins; see DESIGN.md §WAL).
	}
	h.Exit()

	// --- Slow path: write to the Memtable (Algorithm 2 lines 12–20).
	// stallStart times the drain/backpressure waits below; the total
	// feeds the adaptive sensor's drain-stall input (§4.4).
	var stallStart time.Time
	for spins := 0; ; spins++ {
		// Honest cancellation point: the slow path can wait out drains and
		// backpressure indefinitely, so every lap re-checks the context —
		// and the store's liveness, so a writer stalled on backpressure
		// is not stranded when the store dies under it.
		if err := ctx.Err(); err != nil {
			return err
		}
		if db.closed.Load() {
			return ErrClosed
		}
		if err := db.loadPersistErr(); err != nil {
			return err
		}
		// While a scan or persist drains the immutable Membuffer, writers
		// must not update the Memtable; they help drain instead.
		if db.pauseWriters.Load() {
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			if t := db.fullDrain.Load(); t != nil {
				db.stats.helpDrains.Add(1)
				db.helpDrain(t)
			} else {
				runtime.Gosched()
			}
			continue
		}
		// Backpressure: wait for the persisting thread when the active
		// Memtable is full and the previous one is still being written
		// ("typically a very short wait", §4.4), when the Memtable has
		// overshot badly (the persister has not yet switched), and when
		// L0 is overloaded.
		g = db.gen.Load()
		if over := g.mtb.approxBytes(); over > db.memtableTarget() {
			db.signalPersist()
			if db.immMtb.Load() != nil || over > 2*db.memtableTarget() {
				if stallStart.IsZero() {
					stallStart = time.Now()
				}
				db.backoff(spins)
				continue
			}
		}
		if db.store != nil && db.store.NeedsStall() {
			db.store.MaybeScheduleCompaction()
			db.backoff(spins)
			continue
		}

		h.Enter()
		if db.pauseWriters.Load() {
			h.Exit()
			continue
		}
		g = db.gen.Load()
		if logged && g.mtb.wal != nil {
			if rec == nil {
				rec = kv.EncodeRecord(kind, key, value)
			}
			off, err := g.mtb.wal.Append(rec)
			if err != nil {
				h.Exit()
				return err
			}
			syncW, syncOff = g.mtb.wal, off
		}
		seq := db.seq.Add(1)
		g.mtb.list.Insert(key, &skiplist.Entry{Value: value, Seq: seq, Tombstone: tombstone})
		h.Exit()
		db.stats.memtableWrites.Add(1)
		if !stallStart.IsZero() {
			stall := time.Since(stallStart)
			db.stats.stallNanos.Add(uint64(stall))
			if t := db.tel; t != nil {
				t.stallLat.Observe(stall)
			}
		}
		if g.mtb.approxBytes() >= db.memtableTarget() {
			db.signalPersist()
		}
		if d == kv.DurabilitySync {
			return db.commitSync(syncW, syncOff)
		}
		return nil
	}
}

// backoff yields, escalating to short sleeps so stalled writers don't
// burn a core while the persister catches up.
func (db *DB) backoff(spins int) {
	if spins < 32 {
		runtime.Gosched()
		return
	}
	time.Sleep(50 * time.Microsecond)
}

func (db *DB) signalPersist() {
	select {
	case db.persistCh <- struct{}{}:
	default:
	}
}
