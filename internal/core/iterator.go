package core

import (
	"context"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// defaultIteratorChunk is the number of live pairs a streaming iterator
// prefetches per refill. Each chunk is served from one Algorithm 3
// snapshot (with the usual restart-then-fallback conflict handling), so
// the chunk size bounds both the iterator's memory footprint and the
// window a conflicting writer can invalidate.
const defaultIteratorChunk = 256

// NewIterator returns a streaming cursor over low <= key < high (nil
// bounds are open). Unlike Scan, the range is never materialized: the
// iterator holds at most defaultIteratorChunk pairs, so iterating a range
// larger than the memory component is O(1) in the range size.
//
// Consistency: every refill chunk is a consistent snapshot acquired via
// the scan machinery of §4.4 (piggybacking on concurrent scans, restarting
// transparently on in-place-overwrite conflicts up to RestartThreshold,
// then falling back to the writer-blocking scan). Chunk snapshots are
// monotonically ordered — each refill's sequence number is at least the
// previous one's — so the stream as a whole is a serializable sequence of
// consistent range fragments. A Scan (one unbounded chunk) remains a
// single point-in-time snapshot.
// The context is captured by the iterator: every refill checks it, so a
// canceled or expired context stops iteration promptly with the context
// error in Err.
func (db *DB) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.iterators.Add(1)
	return db.newIter(ctx, keys.Clone(low), keys.Clone(high), defaultIteratorChunk), nil
}

// newIter builds the concrete iterator; chunk <= 0 means unbounded (the
// whole range in one snapshot, used by Scan).
func (db *DB) newIter(ctx context.Context, low, high []byte, chunk int) *iterState {
	return &iterState{db: db, ctx: ctx, low: low, high: high, chunk: chunk}
}

// iterState is the streaming cursor over a FloDB range. It refills buf one
// chunk at a time, remembering the last emitted key as the (exclusive)
// resume point. No resources are pinned between refills: each chunk
// acquires and releases its own scan state and disk snapshot, so an idle
// iterator never delays WAL truncation or table deletion.
type iterState struct {
	db        *DB
	ctx       context.Context
	low, high []byte
	chunk     int // max pairs per refill; <= 0 means unbounded

	buf        []kv.Pair
	pos        int
	resume     []byte // last key of buf when more; next refill is exclusive of it
	more       bool   // the last refill stopped at the chunk limit
	positioned bool
	err        error
	closed     bool
}

var _ kv.Iterator = (*iterState)(nil)

// First positions at the first pair of the range.
func (it *iterState) First() bool { return it.reposition(it.low, false) }

// Seek positions at the first pair with key >= key, clamped to the range.
func (it *iterState) Seek(key []byte) bool {
	from := keys.Clone(key)
	if it.low != nil && (from == nil || keys.Compare(from, it.low) < 0) {
		from = it.low
	}
	return it.reposition(from, false)
}

// Next advances to the next pair, refilling when the chunk is spent. On an
// unpositioned iterator it is equivalent to First.
func (it *iterState) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if !it.positioned {
		return it.First()
	}
	if it.pos+1 < len(it.buf) {
		it.pos++
		return true
	}
	if !it.more {
		it.buf, it.pos = nil, 0
		return false
	}
	if !it.fill(it.resume, true) {
		return false
	}
	return len(it.buf) > 0
}

// reposition restarts iteration from a fresh bound.
func (it *iterState) reposition(from []byte, excl bool) bool {
	if it.closed || it.err != nil {
		return false
	}
	it.positioned = true
	if !it.fill(from, excl) {
		return false
	}
	return len(it.buf) > 0
}

// fill fetches the next chunk starting at from, running the restart loop
// of Algorithm 3: join or lead a scan for a sequence number, read the
// chunk, and on an in-place-overwrite conflict retry with a fresh
// snapshot, falling back to the writer-blocking scan after
// RestartThreshold attempts.
func (it *iterState) fill(from []byte, fromExcl bool) bool {
	db := it.db
	if db.closed.Load() {
		it.err = ErrClosed
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		return false
	}
	restarts := 0
	for {
		st, err := db.joinOrLeadScan(it.ctx)
		if err != nil {
			it.err = err
			return false
		}
		pairs, more, conflict, err := db.scanChunk(it.ctx, from, fromExcl, it.high, st.seq, it.chunk)
		db.releaseScanState(st)
		if err != nil {
			it.err = err
			return false
		}
		if !conflict {
			it.setChunk(pairs, more)
			return true
		}
		restarts++
		db.stats.scanRestarts.Add(1)
		// A canceled context must not burn the restart budget into the
		// writer-blocking fallback.
		if err := it.ctx.Err(); err != nil {
			it.err = err
			return false
		}
		if restarts >= db.cfg.RestartThreshold {
			pairs, more, err := db.fallbackChunk(it.ctx, from, fromExcl, it.high, it.chunk)
			if err != nil {
				it.err = err
				return false
			}
			it.setChunk(pairs, more)
			return true
		}
	}
}

func (it *iterState) setChunk(pairs []kv.Pair, more bool) {
	it.buf = pairs
	it.pos = 0
	it.more = more
	if more && len(pairs) > 0 {
		it.resume = pairs[len(pairs)-1].Key // already a stable clone
	}
}

// valid reports whether the cursor currently rests on a pair.
func (it *iterState) valid() bool {
	return !it.closed && it.positioned && it.pos < len(it.buf)
}

// Key returns the current key (a stable copy; callers may retain it).
func (it *iterState) Key() []byte {
	if !it.valid() {
		return nil
	}
	return it.buf[it.pos].Key
}

// Value returns the current value (a stable copy).
func (it *iterState) Value() []byte {
	if !it.valid() {
		return nil
	}
	return it.buf[it.pos].Value
}

// Err returns the first error the iterator encountered.
func (it *iterState) Err() error { return it.err }

// Close releases the iterator. It is idempotent; the iterator pins no
// external resources between refills, so Close only bars further use.
func (it *iterState) Close() error {
	it.closed = true
	it.buf = nil
	return nil
}
