package core

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// TestAdaptiveConfigValidation rejects out-of-range adaptive knobs with
// descriptive errors, never clamping.
func TestAdaptiveConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Dir: t.TempDir(), AdaptiveMemory: true}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"min negative", func(c *Config) { c.AdaptiveMinFraction = -0.1 }},
		{"max >= 1", func(c *Config) { c.AdaptiveMaxFraction = 1.0 }},
		{"min >= max", func(c *Config) { c.AdaptiveMinFraction = 0.5; c.AdaptiveMaxFraction = 0.3 }},
		{"start outside range", func(c *Config) { c.MembufferFraction = 0.8 }},
		{"negative window", func(c *Config) { c.AdaptiveWindow = -time.Second }},
		{"membuffer disabled", func(c *Config) { c.DisableMembuffer = true }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The valid default shape opens, reports the starting fraction, and
	// resolves the documented defaults.
	cfg := base()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if f := db.Stats().MembufferFraction; f != 0.25 {
		t.Fatalf("starting fraction %v, want 0.25", f)
	}
}

// TestSetMembufferFraction exercises the manual resize epoch: data
// written before a resize stays readable through it, the fraction and
// resize count are reported, and writes keep landing afterwards.
func TestSetMembufferFraction(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), MemoryBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if err := db.SetMembufferFraction(1.5); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}

	n := 500
	for i := 0; i < n; i++ {
		if err := db.Put(ctx, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []float64{0.6, 0.05, 0.3} {
		if err := db.SetMembufferFraction(f); err != nil {
			t.Fatal(err)
		}
		if got := db.Stats().MembufferFraction; got != f {
			t.Fatalf("fraction %v after SetMembufferFraction(%v)", got, f)
		}
	}
	if got := db.Stats().MembufferResizes; got != 3 {
		t.Fatalf("resizes %d, want 3", got)
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get(ctx, keys.EncodeUint64(uint64(i)))
		if err != nil || !ok || string(v) != string(keys.EncodeUint64(uint64(i))) {
			t.Fatalf("key %d lost across resizes (ok=%v err=%v)", i, ok, err)
		}
	}
	// Writes after the final shrink land normally.
	if err := db.Put(ctx, []byte("after"), []byte("resize")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(ctx, []byte("after")); !ok {
		t.Fatal("write after resize lost")
	}
}

// TestSetMembufferFractionDisabled reports ErrNotSupported on the No-HT
// ablation configuration.
func TestSetMembufferFractionDisabled(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), DisableMembuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.SetMembufferFraction(0.5); err == nil {
		t.Fatal("resize accepted with the membuffer disabled")
	}
}

// TestResizeEpochsConcurrentOps is the -race workhorse of the resize
// satellite: writers (Put), batch appliers (Apply) and scanners (Scan)
// run full-tilt while the membuffer is shrunk and grown repeatedly.
// Every acknowledged write must be visible afterwards — a resize epoch
// reuses the immutable-Membuffer drain path, so losing an entry across
// the seal would show up here.
func TestResizeEpochsConcurrentOps(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), MemoryBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	const (
		writers  = 3
		perWrite = 400
	)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var passes [writers]atomic.Uint64
	errs := make(chan error, writers+2)

	// Writers: disjoint key ranges, value == key, cycling until the
	// resizer has done its epochs; thread 2 uses batches so Apply's
	// drainMu path races the resize epochs too.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				for i := 0; i < perWrite; i++ {
					k := keys.EncodeUint64(uint64(w)<<32 | uint64(i))
					if w == 2 {
						b := kv.NewBatch()
						b.Put(k, k)
						if err := db.Apply(ctx, b); err != nil {
							errs <- err
							return
						}
					} else if err := db.Put(ctx, k, k); err != nil {
						errs <- err
						return
					}
				}
				passes[w].Add(1)
			}
		}(w)
	}
	// Scanner: consistent reads while epochs switch generations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := db.Scan(ctx, nil, nil); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Resizer: sweep the epochs across the full range. The pause
	// between epochs matters on small machines — back-to-back epochs
	// keep writers permanently paused (they make progress only by
	// helping drains), which is livelock-adjacent, not a data race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		fracs := []float64{0.05, 0.6, 0.1, 0.45, 0.25}
		for i := 0; !stop.Load(); i++ {
			if err := db.SetMembufferFraction(fracs[i%len(fracs)]); err != nil {
				errs <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Run until every writer finished a full pass AND several resize
	// epochs actually interleaved with the traffic.
	deadline := time.After(120 * time.Second)
	for {
		ready := db.Stats().MembufferResizes >= 6
		for w := 0; w < writers; w++ {
			ready = ready && passes[w].Load() >= 1
		}
		if ready {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("no interleaving: resizes=%d passes=%v %v %v",
				db.Stats().MembufferResizes, passes[0].Load(), passes[1].Load(), passes[2].Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	stop.Store(true)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	for w := 0; w < writers; w++ {
		for i := 0; i < perWrite; i++ {
			k := keys.EncodeUint64(uint64(w)<<32 | uint64(i))
			if _, ok, err := db.Get(ctx, k); err != nil || !ok {
				t.Fatalf("writer %d key %d lost (ok=%v err=%v), %d resizes",
					w, i, ok, err, db.Stats().MembufferResizes)
			}
		}
	}
	if db.Stats().MembufferResizes == 0 {
		t.Fatal("no resize epoch ever ran")
	}
}

// TestResizeRacesPersist shrinks and grows the membuffer while the
// persister constantly seals and flushes (tiny memory budget), with the
// WAL on; the store is then closed and reopened to prove recovery sees
// a consistent prefix — a resize epoch must never strand entries
// outside the WAL-truncation invariant.
func TestResizeRacesPersist(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, MemoryBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; !stop.Load(); i++ {
			f := 0.05 + 0.55*rng.Float64()
			if err := db.SetMembufferFraction(f); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	const n = 3000
	val := make([]byte, 64)
	for i := 0; i < n; i++ {
		if err := db.Put(ctx, keys.EncodeUint64(uint64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatal("memory budget too large: persist path never exercised")
	}
	if st.MembufferResizes == 0 {
		t.Fatal("resize path never exercised")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir, MemoryBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < n; i++ {
		if _, ok, err := re.Get(ctx, keys.EncodeUint64(uint64(i))); err != nil || !ok {
			t.Fatalf("key %d lost across resize+persist+reopen (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestAdaptiveControllerConverges drives the controller's two poles:
// a skewed write burst must grow the fraction, a scan storm must
// shrink it to (near) the floor. Bounds are asserted loosely — the
// controller's exact trajectory is load-dependent — but the DIRECTION
// is the §4.4 contract.
func TestAdaptiveControllerConverges(t *testing.T) {
	db, err := Open(Config{
		Dir:            t.TempDir(),
		MemoryBytes:    1 << 20,
		AdaptiveMemory: true,
		AdaptiveWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Phase 1: skewed overwrite burst (working set resident in the
	// buffer) — fraction should rise above the 0.25 start. The keys are
	// SPREAD over the 64-bit space (clustered keys would pile into one
	// Membuffer partition, §4.3, and never register as resident).
	val := make([]byte, 64)
	waitFor(t, "fraction rise under write burst", func() bool {
		for i := 0; i < 2000; i++ {
			k := keys.EncodeUint64(uint64(i%512) * 0x9e3779b97f4a7c15)
			if err := db.Put(ctx, k, val); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats().MembufferFraction > 0.3
	})

	// Phase 2: scan storm — fraction should fall to near the floor.
	waitFor(t, "fraction fall under scans", func() bool {
		for i := 0; i < 20; i++ {
			if _, err := db.Scan(ctx, nil, keys.EncodeUint64(64)); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats().MembufferFraction < 0.15
	})

	s := db.Stats()
	if s.MembufferResizes == 0 {
		t.Fatal("controller never resized")
	}
	if s.SensorScanRate == 0 && s.SensorPutRate == 0 {
		t.Fatal("sensor window rates never published")
	}
}

func waitFor(t *testing.T, what string, step func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !step() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestResizeRacesSnapshot pins a Snapshot, then resizes underneath it:
// the snapshot's repeatable reads must not move, while the live store
// keeps serving fresh data.
func TestResizeRacesSnapshot(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), MemoryBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	key := []byte("pinned")
	if err := db.Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	if err := db.SetMembufferFraction(0.6); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMembufferFraction(0.05); err != nil {
		t.Fatal(err)
	}

	v, ok, err := snap.Get(ctx, key)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("snapshot read %q/%v/%v across resizes, want v1", v, ok, err)
	}
	v, ok, err = db.Get(ctx, key)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("live read %q/%v/%v after resizes, want v2", v, ok, err)
	}
}
