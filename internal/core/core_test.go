package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flodb/internal/keys"
)

// bg is the context threaded through every store call in these tests.
var bg = context.Background()

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:         t.TempDir(),
		MemoryBytes: 1 << 20, // small: exercises drains and persists
	}
}

func openTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// spreadKey maps a small integer to a key spread uniformly over the key
// space (a fixed odd multiplier is a bijection mod 2^64), so tests exercise
// all membuffer partitions instead of the single partition sequential keys
// fall into (§4.3 skew).
func spreadKey(i uint64) []byte {
	return keys.EncodeUint64(i * 0x9e3779b97f4a7c15)
}

// waitPersists polls until at least n persists have completed.
func waitPersists(t *testing.T, db *DB, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.Internal().Persists < n {
		if time.Now().After(deadline) {
			t.Fatalf("persists stuck at %d, want >= %d", db.Internal().Persists, n)
		}
		db.signalPersist()
		time.Sleep(time.Millisecond)
	}
}

func TestPutGetBasic(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	if err := db.Put(bg, []byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get(bg, []byte("hello"))
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := db.Get(bg, []byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestOverwrite(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	k := []byte("key")
	for i := 0; i < 10; i++ {
		if err := db.Put(bg, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := db.Get(bg, k)
	if !ok || string(v) != "v9" {
		t.Fatalf("Get after overwrites = %q, %v", v, ok)
	}
	// In-place updates: repeated writes to one key must not consume
	// significant memory (§3.2).
	st := db.Internal()
	if st.MembufferLen > 1 {
		t.Fatalf("MembufferLen = %d after single-key overwrites", st.MembufferLen)
	}
}

func TestDelete(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	k := []byte("key")
	db.Put(bg, k, []byte("v"))
	if err := db.Delete(bg, k); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(bg, k); ok {
		t.Fatal("deleted key still visible")
	}
	// Delete of a missing key is fine.
	if err := db.Delete(bg, []byte("never-existed")); err != nil {
		t.Fatal(err)
	}
	// Re-insert after delete.
	db.Put(bg, k, []byte("v2"))
	v, ok, _ := db.Get(bg, k)
	if !ok || string(v) != "v2" {
		t.Fatalf("re-insert after delete = %q, %v", v, ok)
	}
}

func TestGetAcrossLevels(t *testing.T) {
	// Force enough data through the system that keys live in the
	// membuffer, memtable and disk simultaneously, and verify Get returns
	// the freshest version of each.
	cfg := testConfig(t)
	cfg.MemoryBytes = 256 << 10
	db := openTestDB(t, cfg)

	const n = 2000
	val := func(i, gen int) []byte { return []byte(fmt.Sprintf("g%d-%d", gen, i)) }
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < n; i++ {
			// Distinct keys per generation so the memtable keeps growing
			// (in-place updates would keep it flat).
			if err := db.Put(bg, spreadKey(uint64(gen*n+i)), val(i, gen)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitPersists(t, db, 1)
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < n; i++ {
			v, ok, err := db.Get(bg, spreadKey(uint64(gen*n+i)))
			if err != nil || !ok {
				t.Fatalf("Get(%d,%d): ok=%v err=%v", gen, i, ok, err)
			}
			if !bytes.Equal(v, val(i, gen)) {
				t.Fatalf("Get(%d,%d) = %q, want %q", gen, i, v, val(i, gen))
			}
		}
	}
}

func TestScanBasic(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := 0; i < 100; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte(fmt.Sprintf("v%d", i)))
	}
	pairs, err := db.Scan(bg, keys.EncodeUint64(10), keys.EncodeUint64(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		want := uint64(10 + i)
		if keys.DecodeUint64(p.Key) != want || string(p.Value) != fmt.Sprintf("v%d", want) {
			t.Fatalf("pair %d = %x:%q", i, p.Key, p.Value)
		}
	}
}

func TestScanOpenBounds(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := 0; i < 50; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	all, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 50 {
		t.Fatalf("full scan returned %d", len(all))
	}
	tail, _ := db.Scan(bg, keys.EncodeUint64(40), nil)
	if len(tail) != 10 {
		t.Fatalf("tail scan returned %d", len(tail))
	}
	head, _ := db.Scan(bg, nil, keys.EncodeUint64(10))
	if len(head) != 10 {
		t.Fatalf("head scan returned %d", len(head))
	}
}

func TestScanSkipsTombstones(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := 0; i < 20; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	for i := 0; i < 20; i += 2 {
		db.Delete(bg, keys.EncodeUint64(uint64(i)))
	}
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d pairs, want 10", len(pairs))
	}
	for _, p := range pairs {
		if keys.DecodeUint64(p.Key)%2 != 1 {
			t.Fatalf("deleted key %d in scan", keys.DecodeUint64(p.Key))
		}
	}
}

func TestScanSeesMembufferContents(t *testing.T) {
	// The pre-scan drain must make membuffer-resident updates visible
	// (§3.2: "drain the MemBuffer in the Memtable before a scan").
	db := openTestDB(t, testConfig(t))
	db.Put(bg, keys.EncodeUint64(5), []byte("fresh"))
	// Immediately scan; the put is almost certainly still in the membuffer.
	pairs, err := db.Scan(bg, keys.EncodeUint64(0), keys.EncodeUint64(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Value) != "fresh" {
		t.Fatalf("scan missed membuffer content: %v", pairs)
	}
}

func TestScanAcrossAllLevels(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 128 << 10
	db := openTestDB(t, cfg)
	const n = 3000
	for i := 0; i < n; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), keys.EncodeUint64(uint64(i)))
	}
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(pairs), n)
	}
	for i, p := range pairs {
		if keys.DecodeUint64(p.Key) != uint64(i) || keys.DecodeUint64(p.Value) != uint64(i) {
			t.Fatalf("pair %d corrupt: %x -> %x", i, p.Key, p.Value)
		}
	}
}

func TestEmptyScan(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("scan of empty store returned %d pairs", len(pairs))
	}
}

func TestClosedOperations(t *testing.T) {
	db, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put(bg, []byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := db.Get(bg, []byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := db.Scan(bg, nil, nil); err != ErrClosed {
		t.Fatalf("Scan after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	for i := 0; i < 10; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	db.Delete(bg, keys.EncodeUint64(0))
	db.Get(bg, keys.EncodeUint64(1))
	db.Scan(bg, nil, nil)
	s := db.Stats()
	if s.Puts != 10 || s.Deletes != 1 || s.Gets != 1 || s.Scans != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MembufferHits+s.MemtableWrites != 11 {
		t.Fatalf("hit accounting: %+v", s)
	}
}

func TestDisableMembufferMode(t *testing.T) {
	// Fig 17's "No HT" ablation: classic single-level memory component.
	cfg := testConfig(t)
	cfg.DisableMembuffer = true
	db := openTestDB(t, cfg)
	for i := 0; i < 100; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	if s := db.Stats(); s.MembufferHits != 0 || s.MemtableWrites != 100 {
		t.Fatalf("No-HT mode stats = %+v", s)
	}
	v, ok, _ := db.Get(bg, keys.EncodeUint64(50))
	if !ok || string(v) != "v" {
		t.Fatal("Get in No-HT mode failed")
	}
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil || len(pairs) != 100 {
		t.Fatalf("scan in No-HT mode: %d pairs, %v", len(pairs), err)
	}
}

func TestDropPersistMode(t *testing.T) {
	// Fig 17's memory-only mode: memtables are dropped when full.
	cfg := Config{DropPersist: true, MemoryBytes: 64 << 10}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		if err := db.Put(bg, spreadKey(uint64(i)), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for db.Internal().Persists == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop mode never rotated the memtable")
		}
		time.Sleep(time.Millisecond)
	}
	if db.Store() != nil {
		t.Fatal("drop mode must not open a disk store")
	}
}

func TestSimpleInsertDrainMode(t *testing.T) {
	cfg := testConfig(t)
	cfg.SimpleInsertDrain = true
	db := openTestDB(t, cfg)
	for i := 0; i < 1000; i++ {
		db.Put(bg, keys.EncodeUint64(uint64(i)), []byte("v"))
	}
	// All data readable regardless of drain style.
	for i := 0; i < 1000; i++ {
		if _, ok, _ := db.Get(bg, keys.EncodeUint64(uint64(i))); !ok {
			t.Fatalf("key %d lost with simple-insert drain", i)
		}
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 512 << 10
	db := openTestDB(t, cfg)
	const writers = 4
	const readers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := keys.EncodeUint64(uint64(w*perWriter + i))
				if err := db.Put(bg, k, keys.EncodeUint64(uint64(i))); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
					db.Get(bg, keys.EncodeUint64(rng.Uint64()%(writers*perWriter)))
				}
			}
		}(r)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writers*perWriter; i++ {
			// Spot-check convergence on a sample.
			if i%997 != 0 {
				continue
			}
			k := keys.EncodeUint64(uint64(i))
			for {
				if _, ok, err := db.Get(bg, k); ok || err != nil {
					break
				}
			}
		}
	}()
	wg.Add(0)
	<-done
	close(stop)
	wg.Wait()

	// Every key must be present with its final value.
	for w := 0; w < writers; w++ {
		for i := perWriter - 1; i >= 0; i -= 503 {
			k := keys.EncodeUint64(uint64(w*perWriter + i))
			v, ok, err := db.Get(bg, k)
			if err != nil || !ok || keys.DecodeUint64(v) != uint64(i) {
				t.Fatalf("key %d/%d: %v %v %v", w, i, v, ok, err)
			}
		}
	}
}
