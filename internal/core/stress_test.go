package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb/internal/workload"
)

// TestStressBufferReuseInsertIterate regression-tests the input-ownership
// contract under the benchmark harness's exact usage: every writer reuses
// ONE key buffer and ONE value buffer across all its operations, racing
// iterator chunks and persists on a tiny memory component.
//
// Before Put/Delete cloned their inputs, the Membuffer and skiplist
// retained the reused buffers, collapsing distinct keys into one mutating
// node and corrupting skiplist order — surfacing as "sstable:
// out-of-order add" from the persist thread under exactly this workload.
func TestStressBufferReuseInsertIterate(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), MemoryBytes: 128 << 10, DisableWAL: true}
	cfg.Storage.BaseLevelBytes = 512 << 10
	cfg.Storage.TargetFileSize = 256 << 10
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			gen := workload.NewUniform(1 << 18)
			keyBuf := make([]byte, workload.DefaultKeySize)
			var valBuf []byte
			for i := 0; !stop.Load(); i++ {
				key := gen.NextKey(rng, keyBuf)
				if i%20 == 19 { // ~5% iterator scans, as in the Fig 13 mix
					it, err := db.NewIterator(bg, key, nil)
					if err != nil {
						errCh <- err
						return
					}
					for n, ok := 0, it.First(); ok && n < 100; n, ok = n+1, it.Next() {
					}
					err = it.Err()
					it.Close()
					if err != nil {
						errCh <- err
						return
					}
					continue
				}
				valBuf = workload.Value(valBuf, workload.DefaultValueSize, uint64(i))
				if err := db.Put(bg, key, valBuf); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	time.Sleep(1500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPutCopiesReusedBuffers pins the ownership contract directly: keys
// written through one reused buffer must all be distinct in the store.
func TestPutCopiesReusedBuffers(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	buf := make([]byte, 8)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		workload.PutUint64(buf, i)
		if err := db.Put(bg, buf, buf); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := db.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("%d distinct keys through one buffer -> %d stored", n, len(pairs))
	}
}
