package core

import (
	"bytes"
	"fmt"
	"testing"

	"flodb/internal/kv"
)

// TestApplyBasic commits a mixed batch and verifies reads, in-batch
// ordering (later op on the same key wins), and empty-batch no-ops.
func TestApplyBasic(t *testing.T) {
	db := openTestDB(t, testConfig(t))

	if err := db.Apply(bg, nil); err != nil {
		t.Fatal("nil batch:", err)
	}
	if err := db.Apply(bg, kv.NewBatch()); err != nil {
		t.Fatal("empty batch:", err)
	}

	if err := db.Put(bg, []byte("pre"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("pre"))
	b.Put([]byte("dup"), []byte("first"))
	b.Put([]byte("dup"), []byte("second")) // later op wins
	b.Put([]byte("gone"), []byte("x"))
	b.Delete([]byte("gone")) // delete after put wins
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		key   string
		want  string
		found bool
	}{
		{"a", "1", true},
		{"b", "2", true},
		{"pre", "", false},
		{"dup", "second", true},
		{"gone", "", false},
	}
	for _, c := range checks {
		v, ok, err := db.Get(bg, []byte(c.key))
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.found || (ok && string(v) != c.want) {
			t.Fatalf("Get(%s) = %q/%v, want %q/%v", c.key, v, ok, c.want, c.found)
		}
	}
}

// TestApplySurvivesDrainAndPersist pushes many batches through a tiny
// memory component so batch entries cross the membuffer→memtable→disk
// boundaries, and verifies contents at the end.
func TestApplySurvivesDrainAndPersist(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10
	db := openTestDB(t, cfg)

	want := map[string]string{}
	b := kv.NewBatch()
	for round := 0; round < 200; round++ {
		b.Reset()
		for i := 0; i < 25; i++ {
			k := spreadKey(uint64(round*25 + i))
			v := fmt.Sprintf("r%d-%d", round, i)
			b.Put(k, []byte(v))
			want[string(k)] = v
		}
		if err := db.Apply(bg, b); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitDiskQuiesce()
	for k, v := range want {
		got, ok, err := db.Get(bg, []byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("key %x = %q/%v/%v, want %q", k, got, ok, err, v)
		}
	}
	s := db.Stats()
	if s.Batches != 200 || s.BatchOps != 5000 {
		t.Fatalf("stats: batches=%d batchOps=%d", s.Batches, s.BatchOps)
	}
}

// TestApplyReusedBatchAfterReset verifies the documented reuse pattern:
// Reset must not corrupt data retained by a previous Apply.
func TestApplyReusedBatchAfterReset(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	b := kv.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	b.Put([]byte("k2"), bytes.Repeat([]byte("Z"), 2)) // would overwrite a reused arena
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := db.Get(bg, []byte("k1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("k1 corrupted by batch reuse: %q %v", v, ok)
	}
}

// TestApplyCallerMayReuseInputs verifies Put/Delete copy their arguments.
func TestApplyCallerMayReuseInputs(t *testing.T) {
	db := openTestDB(t, testConfig(t))
	key := []byte("mutable")
	val := []byte("value-0")
	b := kv.NewBatch()
	b.Put(key, val)
	key[0], val[0] = 'X', 'X'
	if err := db.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := db.Get(bg, []byte("mutable"))
	if !ok || string(v) != "value-0" {
		t.Fatalf("input aliasing leaked into the batch: %q %v", v, ok)
	}
}

// TestApplyVisibleToScansAtomically races scans against atomic batch
// overwrites of a fixed key set: every scan must observe all keys with ONE
// generation tag — never a mix from two batches.
func TestApplyVisibleToScansAtomically(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemoryBytes = 64 << 10
	db := openTestDB(t, cfg)

	const n = 100
	keysList := make([][]byte, n)
	for i := range keysList {
		keysList[i] = spreadKey(uint64(i))
	}
	write := func(gen int) {
		b := kv.NewBatch()
		for _, k := range keysList {
			b.Put(k, []byte(fmt.Sprintf("gen%06d", gen)))
		}
		if err := db.Apply(bg, b); err != nil {
			t.Error(err)
		}
	}
	write(0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := 1; gen <= 300; gen++ {
			write(gen)
		}
	}()
	torn := 0
	for {
		select {
		case <-done:
			if torn > 0 {
				t.Fatalf("%d torn scans observed", torn)
			}
			return
		default:
		}
		pairs, err := db.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != n {
			t.Fatalf("scan saw %d of %d keys", len(pairs), n)
		}
		gens := map[string]bool{}
		for _, p := range pairs {
			gens[string(p.Value)] = true
		}
		if len(gens) != 1 {
			torn++
		}
	}
}
