package core

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
)

// scanState publishes a running scan so concurrent scans piggyback on its
// drain and sequence number instead of each re-draining the Membuffer
// (§4.4 "Multithreaded scans").
type scanState struct {
	seq      uint64
	seqReady chan struct{} // closed once seq is published
	joins    atomic.Int32  // joined scans, bounded by MaxPiggybackChain
	active   atomic.Int32  // scans still using the state
}

// Scan implements Algorithm 3. It returns all pairs with low <= key < high
// (nil bounds are open). Master scans are linearizable with respect to
// updates — the linearization point is the installation of the fresh
// Membuffer; piggybacking scans are serializable (§4.4 "Correctness").
//
// Scan is a convenience wrapper over the streaming iterator machinery: it
// drains a single unbounded chunk, so a conflict restarts the whole range
// and the result is one consistent snapshot, exactly as before the
// iterator existed.
func (db *DB) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.scans.Add(1)
	var start time.Time
	t := db.tel
	if t != nil {
		start = time.Now()
	}
	it := db.newIter(ctx, low, high, 0) // unbounded chunk: one snapshot
	defer it.Close()
	if !it.fill(low, false) {
		return nil, it.err
	}
	if t != nil {
		t.scanLat.Observe(time.Since(start))
	}
	return it.buf, nil
}

// joinOrLeadScan returns a scanState with a published sequence number,
// either by piggybacking on a running scan or by becoming the master. A
// context error aborts the wait for a free piggyback slot.
func (db *DB) joinOrLeadScan(ctx context.Context) (*scanState, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if st := db.scanState.Load(); st != nil {
			j := st.joins.Load()
			if j < int32(db.cfg.MaxPiggybackChain) && st.joins.CompareAndSwap(j, j+1) {
				st.active.Add(1)
				<-st.seqReady
				db.stats.piggybackScans.Add(1)
				return st, nil
			}
			// Chain is full: wait for the state to clear, then lead or
			// join the successor ("we limit the length of these chains
			// through a system parameter", §4.4).
			runtime.Gosched()
			continue
		}
		if st, ok := db.leadMasterScan(); ok {
			return st, nil
		}
	}
}

// leadMasterScan runs Algorithm 3 lines 4–14: pause draining and writers,
// install a fresh Membuffer, wait the grace period, drain the old buffer
// into the Memtable (helpers welcome), then take the scan sequence number.
func (db *DB) leadMasterScan() (*scanState, bool) {
	db.drainMu.Lock()
	if db.scanState.Load() != nil {
		// Raced with another would-be master; piggyback instead.
		db.drainMu.Unlock()
		return nil, false
	}
	st := &scanState{seqReady: make(chan struct{})}
	st.active.Add(1)
	st.joins.Add(1)
	db.scanState.Store(st)

	db.pauseDraining.Store(true) // line 4
	db.pauseWriters.Store(true)  // line 5

	old := db.gen.Load()
	if old.mbf != nil {
		db.gen.Store(&generation{mbf: db.newMembufferNow(), mtb: old.mtb}) // lines 6–7
		old.mbf.Freeze()
		db.immMbf.Store(old.mbf)
		db.domain.Synchronize()                 // lines 8–9: MemBufferRCUWait + MemTableRCUWait
		db.drainBufferInto(old.mbf, old.mtb, 0) // line 10
		db.immMbf.Store(nil)                    // line 11
	} else {
		db.domain.Synchronize()
	}

	st.seq = db.seq.Add(1) // line 12
	close(st.seqReady)
	db.pauseWriters.Store(false)  // line 13
	db.pauseDraining.Store(false) // line 14
	db.drainMu.Unlock()
	db.stats.masterScans.Add(1)
	return st, true
}

// releaseScanState drops a reference; the last one clears the slot so a
// future scan becomes a fresh master rather than reusing an ever-staler
// sequence number.
func (db *DB) releaseScanState(st *scanState) {
	if st.active.Add(-1) == 0 {
		st.joins.Store(math.MaxInt32) // bar late joiners
		db.scanState.CompareAndSwap(st, nil)
	}
}

// scanChunk performs the actual range read (Algorithm 3 lines 15–30) over
// Memtable, immutable Memtable and a pinned disk snapshot, starting at
// from (exclusive when fromExcl — the iterator's resume point) and ending
// at high. At most limit live pairs are emitted when limit > 0; more=true
// reports that the limit stopped the read with range left to cover. It
// reports conflict=true when any visited entry carries seq > scanSeq.
//
// Component capture order matters: the active pair first, then the
// immutable Memtable, then the disk snapshot. A concurrent persist moves
// data strictly in that direction, so every entry is visible in at least
// one captured component (possibly two, which the newest-first merge
// dedups).
func (db *DB) scanChunk(ctx context.Context, from []byte, fromExcl bool, high []byte, scanSeq uint64, limit int) (out []kv.Pair, more, conflict bool, err error) {
	g := db.gen.Load()
	its := []storage.InternalIterator{newMemtableIter(g.mtb)}
	if imm := db.immMtb.Load(); imm != nil && imm != g.mtb {
		its = append(its, newMemtableIter(imm))
	}
	if db.store != nil {
		dit, release, err := db.store.NewIterator()
		if err != nil {
			return nil, false, false, err
		}
		defer release()
		its = append(its, dit)
	}
	m := storage.NewMergingIterator(its...)

	// Seeding the dedup state with the resume key makes "exclusive from"
	// fall out of the existing same-key skip.
	var lastKey []byte
	haveLast := false
	if fromExcl && from != nil {
		lastKey = append(lastKey, from...)
		haveLast = true
	}
	visited := 0
	for m.Seek(from); m.Valid(); m.Next() {
		// Honest cancellation inside the chunk: an unbounded Scan (or a
		// fallback holding writers) must not outlive its context by the
		// whole range. Checked every 1024 entries to stay off the hot path.
		if visited++; visited&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, false, err
			}
		}
		k := m.Key()
		if high != nil && keys.Compare(k, high) >= 0 {
			break
		}
		if haveLast && keys.Equal(lastKey, k) {
			// A version of an emitted (or resume) key. Skipped BEFORE the
			// conflict check: the key's value was already delivered from
			// an earlier snapshot, so even a post-snapshot in-place
			// overwrite of it (common when a writer hot-loops a key just
			// behind the cursor) destroys nothing this read still needs —
			// restarting on it would burn the restart budget and escalate
			// to the writer-blocking fallback for no benefit.
			continue
		}
		if m.Seq() > scanSeq {
			// Refinement over Algorithm 3's blanket restart: if the node
			// was CREATED after the scan's sequence point, no pre-snapshot
			// value was destroyed — any version visible at the snapshot
			// lives deeper in the merge order (immutable Memtable / disk)
			// and will be yielded next. Only an in-place overwrite of a
			// node that existed at the snapshot loses data and forces a
			// restart.
			if storage.CreateSeqOf(m) > scanSeq {
				continue
			}
			return nil, false, true, nil // conflict: restart
		}
		lastKey = append(lastKey[:0], k...)
		haveLast = true
		if m.Kind() == keys.KindDelete {
			continue
		}
		out = append(out, kv.Pair{Key: keys.Clone(k), Value: keys.Clone(m.Value())})
		if limit > 0 && len(out) >= limit {
			more = true
			break
		}
	}
	if err := m.Err(); err != nil {
		return nil, false, false, err
	}
	return out, more, false, nil
}

// fallbackChunk guarantees termination by blocking Memtable writers for
// its whole duration (§4.4: "blocking writers from the Memtable until it
// completes scanning"). With writers, drainers and persists excluded, no
// in-range entry can acquire a newer sequence number, so the read cannot
// be invalidated.
func (db *DB) fallbackChunk(ctx context.Context, from []byte, fromExcl bool, high []byte, limit int) ([]kv.Pair, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	db.stats.fallbackScans.Add(1)
	db.drainMu.Lock()
	db.pauseDraining.Store(true)
	db.pauseWriters.Store(true)
	defer func() {
		db.pauseWriters.Store(false)
		db.pauseDraining.Store(false)
		db.drainMu.Unlock()
	}()

	old := db.gen.Load()
	if old.mbf != nil {
		db.gen.Store(&generation{mbf: db.newMembufferNow(), mtb: old.mtb})
		old.mbf.Freeze()
		db.immMbf.Store(old.mbf)
		db.domain.Synchronize()
		db.drainBufferInto(old.mbf, old.mtb, 0)
		db.immMbf.Store(nil)
	} else {
		db.domain.Synchronize()
	}

	seq := db.seq.Add(1)
	pairs, more, conflict, err := db.scanChunk(ctx, from, fromExcl, high, seq, limit)
	if err != nil {
		return nil, false, err
	}
	if conflict {
		// Cannot happen while writers are blocked; guard anyway.
		return nil, false, errFallbackConflict
	}
	return pairs, more, nil
}

var errFallbackConflict = errInternal("fallback scan observed a conflict")

type errInternal string

func (e errInternal) Error() string { return "flodb: internal: " + string(e) }
