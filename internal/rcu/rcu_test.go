package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEnterExitBasic(t *testing.T) {
	d := NewDomain()
	h := d.Reader()
	h.Enter()
	h.Exit()
	// Synchronize with no active readers returns promptly.
	done := make(chan struct{})
	go func() { d.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize blocked with no readers")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := NewDomain()
	d.Reader().Exit()
}

func TestNestedSections(t *testing.T) {
	d := NewDomain()
	h := d.Reader()
	h.Enter()
	h.Enter()
	h.Exit()

	// Still inside the outer section: Synchronize must not complete.
	released := make(chan struct{})
	go func() { d.Synchronize(); close(released) }()
	select {
	case <-released:
		t.Fatal("Synchronize returned while a nested section was active")
	case <-time.After(50 * time.Millisecond):
	}
	h.Exit()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize never returned after Exit")
	}
}

func TestSynchronizeWaitsForActiveReader(t *testing.T) {
	d := NewDomain()
	h := d.Reader()

	h.Enter()
	var syncDone atomic.Bool
	go func() {
		d.Synchronize()
		syncDone.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if syncDone.Load() {
		t.Fatal("Synchronize returned while reader active")
	}
	h.Exit()
	deadline := time.Now().Add(5 * time.Second)
	for !syncDone.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Synchronize did not return after reader exited")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSynchronizeDoesNotWaitForLaterReaders(t *testing.T) {
	// A reader that starts *after* Synchronize begins must not block it.
	d := NewDomain()
	h := d.Reader()

	h.Enter()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		d.Synchronize()
		close(done)
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let Synchronize bump the epoch
	h.Exit()

	// New section on the same slot: must not re-block the synchronizer.
	h.Enter()
	defer h.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize blocked on a reader that started after it")
	}
}

// TestGracePeriodProtectsSwitch models the membuffer-switch pattern from
// Algorithm 3: writers read a shared pointer inside a critical section and
// write through it; the switcher replaces the pointer, synchronizes, and
// only then inspects the old target. The old target must be quiescent.
func TestGracePeriodProtectsSwitch(t *testing.T) {
	type buffer struct {
		writes atomic.Int64
		sealed atomic.Bool
	}
	d := NewDomain()
	var cur atomic.Pointer[buffer]
	cur.Store(&buffer{})

	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations atomic.Int64
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Reader()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Enter()
				b := cur.Load()
				if b.sealed.Load() {
					// Sealing happens only after Synchronize, so a writer
					// that got the pointer inside a critical section must
					// never observe it sealed.
					violations.Add(1)
				}
				b.writes.Add(1)
				h.Exit()
			}
		}()
	}

	for i := 0; i < 50; i++ {
		old := cur.Swap(&buffer{})
		d.Synchronize()
		old.sealed.Store(true)
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d writers observed a sealed buffer inside a critical section", v)
	}
}

func TestReadHelper(t *testing.T) {
	d := NewDomain()
	ran := false
	d.Read(func() { ran = true })
	if !ran {
		t.Fatal("Read did not run fn")
	}
}

func TestManyGoroutinesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	d := NewDomain()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Reader()
			for {
				select {
				case <-stop:
					return
				default:
					h.Enter()
					h.Exit()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		d.Synchronize()
	}
	close(stop)
	wg.Wait()
}

func BenchmarkEnterExit(b *testing.B) {
	d := NewDomain()
	b.RunParallel(func(pb *testing.PB) {
		h := d.Reader()
		for pb.Next() {
			h.Enter()
			h.Exit()
		}
	})
}

func BenchmarkSynchronizeUncontended(b *testing.B) {
	d := NewDomain()
	for i := 0; i < b.N; i++ {
		d.Synchronize()
	}
}
