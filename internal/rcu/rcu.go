// Package rcu implements epoch-based read-copy-update grace periods.
//
// FloDB uses RCU in two places (§4.2 of the paper):
//
//   - Persisting: after the active Memtable is made immutable, the
//     persisting thread waits for all in-flight writers that may still hold
//     a reference to it; and after the immutable Memtable has been written
//     to disk, it waits again for in-flight readers before dropping it.
//   - Scans: after a new Membuffer is installed, the master scanner waits
//     for writers still inserting into the old one before draining it.
//
// Go's garbage collector makes the *memory reclamation* half of RCU
// unnecessary, but the *quiescence* half is load-bearing for correctness:
// Synchronize returns only once every critical section that began before
// the call has finished, which is exactly the "MemBufferRCUWait" /
// "MemTableRCUWait" primitive in Algorithm 3.
//
// The implementation is classic epoch-based reclamation: a global epoch
// counter plus a fixed array of cache-line-padded slots. A reader entering
// a critical section publishes the current epoch in a slot (chosen by a
// cheap per-goroutine hash; collisions are benign, they only cause readers
// to share a slot counter). Synchronize advances the epoch and spins until
// no slot still holds an older epoch.
package rcu

import (
	"runtime"
	"sync/atomic"
)

const (
	// slotCount is the number of reader slots. It is a power of two so the
	// slot index is a mask. 128 slots keeps contention negligible for the
	// thread counts in the paper's evaluation (up to 128 threads, Fig 10).
	slotCount = 128
	slotMask  = slotCount - 1

	// quiescent marks a slot with no active critical section. Epochs start
	// at 1 so 0 is never a valid active epoch.
	quiescent = uint64(0)
)

// cacheLinePad separates hot per-slot counters to avoid false sharing.
// x86-64 and arm64 cache lines are 64 bytes; 128 covers adjacent-line
// prefetching.
type slot struct {
	// state packs (epoch << 32) | nesting. A single word lets Enter/Exit be
	// one atomic op each even with nesting.
	state atomic.Uint64
	_     [120]byte
}

// Domain is an independent RCU domain. The zero value is NOT ready to use;
// call NewDomain.
type Domain struct {
	epoch atomic.Uint64
	slots [slotCount]slot
	// seq hands out slot indices to goroutines that did not pin one.
	seq atomic.Uint32
}

// NewDomain returns a ready-to-use RCU domain.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Handle identifies a reader slot. Handles may be shared by multiple
// goroutines (operations are atomic); dedicated handles per worker thread
// simply reduce contention.
type Handle struct {
	d   *Domain
	idx uint32
}

// Reader returns a handle bound to a fresh slot (round-robin). Worker
// threads that perform many operations should obtain one handle each and
// reuse it.
func (d *Domain) Reader() *Handle {
	return &Handle{d: d, idx: d.seq.Add(1) & slotMask}
}

// Enter begins a read-side critical section. It must be paired with Exit.
// Critical sections may nest.
func (h *Handle) Enter() {
	s := &h.d.slots[h.idx]
	for {
		old := s.state.Load()
		nesting := old & 0xffffffff
		var next uint64
		if nesting == 0 {
			// First entry: publish the current epoch.
			e := h.d.epoch.Load()
			next = e<<32 | 1
		} else {
			next = old + 1
		}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exit ends a read-side critical section.
func (h *Handle) Exit() {
	s := &h.d.slots[h.idx]
	for {
		old := s.state.Load()
		nesting := old & 0xffffffff
		if nesting == 0 {
			panic("rcu: Exit without matching Enter")
		}
		var next uint64
		if nesting == 1 {
			next = quiescent
		} else {
			next = old - 1
		}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Synchronize blocks until every read-side critical section that was active
// when Synchronize was called has completed. Critical sections that begin
// after the call may still be running when it returns.
func (d *Domain) Synchronize() {
	// Advance the epoch; readers entering after this see the new epoch.
	target := d.epoch.Add(1)
	for i := range d.slots {
		s := &d.slots[i]
		spins := 0
		for {
			st := s.state.Load()
			if st == quiescent {
				break
			}
			if st>>32 >= target {
				// The slot re-entered after the epoch bump; the old
				// section it might have had is finished.
				break
			}
			spins++
			if spins%64 == 0 {
				runtime.Gosched()
			}
		}
	}
}

// --- Convenience plumbing -------------------------------------------------

// Read runs fn inside a read-side critical section on a throwaway handle.
// Prefer a pinned Handle on hot paths.
func (d *Domain) Read(fn func()) {
	h := d.Reader()
	h.Enter()
	defer h.Exit()
	fn()
}
