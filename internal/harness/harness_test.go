package harness

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/workload"
)

// mapStore is a trivial in-memory kv.Store for driver tests.
type mapStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(_ context.Context, k, v []byte, _ ...kv.WriteOption) error {
	s.mu.Lock()
	s.m[string(k)] = append([]byte(nil), v...)
	s.mu.Unlock()
	return nil
}
func (s *mapStore) Delete(_ context.Context, k []byte, _ ...kv.WriteOption) error {
	s.mu.Lock()
	delete(s.m, string(k))
	s.mu.Unlock()
	return nil
}
func (s *mapStore) Sync(context.Context) error { return nil }
func (s *mapStore) Get(_ context.Context, k []byte) ([]byte, bool, error) {
	s.mu.RLock()
	v, ok := s.m[string(k)]
	s.mu.RUnlock()
	return v, ok, nil
}
func (s *mapStore) Scan(_ context.Context, low, high []byte) ([]kv.Pair, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(low, high), nil
}
func (s *mapStore) scanLocked(low, high []byte) []kv.Pair {
	var out []kv.Pair
	for k, v := range s.m {
		if low != nil && k < string(low) {
			continue
		}
		if high != nil && k >= string(high) {
			continue
		}
		out = append(out, kv.Pair{Key: []byte(k), Value: v})
	}
	return out
}
func (s *mapStore) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	pairs, err := s.Scan(ctx, low, high)
	if err != nil {
		return nil, err
	}
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0 })
	return &mapIter{pairs: pairs, i: -1}, nil
}

func (s *mapStore) Apply(_ context.Context, b *kv.Batch, _ ...kv.WriteOption) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range b.Ops() {
		if op.Kind == keys.KindDelete {
			delete(s.m, string(op.Key))
		} else {
			s.m[string(op.Key)] = append([]byte(nil), op.Value...)
		}
	}
	return nil
}

// Snapshot returns a materialized copy view — trivially repeatable-read.
func (s *mapStore) Snapshot(context.Context) (kv.View, error) {
	s.mu.RLock()
	snap := newMapStore()
	for k, v := range s.m {
		snap.m[k] = v
	}
	s.mu.RUnlock()
	return snap, nil
}

func (s *mapStore) Checkpoint(context.Context, string) error { return kv.ErrNotSupported }

func (s *mapStore) Close() error { return nil }

var _ kv.Store = (*mapStore)(nil)

// mapIter is a trivial materialized kv.Iterator over a mapStore snapshot.
type mapIter struct {
	pairs []kv.Pair
	i     int
}

func (it *mapIter) First() bool { it.i = 0; return it.i < len(it.pairs) }
func (it *mapIter) Seek(key []byte) bool {
	it.i = sort.Search(len(it.pairs), func(i int) bool {
		return bytes.Compare(it.pairs[i].Key, key) >= 0
	})
	return it.i < len(it.pairs)
}
func (it *mapIter) Next() bool {
	if it.i < 0 {
		return it.First()
	}
	it.i++
	return it.i < len(it.pairs)
}
func (it *mapIter) Key() []byte {
	if it.i < 0 || it.i >= len(it.pairs) {
		return nil
	}
	return it.pairs[it.i].Key
}
func (it *mapIter) Value() []byte {
	if it.i < 0 || it.i >= len(it.pairs) {
		return nil
	}
	return it.pairs[it.i].Value
}
func (it *mapIter) Err() error   { return nil }
func (it *mapIter) Close() error { return nil }

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	med := h.Median()
	if med < 300_000 || med > 800_000 {
		t.Fatalf("median %dns, want ~500µs", med)
	}
	p99 := h.P99()
	if p99 < 800_000 || p99 > 1_400_000 {
		t.Fatalf("p99 %dns, want ~990µs", p99)
	}
	if p99 <= med {
		t.Fatal("p99 <= median")
	}
	if h.Mean() <= 0 {
		t.Fatal("mean not positive")
	}
	if !strings.Contains(h.String(), "n=1000") {
		t.Fatal("String() malformed")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Median() != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMonotoneBuckets(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		m := bucketMid(i)
		if m <= prev {
			t.Fatalf("bucketMid not monotone at %d: %d <= %d", i, m, prev)
		}
		prev = m
	}
	// Recorded values must land in buckets whose mid is within 2x.
	for _, ns := range []int64{1, 10, 1000, 123456, 1e9} {
		b := bucketOf(ns)
		mid := bucketMid(b)
		if mid < ns/2 || mid > ns*2 {
			t.Fatalf("bucket mid %d far from value %d", mid, ns)
		}
	}
}

func TestRunCountsOps(t *testing.T) {
	s := newMapStore()
	res := Run(s, RunOptions{
		Threads:  4,
		Duration: 100 * time.Millisecond,
		Mix:      workload.Balanced,
		Keys:     1024,
	})
	if res.Ops == 0 {
		t.Fatal("no ops executed")
	}
	if res.Reads+res.Writes+res.Scans != res.Ops {
		t.Fatalf("op accounting: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.MopsPerSec() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunMaxOps(t *testing.T) {
	s := newMapStore()
	res := Run(s, RunOptions{
		Threads:  2,
		Duration: 10 * time.Second, // bounded by MaxOps, not time
		Mix:      workload.WriteOnly,
		Keys:     1024,
		MaxOps:   100,
	})
	if res.Ops != 200 {
		t.Fatalf("ops = %d, want exactly 2 threads x 100", res.Ops)
	}
	if res.Elapsed > 5*time.Second {
		t.Fatal("MaxOps did not stop the run")
	}
}

func TestRunOneWriter(t *testing.T) {
	s := newMapStore()
	res := Run(s, RunOptions{
		Threads:   4,
		Duration:  50 * time.Millisecond,
		Mix:       workload.ReadOnly, // overridden by OneWriter
		Keys:      256,
		OneWriter: true,
	})
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("one-writer mix broken: %+v", res)
	}
}

func TestRunLatencyMeasured(t *testing.T) {
	s := newMapStore()
	res := Run(s, RunOptions{
		Threads:        2,
		Duration:       50 * time.Millisecond,
		Mix:            workload.Balanced,
		Keys:           256,
		MeasureLatency: true,
	})
	if res.ReadLat.Count() == 0 || res.WriteLat.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
}

func TestRunScansCountKeys(t *testing.T) {
	s := newMapStore()
	if err := Fill(s, func(i uint64) []byte {
		return workload.NewUniform(1024).KeyAt(i, make([]byte, 8))
	}, 1024, 16); err != nil {
		t.Fatal(err)
	}
	res := Run(s, RunOptions{
		Threads:    2,
		Duration:   50 * time.Millisecond,
		Mix:        workload.ScanWithPct(100),
		Keys:       1024,
		ScanLength: 10,
	})
	if res.Scans == 0 {
		t.Fatal("no scans ran")
	}
	if res.KeysAccessed < res.Scans {
		t.Fatalf("keys accessed %d < scans %d", res.KeysAccessed, res.Scans)
	}
	if res.MkeysPerSec() <= 0 || res.ScanOpsPerSec() <= 0 {
		t.Fatal("scan throughput metrics broken")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure X", "threads", "Mops/s", []string{"1", "2"}, []string{"flodb", "rocksdb"})
	tb.Set(0, 0, 1.5)
	tb.Set(0, 1, 3.25)
	tb.Set(1, 0, 0.5)
	tb.Set(1, 1, 12345)
	tb.AddNote("hello %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "flodb", "rocksdb", "1.500", "12345", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.RenderCSV(&buf)
	if !strings.Contains(buf.String(), "flodb,1.5,3.25") {
		t.Fatalf("csv malformed:\n%s", buf.String())
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2 << 10:   "2KB",
		128 << 20: "128MB",
		192 << 30: "192GB",
	}
	for n, want := range cases {
		if got := ByteSize(n); got != want {
			t.Fatalf("ByteSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestQuiesceNoPanicOnPlainStore(t *testing.T) {
	Quiesce(newMapStore()) // no Quiescer implementation: must be a no-op
}
