package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one figure's data: series (rows) against an x-axis (columns),
// rendered as aligned text (the paper's plots, in rows) or CSV.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Cols   []string
	Rows   []string
	Cells  [][]float64 // [row][col]
	Notes  []string
}

// NewTable builds an empty table with the given axes.
func NewTable(title, xlabel, ylabel string, cols, rows []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel, Cols: cols, Rows: rows, Cells: cells}
}

// Set stores a cell.
func (t *Table) Set(row, col int, v float64) { t.Cells[row][col] = v }

// AddNote appends a caption line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(w, "(%s vs %s)\n", t.YLabel, t.XLabel)
	}
	rowHdrW := len("series")
	for _, r := range t.Rows {
		if len(r) > rowHdrW {
			rowHdrW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for j, c := range t.Cols {
		colW[j] = len(c)
		for i := range t.Rows {
			if n := len(formatCell(t.Cells[i][j])); n > colW[j] {
				colW[j] = n
			}
		}
	}
	fmt.Fprintf(w, "%-*s", rowHdrW, "series")
	for j, c := range t.Cols {
		fmt.Fprintf(w, "  %*s", colW[j], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", rowHdrW+sum(colW)+2*len(colW)))
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", rowHdrW, r)
		for j := range t.Cols {
			fmt.Fprintf(w, "  %*s", colW[j], formatCell(t.Cells[i][j]))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// RenderCSV writes the table as CSV (first column = series name).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintf(w, "series,%s\n", strings.Join(t.Cols, ","))
	for i, r := range t.Rows {
		fmt.Fprint(w, r)
		for j := range t.Cols {
			fmt.Fprintf(w, ",%g", t.Cells[i][j])
		}
		fmt.Fprintln(w)
	}
}

func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// ByteSize renders byte counts like the paper's axis labels (128MB, 2GB).
func ByteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.4gGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.4gMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.4gKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
