// Package harness drives the paper's experiments: fixed-duration
// multi-threaded open-loop drivers over any kv.Store, latency histograms,
// and table/CSV reporting for every figure in §5.
package harness

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the log-linear latency histogram:
// 4 sub-buckets per power of two from 1ns up to ~17s.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histBuckets caps at exponent 62 so bucket midpoints stay within
	// int64 nanoseconds (~292 years — a safe latency ceiling).
	histBuckets = (62-histSubBits)<<histSubBits + histSub + histSub
)

// Histogram is a concurrent log-linear latency histogram. Recording is a
// single atomic increment; percentiles are approximate (bucket midpoint),
// which is ample for the paper's normalized-latency figures (Figs 3–4).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
}

func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	v := uint64(ns)
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	b := (exp-histSubBits)<<histSubBits + int(sub) + histSub
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMid returns a representative nanosecond value for bucket i.
func bucketMid(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := (i-histSub)>>histSubBits + histSubBits
	sub := (i - histSub) & (histSub - 1)
	base := uint64(1) << uint(exp)
	step := base >> histSubBits
	return int64(base + uint64(sub)*step + step/2)
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d.Nanoseconds())].Add(1)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Quantile returns the approximate q-quantile (0 < q <= 1) in
// nanoseconds, or 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Median returns the approximate 50th percentile in nanoseconds.
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 returns the approximate 99th percentile in nanoseconds.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Mean returns the approximate mean in nanoseconds.
func (h *Histogram) Mean() float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			sum += float64(c) * float64(bucketMid(i))
		}
	}
	return sum / float64(total)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%dns p99=%dns", h.Count(), h.Median(), h.P99())
}
