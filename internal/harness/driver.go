package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/kv"
	"flodb/internal/workload"
)

// RunOptions configure one experiment cell (one point of one figure).
type RunOptions struct {
	// Threads is the number of concurrent worker goroutines ("each thread
	// mapped to a different core whenever possible", §5.1 — goroutines
	// here, as discussed in DESIGN.md).
	Threads int
	// Duration bounds the measured interval.
	Duration time.Duration
	// Mix is the operation distribution.
	Mix workload.Mix
	// Keys is the keyspace size; KeyGen overrides the default uniform
	// generator when set (thread index passed for determinism).
	Keys   uint64
	KeyGen func(thread int) workload.KeyGen
	// ValueSize is the value payload (default 256).
	ValueSize int
	// ScanLength is the expected number of keys per scan (default 100).
	ScanLength int
	// BatchSize is the number of mutations per OpBatch write batch
	// (default 16).
	BatchSize int
	// SnapshotReads is the number of point reads served through each
	// OpSnapshot view before it is released (default 16).
	SnapshotReads int
	// IteratorScans drives OpScan through Store.NewIterator instead of
	// Scan: the range streams through the cursor without materializing,
	// measuring the iterator path of the contract.
	IteratorScans bool
	// SyncWrites makes every mutation (OpInsert, OpDelete, OpBatch) a
	// Sync-class commit (kv.WithSync()): the op is acknowledged only
	// after a group-committed disk barrier covers it — the durable-write
	// column of apibench.
	SyncWrites bool
	// MeasureLatency enables per-op histograms (adds two clock reads per
	// op; off for pure throughput numbers, as in db_bench).
	MeasureLatency bool
	// Seed makes runs repeatable.
	Seed int64
	// MaxOps optionally stops each thread after this many operations
	// (burst mode, Fig 15).
	MaxOps uint64
	// OneWriter pins thread 0 to inserts and all others to gets (the
	// one-writer-many-readers mix of Fig 12).
	OneWriter bool
}

func (o *RunOptions) fillDefaults() {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.ValueSize <= 0 {
		o.ValueSize = workload.DefaultValueSize
	}
	if o.ScanLength <= 0 {
		o.ScanLength = 100
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.SnapshotReads <= 0 {
		o.SnapshotReads = 16
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Result aggregates one cell's measurements.
type Result struct {
	Ops          uint64
	Reads        uint64
	Writes       uint64
	Scans        uint64
	Snapshots    uint64
	Syncs        uint64 // Sync barrier ops (OpSync)
	KeysAccessed uint64 // scans count each returned key (§5.2)
	Elapsed      time.Duration
	ReadLat      *Histogram
	WriteLat     *Histogram
	Errors       uint64
}

// MopsPerSec returns throughput in millions of operations per second.
func (r Result) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// MkeysPerSec returns key-throughput (Fig 13/14's metric: "for scans we
// measure throughput as the number of keys accessed per second").
func (r Result) MkeysPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.KeysAccessed) / r.Elapsed.Seconds() / 1e6
}

// WriteMopsPerSec returns write-only throughput.
func (r Result) WriteMopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Writes) / r.Elapsed.Seconds() / 1e6
}

// ScanOpsPerSec returns scans per second.
func (r Result) ScanOpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Scans) / r.Elapsed.Seconds()
}

// Run drives store with opts and collects a Result. Each thread draws
// operations from the mix and keys from its generator, continually, until
// the duration elapses (§5.2: "threads concurrently performing operations
// on the data store ... continually").
func Run(store kv.Store, opts RunOptions) Result {
	opts.fillDefaults()
	ctx := context.Background()
	res := Result{
		ReadLat:  &Histogram{},
		WriteLat: &Histogram{},
	}
	var (
		stop     atomic.Bool
		ops      atomic.Uint64
		reads    atomic.Uint64
		writes   atomic.Uint64
		scans    atomic.Uint64
		snaps    atomic.Uint64
		syncs    atomic.Uint64
		keysAcc  atomic.Uint64
		errCount atomic.Uint64
		wg       sync.WaitGroup
	)

	// One shared option slice: the write options are immutable values.
	var writeOpts []kv.WriteOption
	if opts.SyncWrites {
		writeOpts = []kv.WriteOption{kv.WithSync()}
	}

	// Scan window width covering ~ScanLength keys of a uniformly spread
	// keyspace.
	scanWidth := uint64(float64(^uint64(0)) / float64(opts.Keys) * float64(opts.ScanLength))

	start := time.Now()
	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(t)*7919))
			var gen workload.KeyGen
			if opts.KeyGen != nil {
				gen = opts.KeyGen(t)
			} else {
				gen = workload.NewUniform(opts.Keys)
			}
			keyBuf := make([]byte, workload.DefaultKeySize)
			highBuf := make([]byte, workload.DefaultKeySize)
			var valBuf []byte
			batch := kv.NewBatch()
			var myOps uint64
			for !stop.Load() {
				if opts.MaxOps > 0 && myOps >= opts.MaxOps {
					break
				}
				myOps++
				op := opts.Mix.Sample(rng)
				if opts.OneWriter {
					if t == 0 {
						op = workload.OpInsert
					} else {
						op = workload.OpGet
					}
				}
				key := gen.NextKey(rng, keyBuf)
				var begin time.Time
				if opts.MeasureLatency {
					begin = time.Now()
				}
				switch op {
				case workload.OpGet:
					_, _, err := store.Get(ctx, key)
					if err != nil {
						errCount.Add(1)
						continue
					}
					reads.Add(1)
					keysAcc.Add(1)
					if opts.MeasureLatency {
						res.ReadLat.Record(time.Since(begin))
					}
				case workload.OpInsert:
					valBuf = workload.Value(valBuf, opts.ValueSize, myOps)
					if err := store.Put(ctx, key, valBuf, writeOpts...); err != nil {
						errCount.Add(1)
						continue
					}
					writes.Add(1)
					keysAcc.Add(1)
					if opts.MeasureLatency {
						res.WriteLat.Record(time.Since(begin))
					}
				case workload.OpDelete:
					if err := store.Delete(ctx, key, writeOpts...); err != nil {
						errCount.Add(1)
						continue
					}
					writes.Add(1)
					keysAcc.Add(1)
					if opts.MeasureLatency {
						res.WriteLat.Record(time.Since(begin))
					}
				case workload.OpScan:
					low := key
					var hv uint64
					for i := 0; i < 8; i++ {
						hv = hv<<8 | uint64(low[i])
					}
					high := workload.PutUint64(highBuf, hv+scanWidth)
					if hv+scanWidth < hv { // wrapped: open upper bound
						high = nil
					}
					var got uint64
					if opts.IteratorScans {
						it, err := store.NewIterator(ctx, low, high)
						if err != nil {
							errCount.Add(1)
							continue
						}
						for ok := it.First(); ok; ok = it.Next() {
							got++
						}
						err = it.Err()
						it.Close()
						if err != nil {
							errCount.Add(1)
							continue
						}
					} else {
						pairs, err := store.Scan(ctx, low, high)
						if err != nil {
							errCount.Add(1)
							continue
						}
						got = uint64(len(pairs))
					}
					scans.Add(1)
					keysAcc.Add(got)
				case workload.OpBatch:
					batch.Reset()
					for i := 0; i < opts.BatchSize; i++ {
						if i > 0 {
							key = gen.NextKey(rng, keyBuf)
						}
						valBuf = workload.Value(valBuf, opts.ValueSize, myOps+uint64(i))
						batch.Put(key, valBuf)
					}
					if err := store.Apply(ctx, batch, writeOpts...); err != nil {
						errCount.Add(1)
						continue
					}
					writes.Add(uint64(batch.Len()))
					keysAcc.Add(uint64(batch.Len()))
					if opts.MeasureLatency {
						res.WriteLat.Record(time.Since(begin))
					}
				case workload.OpSnapshot:
					// One repeatable-read session: pin a view, serve
					// SnapshotReads point reads from it, release it.
					view, err := store.Snapshot(ctx)
					if err != nil {
						errCount.Add(1)
						continue
					}
					failed := false
					for i := 0; i < opts.SnapshotReads; i++ {
						if i > 0 {
							key = gen.NextKey(rng, keyBuf)
						}
						if _, _, err := view.Get(ctx, key); err != nil {
							failed = true
							break
						}
					}
					view.Close()
					if failed {
						errCount.Add(1)
						continue
					}
					snaps.Add(1)
					reads.Add(uint64(opts.SnapshotReads))
					keysAcc.Add(uint64(opts.SnapshotReads))
					if opts.MeasureLatency {
						res.ReadLat.Record(time.Since(begin))
					}
				case workload.OpSync:
					// Durability barrier: promote everything acked so far.
					if err := store.Sync(ctx); err != nil {
						errCount.Add(1)
						continue
					}
					syncs.Add(1)
					if opts.MeasureLatency {
						res.WriteLat.Record(time.Since(begin))
					}
				}
				ops.Add(1)
			}
		}(t)
	}

	timer := time.AfterFunc(opts.Duration, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	res.Elapsed = time.Since(start)
	res.Ops = ops.Load()
	res.Reads = reads.Load()
	res.Writes = writes.Load()
	res.Scans = scans.Load()
	res.Snapshots = snaps.Load()
	res.Syncs = syncs.Load()
	res.KeysAccessed = keysAcc.Load()
	res.Errors = errCount.Load()
	return res
}

// Phase is one leg of a phase-shifting workload: a named RunOptions.
type Phase struct {
	Name string
	Opts RunOptions
	// OnDone, when non-nil, runs after this phase completes and before
	// the next begins — the hook fig_adaptive uses to record the
	// adaptive Membuffer fraction at each phase boundary.
	OnDone func(Result)
}

// RunPhased drives store through phases back-to-back on the SAME store
// instance and returns one Result per phase. Nothing is reset between
// phases — memory-component occupancy, disk state and any adaptive
// tuning carry over — so the per-phase results measure how the store
// TRACKS a shifting workload, not how it performs from a cold start.
// This is the harness behind the fig_adaptive ablation (§4.4): a
// write-burst phase, then scan-heavy, then mixed.
func RunPhased(store kv.Store, phases []Phase) []Result {
	out := make([]Result, len(phases))
	for i, p := range phases {
		out[i] = Run(store, p.Opts)
		if p.OnDone != nil {
			p.OnDone(out[i])
		}
	}
	return out
}

// Fill loads n keys into store (half-dataset random initialization of
// §5.2 when used with a shuffled order; sorted when sequential).
func Fill(store kv.Store, gen func(i uint64) []byte, n uint64, valueSize int) error {
	ctx := context.Background()
	var val []byte
	for i := uint64(0); i < n; i++ {
		val = workload.Value(val, valueSize, i)
		if err := store.Put(ctx, gen(i), val); err != nil {
			return fmt.Errorf("harness: fill at %d: %w", i, err)
		}
	}
	return nil
}

// Quiescer is implemented by stores that can wait out background disk
// work; the harness calls it between initialization and measurement
// ("we wait until draining to disk and compactions have completed before
// starting the experiment", §5.2).
type Quiescer interface {
	WaitDiskQuiesce()
}

// Quiesce waits for background work if the store supports it.
func Quiesce(store kv.Store) {
	if q, ok := store.(Quiescer); ok {
		q.WaitDiskQuiesce()
	}
}
