package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchDoc is the machine-readable form of a flobench run: per figure,
// per series (system or variant), the row of cell values in column
// order. It is what `flobench -json` writes, what BENCH_BASELINE.json
// commits, and what cmd/benchdiff compares — the CI bench trajectory's
// wire format.
type BenchDoc struct {
	Schema  int                    `json:"schema"`
	Figures map[string]BenchFigure `json:"figures"`
}

// BenchFigure is one table's data.
type BenchFigure struct {
	Title  string               `json:"title"`
	YLabel string               `json:"ylabel,omitempty"`
	Cols   []string             `json:"cols"`
	Series map[string][]float64 `json:"series"`
}

// BenchSchemaVersion bumps when the document layout changes
// incompatibly; benchdiff refuses mismatched schemas rather than
// comparing apples to reorganized oranges.
const BenchSchemaVersion = 1

// NewBenchDoc returns an empty document at the current schema.
func NewBenchDoc() *BenchDoc {
	return &BenchDoc{Schema: BenchSchemaVersion, Figures: map[string]BenchFigure{}}
}

// AddTable records one figure's table under name.
func (d *BenchDoc) AddTable(name string, t *Table) {
	fig := BenchFigure{
		Title:  t.Title,
		YLabel: t.YLabel,
		Cols:   append([]string(nil), t.Cols...),
		Series: map[string][]float64{},
	}
	for i, row := range t.Rows {
		fig.Series[row] = append([]float64(nil), t.Cells[i]...)
	}
	d.Figures[name] = fig
}

// WriteFile writes the document as indented JSON (stable key order via
// encoding/json's map sorting, so committed baselines diff cleanly).
func (d *BenchDoc) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchDoc parses a document written by WriteFile.
func ReadBenchDoc(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d BenchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this tool speaks %d", path, d.Schema, BenchSchemaVersion)
	}
	return &d, nil
}
