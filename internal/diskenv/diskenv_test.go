package diskenv

import (
	"errors"
	"testing"
	"time"
)

func TestNilLimiterIsUnlimited(t *testing.T) {
	var l *Limiter
	start := time.Now()
	l.Acquire(1 << 30)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("nil limiter should not block")
	}
	if l.Rate() != 0 {
		t.Fatal("nil limiter rate should be 0")
	}
}

func TestLimiterWithinBurstDoesNotSleep(t *testing.T) {
	slept := time.Duration(0)
	now := time.Now()
	l := newTestLimiter(1000, func() time.Time { return now }, func(d time.Duration) { slept += d })
	l.Acquire(500) // burst starts full at 1000 tokens
	if slept != 0 {
		t.Fatalf("slept %v inside burst", slept)
	}
	l.Acquire(500)
	if slept != 0 {
		t.Fatalf("slept %v consuming exactly the burst", slept)
	}
}

func TestLimiterThrottlesBeyondBurst(t *testing.T) {
	cur := time.Now()
	var slept time.Duration
	l := newTestLimiter(1000, func() time.Time { return cur }, func(d time.Duration) {
		slept += d
		cur = cur.Add(d) // advancing the clock refills tokens
	})
	l.Acquire(3000) // 1000 burst + 2000 owed at 1000 B/s => ~2s of sleeping
	if slept < 1900*time.Millisecond || slept > 2100*time.Millisecond {
		t.Fatalf("slept %v, want ~2s", slept)
	}
}

func TestLimiterRefillCap(t *testing.T) {
	cur := time.Now()
	l := newTestLimiter(100, func() time.Time { return cur }, func(d time.Duration) { cur = cur.Add(d) })
	l.Acquire(100) // drain the initial burst
	cur = cur.Add(time.Hour)
	// After an idle hour, tokens must cap at burst (100), not 360000.
	var slept bool
	l.sleep = func(d time.Duration) { slept = true; cur = cur.Add(d) }
	l.Acquire(200)
	if !slept {
		t.Fatal("refill was not capped at burst size")
	}
}

func TestZeroAndNegativeAcquire(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire(0)
	l.Acquire(-5)
	// No deadlock and no token consumption: a 1-byte acquire inside the
	// initial burst must not sleep.
	done := make(chan struct{})
	go func() { l.Acquire(1); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("acquire blocked unexpectedly")
	}
}

func TestFaultPoint(t *testing.T) {
	var f FaultPoint
	if err := f.Check(); err != nil {
		t.Fatal("unarmed fault fired")
	}
	boom := errors.New("boom")
	f.Arm(boom, 3)
	if f.Check() != nil || f.Check() != nil {
		t.Fatal("fired early")
	}
	if err := f.Check(); !errors.Is(err, boom) {
		t.Fatalf("third check = %v", err)
	}
	if f.Check() != nil {
		t.Fatal("fault fired twice")
	}
	if f.Fired() != 1 {
		t.Fatalf("Fired = %d", f.Fired())
	}
}

func TestNilFaultPoint(t *testing.T) {
	var f *FaultPoint
	if f.Check() != nil || f.Fired() != 0 {
		t.Fatal("nil fault point misbehaved")
	}
}

func TestLimiterRealTimeSmoke(t *testing.T) {
	// 1 MB/s limiter, 1 MB burst: acquiring 1.2 MB should take ~0.2s.
	l := NewLimiter(1 << 20)
	start := time.Now()
	l.Acquire(1<<20 + 1<<18)
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("elapsed %v, want ~250ms", elapsed)
	}
}
