// Package diskenv simulates disk environments for benchmarking.
//
// The paper's evaluation machine has a 960 GB SSD whose sustained ingest
// bounds FloDB's steady-state write throughput at ~1.2 M key-value pairs
// per second (the dashed line in Fig 9). Benchmark machines differ, so the
// harness can interpose a token-bucket Limiter on the persist path to
// model a disk with a chosen throughput — making the "FloDB saturates the
// persistence throughput with one thread" result reproducible anywhere.
//
// Fig 17 disables persistence entirely ("the immutable Memtables are
// dropped so that only the throughput of the in-memory component is
// captured"); the core exposes that as a DropPersist mode and needs
// nothing from this package for it.
//
// The package also provides error injection used by the failure tests.
package diskenv

import (
	"sync"
	"time"
)

// Limiter is a token-bucket byte-rate limiter. A nil *Limiter is valid and
// imposes no limit.
type Limiter struct {
	mu          sync.Mutex
	bytesPerSec float64
	burst       float64
	tokens      float64
	last        time.Time
	now         func() time.Time // injectable clock for tests
	sleep       func(time.Duration)
}

// NewLimiter builds a limiter sustaining bytesPerSec with one second of
// burst capacity.
func NewLimiter(bytesPerSec float64) *Limiter {
	return &Limiter{
		bytesPerSec: bytesPerSec,
		burst:       bytesPerSec,
		tokens:      bytesPerSec,
		now:         time.Now,
		sleep:       time.Sleep,
	}
}

// newTestLimiter lets tests drive the clock.
func newTestLimiter(bytesPerSec float64, now func() time.Time, sleep func(time.Duration)) *Limiter {
	l := NewLimiter(bytesPerSec)
	l.now = now
	l.sleep = sleep
	return l
}

// Acquire blocks until n bytes of budget are available and consumes them.
// Requests larger than the burst are served in burst-sized slices.
func (l *Limiter) Acquire(n int64) {
	if l == nil || n <= 0 {
		return
	}
	remaining := float64(n)
	for remaining > 0 {
		l.mu.Lock()
		now := l.now()
		if !l.last.IsZero() {
			l.tokens += now.Sub(l.last).Seconds() * l.bytesPerSec
			if l.tokens > l.burst {
				l.tokens = l.burst
			}
		}
		l.last = now
		take := remaining
		if take > l.tokens {
			take = l.tokens
		}
		if take > 0 {
			l.tokens -= take
			remaining -= take
		}
		var wait time.Duration
		if remaining > 0 {
			need := remaining
			if need > l.burst {
				need = l.burst
			}
			wait = time.Duration(need / l.bytesPerSec * float64(time.Second))
		}
		l.mu.Unlock()
		if wait > 0 {
			l.sleep(wait)
		}
	}
}

// Rate returns the configured bytes/second (0 for nil).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.bytesPerSec
}

// FaultPoint injects failures into code paths under test. Arm it with an
// error and a countdown: the Nth Check call fires the error once.
type FaultPoint struct {
	mu        sync.Mutex
	err       error
	remaining int
	fired     int
}

// Arm schedules err to fire on the nth Check call from now (n >= 1).
func (f *FaultPoint) Arm(err error, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.err = err
	f.remaining = n
}

// Check returns the armed error when the countdown reaches zero, nil
// otherwise. A nil *FaultPoint always passes.
func (f *FaultPoint) Check() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		return nil
	}
	f.remaining--
	if f.remaining > 0 {
		return nil
	}
	err := f.err
	f.err = nil
	f.fired++
	return err
}

// Fired reports how many times the fault has fired.
func (f *FaultPoint) Fired() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}
