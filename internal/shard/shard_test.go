package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/storage"
)

var bg = context.Background()

// spreadKey maps a dense index onto the 64-bit keyspace (the workload
// package's bijection), so test keys cover every shard of a uniform
// range split.
func spreadKey(i uint64) []byte {
	return keys.EncodeUint64(i * 0x9e3779b97f4a7c15)
}

// tinyCore keeps per-shard stores small enough that tests exercise
// drains and flushes without writing much data.
func tinyCore(walOn bool) core.Config {
	return core.Config{
		MemoryBytes: 256 << 10,
		DisableWAL:  !walOn,
		Storage:     storage.Options{BaseLevelBytes: 1 << 20, TargetFileSize: 256 << 10},
	}
}

func openN(t *testing.T, dir string, n int, walOn bool) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Shards: n, Core: tinyCore(walOn)})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformSplitterRouting(t *testing.T) {
	s := openN(t, t.TempDir(), 4, false)
	defer s.Close()
	if got := s.Routing(); got != "range" {
		t.Fatalf("Routing() = %q, want range", got)
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count() = %d, want 4", got)
	}
	// Routing is monotone in key order and covers every shard.
	hit := make(map[int]int)
	prev := -1
	for b := 0; b < 256; b++ {
		sh := s.ShardFor([]byte{byte(b), 0xff})
		if sh < prev {
			t.Fatalf("routing not monotone: key %#x -> shard %d after shard %d", b, sh, prev)
		}
		prev = sh
		hit[sh]++
	}
	if len(hit) != 4 {
		t.Fatalf("256 leading bytes hit %d of 4 shards", len(hit))
	}
	// The uniform split of 4 cuts exactly at the top two bits of the
	// 8-byte keyspace; a boundary key itself belongs to the upper shard.
	for _, tc := range []struct {
		key   uint64
		shard int
	}{
		{0, 0}, {1<<62 - 1, 0}, {1 << 62, 1}, {1<<63 - 1, 1},
		{1 << 63, 2}, {3<<62 - 1, 2}, {3 << 62, 3}, {^uint64(0), 3},
	} {
		if got := s.ShardFor(keys.EncodeUint64(tc.key)); got != tc.shard {
			t.Fatalf("ShardFor(%#x) = %d, want %d", tc.key, got, tc.shard)
		}
	}
	// Keys shorter than a boundary sort before it: a bare {0x40} is
	// strictly below the 0x4000..00 boundary, so it stays in shard 0.
	if got := s.ShardFor([]byte{0x40}); got != 0 {
		t.Fatalf("ShardFor(short 0x40) = %d, want 0", got)
	}
}

func TestHashFallbackRouting(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4, Splitter: HashSplitter{}, Core: tinyCore(false)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Routing(); got != "hash" {
		t.Fatalf("Routing() = %q, want hash", got)
	}
	hit := make(map[int]bool)
	const n = 512
	for i := uint64(0); i < n; i++ {
		k := spreadKey(i)
		hit[s.ShardFor(k)] = true
		if err := s.Put(bg, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if len(hit) != 4 {
		t.Fatalf("hash routing used %d of 4 shards", len(hit))
	}
	// Hash-routed shards interleave keys, but merged iteration and Scan
	// must still come back in global key order, complete.
	pairs, err := s.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(pairs), n)
	}
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
			t.Fatalf("scan out of order at %d: %x >= %x", i, pairs[i-1].Key, pairs[i].Key)
		}
	}
}

func TestBadSplitterRejected(t *testing.T) {
	for name, split := range map[string]Splitter{
		"wrong-count": splitterFunc(func(n int) [][]byte { return [][]byte{{1}} }),
		"descending":  splitterFunc(func(n int) [][]byte { return [][]byte{{9}, {5}, {1}} }),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Open(Config{Dir: t.TempDir(), Shards: 4, Splitter: split, Core: tinyCore(false)}); err == nil {
				t.Fatal("invalid splitter accepted")
			}
		})
	}
}

type splitterFunc func(n int) [][]byte

func (f splitterFunc) Boundaries(n int) [][]byte { return f(n) }

func TestManifestReopen(t *testing.T) {
	dir := t.TempDir()
	s := openN(t, dir, 4, true)
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := s.Put(bg, spreadKey(i), keys.EncodeUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a mismatched count must fail — the layout is data.
	if _, err := Open(Config{Dir: dir, Shards: 8, Core: tinyCore(true)}); err == nil {
		t.Fatal("reopen with wrong shard count accepted")
	}

	r := openN(t, dir, 4, true)
	defer r.Close()
	for i := uint64(0); i < n; i++ {
		v, ok, err := r.Get(bg, spreadKey(i))
		if err != nil || !ok || keys.DecodeUint64(v) != i {
			t.Fatalf("key %d after reopen: %x %v %v", i, v, ok, err)
		}
	}
}

func TestNonShardedDirRejected(t *testing.T) {
	// A directory holding a plain (unsharded) store must not be silently
	// overlaid with shard routing.
	dir := t.TempDir()
	db, err := core.Open(core.Config{Dir: dir, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bg, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Shards: 4, Core: tinyCore(false)}); err == nil {
		t.Fatal("non-sharded directory accepted as a sharded store")
	}
}

func TestMergedIteratorGlobalOrder(t *testing.T) {
	s := openN(t, t.TempDir(), 4, false)
	defer s.Close()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := s.Put(bg, spreadKey(i), keys.EncodeUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.NewIterator(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var prev []byte
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator out of order at %d: %x >= %x", count, prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d pairs, want %d", count, n)
	}

	// Seek lands on the first key >= target, in any shard — including
	// seeking backward after the cursor advanced past it.
	sorted := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		sorted = append(sorted, spreadKey(i))
	}
	sortKeys(sorted)
	for _, idx := range []int{0, 1, n / 3, n / 2, n - 2, n - 1} {
		if !it.Seek(sorted[idx]) {
			t.Fatalf("Seek(%x) found nothing", sorted[idx])
		}
		if !bytes.Equal(it.Key(), sorted[idx]) {
			t.Fatalf("Seek(%x) landed on %x", sorted[idx], it.Key())
		}
	}
	// Seek past everything is exhaustion, not an error.
	if it.Seek(bytes.Repeat([]byte{0xff}, 9)) {
		t.Fatal("Seek past the last key succeeded")
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func sortKeys(ks [][]byte) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && bytes.Compare(ks[j-1], ks[j]) > 0; j-- {
			ks[j-1], ks[j] = ks[j], ks[j-1]
		}
	}
}

func TestScanAcrossBoundaries(t *testing.T) {
	s := openN(t, t.TempDir(), 4, false)
	defer s.Close()
	// One key per leading byte: 256 keys evenly over the 4 shards.
	for b := 0; b < 256; b++ {
		k := []byte{byte(b), 0, 0, 0, 0, 0, 0, 0}
		if err := s.Put(bg, k, []byte{byte(b)}); err != nil {
			t.Fatal(err)
		}
	}
	// A window spanning the shard-1/shard-2 boundary (0x80).
	low := []byte{0x70, 0, 0, 0, 0, 0, 0, 0}
	high := []byte{0x90, 0, 0, 0, 0, 0, 0, 0}
	pairs, err := s.Scan(bg, low, high)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0x90-0x70 {
		t.Fatalf("boundary scan returned %d pairs, want %d", len(pairs), 0x90-0x70)
	}
	for i, p := range pairs {
		if p.Key[0] != byte(0x70+i) {
			t.Fatalf("boundary scan pair %d has key %x", i, p.Key)
		}
	}
}

// TestSnapshotSpansShards is the cross-shard repeatable-read model test:
// a snapshot taken mid write-storm must observe one globally consistent
// cut — identical on every read, every recovered value intact — while
// the live store keeps moving under it.
func TestSnapshotSpansShards(t *testing.T) {
	s := openN(t, t.TempDir(), 4, true)
	defer s.Close()
	const keyspace = 1 << 12

	ctx, cancel := context.WithCancel(bg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for ctx.Err() == nil {
				i := uint64(rng.Intn(keyspace))
				k := spreadKey(i)
				// Value always equals the key, so any state a reader can
				// observe is self-consistent per key.
				if err := s.Put(ctx, k, k); err != nil && ctx.Err() == nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Let the storm touch all shards, then cut.
	for warm := 0; warm < 1000; warm++ {
		if warm%100 == 0 {
			if _, _, err := s.Get(bg, spreadKey(uint64(warm))); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := s.Snapshot(bg)
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatal(err)
	}
	first, err := snap.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		again, err := snap.Scan(bg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("pass %d: snapshot scan length changed %d -> %d", pass, len(first), len(again))
		}
		for i := range again {
			if !bytes.Equal(again[i].Key, first[i].Key) || !bytes.Equal(again[i].Value, first[i].Value) {
				t.Fatalf("pass %d: snapshot drifted at %d: %x=%x vs %x=%x",
					pass, i, again[i].Key, again[i].Value, first[i].Key, first[i].Value)
			}
			if !bytes.Equal(again[i].Key, again[i].Value) {
				t.Fatalf("pass %d: corrupt pair %x=%x", pass, again[i].Key, again[i].Value)
			}
		}
	}
	cancel()
	wg.Wait()

	// Released handles return the typed error.
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Get(bg, spreadKey(1)); !errors.Is(err, kv.ErrSnapshotReleased) {
		t.Fatalf("released snapshot Get: %v", err)
	}
}

// TestCrossShardBatchCrashRecovery opens the documented cross-shard
// atomicity caveat for real: a batch spanning every shard is committed
// Buffered, ONE shard's WAL is then promoted by a Sync-class write, and
// the store crashes. The promoted shard must recover its whole slice of
// the batch; every shard must recover its slice all-or-nothing (a
// consistent prefix of its own commit order) — a partially applied
// sub-batch is the bug.
func TestCrossShardBatchCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openN(t, dir, 4, true)

	const perShard = 8
	b := kv.NewBatch()
	var shardKeys [4][][]byte
	for sh := 0; sh < 4; sh++ {
		for i := 0; i < perShard; i++ {
			// Leading byte pins the shard under the uniform 4-way split.
			k := []byte{byte(sh << 6), byte(i), 0, 0, 0, 0, 0, 1}
			if got := s.ShardFor(k); got != sh {
				t.Fatalf("test key %x routed to shard %d, want %d", k, got, sh)
			}
			shardKeys[sh] = append(shardKeys[sh], k)
			b.Put(k, k)
		}
	}
	if err := s.Apply(bg, b); err != nil {
		t.Fatal(err)
	}
	// Promote shard 2 only: a Sync-class write on the same shard fsyncs
	// the WAL prefix holding its slice of the batch.
	promote := []byte{0x80, 0xff, 0, 0, 0, 0, 0, 2}
	if got := s.ShardFor(promote); got != 2 {
		t.Fatalf("promote key routed to shard %d, want 2", got)
	}
	if err := s.Put(bg, promote, promote, kv.WithSync()); err != nil {
		t.Fatal(err)
	}
	s.CrashForTesting()

	r := openN(t, dir, 4, true)
	defer r.Close()
	for sh := 0; sh < 4; sh++ {
		present := 0
		for _, k := range shardKeys[sh] {
			v, ok, err := r.Get(bg, k)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if !bytes.Equal(v, k) {
					t.Fatalf("shard %d key %x recovered corrupt: %x", sh, k, v)
				}
				present++
			}
		}
		if present != 0 && present != perShard {
			t.Fatalf("shard %d recovered %d of %d batch ops: sub-batch atomicity broken", sh, present, perShard)
		}
		if sh == 2 && present != perShard {
			t.Fatalf("shard 2 lost its batch slice despite the Sync promotion (recovered %d)", present)
		}
	}
}

// TestStatsAggregation checks the logical-vs-physical counter split: a
// fanned-out call counts once at the store level, while routed writes
// sum across shards, and the per-shard breakdown accounts for every put.
func TestStatsAggregation(t *testing.T) {
	s := openN(t, t.TempDir(), 2, true)
	defer s.Close()
	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := s.Put(bg, spreadKey(i), keys.EncodeUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	if _, err := s.Scan(bg, nil, nil); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch()
	b.Put(spreadKey(0), []byte("x"))
	b.Put(spreadKey(1), []byte("y"))
	if err := s.Apply(bg, b); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Puts != n {
		t.Fatalf("Puts = %d, want %d", st.Puts, n)
	}
	if st.SyncBarriers != 1 || st.Snapshots != 1 || st.Scans != 1 {
		t.Fatalf("logical counters fanned out: %+v", st)
	}
	if st.Batches != 1 || st.BatchOps != 2 {
		t.Fatalf("batch counters: batches=%d ops=%d", st.Batches, st.BatchOps)
	}
	if st.DurableSeq > st.AckedSeq {
		t.Fatalf("durable %d > acked %d", st.DurableSeq, st.AckedSeq)
	}

	per := s.PerShard()
	if len(per) != 2 {
		t.Fatalf("PerShard returned %d rows", len(per))
	}
	var sum uint64
	for _, ss := range per {
		sum += ss.Puts
	}
	if sum != n {
		t.Fatalf("per-shard puts sum to %d, want %d", sum, n)
	}
	for i, ss := range per {
		if ss.Puts == 0 {
			t.Fatalf("shard %d saw no puts: spread keys should hit both shards", i)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openN(t, t.TempDir(), 2, false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bg, []byte("k"), []byte("v")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put on closed store: %v", err)
	}
	if _, _, err := s.Get(bg, []byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get on closed store: %v", err)
	}
	if _, err := s.Scan(bg, nil, nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Scan on closed store: %v", err)
	}
	if _, err := s.Snapshot(bg); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Snapshot on closed store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent")
	}
}

// TestShardStress drives every entry point of the sharded store from
// concurrent goroutines — the -race CI target. Routed writes, merged
// scans and iterators, cross-shard batches, snapshots and barriers all
// interleave; the assertions are "no error, no deadlock, values intact".
func TestShardStress(t *testing.T) {
	s := openN(t, t.TempDir(), 4, true)
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	const (
		workers = 8
		opsEach = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			for op := 0; op < opsEach; op++ {
				i := uint64(rng.Intn(1 << 10))
				k := spreadKey(i)
				switch op % 8 {
				case 0, 1, 2:
					if err := s.Put(bg, k, k); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if v, ok, err := s.Get(bg, k); err != nil {
						t.Error(err)
						return
					} else if ok && !bytes.Equal(v, k) {
						t.Errorf("corrupt read: %x = %x", k, v)
						return
					}
				case 4:
					if err := s.Delete(bg, k); err != nil {
						t.Error(err)
						return
					}
				case 5:
					b := kv.NewBatch()
					for j := 0; j < 8; j++ {
						kk := spreadKey(uint64(rng.Intn(1 << 10)))
						b.Put(kk, kk)
					}
					if err := s.Apply(bg, b); err != nil {
						t.Error(err)
						return
					}
				case 6:
					it, err := s.NewIterator(bg, k, nil)
					if err != nil {
						t.Error(err)
						return
					}
					var prev []byte
					for n, ok := 0, it.First(); ok && n < 50; n, ok = n+1, it.Next() {
						if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
							t.Errorf("stress iterator out of order: %x >= %x", prev, it.Key())
							it.Close()
							return
						}
						prev = append(prev[:0], it.Key()...)
					}
					if err := it.Err(); err != nil {
						t.Error(err)
					}
					it.Close()
				case 7:
					if w == 0 && op%64 == 7 {
						snap, err := s.Snapshot(bg)
						if err != nil {
							t.Error(err)
							return
						}
						if _, _, err := snap.Get(bg, k); err != nil {
							t.Error(err)
						}
						snap.Close()
					} else {
						if err := s.Sync(bg); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// The store is still coherent: a full merged scan is globally sorted
	// and every surviving value equals its key.
	pairs, err := s.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if i > 0 && bytes.Compare(pairs[i-1].Key, p.Key) >= 0 {
			t.Fatalf("post-stress scan out of order at %d", i)
		}
		if !bytes.Equal(p.Key, p.Value) {
			t.Fatalf("post-stress corrupt pair %x=%x", p.Key, p.Value)
		}
	}
}

// TestCheckpointReopensSharded covers the fan-out checkpoint layout:
// per-shard subdirectories plus the SHARDS manifest, reopening as a
// sharded store with identical contents and routing.
func TestCheckpointReopensSharded(t *testing.T) {
	base := t.TempDir()
	s := openN(t, fmt.Sprintf("%s/src", base), 4, true)
	defer s.Close()
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := s.Put(bg, spreadKey(i), keys.EncodeUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ck := fmt.Sprintf("%s/ck", base)
	if err := s.Checkpoint(bg, ck); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint into the same directory must refuse.
	if err := s.Checkpoint(bg, ck); err == nil {
		t.Fatal("checkpoint into a non-empty dir accepted")
	}

	r := openN(t, ck, 4, true)
	defer r.Close()
	if r.Routing() != s.Routing() {
		t.Fatalf("checkpoint routing %q != source %q", r.Routing(), s.Routing())
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := r.Get(bg, spreadKey(i))
		if err != nil || !ok || keys.DecodeUint64(v) != i {
			t.Fatalf("checkpoint key %d: %x %v %v", i, v, ok, err)
		}
	}
}

// TestInvertedBoundsReturnEmpty pins the kv.Store contract corner a
// single engine already satisfies: low > high is an empty range, not a
// crash, on live scans, iterators, and snapshot reads.
func TestInvertedBoundsReturnEmpty(t *testing.T) {
	s := openN(t, t.TempDir(), 4, false)
	defer s.Close()
	for i := uint64(0); i < 64; i++ {
		if err := s.Put(bg, spreadKey(i), spreadKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	low := []byte{0xf0, 0, 0, 0, 0, 0, 0, 0}
	high := []byte{0x10, 0, 0, 0, 0, 0, 0, 0}
	pairs, err := s.Scan(bg, low, high)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("inverted Scan = %d pairs, %v; want empty, nil", len(pairs), err)
	}
	it, err := s.NewIterator(bg, low, high)
	if err != nil {
		t.Fatal(err)
	}
	if it.First() {
		t.Fatalf("inverted iterator yielded %x", it.Key())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	snap, err := s.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if pairs, err := snap.Scan(bg, low, high); err != nil || len(pairs) != 0 {
		t.Fatalf("inverted snapshot Scan = %d pairs, %v; want empty, nil", len(pairs), err)
	}
}
