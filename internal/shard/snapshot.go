package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// ErrSnapshotReleased wraps kv.ErrSnapshotReleased for reads on a closed
// cross-shard snapshot.
var ErrSnapshotReleased = fmt.Errorf("shard: %w", kv.ErrSnapshotReleased)

// snapView is a cross-shard repeatable-read handle: N per-shard snapshot
// views pinned under one write barrier, so together they are a single
// globally consistent cut. Reads route and merge exactly like the live
// store's, but against the pinned views.
type snapView struct {
	s      *Store
	views  []kv.View
	closed atomic.Bool
}

var _ kv.View = (*snapView)(nil)

func (v *snapView) check(ctx context.Context) error {
	if v.closed.Load() {
		return ErrSnapshotReleased
	}
	if v.s.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// Get returns the value key had at the snapshot point.
func (v *snapView) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := v.check(ctx); err != nil {
		return nil, false, err
	}
	return v.views[v.s.ShardFor(key)].Get(ctx, key)
}

// Scan materializes low <= key < high at the snapshot point, in global
// key order.
func (v *snapView) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := v.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// NewIterator streams the snapshot's range, merging the overlapping
// shards' pinned views. Like core snapshots, iterators hold their own
// pins, so they stay valid if the handle is Closed mid-iteration.
func (v *snapView) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := v.check(ctx); err != nil {
		return nil, err
	}
	lo, hi := v.s.shardRange(low, high)
	subs := make([]kv.Iterator, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		it, err := v.views[i].NewIterator(ctx, low, high)
		if err != nil {
			for _, open := range subs {
				open.Close()
			}
			return nil, err
		}
		subs = append(subs, it)
	}
	return newMergedIter(subs), nil
}

// Close releases every per-shard snapshot. Reads after Close return
// ErrSnapshotReleased. Idempotent.
func (v *snapView) Close() error {
	if v.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, view := range v.views {
		if err := view.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
