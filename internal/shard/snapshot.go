package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// ErrSnapshotReleased wraps kv.ErrSnapshotReleased for reads on a closed
// cross-shard snapshot.
var ErrSnapshotReleased = fmt.Errorf("shard: %w", kv.ErrSnapshotReleased)

// snapView is a cross-shard repeatable-read handle: N per-shard snapshot
// views pinned under one write barrier, so together they are a single
// globally consistent cut. The handle captures the TOPOLOGY it was
// taken under — it routes through its own table, not the live store's,
// and holds a reference on each of that epoch's engines, so reads stay
// correct (and the engines stay open) across any number of later splits
// and merges. Close releases the views and the engine pins; a retired
// engine whose last pin drops is reclaimed then.
type snapView struct {
	s      *Store
	t      *table // the pinned epoch's routing
	views  []kv.View
	closed atomic.Bool
}

var _ kv.View = (*snapView)(nil)

func (v *snapView) check(ctx context.Context) error {
	if v.closed.Load() {
		return ErrSnapshotReleased
	}
	if v.s.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// Get returns the value key had at the snapshot point, routed by the
// snapshot's own epoch.
func (v *snapView) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := v.check(ctx); err != nil {
		return nil, false, err
	}
	return v.views[v.t.shardFor(key)].Get(ctx, key)
}

// Scan materializes low <= key < high at the snapshot point, in global
// key order.
func (v *snapView) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	it, err := v.NewIterator(ctx, low, high)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []kv.Pair
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, kv.Pair{Key: keys.Clone(it.Key()), Value: keys.Clone(it.Value())})
	}
	return out, it.Err()
}

// NewIterator streams the snapshot's range, merging the overlapping
// shards' pinned views with the same parallel producers the live
// iterator uses. The iterator takes its own engine pins, so it stays
// valid if the handle is Closed mid-iteration — even if the engines
// have since been retired by a split.
func (v *snapView) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if err := v.check(ctx); err != nil {
		return nil, err
	}
	lo, hi := v.t.shardRange(low, high)
	// The handle's own pins keep refs positive, so acquire cannot fail.
	pinned := make([]*engine, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		v.t.engines[i].acquire()
		pinned = append(pinned, v.t.engines[i])
	}
	release := func() {
		for _, e := range pinned {
			e.release()
		}
	}
	subs := make([]kv.Iterator, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		it, err := v.views[i].NewIterator(ctx, low, high)
		if err != nil {
			for _, open := range subs {
				open.Close()
			}
			release()
			return nil, err
		}
		subs = append(subs, it)
	}
	return newMergedIter(subs, release), nil
}

// Close releases every per-shard snapshot and the epoch's engine pins.
// Reads after Close return ErrSnapshotReleased. Idempotent.
func (v *snapView) Close() error {
	if v.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, view := range v.views {
		if err := view.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, e := range v.t.engines {
		if err := e.release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
