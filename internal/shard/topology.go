package shard

import (
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"flodb/internal/core"
	"flodb/internal/keys"
)

// Topology is the store's live shard layout, versioned by epoch. The
// epoch starts at 1 when the store is created and bumps on every split
// or merge; readers that cache routing decisions (clients, operators'
// dashboards) compare epochs to detect a layout change. Boundaries are
// the n-1 strictly ascending keys cutting the keyspace: shard 0 owns
// keys below Boundaries[0], shard i owns [Boundaries[i-1],
// Boundaries[i]), the last shard owns everything from Boundaries[n-2]
// up. Under hash routing Boundaries is nil — the layout never changes,
// so the epoch stays at 1 for life.
type Topology struct {
	Epoch      uint64
	Shards     int
	Routing    string // "range" or "hash"
	Boundaries [][]byte
}

// Topology returns a snapshot of the current shard layout. The boundary
// keys are copies — the caller may retain them across epoch changes.
func (s *Store) Topology() Topology {
	t := s.topo.Load()
	out := Topology{Epoch: t.epoch, Shards: len(t.engines), Routing: routingRange}
	if t.hashed {
		out.Routing = routingHash
		return out
	}
	for _, b := range t.boundaries {
		out.Boundaries = append(out.Boundaries, keys.Clone(b))
	}
	return out
}

// table is one immutable topology version: the engines and the routing
// that selects among them. The store swaps whole tables atomically, so
// every reader sees a consistent (epoch, boundaries, engines) triple;
// superseded tables stay readable through the refs their snapshots and
// iterators hold.
type table struct {
	epoch      uint64
	boundaries [][]byte // len(engines)-1; nil iff hashed
	hashed     bool
	engines    []*engine
	nextDir    int

	// changed is closed when this table is superseded — producers whose
	// push lost the race to a topology rewrite wait on it instead of
	// spinning against a closed queue.
	changed chan struct{}
}

// shardFor returns the index of the engine that owns key.
func (t *table) shardFor(key []byte) int {
	if t.hashed {
		var sum uint64 = 14695981039346656037
		for _, c := range key {
			sum ^= uint64(c)
			sum *= 1099511628211
		}
		sum ^= sum >> 33
		return int(sum % uint64(len(t.engines)))
	}
	// First boundary strictly above key names the owning shard; keys at
	// or past the last boundary fall through to the final shard.
	return sort.Search(len(t.boundaries), func(i int) bool {
		return keys.Compare(key, t.boundaries[i]) < 0
	})
}

// shardRange returns the [lo, hi] engine indices a key range overlaps.
// Only meaningful for range routing; hash routing spans every shard.
func (t *table) shardRange(low, high []byte) (int, int) {
	if t.hashed {
		return 0, len(t.engines) - 1
	}
	lo := 0
	if low != nil {
		lo = t.shardFor(low)
	}
	hi := len(t.engines) - 1
	if high != nil {
		// high is exclusive; shardFor(high) may point one shard past the
		// last key actually in range, which then contributes nothing.
		hi = t.shardFor(high)
	}
	if hi < lo {
		// Inverted bounds: collapse to one shard, whose own bounds check
		// yields the empty result a single engine returns.
		hi = lo
	}
	return lo, hi
}

// bounds returns engine i's [low, high) ownership range; nil means open.
func (t *table) bounds(i int) (low, high []byte) {
	if t.hashed {
		return nil, nil
	}
	if i > 0 {
		low = t.boundaries[i-1]
	}
	if i < len(t.boundaries) {
		high = t.boundaries[i]
	}
	return low, high
}

// layout renders the table back into its on-disk record.
func (t *table) layout() *layout {
	l := &layout{epoch: t.epoch, hashed: t.hashed, nextDir: t.nextDir}
	for _, e := range t.engines {
		l.dirs = append(l.dirs, e.dir)
	}
	l.boundaries = t.boundaries
	return l
}

// sampleEvery controls the committer's split-key reservoir: every Nth
// routed write contributes its key (cloned) to a small ring the
// rebalancer consults for a median split point.
const (
	sampleEvery = 8
	sampleCap   = 64
)

// engine is one shard: a core.DB plus its commit pipeline and lifecycle
// state. Engines are refcounted — the owning table holds one ref, and
// every snapshot, iterator and in-flight read acquires another — so a
// split/merge can retire an engine while pinned readers keep its old
// epoch readable; the last release closes the DB and (for retired
// engines) deletes the directory.
type engine struct {
	db   *core.DB
	dir  string // directory name under the store root
	root string // store root (for retirement cleanup)

	queue   opQueue
	wake    chan struct{} // doorbell, cap 1
	drained chan struct{} // closed by the committer when it observes retirement

	// commitMu serializes commits against the shard's engine: exactly
	// one goroutine — the dedicated committer or a producer committing
	// inline (flat combining) — drains the queue and applies groups at
	// a time. Producers only ever TryLock it; the committer goroutine
	// blocks on it, so a fence observing it free through the
	// committer's drain knows no commit is in flight.
	commitMu sync.Mutex

	refs    atomic.Int64
	retired atomic.Bool  // retirement removes the directory on last release
	crashed *atomic.Bool // the store's crash flag: finalize abandons instead of closing

	// Split-key reservoir, maintained by the committer (writes only).
	sampleMu  sync.Mutex
	samples   [][]byte
	sampleIdx int
	sampleN   uint64

	// hotShare is the rebalance sensor's last-window share of store
	// traffic for this shard, as math.Float64bits.
	hotShare atomic.Uint64
	// prevOps is the sensor's previous cumulative op reading.
	prevOps uint64

	// queueHighWater is the largest drained run seen, for the
	// shard-queue telemetry event (emitted on power-of-two crossings).
	queueHighWater int

	// scratch is the committer's reusable group buffer (committer-only).
	scratch []*writeOp
}

// acquire takes a reference if the engine is still live (refs > 0).
// It fails only when the caller raced a retirement with a stale table.
func (e *engine) acquire() bool {
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops a reference, finalizing on the last one.
func (e *engine) release() error {
	if e.refs.Add(-1) != 0 {
		return nil
	}
	return e.finalize()
}

// finalize closes the engine's DB — or abandons it crash-style when the
// store was crashed for testing — and removes a retired engine's
// directory. Retired directories hold data the manifest no longer
// references (a split parent, merge sources), so deleting them is
// reclamation, not loss; if the removal is skipped by a crash, Open's
// orphan sweep finishes the job.
func (e *engine) finalize() error {
	var err error
	if e.crashed != nil && e.crashed.Load() {
		e.db.CrashForTesting()
	} else {
		err = e.db.Close()
	}
	if e.retired.Load() {
		if rmErr := os.RemoveAll(filepath.Join(e.root, e.dir)); err == nil {
			err = rmErr
		}
	}
	return err
}

// sample records a routed write key into the split reservoir (cloned —
// the caller's buffer outlives only the op).
func (e *engine) sample(key []byte) {
	e.sampleN++
	if e.sampleN%sampleEvery != 0 {
		return
	}
	k := keys.Clone(key)
	e.sampleMu.Lock()
	if len(e.samples) < sampleCap {
		e.samples = append(e.samples, k)
	} else {
		e.samples[e.sampleIdx] = k
		e.sampleIdx = (e.sampleIdx + 1) % sampleCap
	}
	e.sampleMu.Unlock()
}

// sampledSplitKey returns the median of the sampled write keys — the
// rebalancer's split point — or nil when too few writes have been seen
// to call a median honest.
func (e *engine) sampledSplitKey() []byte {
	e.sampleMu.Lock()
	defer e.sampleMu.Unlock()
	if len(e.samples) < 8 {
		return nil
	}
	sorted := make([][]byte, len(e.samples))
	copy(sorted, e.samples)
	sort.Slice(sorted, func(i, j int) bool { return keys.Compare(sorted[i], sorted[j]) < 0 })
	return keys.Clone(sorted[len(sorted)/2])
}

func (e *engine) loadHotShare() float64 {
	return math.Float64frombits(e.hotShare.Load())
}

func (e *engine) storeHotShare(v float64) {
	e.hotShare.Store(math.Float64bits(v))
}

// ringDoorbell wakes the committer if it is parked. The channel has
// capacity 1: a pending wake already covers this push.
func (e *engine) ringDoorbell() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}
