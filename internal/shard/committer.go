package shard

import (
	"context"
	"fmt"

	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
)

// maxGroupOps caps how many queued operations one committer batch
// coalesces. Big enough to amortize the per-commit costs (drainMu, RCU
// section, WAL record framing, fsync) across a burst, small enough to
// bound the latency the first op in a drained run waits on the last.
const maxGroupOps = 128

// queueEventFloor is the smallest drained run worth an EventShardQueue
// entry; below it the queue is just absorbing scheduling jitter.
const queueEventFloor = 32

// start launches the engine's committer goroutine: the backstop
// consumer of its op queue. Commits are flat-combined — a producer that
// finds commitMu free drains and commits inline (including its own op),
// which on an idle shard costs zero context switches; the goroutine
// takes over only when producers are arriving faster than one of them
// can retire the queue. It parks on the doorbell when the queue is
// empty and exits — closing drained — when the queue is retired by a
// split, merge or store close.
//
// The fence ordering producers and rebalancers rely on: drained is
// closed only after the goroutine observed the closed queue while
// holding commitMu, so every commit that drained ops before the close
// (inline or not) has fully completed, and no later TryLock holder can
// find ops to commit.
func (e *engine) start(s *Store) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			e.commitMu.Lock()
			ops, closed := e.queue.drain()
			if closed {
				e.commitMu.Unlock()
				close(e.drained)
				return
			}
			if ops == nil {
				e.commitMu.Unlock()
				<-e.wake
				continue
			}
			e.commitRun(s, ops)
			e.commitMu.Unlock()
		}
	}()
}

// combine is the producer-side half of flat combining, called after a
// successful push: if no commit is in flight, drain and commit the
// queue ourselves — our own op rides along — instead of paying two
// scheduler hops to hand it to the committer goroutine. One drain is
// enough before unlocking: our drain emptied the stack, so the next
// push observes wasEmpty and rings the doorbell (or combines itself).
// If the lock is held, the holder will retire any op already pushed;
// wasEmpty pushes still ring the doorbell to cover the holder having
// drained just before our push landed.
func (e *engine) combine(s *Store, wasEmpty bool) {
	if e.commitMu.TryLock() {
		// A closed queue drains (nil, true): the fence that closed it
		// re-routes the remaining ops itself, so there is nothing to do.
		if ops, _ := e.queue.drain(); ops != nil {
			e.commitRun(s, ops)
		}
		e.commitMu.Unlock()
		return
	}
	if wasEmpty {
		e.ringDoorbell()
	}
}

// commitRun commits one drained run: consecutive ops of the same
// durability class coalesce into one CommitBatch call, so a burst of N
// queued writes pays the engine's per-commit costs once per group
// instead of once per op — the committer-side analogue of the paper's
// multi-insert drain (§4.2).
func (e *engine) commitRun(s *Store, ops *writeOp) {
	n := 0
	for op := ops; op != nil; op = op.next {
		n++
	}
	if n >= queueEventFloor && n >= 2*e.queueHighWater {
		e.queueHighWater = n
		s.events.Emit(obs.Event{
			Type: obs.EventShardQueue, Keys: int64(n),
			Detail: fmt.Sprintf("%s committer drained %d queued writes", e.dir, n),
		})
	}
	for ops != nil {
		ops = e.commitGroup(s, ops)
	}
}

// commitGroup commits the longest same-durability prefix of ops as one
// batch and returns the first op it did not consume. Ops whose context
// died in the queue complete with their context error without touching
// the engine.
func (e *engine) commitGroup(s *Store, ops *writeOp) *writeOp {
	// A run of one routed op — the uncontended flat-combined case — skips
	// the batch arena and takes the engine's Membuffer-first single-op
	// path, so an idle shard pays what a direct Put would.
	if op := ops; op.next == nil && op.batch == nil {
		if err := op.ctx.Err(); err != nil {
			e.complete(op, err)
			return nil
		}
		e.sample(op.key)
		s.snapMu.RLock()
		err := e.db.CommitOne(context.Background(), op.key, op.value, op.kind == keys.KindDelete, op.d)
		s.snapMu.RUnlock()
		e.complete(op, err)
		return nil
	}
	var (
		b          *kv.Batch
		d          kv.Durability
		puts, dels uint64
		count      int
	)
	group := e.scratch[:0]
	op := ops
	for op != nil {
		if err := op.ctx.Err(); err != nil {
			next := op.next
			e.complete(op, err)
			op = next
			continue
		}
		if b == nil {
			b = kv.NewBatch()
			d = op.d
		} else if op.d != d || count >= maxGroupOps {
			break
		}
		if op.batch != nil {
			// An Apply sub-batch: its ops append contiguously, so the
			// sub-batch stays intact inside the merged WAL record and its
			// per-shard all-or-nothing recovery guarantee holds.
			for _, o := range op.batch.Ops() {
				if o.Kind == keys.KindDelete {
					b.Delete(o.Key)
				} else {
					b.Put(o.Key, o.Value)
				}
			}
			count += op.batch.Len()
		} else {
			if op.kind == keys.KindDelete {
				b.Delete(op.key)
			} else {
				b.Put(op.key, op.value)
			}
			e.sample(op.key)
			count++
		}
		puts += op.puts
		dels += op.dels
		group = append(group, op)
		op = op.next
	}
	e.scratch = group[:0]
	if len(group) == 0 {
		return op
	}
	// snapMu held shared across the commit is the snapshot barrier: an op
	// is acked only after its commit completed under the read lock, so a
	// Snapshot's exclusive hold observes every acked write — the same
	// cross-shard cut the synchronous writers used to guarantee.
	s.snapMu.RLock()
	err := e.db.CommitBatch(context.Background(), b, d, puts, dels)
	s.snapMu.RUnlock()
	for _, g := range group {
		e.complete(g, err)
	}
	return op
}

// complete acks one op: the queue stops counting it and its producer
// unblocks. The producer owns recycling (it still has to read done).
func (e *engine) complete(op *writeOp, err error) {
	e.queue.depth.Add(-1)
	op.done <- err
}
