package shard

import (
	"context"
	"fmt"
	"testing"

	"flodb/internal/core"
	"flodb/internal/obs"
)

// TestTelemetryMergesAcrossShards drives traffic that spreads over
// every shard and checks the store-level snapshot is the bucket-wise
// merge: one flodb_op_latency_seconds{op="put"} histogram whose count
// is the TOTAL across shards, and summed counters — not one family per
// shard, not the first shard's view.
func TestTelemetryMergesAcrossShards(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4, Core: core.Config{
		MemoryBytes: 1 << 20, DisableWAL: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	const n = 400
	for i := 0; i < n; i++ {
		// Keys chosen uniformly over the byte space hit all 4 ranges.
		key := []byte{byte(i * 255 / n), byte(i), byte(i >> 8)}
		if err := s.Put(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	per := s.PerShard()
	touched := 0
	for _, st := range per {
		if st.Puts > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("workload only touched %d shards; the merge test needs >= 2", touched)
	}

	snap := s.TelemetrySnapshot()
	hists, putsTotal := 0, int64(0)
	var putQ obs.Quantiles
	for _, m := range snap.Metrics {
		switch m.Name {
		case `flodb_op_latency_seconds{op="put"}`:
			hists++
			putQ = obs.QuantilesOf(m.Hist)
		case "flodb_puts_total":
			putsTotal += m.Value
		}
	}
	if hists != 1 {
		t.Fatalf("merged snapshot has %d put-latency histograms, want exactly 1", hists)
	}
	if putQ.Count != n {
		t.Errorf("merged put histogram count = %d, want %d (sum over shards)", putQ.Count, n)
	}
	if putsTotal != n {
		t.Errorf("merged flodb_puts_total = %d, want %d", putsTotal, n)
	}
	if putQ.P50 <= 0 || putQ.P999 < putQ.P50 {
		t.Errorf("merged quantiles not ordered: %+v", putQ)
	}

	if ops := obs.OpQuantiles(snap); ops["put"].Count != n {
		t.Errorf("OpQuantiles over merged snapshot = %+v, want put count %d", ops["put"], n)
	}
}

// TestTelemetryEventsMergeOrdered checks the store-level event view:
// per-shard seal/flush events interleave into one timeline with
// non-decreasing timestamps.
func TestTelemetryEventsMergeOrdered(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2, Core: core.Config{
		MemoryBytes: 64 << 10, DisableWAL: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for i := 0; i < 2000; i++ {
		lo := []byte(fmt.Sprintf("a%05d", i))
		hi := []byte(fmt.Sprintf("z%05d", i))
		if err := s.Put(ctx, lo, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(ctx, hi, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	evs := s.TelemetryEvents(0)
	if len(evs) == 0 {
		t.Fatal("no events after forcing seals on both shards")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatalf("merged events out of order at %d: %v after %v", i, evs[i].Time, evs[i-1].Time)
		}
	}
}
