// Package shard implements a range-partitioned sharded engine: one
// kv.Store served by N independent FloDB (core.DB) instances, each with
// its own directory, WAL, two-level memory component, compactor — and
// its own COMMIT PIPELINE: a lock-free per-shard queue drained by a
// dedicated committer goroutine that coalesces queued writes into
// group commits.
//
// FloDB's thesis is scaling the memory component across cores; sharding
// is the next step past a single memory component. Partitioning the
// keyspace lets writers, background drains, memtable flushes and WAL
// group-commits proceed independently per shard: N shards mean N
// uncontended Membuffers, N drain pools, N persist pipelines, N
// group-commit fsync queues and N committers, so write throughput
// scales with shard count until the disk itself saturates. The commit
// pipeline is what makes N shards actually run N-wide: a routed write
// costs its producer one CAS to enqueue, and the committer amortizes
// the engine's per-commit costs (WAL record framing, the drain lock,
// the RCU read section, the fsync) across every write queued behind it
// — the committer-side analogue of the paper's multi-insert drain
// (§4.2).
//
// # Routing and topology
//
// Keys route by RANGE: n-1 ascending boundary keys cut the keyspace,
// shard i owning [boundary[i-1], boundary[i]). Range partitioning keeps
// each shard's keys contiguous, so a bounded Scan touches only the
// shards its range overlaps and a full iteration merges already-
// disjoint sorted streams. The default UniformSplitter cuts the 8-byte
// big-endian keyspace into n equal slices. A Splitter that returns nil
// boundaries selects the HASH fallback (FNV-1a mod n) for keyspaces
// with no exploitable order: balance under arbitrary skew, at the cost
// of every Scan consulting every shard — and of a frozen layout, since
// hash routing has no boundaries to move.
//
// The layout lives in a versioned SHARDS manifest at the store root and
// is no longer fixed for life: with Config.Dynamic enabled, a
// per-shard workload sensor (§4.4's sensor reads, turned outward)
// feeds a rebalance controller that SPLITS a hot shard at a sampled
// median of its recent write keys and MERGES cold neighbors. Every
// topology change bumps the manifest EPOCH and commits by renaming the
// manifest last — children are built and flushed in fresh directories
// first, so a crash at any instant reopens either the old epoch or the
// new one, never a mix. Writers to the affected range are fenced only
// for the duration of the handoff (their queue is retired; they re-route
// through the next topology), and pinned snapshots keep the old epoch's
// engines readable until released.
//
// # Cross-shard semantics (the honest caveats)
//
//   - Put/Delete/Get touch exactly one shard and keep core.DB's
//     single-shard guarantees unchanged. A write is acked only after its
//     committer group-committed it, so "returned nil" still means
//     "committed at the op's durability class".
//   - Apply splits a batch by shard and commits the sub-batches
//     CONCURRENTLY. Each sub-batch lands contiguously inside one WAL
//     record on its shard — atomic per shard across a crash — but there
//     is no cross-shard commit protocol: a crash mid-Apply may recover
//     some shards' slices of the batch and not others. What recovery
//     guarantees is that each shard individually holds a hole-free
//     prefix of ITS commit order, with each surviving sub-batch intact.
//   - Sync fans out and waits until every shard's DurableSeq covers its
//     AckedSeq: after Sync returns, everything previously acked on every
//     shard is crash-durable.
//   - Snapshot takes a brief cross-shard WRITE BARRIER (committers
//     pause between groups, readers do not) while it pins all N
//     per-shard snapshots, so the handle is one globally consistent
//     cut — and it pins the TOPOLOGY too: the view keeps routing
//     through the epoch it was taken under, even across later splits.
//   - Checkpoint fans out into per-shard subdirectories plus a copied
//     manifest, written LAST, so a partial checkpoint is unopenable
//     rather than silently missing shards.
package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
)

// ErrClosed wraps kv.ErrClosed for operations on a closed sharded store.
var ErrClosed = fmt.Errorf("shard: %w", kv.ErrClosed)

// ErrDynamicHashRouting reports Config.Dynamic enabled over hash
// routing: a hash-routed shard covers the whole keyspace, so there is no
// boundary to split or merge.
var ErrDynamicHashRouting = errors.New("shard: dynamic sharding needs range routing: a hash-routed shard spans the whole keyspace, leaving no boundary to split")

// A Splitter chooses the shard boundaries at store creation.
type Splitter interface {
	// Boundaries returns the n-1 strictly ascending boundary keys that
	// cut the keyspace into n ranges: shard 0 owns keys < b[0], shard i
	// owns [b[i-1], b[i]), shard n-1 owns keys >= b[n-2]. Returning nil
	// selects hash routing instead (the fallback for keyspaces whose
	// order carries no balance information).
	Boundaries(n int) [][]byte
}

// UniformSplitter cuts the 8-byte big-endian keyspace into n equal
// ranges. It is the default: balanced for uniformly spread fixed-width
// keys (the paper's workload shape), and for anything hashed into the
// 64-bit space before use as a key.
type UniformSplitter struct{}

// Boundaries returns n-1 evenly spaced 8-byte keys.
func (UniformSplitter) Boundaries(n int) [][]byte {
	step := ^uint64(0)/uint64(n) + 1
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, keys.EncodeUint64(step*uint64(i)))
	}
	return out
}

// HashSplitter declines to pick boundaries, selecting the hash-routing
// fallback: keys route by FNV-1a hash mod n. Balanced under arbitrary
// key skew, but every Scan and iterator must consult all shards, and
// the layout can never be rebalanced (Dynamic is rejected).
type HashSplitter struct{}

// Boundaries returns nil: hash routing.
func (HashSplitter) Boundaries(int) [][]byte { return nil }

// Dynamic configures sensor-driven shard splitting and merging.
type Dynamic struct {
	// Enabled turns the rebalance controller on. Requires range routing.
	Enabled bool
	// MinShards and MaxShards bound the shard count the controller may
	// reach. Defaults: 1 and max(initial count, 8).
	MinShards int
	MaxShards int
	// Interval is the sensor window length. Default 200ms.
	Interval time.Duration
	// SplitFactor: a shard whose share of the window's ops exceeds
	// SplitFactor times the fair share (1/n) is hot. Default 2.
	SplitFactor float64
	// MergeFactor: an adjacent pair whose combined share is below
	// MergeFactor times the fair share is cold. Default 0.5.
	MergeFactor float64
	// MinWindowOps is the least store-wide traffic in a window worth
	// acting on; quieter windows reset the streaks. Default 512.
	MinWindowOps uint64
	// Hysteresis is how many consecutive windows a shard must stay hot
	// (or a pair cold) before the controller acts. Default 2.
	Hysteresis int
	// Cooldown is how many windows the controller sits out after a
	// split or merge, letting the new layout's sensor readings settle.
	// Default 3.
	Cooldown int
}

func (d Dynamic) withDefaults(initial int) (Dynamic, error) {
	if !d.Enabled {
		return d, nil
	}
	if d.MinShards == 0 {
		d.MinShards = 1
	}
	if d.MaxShards == 0 {
		d.MaxShards = max(initial, 8)
	}
	if d.MinShards < 1 || d.MaxShards < d.MinShards {
		return d, fmt.Errorf("shard: Dynamic range [%d, %d] is invalid", d.MinShards, d.MaxShards)
	}
	if d.Interval <= 0 {
		d.Interval = 200 * time.Millisecond
	}
	if d.SplitFactor <= 1 {
		d.SplitFactor = 2
	}
	if d.MergeFactor <= 0 || d.MergeFactor >= 1 {
		d.MergeFactor = 0.5
	}
	if d.MinWindowOps == 0 {
		d.MinWindowOps = 512
	}
	if d.Hysteresis < 1 {
		d.Hysteresis = 2
	}
	if d.Cooldown < 1 {
		d.Cooldown = 3
	}
	return d, nil
}

// Config parameterizes a sharded store.
type Config struct {
	// Dir is the store root. Each shard lives in its own Dir/shard-NNN;
	// the SHARDS manifest at the root records the layout.
	Dir string
	// Shards is the number of partitions. Zero ADOPTS an existing
	// manifest's count (or means 1 on a fresh store). Reopening a static
	// store with a different non-zero count is an error; with Dynamic
	// enabled the manifest's count simply wins — the layout is the
	// controller's to change.
	Shards int
	// Splitter chooses the boundaries at creation; nil means
	// UniformSplitter. Ignored on reopen — the manifest wins.
	Splitter Splitter
	// Dynamic enables sensor-driven splitting and merging.
	Dynamic Dynamic
	// Core is the per-shard template. Dir is ignored (each shard gets
	// its subdirectory) and MemoryBytes is the TOTAL memory budget,
	// split evenly across shards so a sharded store competes against an
	// unsharded one at equal memory. Zero means each shard takes the
	// core default. With Core.AdaptiveMemory set, every shard runs its
	// OWN resize controller over its slice of the budget.
	Core core.Config
}

// Store is a sharded FloDB: one kv.Store over N core.DB instances, each
// behind its own commit pipeline. All methods are safe for concurrent
// use; Close must not race with other operations.
type Store struct {
	dir  string
	core core.Config // per-shard template; Dir is set per engine
	dyn  Dynamic

	// topo is the live topology. Rewrites swap whole tables; superseded
	// tables stay readable through the engine refs their snapshots hold.
	topo atomic.Pointer[table]

	// snapMu is the cross-shard write barrier: committers hold it shared
	// for the duration of one group commit, Snapshot holds it exclusive
	// while pinning all per-shard snapshots, freezing one global cut.
	// Topology swaps also run under it, so a snapshot sees a complete
	// epoch, never a mid-rewrite hybrid.
	snapMu sync.RWMutex

	closed  atomic.Bool
	crashed atomic.Bool

	// rebalMu serializes topology rewrites with each other and with
	// shutdown.
	rebalMu sync.Mutex
	quit    chan struct{} // stops the rebalance controller; nil when static
	wg      sync.WaitGroup

	splits, merges atomic.Uint64

	// Logical operation counters. Physical counters (WAL boundary,
	// flushes, memory-component traffic) aggregate from the shards; the
	// logical ones live here so a single fanned-out call counts once —
	// one Snapshot is one snapshot, not N.
	scans, iterators       atomic.Uint64
	snapshots, checkpoints atomic.Uint64
	batches, batchOps      atomic.Uint64
	syncBarriers           atomic.Uint64

	// events records store-level lifecycle moments (fan-outs, splits,
	// merges, queue spikes); per-shard events live in each core.DB's log
	// and the telemetry accessors merge the timelines. Nil when the
	// per-shard template disables telemetry.
	events *obs.EventLog

	// testHookPreManifest, when set, runs during a topology rewrite
	// after the children are flushed but BEFORE the manifest rename —
	// the crash window recovery must survive. A non-nil return simulates
	// the crash: the store abandons itself as CrashForTesting would.
	testHookPreManifest func() error
}

// Open creates or reopens a sharded store in cfg.Dir.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: Config.Dir is required")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: Shards %d is negative; want >= 1", cfg.Shards)
	}
	dyn, err := cfg.Dynamic.withDefaults(cfg.Shards)
	if err != nil {
		return nil, err
	}
	cfg.Dynamic = dyn
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	l, err := loadLayout(cfg.Dir)
	if err != nil {
		return nil, err
	}
	fresh := l == nil
	if fresh {
		// Refuse to overlay sharding onto a directory that already holds
		// something else (an unsharded store, a torn checkpoint): routing
		// its keys would silently shadow its data.
		entries, err := os.ReadDir(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("shard: %s is non-empty but has no %s manifest: not a sharded store", cfg.Dir, manifestName)
		}
		if cfg.Shards == 0 {
			cfg.Shards = 1
			if cfg.Dynamic.Enabled {
				cfg.Shards = cfg.Dynamic.MinShards
			}
		}
		if cfg.Dynamic.Enabled && (cfg.Shards < cfg.Dynamic.MinShards || cfg.Shards > cfg.Dynamic.MaxShards) {
			return nil, fmt.Errorf("shard: %d initial shards outside Dynamic range [%d, %d]", cfg.Shards, cfg.Dynamic.MinShards, cfg.Dynamic.MaxShards)
		}
		if l, err = buildLayout(cfg); err != nil {
			return nil, err
		}
	} else {
		if cfg.Shards != 0 && len(l.dirs) != cfg.Shards && !cfg.Dynamic.Enabled {
			return nil, fmt.Errorf("shard: %s holds %d shards, opened with %d: shard count is fixed at creation (pass 0 to adopt the layout, or enable Dynamic)", cfg.Dir, len(l.dirs), cfg.Shards)
		}
		// Sweep the debris of a rewrite that crashed around its manifest
		// rename, before any engine can mistake a half-built child (or a
		// retired parent) for live data.
		if err := removeOrphanDirs(cfg.Dir, l); err != nil {
			return nil, err
		}
	}
	if cfg.Dynamic.Enabled && l.hashed {
		return nil, ErrDynamicHashRouting
	}
	if fresh {
		if err := writeLayout(cfg.Dir, l); err != nil {
			return nil, err
		}
	}

	// The next directory index must clear every live directory even if an
	// older manifest (v1 has no counter) under-records it.
	next := l.nextDir
	for _, d := range l.dirs {
		var i int
		if _, err := fmt.Sscanf(d, "shard-%d", &i); err == nil && i+1 > next {
			next = i + 1
		}
	}

	s := &Store{dir: cfg.Dir, core: cfg.Core, dyn: cfg.Dynamic}
	if !cfg.Core.DisableTelemetry {
		s.events = obs.NewEventLog(0)
	}
	t := &table{
		epoch:      l.epoch,
		boundaries: l.boundaries,
		hashed:     l.hashed,
		nextDir:    next,
		changed:    make(chan struct{}),
	}
	for i, dname := range l.dirs {
		e, err := s.openEngine(dname, len(l.dirs))
		if err != nil {
			for _, open := range t.engines {
				open.release()
			}
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		t.engines = append(t.engines, e)
	}
	s.topo.Store(t)
	for _, e := range t.engines {
		e.start(s)
	}
	if cfg.Dynamic.Enabled {
		s.quit = make(chan struct{})
		s.wg.Add(1)
		go s.rebalanceLoop()
	}
	return s, nil
}

// openEngine opens one shard directory as an engine (committer not yet
// started). count is the shard count the budget splits over.
func (s *Store) openEngine(dirName string, count int) (*engine, error) {
	sc := s.core
	sc.Dir = filepath.Join(s.dir, dirName)
	if s.core.MemoryBytes > 0 {
		sc.MemoryBytes = max(s.core.MemoryBytes/int64(count), 1)
	}
	// The block-cache budget is the TOTAL, like MemoryBytes: each shard
	// caches its own tables, so an even split keeps the process-wide
	// footprint at the configured size. (Table-cache capacity is per
	// shard — it bounds file descriptors, and each shard holds its own.)
	if s.core.Storage.BlockCacheBytes > 0 {
		sc.Storage.BlockCacheBytes = max(s.core.Storage.BlockCacheBytes/int64(count), 1)
	}
	db, err := core.Open(sc)
	if err != nil {
		return nil, err
	}
	e := &engine{
		db:      db,
		dir:     dirName,
		root:    s.dir,
		wake:    make(chan struct{}, 1),
		drained: make(chan struct{}),
		crashed: &s.crashed,
	}
	e.refs.Store(1) // the topology's reference
	return e, nil
}

// --- Routing -----------------------------------------------------------------

// ShardFor returns the index of the shard that currently owns key.
// Under Dynamic the answer is only stable within one epoch.
func (s *Store) ShardFor(key []byte) int {
	return s.topo.Load().shardFor(key)
}

// Count returns the current number of shards.
func (s *Store) Count() int { return len(s.topo.Load().engines) }

// Routing names the routing mode: "range" or "hash".
func (s *Store) Routing() string {
	if s.topo.Load().hashed {
		return routingHash
	}
	return routingRange
}

// pinTable acquires a reference on every engine of the current table,
// retrying across topology swaps; the caller must invoke the returned
// release exactly once.
func (s *Store) pinTable() (*table, func(), error) {
	for {
		if s.closed.Load() {
			return nil, nil, ErrClosed
		}
		t := s.topo.Load()
		pinned := make([]*engine, 0, len(t.engines))
		ok := true
		for _, e := range t.engines {
			if !e.acquire() {
				ok = false
				break
			}
			pinned = append(pinned, e)
		}
		if ok {
			return t, func() {
				for _, e := range pinned {
					e.release()
				}
			}, nil
		}
		for _, e := range pinned {
			e.release()
		}
	}
}

// pinKey acquires a reference on the engine that owns key.
func (s *Store) pinKey(key []byte) (*engine, error) {
	for {
		if s.closed.Load() {
			return nil, ErrClosed
		}
		t := s.topo.Load()
		if e := t.engines[t.shardFor(key)]; e.acquire() {
			return e, nil
		}
	}
}

// fanoutEngines runs fn once per engine concurrently and returns the
// first error in shard order.
func fanoutEngines(engines []*engine, fn func(i int, e *engine) error) error {
	errs := make([]error, len(engines))
	var wg sync.WaitGroup
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e *engine) {
			defer wg.Done()
			errs[i] = fn(i, e)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Writes ------------------------------------------------------------------

// Put routes key onto its shard's commit pipeline and blocks until the
// committer acks it at the write's durability class.
func (s *Store) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	return s.enqueue(ctx, key, value, keys.KindSet, opts)
}

// Delete routes key onto its shard's commit pipeline.
func (s *Store) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	return s.enqueue(ctx, key, nil, keys.KindDelete, opts)
}

func (s *Store) enqueue(ctx context.Context, key, value []byte, kind keys.Kind, opts []kv.WriteOption) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if ctx == nil {
		// The unsharded engine tolerates a nil Context on its fast path;
		// the pipeline parks ops on ctx.Done(), so normalize here.
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := s.topo.Load()
	// Durability resolves at enqueue time (the template is shared, any
	// engine answers) so the committer can group same-class runs.
	d, err := t.engines[0].db.ResolveDurability(opts...)
	if err != nil {
		return err
	}
	op := getOp()
	op.ctx, op.key, op.value, op.kind, op.d = ctx, key, value, kind, d
	if kind == keys.KindDelete {
		op.dels = 1
	} else {
		op.puts = 1
	}
	for {
		e := t.engines[t.shardFor(key)]
		if wasEmpty, ok := e.queue.push(op); ok {
			e.combine(s, wasEmpty)
			break
		}
		// The shard retired under us (split, merge or close): wait for
		// the replacement topology and re-route.
		select {
		case <-t.changed:
		case <-ctx.Done():
			putOp(op)
			return ctx.Err()
		}
		if s.closed.Load() {
			putOp(op)
			return ErrClosed
		}
		t = s.topo.Load()
	}
	err = <-op.done
	putOp(op)
	return err
}

// splitBatch partitions b's ops by owning shard under t, preserving
// insertion order within each part (a later op on the same key still
// wins its sub-batch). A batch that lands on one shard passes through
// without copying.
func splitBatch(t *table, b *kv.Batch) (idxs []int, parts []*kv.Batch) {
	ops := b.Ops()
	owners := make([]int, len(ops))
	first, uniform := t.shardFor(ops[0].Key), true
	for i := range ops {
		owners[i] = t.shardFor(ops[i].Key)
		uniform = uniform && owners[i] == first
	}
	if uniform {
		return []int{first}, []*kv.Batch{b}
	}
	subs := make([]*kv.Batch, len(t.engines))
	for i := range ops {
		sub := subs[owners[i]]
		if sub == nil {
			sub = kv.NewBatch()
			subs[owners[i]] = sub
		}
		if ops[i].Kind == keys.KindDelete {
			sub.Delete(ops[i].Key)
		} else {
			sub.Put(ops[i].Key, ops[i].Value)
		}
	}
	for i, sub := range subs {
		if sub != nil {
			idxs = append(idxs, i)
			parts = append(parts, sub)
		}
	}
	return idxs, parts
}

// Apply splits b by shard and enqueues the sub-batches onto their
// commit pipelines concurrently, each landing contiguously inside one
// WAL record on its shard.
//
// Atomicity is PER SHARD, not cross-shard: a crash mid-Apply may recover
// the slice of the batch that landed on one shard and not another's.
// Each surviving slice is all-or-nothing, and each shard recovers a
// hole-free prefix of its own commit order. Under DurabilitySync the
// call returns only after every touched shard's group-committed fsync
// covers its slice — the fsyncs run in parallel, one queue per shard.
func (s *Store) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if b == nil || b.Len() == 0 {
		return nil
	}
	t := s.topo.Load()
	d, err := t.engines[0].db.ResolveDurability(opts...)
	if err != nil {
		return err
	}
	s.batches.Add(1)
	s.batchOps.Add(uint64(b.Len()))

	var inflight []*writeOp
	var firstErr error
	pending := []*kv.Batch{b}
	for len(pending) > 0 && firstErr == nil {
		sub := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		t = s.topo.Load()
		idxs, parts := splitBatch(t, sub)
		if sub == b && len(parts) > 1 {
			s.events.Emit(obs.Event{
				Type: obs.EventShardFanout, Keys: int64(b.Len()),
				Detail: fmt.Sprintf("batch split across %d/%d shards", len(parts), len(t.engines)),
			})
		}
		for j, part := range parts {
			e := t.engines[idxs[j]]
			op := getOp()
			// puts/dels stay zero: batch entries are attributed to the
			// store-level Batches/BatchOps counters above, not to the
			// engines' per-op counts — the split a caller of Stats sees.
			op.ctx, op.batch, op.d = ctx, part, d
			if wasEmpty, ok := e.queue.push(op); ok {
				e.combine(s, wasEmpty)
				inflight = append(inflight, op)
				continue
			}
			putOp(op)
			// The shard retired mid-placement: wait out the swap and
			// re-split this part through the new topology. (This split's
			// later parts fail their own pushes and land here too.)
			select {
			case <-t.changed:
			case <-ctx.Done():
				firstErr = ctx.Err()
			}
			if s.closed.Load() {
				firstErr = ErrClosed
			}
			if firstErr != nil {
				break
			}
			pending = append(pending, part)
		}
	}
	for _, op := range inflight {
		if err := <-op.done; err != nil && firstErr == nil {
			firstErr = err
		}
		putOp(op)
	}
	return firstErr
}

// Sync is the cross-shard durability barrier: it fans out and waits
// until every shard's acked writes are crash-durable — one
// group-committed disk barrier per shard WAL, run in parallel.
func (s *Store) Sync(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.syncBarriers.Add(1)
	t, release, err := s.pinTable()
	if err != nil {
		return err
	}
	defer release()
	return fanoutEngines(t.engines, func(_ int, e *engine) error {
		return e.db.Sync(ctx)
	})
}

// --- Reads -------------------------------------------------------------------

// Get routes key to its shard.
func (s *Store) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	e, err := s.pinKey(key)
	if err != nil {
		return nil, false, err
	}
	defer e.release()
	return e.db.Get(ctx, key)
}

// Scan returns all pairs with low <= key < high in global key order.
// Under range routing only the overlapping shards run, concurrently,
// and their results concatenate (shard ranges are ordered and disjoint);
// under hash routing every shard scans and the results merge by key.
// Each shard's slice is a consistent snapshot of that shard; like the
// live iterator, the cut is per shard, not global — use Snapshot for a
// cross-shard point-in-time read.
func (s *Store) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.scans.Add(1)
	t, release, err := s.pinTable()
	if err != nil {
		return nil, err
	}
	defer release()
	lo, hi := t.shardRange(low, high)
	if lo == hi {
		return t.engines[lo].db.Scan(ctx, low, high)
	}
	parts := make([][]kv.Pair, hi-lo+1)
	if err := fanoutEngines(t.engines[lo:hi+1], func(i int, e *engine) error {
		p, err := e.db.Scan(ctx, low, high)
		parts[i] = p
		return err
	}); err != nil {
		return nil, err
	}
	var out []kv.Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	if t.hashed {
		// Hash-routed shards interleave; restore global key order. The
		// slices are pairwise disjoint, so an ordinary sort suffices.
		sort.Slice(out, func(i, j int) bool { return keys.Compare(out[i].Key, out[j].Key) < 0 })
	}
	return out, nil
}

// NewIterator returns a streaming cursor merging the overlapping
// shards' iterators into one ascending stream — each shard's cursor
// runs in its own producer goroutine, prefetching chunks ahead of the
// merge, so an N-shard scan reads N-wide. Consistency is per shard;
// there is no cross-shard cut — snapshots provide that. The iterator
// pins its engines: a concurrent split retires a shard without
// invalidating cursors already over it.
func (s *Store) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.iterators.Add(1)
	t, release, err := s.pinTable()
	if err != nil {
		return nil, err
	}
	lo, hi := t.shardRange(low, high)
	subs := make([]kv.Iterator, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		it, err := t.engines[i].db.NewIterator(ctx, low, high)
		if err != nil {
			for _, open := range subs {
				open.Close()
			}
			release()
			return nil, err
		}
		subs = append(subs, it)
	}
	return newMergedIter(subs, release), nil
}

// Snapshot pins a globally consistent repeatable-read view: a brief
// cross-shard write barrier holds committers between group commits
// while all N per-shard snapshots are taken (concurrently), so the
// handle observes one cut of the whole keyspace — every acked write
// in, nothing mid-commit torn. The view also pins the TOPOLOGY: it
// keeps routing through the epoch it was taken under, holding that
// epoch's engines alive across later splits and merges until released.
func (s *Store) Snapshot(ctx context.Context) (kv.View, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.snapshots.Add(1)

	s.snapMu.Lock()
	t := s.topo.Load()
	// Rewrites swap the table under snapMu too, so under the exclusive
	// barrier the engines are alive and acquire cannot fail.
	for _, e := range t.engines {
		e.acquire()
	}
	views := make([]kv.View, len(t.engines))
	err := fanoutEngines(t.engines, func(i int, e *engine) error {
		v, err := e.db.Snapshot(ctx)
		if err == nil {
			views[i] = v
		}
		return err
	})
	s.snapMu.Unlock()
	if err != nil {
		for _, v := range views {
			if v != nil {
				v.Close()
			}
		}
		for _, e := range t.engines {
			e.release()
		}
		return nil, err
	}
	return &snapView{s: s, t: t, views: views}, nil
}

// Checkpoint writes an openable copy of the whole sharded store into
// dir: one per-shard checkpoint per engine directory (fanned out
// concurrently, each hard-links + WAL tail) plus the SHARDS manifest,
// written last as the commit point. The store stays online — there is
// no cross-shard barrier, so each shard's copy is prefix-consistent in
// its OWN commit order; a write racing the call may appear on one shard
// and not another. The copy is of one pinned epoch.
func (s *Store) Checkpoint(ctx context.Context, dir string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		return fmt.Errorf("shard: checkpoint dir %s is not empty", dir)
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	t, release, err := s.pinTable()
	if err != nil {
		return err
	}
	defer release()
	if err := fanoutEngines(t.engines, func(_ int, e *engine) error {
		return e.db.Checkpoint(ctx, filepath.Join(dir, e.dir))
	}); err != nil {
		return err
	}
	return writeLayout(dir, t.layout())
}

// --- Lifecycle ---------------------------------------------------------------

// Close stops the rebalance controller, drains and retires every commit
// pipeline, and closes every shard. Writes still queued but not yet
// picked up complete with ErrClosed. Close must not race with other
// operations.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.shutdown()
}

// CrashForTesting abandons every shard the way a crash would: staged
// WAL tails are lost, no close-time flush runs, queued-but-uncommitted
// writes vanish un-acked. Durability tests use it to open the per-shard
// acked-but-lost windows deliberately.
func (s *Store) CrashForTesting() {
	if s.closed.Swap(true) {
		return
	}
	s.crashed.Store(true)
	s.shutdown()
}

// shutdown is the common teardown: the caller has already latched
// closed (and crashed, for the crash path).
func (s *Store) shutdown() error {
	if s.quit != nil {
		close(s.quit)
	}
	// Wait out any in-flight rewrite; after this the topology is final.
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	t := s.topo.Load()
	for _, e := range t.engines {
		rem := e.queue.close()
		e.ringDoorbell()
		for op := rem; op != nil; {
			next := op.next
			e.queue.depth.Add(-1)
			op.done <- ErrClosed
			op = next
		}
	}
	for _, e := range t.engines {
		<-e.drained
	}
	// Wake producers parked on a topology change; they observe closed.
	close(t.changed)
	s.wg.Wait()
	var firstErr error
	for _, e := range t.engines {
		if err := e.release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- Diagnostics -------------------------------------------------------------

// Stats aggregates the shards. Physical counters (memory-component
// traffic, flushes, compactions, and the WAL acked/durable boundary) sum
// across shards — AckedSeq and DurableSeq are sums of per-shard commit
// indices, so DurableSeq == AckedSeq still means "no buffered window
// anywhere". Logical counters for fanned-out operations (Scans,
// Iterators, Snapshots, Checkpoints, Batches, SyncBarriers) count calls
// on THIS store, not the N per-shard calls each one fans into. Topology
// fields: ShardEpoch is the live epoch, ShardSplits/ShardMerges count
// rewrites over the store's lifetime in memory, ShardQueueDepth sums the
// pipelines' backlogs, and ShardHotness is the hottest shard's share of
// the last sensor window.
func (s *Store) Stats() kv.Stats {
	agg := kv.Stats{
		Scans:        s.scans.Load(),
		Iterators:    s.iterators.Load(),
		Snapshots:    s.snapshots.Load(),
		Checkpoints:  s.checkpoints.Load(),
		Batches:      s.batches.Load(),
		BatchOps:     s.batchOps.Load(),
		SyncBarriers: s.syncBarriers.Load(),
		ShardSplits:  s.splits.Load(),
		ShardMerges:  s.merges.Load(),
	}
	per := s.PerShard()
	for _, st := range per {
		agg.Puts += st.Puts
		agg.Gets += st.Gets
		agg.Deletes += st.Deletes
		agg.ScanRestarts += st.ScanRestarts
		agg.FallbackScans += st.FallbackScans
		agg.MembufferHits += st.MembufferHits
		agg.MemtableWrites += st.MemtableWrites
		agg.Flushes += st.Flushes
		agg.Compactions += st.Compactions
		agg.AckedSeq += st.AckedSeq
		agg.DurableSeq += st.DurableSeq
		agg.WALSyncs += st.WALSyncs
		agg.WALSyncRequests += st.WALSyncRequests
		agg.BlockCacheHits += st.BlockCacheHits
		agg.BlockCacheMisses += st.BlockCacheMisses
		agg.BlockCacheEvictions += st.BlockCacheEvictions
		agg.BlockCacheBytes += st.BlockCacheBytes
		agg.TableCacheHits += st.TableCacheHits
		agg.TableCacheMisses += st.TableCacheMisses
		agg.BloomChecks += st.BloomChecks
		agg.BloomMisses += st.BloomMisses
		// Adaptive sizing: resize epochs and sensor rates sum; the
		// fraction averages (each shard holds an equal slice of the
		// budget, so the mean is the budget-weighted live share).
		agg.MembufferResizes += st.MembufferResizes
		agg.SensorPutRate += st.SensorPutRate
		agg.SensorGetRate += st.SensorGetRate
		agg.SensorScanRate += st.SensorScanRate
		agg.SensorStallPct += st.SensorStallPct
		agg.MembufferFraction += st.MembufferFraction
		// Topology overlays: depth sums, hotness takes the peak.
		agg.ShardQueueDepth += st.ShardQueueDepth
		if st.ShardHotness > agg.ShardHotness {
			agg.ShardHotness = st.ShardHotness
		}
		agg.ShardEpoch = st.ShardEpoch
	}
	if len(per) > 0 {
		agg.MembufferFraction /= float64(len(per))
	}
	return agg
}

// PerShard returns each shard's own counters, indexed by shard — the
// breakdown behind Stats, and the imbalance signal under skew: a hot
// shard shows up as one row carrying most of the Puts and Flushes, a
// ShardHotness near 1, and a deep ShardQueueDepth.
func (s *Store) PerShard() []kv.Stats {
	t, release, err := s.pinTable()
	if err != nil {
		return nil
	}
	defer release()
	out := make([]kv.Stats, len(t.engines))
	for i, e := range t.engines {
		out[i] = e.db.Stats()
		out[i].ShardEpoch = t.epoch
		out[i].ShardQueueDepth = uint64(max(e.queue.depth.Load(), 0))
		out[i].ShardHotness = e.loadHotShare()
	}
	return out
}

// WaitDiskQuiesce waits out pending persists and compactions on every
// shard (the harness quiesce point). Acked writes are already
// committed, so quiescing the engines quiesces the store.
func (s *Store) WaitDiskQuiesce() {
	t, release, err := s.pinTable()
	if err != nil {
		return
	}
	defer release()
	for _, e := range t.engines {
		e.db.WaitDiskQuiesce()
	}
}

var (
	_ kv.Store         = (*Store)(nil)
	_ kv.StatsProvider = (*Store)(nil)
)
