// Package shard implements a range-partitioned sharded engine: one
// kv.Store served by N independent FloDB (core.DB) instances, each with
// its own directory, WAL, two-level memory component, and compactor.
//
// FloDB's thesis is scaling the memory component across cores; sharding
// is the next step past a single memory component. Partitioning the
// keyspace lets writers, background drains, memtable flushes and WAL
// group-commits proceed independently per shard: N shards mean N
// uncontended Membuffers, N drain pools, N persist pipelines and N
// group-commit fsync queues, so write throughput scales with shard count
// until the disk itself saturates.
//
// # Routing
//
// Keys route by RANGE: a Splitter chooses n-1 ascending boundary keys,
// shard i owning [boundary[i-1], boundary[i]). Range partitioning keeps
// each shard's keys contiguous, so a bounded Scan touches only the
// shards its range overlaps and a full iteration is a cheap k-way merge
// of already-disjoint sorted streams. The default UniformSplitter cuts
// the 8-byte big-endian keyspace into n equal slices — balanced for the
// spread key encodings internal/workload produces. A Splitter that
// returns nil boundaries selects the HASH fallback (FNV-1a mod n) for
// keyspaces with no exploitable order: balance under arbitrary skew, at
// the cost of every Scan consulting every shard.
//
// The layout is persisted in a SHARDS manifest at the store root; a
// reopen (or a checkpoint reopen) reads the manifest, so the routing a
// store was created with is the routing it keeps for life.
//
// # Cross-shard semantics (the honest caveats)
//
//   - Put/Delete/Get touch exactly one shard and keep core.DB's
//     single-shard guarantees unchanged.
//   - Apply splits a batch by shard and commits the sub-batches
//     CONCURRENTLY. Each sub-batch is one WAL record on its shard —
//     atomic per shard across a crash — but there is no cross-shard
//     commit protocol: a crash mid-Apply may recover some shards' slices
//     of the batch and not others. What recovery guarantees is that each
//     shard individually holds a hole-free prefix of ITS commit order,
//     with each surviving sub-batch intact (all-or-nothing per shard).
//   - Sync fans out and waits until every shard's DurableSeq covers its
//     AckedSeq: after Sync returns, everything previously acked on every
//     shard is crash-durable.
//   - Snapshot takes a brief cross-shard WRITE BARRIER (writers pause,
//     readers do not) while it pins all N per-shard snapshots, so the
//     handle is one globally consistent cut: repeatable reads hold
//     across shard boundaries, not just within one shard.
//   - Checkpoint fans out into per-shard subdirectories plus a copied
//     manifest. Each shard's copy is prefix-consistent in its own commit
//     order; there is no cross-shard cut (no write barrier — the store
//     stays fully online). The manifest is written LAST, so a partial
//     checkpoint is unopenable rather than silently missing shards.
package shard

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
	"flodb/internal/storage"
)

// ErrClosed wraps kv.ErrClosed for operations on a closed sharded store.
var ErrClosed = fmt.Errorf("shard: %w", kv.ErrClosed)

// A Splitter chooses the shard boundaries at store creation.
type Splitter interface {
	// Boundaries returns the n-1 strictly ascending boundary keys that
	// cut the keyspace into n ranges: shard 0 owns keys < b[0], shard i
	// owns [b[i-1], b[i]), shard n-1 owns keys >= b[n-2]. Returning nil
	// selects hash routing instead (the fallback for keyspaces whose
	// order carries no balance information).
	Boundaries(n int) [][]byte
}

// UniformSplitter cuts the 8-byte big-endian keyspace into n equal
// ranges. It is the default: balanced for uniformly spread fixed-width
// keys (the paper's workload shape), and for anything hashed into the
// 64-bit space before use as a key.
type UniformSplitter struct{}

// Boundaries returns n-1 evenly spaced 8-byte keys.
func (UniformSplitter) Boundaries(n int) [][]byte {
	step := ^uint64(0)/uint64(n) + 1
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, keys.EncodeUint64(step*uint64(i)))
	}
	return out
}

// HashSplitter declines to pick boundaries, selecting the hash-routing
// fallback: keys route by FNV-1a hash mod n. Balanced under arbitrary
// key skew, but every Scan and iterator must consult all shards.
type HashSplitter struct{}

// Boundaries returns nil: hash routing.
func (HashSplitter) Boundaries(int) [][]byte { return nil }

// Config parameterizes a sharded store.
type Config struct {
	// Dir is the store root. Shard i lives in Dir/shard-NNN; the SHARDS
	// manifest at the root records the layout.
	Dir string
	// Shards is the number of partitions. Reopening a directory whose
	// manifest records a different count is an error (the on-disk layout
	// is a property of the data, not of the open call).
	Shards int
	// Splitter chooses the boundaries at creation; nil means
	// UniformSplitter. Ignored on reopen — the manifest wins.
	Splitter Splitter
	// Core is the per-shard template. Dir is ignored (each shard gets
	// its subdirectory) and MemoryBytes is the TOTAL memory budget,
	// split evenly across shards so a sharded store competes against an
	// unsharded one at equal memory. Zero means each shard takes the
	// core default. With Core.AdaptiveMemory set, every shard runs its
	// OWN resize controller over its slice of the budget — a hot shard
	// grows its Membuffer for its write stream while a scan-heavy
	// neighbor shrinks its own, independently, under the shared total.
	Core core.Config
}

const (
	manifestName    = "SHARDS"
	manifestVersion = 1

	routingRange = "range"
	routingHash  = "hash"
)

// manifest is the JSON layout record at the store root.
type manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Routing    string   `json:"routing"`
	Boundaries []string `json:"boundaries,omitempty"` // hex, len Shards-1 for range routing
}

// Store is a sharded FloDB: one kv.Store over N core.DB instances.
// All methods are safe for concurrent use; Close must not race with
// other operations.
type Store struct {
	dir        string
	shards     []*core.DB
	boundaries [][]byte // len(shards)-1; nil iff hash routing
	hashed     bool

	// snapMu is the cross-shard write barrier: writers hold it shared
	// for the duration of one mutation, Snapshot holds it exclusive
	// while pinning all per-shard snapshots, freezing one global cut.
	snapMu sync.RWMutex

	closed atomic.Bool

	// Logical operation counters. Physical counters (WAL boundary,
	// flushes, memory-component traffic) aggregate from the shards; the
	// logical ones live here so a single fanned-out call counts once —
	// one Snapshot is one snapshot, not N.
	scans, iterators       atomic.Uint64
	snapshots, checkpoints atomic.Uint64
	batches, batchOps      atomic.Uint64
	syncBarriers           atomic.Uint64

	// events records store-level lifecycle moments (cross-shard
	// fan-outs); per-shard events live in each core.DB's log and the
	// telemetry accessors merge the timelines. Nil when the per-shard
	// template disables telemetry.
	events *obs.EventLog
}

// Open creates or reopens a sharded store in cfg.Dir.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: Config.Dir is required")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: Shards %d is negative; want >= 1", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	m, err := loadManifest(cfg.Dir)
	switch {
	case err != nil:
		return nil, err
	case m != nil:
		// Reopen: the manifest is the layout.
		if m.Shards != cfg.Shards {
			return nil, fmt.Errorf("shard: %s holds %d shards, opened with %d: shard count is fixed at creation", cfg.Dir, m.Shards, cfg.Shards)
		}
	default:
		// Fresh store. Refuse to overlay sharding onto a directory that
		// already holds something else (an unsharded store, a torn
		// checkpoint): routing its keys would silently shadow its data.
		entries, err := os.ReadDir(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("shard: %s is non-empty but has no %s manifest: not a sharded store", cfg.Dir, manifestName)
		}
		m, err = buildManifest(cfg)
		if err != nil {
			return nil, err
		}
		if err := writeManifest(cfg.Dir, m); err != nil {
			return nil, err
		}
	}

	boundaries, err := m.boundaryKeys()
	if err != nil {
		return nil, fmt.Errorf("shard: %s/%s: %w", cfg.Dir, manifestName, err)
	}
	s := &Store{
		dir:        cfg.Dir,
		boundaries: boundaries,
		hashed:     m.Routing == routingHash,
	}
	if !cfg.Core.DisableTelemetry {
		s.events = obs.NewEventLog(0)
	}
	for i := 0; i < m.Shards; i++ {
		sc := cfg.Core
		sc.Dir = filepath.Join(cfg.Dir, shardDirName(i))
		if cfg.Core.MemoryBytes > 0 {
			sc.MemoryBytes = max(cfg.Core.MemoryBytes/int64(m.Shards), 1)
		}
		// The block-cache budget is the TOTAL, like MemoryBytes: each
		// shard caches its own tables, so an even split keeps the
		// process-wide footprint at the configured size. (Table-cache
		// capacity is per shard — it bounds file descriptors, and each
		// shard holds its own descriptors.)
		if cfg.Core.Storage.BlockCacheBytes > 0 {
			sc.Storage.BlockCacheBytes = max(cfg.Core.Storage.BlockCacheBytes/int64(m.Shards), 1)
		}
		db, err := core.Open(sc)
		if err != nil {
			for _, open := range s.shards {
				open.Close()
			}
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		s.shards = append(s.shards, db)
	}
	return s, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// buildManifest resolves the splitter into a validated layout record.
func buildManifest(cfg Config) (*manifest, error) {
	split := cfg.Splitter
	if split == nil {
		split = UniformSplitter{}
	}
	m := &manifest{Version: manifestVersion, Shards: cfg.Shards, Routing: routingRange}
	if cfg.Shards == 1 {
		return m, nil
	}
	bs := split.Boundaries(cfg.Shards)
	if bs == nil {
		m.Routing = routingHash
		return m, nil
	}
	if len(bs) != cfg.Shards-1 {
		return nil, fmt.Errorf("shard: splitter returned %d boundaries for %d shards; want %d", len(bs), cfg.Shards, cfg.Shards-1)
	}
	for i, b := range bs {
		if i > 0 && keys.Compare(bs[i-1], b) >= 0 {
			return nil, fmt.Errorf("shard: splitter boundaries not strictly ascending at %d", i)
		}
		m.Boundaries = append(m.Boundaries, hex.EncodeToString(b))
	}
	return m, nil
}

func (m *manifest) boundaryKeys() ([][]byte, error) {
	if m.Routing == routingHash {
		return nil, nil
	}
	if len(m.Boundaries) != m.Shards-1 {
		return nil, fmt.Errorf("manifest holds %d boundaries for %d shards", len(m.Boundaries), m.Shards)
	}
	out := make([][]byte, 0, len(m.Boundaries))
	for _, h := range m.Boundaries {
		b, err := hex.DecodeString(h)
		if err != nil {
			return nil, fmt.Errorf("bad boundary %q: %w", h, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// DetectShards reports the shard count recorded in dir's SHARDS
// manifest, or 0 when dir is not a sharded store root. Callers that
// default to an unsharded engine use it to adopt (or refuse to shadow)
// an existing sharded layout.
func DetectShards(dir string) (int, error) {
	m, err := loadManifest(dir)
	if err != nil || m == nil {
		return 0, err
	}
	return m.Shards, nil
}

// loadManifest returns the layout record, or nil when none exists.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parse %s: %w", manifestName, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: %s version %d not supported", manifestName, m.Version)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("shard: %s records %d shards", manifestName, m.Shards)
	}
	if m.Routing != routingRange && m.Routing != routingHash {
		return nil, fmt.Errorf("shard: %s records unknown routing %q", manifestName, m.Routing)
	}
	return &m, nil
}

// writeManifest persists the layout atomically: temp file, fsync,
// rename, directory fsync. Its presence is the store's (and a
// checkpoint's) commit point, so the rename itself must be durable —
// without the directory sync a power loss could leave fsynced shard
// data behind an unopenable root.
func writeManifest(dir string, m *manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return storage.SyncDir(dir)
}

// --- Routing -----------------------------------------------------------------

// ShardFor returns the index of the shard that owns key.
func (s *Store) ShardFor(key []byte) int {
	if s.hashed {
		var sum uint64 = 14695981039346656037
		for _, c := range key {
			sum ^= uint64(c)
			sum *= 1099511628211
		}
		sum ^= sum >> 33
		return int(sum % uint64(len(s.shards)))
	}
	// First boundary strictly above key names the owning shard; keys at
	// or past the last boundary fall through to the final shard.
	return sort.Search(len(s.boundaries), func(i int) bool {
		return keys.Compare(key, s.boundaries[i]) < 0
	})
}

// Count returns the number of shards.
func (s *Store) Count() int { return len(s.shards) }

// Routing names the routing mode: "range" or "hash".
func (s *Store) Routing() string {
	if s.hashed {
		return routingHash
	}
	return routingRange
}

// shardRange returns the [lo, hi] shard indices a key range overlaps.
// Only meaningful for range routing; hash routing spans every shard.
func (s *Store) shardRange(low, high []byte) (int, int) {
	if s.hashed {
		return 0, len(s.shards) - 1
	}
	lo := 0
	if low != nil {
		lo = s.ShardFor(low)
	}
	hi := len(s.shards) - 1
	if high != nil {
		// high is exclusive; ShardFor(high) may point one shard past the
		// last key actually in range, which then contributes nothing.
		hi = s.ShardFor(high)
	}
	if hi < lo {
		// Inverted bounds: collapse to one shard, whose own bounds check
		// yields the empty result a single engine returns.
		hi = lo
	}
	return lo, hi
}

// fanout runs fn once per shard concurrently and returns the first error
// in shard order.
func (s *Store) fanout(fn func(i int, db *core.DB) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, db := range s.shards {
		wg.Add(1)
		go func(i int, db *core.DB) {
			defer wg.Done()
			errs[i] = fn(i, db)
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Writes ------------------------------------------------------------------

// Put routes key to its shard. The cross-shard write barrier is held
// shared for the call, so an in-flight Snapshot briefly excludes it.
func (s *Store) Put(ctx context.Context, key, value []byte, opts ...kv.WriteOption) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	return s.shards[s.ShardFor(key)].Put(ctx, key, value, opts...)
}

// Delete routes key to its shard.
func (s *Store) Delete(ctx context.Context, key []byte, opts ...kv.WriteOption) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	return s.shards[s.ShardFor(key)].Delete(ctx, key, opts...)
}

// Apply splits b by shard and commits the sub-batches concurrently, each
// as one WAL record on its shard.
//
// Atomicity is PER SHARD, not cross-shard: a crash mid-Apply may recover
// the slice of the batch that landed on one shard and not another's.
// Each surviving slice is all-or-nothing, and each shard recovers a
// hole-free prefix of its own commit order. Under DurabilitySync the
// call returns only after every touched shard's group-committed fsync
// covers its slice — the fsyncs run in parallel, one queue per shard.
func (s *Store) Apply(ctx context.Context, b *kv.Batch, opts ...kv.WriteOption) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if b == nil || b.Len() == 0 {
		return nil
	}
	s.batches.Add(1)
	s.batchOps.Add(uint64(b.Len()))

	ops := b.Ops()
	owners := make([]int, len(ops))
	single, uniform := s.ShardFor(ops[0].Key), true
	for i := range ops {
		owners[i] = s.ShardFor(ops[i].Key)
		uniform = uniform && owners[i] == single
	}

	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	if uniform {
		// Whole batch on one shard: full single-store atomicity, no split.
		return s.shards[single].Apply(ctx, b, opts...)
	}
	subs := make([]*kv.Batch, len(s.shards))
	for i := range ops {
		sub := subs[owners[i]]
		if sub == nil {
			sub = kv.NewBatch()
			subs[owners[i]] = sub
		}
		// Insertion order is preserved within a shard, so a later op on
		// the same key still wins its sub-batch.
		if ops[i].Kind == keys.KindDelete {
			sub.Delete(ops[i].Key)
		} else {
			sub.Put(ops[i].Key, ops[i].Value)
		}
	}
	touched := 0
	for _, sub := range subs {
		if sub != nil {
			touched++
		}
	}
	s.events.Emit(obs.Event{
		Type: obs.EventShardFanout, Keys: int64(b.Len()),
		Detail: fmt.Sprintf("batch split across %d/%d shards", touched, len(s.shards)),
	})
	return s.fanout(func(i int, db *core.DB) error {
		if subs[i] == nil {
			return nil
		}
		return db.Apply(ctx, subs[i], opts...)
	})
}

// Sync is the cross-shard durability barrier: it fans out and waits
// until every shard's acked writes are crash-durable — one
// group-committed disk barrier per shard WAL, run in parallel.
func (s *Store) Sync(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.syncBarriers.Add(1)
	return s.fanout(func(_ int, db *core.DB) error {
		return db.Sync(ctx)
	})
}

// --- Reads -------------------------------------------------------------------

// Get routes key to its shard.
func (s *Store) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	return s.shards[s.ShardFor(key)].Get(ctx, key)
}

// Scan returns all pairs with low <= key < high in global key order.
// Under range routing only the overlapping shards run, concurrently,
// and their results concatenate (shard ranges are ordered and disjoint);
// under hash routing every shard scans and the results merge by key.
// Each shard's slice is a consistent snapshot of that shard; like the
// live iterator, the cut is per shard, not global — use Snapshot for a
// cross-shard point-in-time read.
func (s *Store) Scan(ctx context.Context, low, high []byte) ([]kv.Pair, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.scans.Add(1)
	lo, hi := s.shardRange(low, high)
	if lo == hi {
		return s.shards[lo].Scan(ctx, low, high)
	}
	parts := make([][]kv.Pair, hi-lo+1)
	var wg sync.WaitGroup
	errs := make([]error, hi-lo+1)
	for i := lo; i <= hi; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i-lo], errs[i-lo] = s.shards[i].Scan(ctx, low, high)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []kv.Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	if s.hashed {
		// Hash-routed shards interleave; restore global key order. The
		// slices are pairwise disjoint, so an ordinary sort suffices.
		sort.Slice(out, func(i, j int) bool { return keys.Compare(out[i].Key, out[j].Key) < 0 })
	}
	return out, nil
}

// NewIterator returns a streaming cursor merging the overlapping shards'
// iterators into one ascending stream. Consistency is per shard (each
// sub-iterator serves consistent chunks of its shard); there is no
// cross-shard cut — snapshots provide that.
func (s *Store) NewIterator(ctx context.Context, low, high []byte) (kv.Iterator, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.iterators.Add(1)
	lo, hi := s.shardRange(low, high)
	subs := make([]kv.Iterator, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		it, err := s.shards[i].NewIterator(ctx, low, high)
		if err != nil {
			for _, open := range subs {
				open.Close()
			}
			return nil, err
		}
		subs = append(subs, it)
	}
	return newMergedIter(subs), nil
}

// Snapshot pins a globally consistent repeatable-read view: a brief
// cross-shard write barrier blocks mutations while all N per-shard
// snapshots are taken (concurrently), so the handle observes one cut of
// the whole keyspace. Each per-shard snapshot is O(1) — a Membuffer
// seal plus a pinned sequence bound, no flush — so the barrier lasts N
// parallel generation switches: microseconds of writer stall, dominated
// by the barrier itself rather than the snapshots.
func (s *Store) Snapshot(ctx context.Context) (kv.View, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.snapshots.Add(1)

	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	views := make([]kv.View, len(s.shards))
	err := s.fanout(func(i int, db *core.DB) error {
		v, err := db.Snapshot(ctx)
		if err == nil {
			views[i] = v
		}
		return err
	})
	if err != nil {
		for _, v := range views {
			if v != nil {
				v.Close()
			}
		}
		return nil, err
	}
	return &snapView{s: s, views: views}, nil
}

// Checkpoint writes an openable copy of the whole sharded store into
// dir: one per-shard checkpoint in dir/shard-NNN (fanned out
// concurrently, each hard-links + WAL tail) plus the SHARDS manifest,
// written last as the commit point. The store stays online — there is
// no cross-shard barrier, so each shard's copy is prefix-consistent in
// its OWN commit order; a write racing the call may appear on one shard
// and not another.
func (s *Store) Checkpoint(ctx context.Context, dir string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		return fmt.Errorf("shard: checkpoint dir %s is not empty", dir)
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.fanout(func(i int, db *core.DB) error {
		return db.Checkpoint(ctx, filepath.Join(dir, shardDirName(i)))
	}); err != nil {
		return err
	}
	m := &manifest{Version: manifestVersion, Shards: len(s.shards), Routing: s.Routing()}
	for _, b := range s.boundaries {
		m.Boundaries = append(m.Boundaries, hex.EncodeToString(b))
	}
	return writeManifest(dir, m)
}

// Close closes every shard. It must not race with other operations.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, db := range s.shards {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- Diagnostics -------------------------------------------------------------

// Stats aggregates the shards. Physical counters (memory-component
// traffic, flushes, compactions, and the WAL acked/durable boundary) sum
// across shards — AckedSeq and DurableSeq are sums of per-shard commit
// indices, so DurableSeq == AckedSeq still means "no buffered window
// anywhere". Logical counters for fanned-out operations (Scans,
// Iterators, Snapshots, Checkpoints, Batches, SyncBarriers) count calls
// on THIS store, not the N per-shard calls each one fans into.
func (s *Store) Stats() kv.Stats {
	agg := kv.Stats{
		Scans:        s.scans.Load(),
		Iterators:    s.iterators.Load(),
		Snapshots:    s.snapshots.Load(),
		Checkpoints:  s.checkpoints.Load(),
		Batches:      s.batches.Load(),
		BatchOps:     s.batchOps.Load(),
		SyncBarriers: s.syncBarriers.Load(),
	}
	per := s.PerShard()
	for _, st := range per {
		agg.Puts += st.Puts
		agg.Gets += st.Gets
		agg.Deletes += st.Deletes
		agg.ScanRestarts += st.ScanRestarts
		agg.FallbackScans += st.FallbackScans
		agg.MembufferHits += st.MembufferHits
		agg.MemtableWrites += st.MemtableWrites
		agg.Flushes += st.Flushes
		agg.Compactions += st.Compactions
		agg.AckedSeq += st.AckedSeq
		agg.DurableSeq += st.DurableSeq
		agg.WALSyncs += st.WALSyncs
		agg.WALSyncRequests += st.WALSyncRequests
		agg.BlockCacheHits += st.BlockCacheHits
		agg.BlockCacheMisses += st.BlockCacheMisses
		agg.BlockCacheEvictions += st.BlockCacheEvictions
		agg.BlockCacheBytes += st.BlockCacheBytes
		agg.TableCacheHits += st.TableCacheHits
		agg.TableCacheMisses += st.TableCacheMisses
		agg.BloomChecks += st.BloomChecks
		agg.BloomMisses += st.BloomMisses
		// Adaptive sizing: resize epochs and sensor rates sum; the
		// fraction averages (each shard holds an equal slice of the
		// budget, so the mean is the budget-weighted live share).
		agg.MembufferResizes += st.MembufferResizes
		agg.SensorPutRate += st.SensorPutRate
		agg.SensorGetRate += st.SensorGetRate
		agg.SensorScanRate += st.SensorScanRate
		agg.SensorStallPct += st.SensorStallPct
		agg.MembufferFraction += st.MembufferFraction
	}
	if len(per) > 0 {
		agg.MembufferFraction /= float64(len(per))
	}
	return agg
}

// PerShard returns each shard's own counters, indexed by shard — the
// breakdown behind Stats, and the imbalance signal under skew: a hot
// shard shows up as one row carrying most of the Puts and Flushes.
func (s *Store) PerShard() []kv.Stats {
	out := make([]kv.Stats, len(s.shards))
	for i, db := range s.shards {
		out[i] = db.Stats()
	}
	return out
}

// WaitDiskQuiesce waits out pending persists and compactions on every
// shard (the harness quiesce point).
func (s *Store) WaitDiskQuiesce() {
	for _, db := range s.shards {
		db.WaitDiskQuiesce()
	}
}

// CrashForTesting abandons every shard the way a crash would: staged WAL
// tails are lost, no close-time flush runs. Durability tests use it to
// open the per-shard acked-but-lost windows deliberately.
func (s *Store) CrashForTesting() {
	if s.closed.Swap(true) {
		return
	}
	for _, db := range s.shards {
		db.CrashForTesting()
	}
}

var (
	_ kv.Store         = (*Store)(nil)
	_ kv.StatsProvider = (*Store)(nil)
)
