package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flodb/internal/core"
	"flodb/internal/keys"
	"flodb/internal/kv"
	"flodb/internal/obs"
)

// This file is the dynamic-topology half of the shard package: a
// sensor-driven controller that splits hot shards and merges cold
// neighbors, plus the rewrite procedure both actions share.
//
// A rewrite follows one protocol, crash-safe by construction:
//
//  1. FENCE   — the affected shards' queues are retired; their
//     committers drain what's in flight and exit. Producers that lose
//     the race re-route through the next topology. Writes queued but
//     not yet committed are captured, still un-acked.
//  2. COPY    — each affected shard is snapshotted and its live pairs
//     stream into FRESH child directories (new directory names, so old
//     and new data can never be confused), then the children flush to
//     SSTables: fully durable before anything references them.
//  3. COMMIT  — the SHARDS manifest is atomically renamed with the new
//     layout and a bumped epoch. This rename is the commit point: a
//     crash before it reopens the old epoch (children are swept as
//     orphans), a crash after it reopens the new epoch (retired parents
//     are swept as orphans). Nothing acked is ever lost — everything
//     acked was either committed in a parent (copied into the children
//     before the rename) or committed after the rename.
//  4. SWAP    — the new table is published under the snapshot barrier,
//     producers parked on the old topology wake and re-route, and the
//     captured step-1 leftovers commit inline through the new table
//     (then ack). Parents retire; pinned snapshots keep them readable
//     until released, and the last release reclaims their directories.

// rebalanceLoop is the controller: every Dynamic.Interval it reads each
// shard's cumulative op counters (the same stats stream §4.4's adaptive
// sensor reads), differences them into a per-window share, and — with
// hysteresis and a post-action cooldown — splits the hot shard or
// merges the coldest adjacent pair.
func (s *Store) rebalanceLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.dyn.Interval)
	defer ticker.Stop()
	var (
		hotStreak, coldStreak int
		hotPrev, coldPrev     *engine // streaks track engines, not indices — indices shift across epochs
		cooldown              int
	)
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		if s.closed.Load() {
			return
		}
		t := s.topo.Load()
		shares, total := s.senseWindow(t)
		if cooldown > 0 {
			cooldown--
			continue
		}
		if total < s.dyn.MinWindowOps {
			hotStreak, coldStreak, hotPrev, coldPrev = 0, 0, nil, nil
			continue
		}
		n := len(t.engines)
		fair := 1.0 / float64(n)

		hotIdx := 0
		for i := range shares {
			if shares[i] > shares[hotIdx] {
				hotIdx = i
			}
		}
		// A lone shard can never balance anything: any sustained traffic
		// makes it hot. Past that, hot means well above the fair share —
		// but SplitFactor×fair reaches 1.0 at n=2 (unattainable, a share
		// is a fraction of the window), so the threshold is capped below
		// it: a shard drawing 90% of any window's traffic is hot at any n.
		hotAt := s.dyn.SplitFactor * fair
		if hotAt > 0.9 {
			hotAt = 0.9
		}
		isHot := n == 1 || shares[hotIdx] > hotAt
		if isHot && n < s.dyn.MaxShards {
			if t.engines[hotIdx] == hotPrev {
				hotStreak++
			} else {
				hotStreak, hotPrev = 1, t.engines[hotIdx]
			}
			if hotStreak >= s.dyn.Hysteresis {
				if err := s.Split(hotIdx); err == nil {
					cooldown = s.dyn.Cooldown
				}
				hotStreak, coldStreak, hotPrev, coldPrev = 0, 0, nil, nil
				continue
			}
		} else {
			hotStreak, hotPrev = 0, nil
		}

		if n > s.dyn.MinShards && n >= 2 {
			coldIdx := 0
			for i := 0; i+1 < n; i++ {
				if shares[i]+shares[i+1] < shares[coldIdx]+shares[coldIdx+1] {
					coldIdx = i
				}
			}
			if shares[coldIdx]+shares[coldIdx+1] < s.dyn.MergeFactor*fair {
				if t.engines[coldIdx] == coldPrev {
					coldStreak++
				} else {
					coldStreak, coldPrev = 1, t.engines[coldIdx]
				}
				if coldStreak >= s.dyn.Hysteresis {
					if err := s.Merge(coldIdx); err == nil {
						cooldown = s.dyn.Cooldown
					}
					coldStreak, coldPrev = 0, nil
				}
			} else {
				coldStreak, coldPrev = 0, nil
			}
		}
	}
}

// senseWindow differences each engine's cumulative op count against the
// previous window and publishes every shard's share of the window's
// traffic (the ShardHotness stat).
func (s *Store) senseWindow(t *table) ([]float64, uint64) {
	deltas := make([]uint64, len(t.engines))
	var total uint64
	for i, e := range t.engines {
		st := e.db.Stats()
		ops := st.Puts + st.Gets + st.Deletes
		if ops >= e.prevOps {
			deltas[i] = ops - e.prevOps
		}
		e.prevOps = ops
		total += deltas[i]
	}
	shares := make([]float64, len(t.engines))
	for i, e := range t.engines {
		if total > 0 {
			shares[i] = float64(deltas[i]) / float64(total)
		}
		e.storeHotShare(shares[i])
	}
	return shares, total
}

// Split splits shard idx in two at a sampled median of its recent write
// keys (falling back to its range's midpoint), bumping the topology
// epoch. Writers to the shard are fenced only for the handoff; reads
// and other shards never stall. Requires range routing.
func (s *Store) Split(idx int) error {
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	t := s.topo.Load()
	if t.hashed {
		return ErrDynamicHashRouting
	}
	if idx < 0 || idx >= len(t.engines) {
		return fmt.Errorf("shard: split index %d out of range [0, %d)", idx, len(t.engines))
	}
	parent := t.engines[idx]
	low, high := t.bounds(idx)
	splitKey := parent.sampledSplitKey()
	if splitKey != nil && !strictlyInside(splitKey, low, high) {
		splitKey = nil
	}
	if splitKey == nil {
		splitKey = midpointKey(low, high)
	}
	if splitKey == nil {
		return fmt.Errorf("shard: %s's key range is too narrow to split", parent.dir)
	}

	// FENCE.
	rem := parent.queue.close()
	parent.ringDoorbell()
	<-parent.drained

	newCount := len(t.engines) + 1
	leftDir, rightDir := shardDirName(t.nextDir), shardDirName(t.nextDir+1)

	// COPY.
	err := func() error {
		view, err := parent.db.Snapshot(context.Background())
		if err != nil {
			return err
		}
		defer view.Close()
		if err := s.buildChild(leftDir, newCount, []kv.View{view}, [][2][]byte{{low, splitKey}}); err != nil {
			return err
		}
		return s.buildChild(rightDir, newCount, []kv.View{view}, [][2][]byte{{splitKey, high}})
	}()
	if err != nil {
		return s.abortRewrite(t, []int{idx}, []string{leftDir, rightDir}, rem, err)
	}

	if h := s.testHookPreManifest; h != nil {
		if herr := h(); herr != nil {
			s.crashInRewrite(t, rem)
			return herr
		}
	}

	// COMMIT.
	nl := &layout{epoch: t.epoch + 1, nextDir: t.nextDir + 2}
	for i, e := range t.engines {
		if i == idx {
			nl.dirs = append(nl.dirs, leftDir, rightDir)
		} else {
			nl.dirs = append(nl.dirs, e.dir)
		}
	}
	nl.boundaries = insertBoundary(t.boundaries, idx, splitKey)
	if err := writeLayout(s.dir, nl); err != nil {
		return s.abortRewrite(t, []int{idx}, []string{leftDir, rightDir}, rem, err)
	}

	// SWAP. Past the commit point a failure to reopen a child leaves the
	// store unservable on that range — treat it like a crash; reopening
	// the directory recovers the new epoch.
	leftE, lerr := s.openEngine(leftDir, newCount)
	if lerr != nil {
		s.crashInRewrite(t, rem)
		return fmt.Errorf("shard: reopening split children after commit: %w", lerr)
	}
	rightE, rerr := s.openEngine(rightDir, newCount)
	if rerr != nil {
		leftE.release()
		s.crashInRewrite(t, rem)
		return fmt.Errorf("shard: reopening split children after commit: %w", rerr)
	}
	nt := &table{
		epoch:      nl.epoch,
		boundaries: nl.boundaries,
		nextDir:    nl.nextDir,
		changed:    make(chan struct{}),
	}
	for i, e := range t.engines {
		if i == idx {
			nt.engines = append(nt.engines, leftE, rightE)
		} else {
			nt.engines = append(nt.engines, e)
		}
	}
	leftE.start(s)
	rightE.start(s)
	s.installTable(t, nt)
	s.redispatch(nt, rem)
	parent.retired.Store(true)
	parent.release()
	s.splits.Add(1)
	s.events.Emit(obs.Event{
		Type: obs.EventShardSplit,
		Detail: fmt.Sprintf("epoch %d: %s split into %s + %s at %x",
			nt.epoch, parent.dir, leftDir, rightDir, splitKey),
	})
	return nil
}

// Merge merges shards idx and idx+1 into one, dropping the boundary
// between them and bumping the topology epoch. Requires range routing.
func (s *Store) Merge(idx int) error {
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	t := s.topo.Load()
	if t.hashed {
		return ErrDynamicHashRouting
	}
	if idx < 0 || idx+1 >= len(t.engines) {
		return fmt.Errorf("shard: merge index %d out of range [0, %d)", idx, len(t.engines)-1)
	}
	left, right := t.engines[idx], t.engines[idx+1]
	low, mid := t.bounds(idx)
	_, high := t.bounds(idx + 1)

	// FENCE both sources.
	remL := left.queue.close()
	left.ringDoorbell()
	remR := right.queue.close()
	right.ringDoorbell()
	<-left.drained
	<-right.drained
	rem := concatOps(remL, remR)

	newCount := len(t.engines) - 1
	childDir := shardDirName(t.nextDir)

	// COPY both source ranges into one child.
	err := func() error {
		vL, err := left.db.Snapshot(context.Background())
		if err != nil {
			return err
		}
		defer vL.Close()
		vR, err := right.db.Snapshot(context.Background())
		if err != nil {
			return err
		}
		defer vR.Close()
		return s.buildChild(childDir, newCount,
			[]kv.View{vL, vR}, [][2][]byte{{low, mid}, {mid, high}})
	}()
	if err != nil {
		return s.abortRewrite(t, []int{idx, idx + 1}, []string{childDir}, rem, err)
	}

	if h := s.testHookPreManifest; h != nil {
		if herr := h(); herr != nil {
			s.crashInRewrite(t, rem)
			return herr
		}
	}

	// COMMIT.
	nl := &layout{epoch: t.epoch + 1, nextDir: t.nextDir + 1}
	for i, e := range t.engines {
		switch i {
		case idx:
			nl.dirs = append(nl.dirs, childDir)
		case idx + 1:
		default:
			nl.dirs = append(nl.dirs, e.dir)
		}
	}
	nl.boundaries = removeBoundary(t.boundaries, idx)
	if err := writeLayout(s.dir, nl); err != nil {
		return s.abortRewrite(t, []int{idx, idx + 1}, []string{childDir}, rem, err)
	}

	// SWAP.
	child, err := s.openEngine(childDir, max(newCount, 1))
	if err != nil {
		s.crashInRewrite(t, rem)
		return fmt.Errorf("shard: reopening merged child after commit: %w", err)
	}
	nt := &table{
		epoch:      nl.epoch,
		boundaries: nl.boundaries,
		nextDir:    nl.nextDir,
		changed:    make(chan struct{}),
	}
	for i, e := range t.engines {
		switch i {
		case idx:
			nt.engines = append(nt.engines, child)
		case idx + 1:
		default:
			nt.engines = append(nt.engines, e)
		}
	}
	child.start(s)
	s.installTable(t, nt)
	s.redispatch(nt, rem)
	left.retired.Store(true)
	right.retired.Store(true)
	left.release()
	right.release()
	s.merges.Add(1)
	s.events.Emit(obs.Event{
		Type: obs.EventShardMerge,
		Detail: fmt.Sprintf("epoch %d: %s + %s merged into %s",
			nt.epoch, left.dir, right.dir, childDir),
	})
	return nil
}

// buildChild opens a fresh child directory and streams each view's
// [low, high) slice into it, then closes it — the close flushes the
// memory component, so the child is durable on disk before the caller
// reaches the manifest commit point.
func (s *Store) buildChild(dirName string, count int, views []kv.View, bounds [][2][]byte) error {
	sc := s.core
	sc.Dir = filepath.Join(s.dir, dirName)
	if s.core.MemoryBytes > 0 {
		sc.MemoryBytes = max(s.core.MemoryBytes/int64(count), 1)
	}
	if s.core.Storage.BlockCacheBytes > 0 {
		sc.Storage.BlockCacheBytes = max(s.core.Storage.BlockCacheBytes/int64(count), 1)
	}
	db, err := core.Open(sc)
	if err != nil {
		return err
	}
	for i, view := range views {
		if err = copyInto(db, view, bounds[i][0], bounds[i][1]); err != nil {
			break
		}
	}
	if cerr := db.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.RemoveAll(sc.Dir)
	}
	return err
}

// copyInto streams view's [low, high) live pairs into db in batches.
// Tombstones need not travel: the child starts empty, so absence IS the
// deletion. DurabilityNone skips the child's WAL — the close-time flush
// is what makes the copy durable.
func copyInto(db *core.DB, view kv.View, low, high []byte) error {
	it, err := view.NewIterator(context.Background(), low, high)
	if err != nil {
		return err
	}
	defer it.Close()
	b := kv.NewBatch()
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		err := db.CommitBatch(context.Background(), b, kv.DurabilityNone, 0, 0)
		b = kv.NewBatch()
		return err
	}
	for ok := it.First(); ok; ok = it.Next() {
		b.Put(it.Key(), it.Value())
		if b.Len() >= 512 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return flush()
}

// installTable publishes nt under the snapshot barrier — a Snapshot
// sees either the old epoch complete or the new one, never a hybrid —
// and wakes producers parked on the old topology.
func (s *Store) installTable(old, nt *table) {
	s.snapMu.Lock()
	s.topo.Store(nt)
	s.snapMu.Unlock()
	close(old.changed)
}

// redispatch commits the fenced leftovers — writes queued on a retired
// shard but never picked up — inline through the new table, in their
// arrival order, then acks them. Inline (rather than re-enqueued)
// because an Apply sub-batch may now straddle the new boundary and its
// single ack must wait for every piece.
func (s *Store) redispatch(nt *table, rem *writeOp) {
	for op := rem; op != nil; {
		next := op.next
		op.done <- s.commitDirect(nt, op)
		op = next
	}
}

// commitDirect commits one leftover op through t, bypassing the queues.
// Ops always copy into a fresh batch: the engine retains the committed
// batch's memory, while op's buffers belong to its blocked producer.
func (s *Store) commitDirect(t *table, op *writeOp) error {
	if err := op.ctx.Err(); err != nil {
		return err
	}
	commit := func(e *engine, b *kv.Batch, puts, dels uint64) error {
		s.snapMu.RLock()
		defer s.snapMu.RUnlock()
		return e.db.CommitBatch(context.Background(), b, op.d, puts, dels)
	}
	if op.batch == nil {
		b := kv.NewBatch()
		if op.kind == keys.KindDelete {
			b.Delete(op.key)
		} else {
			b.Put(op.key, op.value)
		}
		return commit(t.engines[t.shardFor(op.key)], b, op.puts, op.dels)
	}
	idxs, parts := splitBatch(t, op.batch)
	var firstErr error
	for j, part := range parts {
		b := kv.NewBatch()
		for _, o := range part.Ops() {
			if o.Kind == keys.KindDelete {
				b.Delete(o.Key)
			} else {
				b.Put(o.Key, o.Value)
			}
		}
		// Batch entries carry no per-op attribution, matching Apply.
		if err := commit(t.engines[idxs[j]], b, 0, 0); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// abortRewrite unwinds a rewrite that failed BEFORE its commit point:
// half-built children are deleted and the fenced parents go back into
// service behind fresh queues. The old engine structs are abandoned
// un-finalized — their DBs live on inside the replacements — so pinned
// readers of the old table stay valid.
func (s *Store) abortRewrite(t *table, idxs []int, childDirs []string, rem *writeOp, cause error) error {
	for _, d := range childDirs {
		os.RemoveAll(filepath.Join(s.dir, d))
	}
	nt := &table{
		epoch:      t.epoch,
		boundaries: t.boundaries,
		hashed:     t.hashed,
		nextDir:    t.nextDir,
		changed:    make(chan struct{}),
	}
	nt.engines = append([]*engine(nil), t.engines...)
	for _, i := range idxs {
		old := nt.engines[i]
		e := &engine{
			db:      old.db,
			dir:     old.dir,
			root:    s.dir,
			wake:    make(chan struct{}, 1),
			drained: make(chan struct{}),
			crashed: &s.crashed,
		}
		e.refs.Store(1)
		nt.engines[i] = e
		e.start(s)
	}
	s.installTable(t, nt)
	s.redispatch(nt, rem)
	return cause
}

// crashInRewrite abandons the store from inside a rewrite, exactly as
// CrashForTesting would: the test hook's simulated crash, or a
// post-commit-point failure that cannot be unwound. rem and everything
// still queued elsewhere complete with ErrClosed, un-acked.
func (s *Store) crashInRewrite(t *table, rem *writeOp) {
	s.closed.Store(true)
	s.crashed.Store(true)
	for op := rem; op != nil; {
		next := op.next
		op.done <- ErrClosed
		op = next
	}
	for _, e := range t.engines {
		other := e.queue.close()
		e.ringDoorbell()
		for op := other; op != nil; {
			next := op.next
			op.done <- ErrClosed
			op = next
		}
	}
	for _, e := range t.engines {
		<-e.drained
	}
	close(t.changed)
	for _, e := range t.engines {
		e.release()
	}
}

// strictlyInside reports low < k < high (nil bounds are open).
func strictlyInside(k, low, high []byte) bool {
	if low != nil && keys.Compare(k, low) <= 0 {
		return false
	}
	if high != nil && keys.Compare(k, high) >= 0 {
		return false
	}
	return true
}

// midpointKey computes a key strictly between low and high by treating
// both as big-endian fractions of the keyspace and averaging them —
// the split point of last resort when a shard has no sampled writes to
// vote with. Returns nil when the range is too narrow to cut.
func midpointKey(low, high []byte) []byte {
	const n = 16 // working precision: plenty past any real boundary
	a := make([]byte, n)
	copy(a, low)
	b := make([]byte, n)
	carry := 0
	if high == nil {
		carry = 1 // the open top is 1.0: one unit beyond the fraction space
	} else {
		copy(b, high)
	}
	sum := make([]byte, n)
	c := 0
	for i := n - 1; i >= 0; i-- {
		v := int(a[i]) + int(b[i]) + c
		sum[i] = byte(v)
		c = v >> 8
	}
	rem := c + carry
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		v := rem<<8 | int(sum[i])
		out[i] = byte(v >> 1)
		rem = v & 1
	}
	if !strictlyInside(out, low, high) {
		return nil
	}
	return out
}

func insertBoundary(bs [][]byte, idx int, k []byte) [][]byte {
	out := make([][]byte, 0, len(bs)+1)
	out = append(out, bs[:idx]...)
	out = append(out, k)
	return append(out, bs[idx:]...)
}

func removeBoundary(bs [][]byte, idx int) [][]byte {
	out := make([][]byte, 0, len(bs)-1)
	out = append(out, bs[:idx]...)
	return append(out, bs[idx+1:]...)
}

func concatOps(a, b *writeOp) *writeOp {
	if a == nil {
		return b
	}
	tail := a
	for tail.next != nil {
		tail = tail.next
	}
	tail.next = b
	return a
}
