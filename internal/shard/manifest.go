package shard

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flodb/internal/keys"
	"flodb/internal/storage"
)

// The SHARDS manifest is the store root's layout record and the commit
// point of every topology change: a split or merge builds its child
// shard directories first, flushes them, and only then renames a new
// manifest over the old one — so a crash at any instant leaves either
// the old epoch or the new one fully intact, never a mix.
//
// Version history:
//
//	v1 — static layout: shard count, routing, boundary list; shard i is
//	     implicitly dir "shard-%03d". Read-compatible forever.
//	v2 — dynamic topology: an EPOCH that bumps on every split/merge, an
//	     explicit per-shard directory name (children of a split get
//	     fresh directories, so a crash mid-rewrite never confuses old
//	     and new data), each shard's inclusive lower bound, and the
//	     next directory index to allocate.
//
// A manifest whose version is newer than this binary understands fails
// Open with FutureManifestError — adopting v1 semantics for an unknown
// layout could route keys to the wrong shard and silently shadow data.
const (
	manifestName       = "SHARDS"
	manifestVersionV1  = 1
	manifestVersion    = 2
	manifestDirPattern = "shard-"

	routingRange = "range"
	routingHash  = "hash"
)

// FutureManifestError reports a SHARDS manifest written by a newer
// binary than the one opening it.
type FutureManifestError struct {
	Dir       string // store root holding the manifest
	Version   int    // version the manifest records
	Supported int    // newest version this binary understands
}

func (e *FutureManifestError) Error() string {
	return fmt.Sprintf("shard: %s/%s is manifest version %d, newer than the supported %d: the store was written by a newer binary (upgrade this one; downgrading the store is not supported)",
		e.Dir, manifestName, e.Version, e.Supported)
}

// manifestShard is one shard's entry in a v2 manifest.
type manifestShard struct {
	// Dir is the shard's directory name under the store root.
	Dir string `json:"dir"`
	// Low is the shard's inclusive lower boundary key in hex; absent on
	// the first shard (whose range is open below) and under hash routing.
	Low string `json:"low,omitempty"`
}

// manifest is the JSON layout record at the store root. The v1 fields
// (Shards count, flat Boundaries) and the v2 fields (Epoch, per-shard
// entries, NextDir) coexist in the struct; version selects which are
// authoritative.
type manifest struct {
	Version int    `json:"version"`
	Routing string `json:"routing"`

	// v1 fields.
	Shards     int      `json:"shards,omitempty"`
	Boundaries []string `json:"boundaries,omitempty"` // hex, len Shards-1

	// v2 fields.
	Epoch     uint64          `json:"epoch,omitempty"`
	ShardDirs []manifestShard `json:"shard_dirs,omitempty"`
	NextDir   int             `json:"next_dir,omitempty"`
}

// layout is a decoded, validated manifest: what Open actually consumes.
type layout struct {
	epoch      uint64
	hashed     bool
	dirs       []string
	boundaries [][]byte // len(dirs)-1; nil iff hashed
	nextDir    int
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// decode validates the manifest and normalizes both versions into one
// layout. v1 manifests get epoch 1 and the implicit shard-%03d dirs.
func (m *manifest) decode(dir string) (*layout, error) {
	if m.Routing != routingRange && m.Routing != routingHash {
		return nil, fmt.Errorf("shard: %s records unknown routing %q", manifestName, m.Routing)
	}
	l := &layout{hashed: m.Routing == routingHash}
	switch m.Version {
	case manifestVersionV1:
		if m.Shards < 1 {
			return nil, fmt.Errorf("shard: %s records %d shards", manifestName, m.Shards)
		}
		l.epoch = 1
		l.nextDir = m.Shards
		for i := 0; i < m.Shards; i++ {
			l.dirs = append(l.dirs, shardDirName(i))
		}
		if !l.hashed {
			if len(m.Boundaries) != m.Shards-1 {
				return nil, fmt.Errorf("shard: %s holds %d boundaries for %d shards", manifestName, len(m.Boundaries), m.Shards)
			}
			for _, h := range m.Boundaries {
				b, err := hex.DecodeString(h)
				if err != nil {
					return nil, fmt.Errorf("shard: %s: bad boundary %q: %w", manifestName, h, err)
				}
				l.boundaries = append(l.boundaries, b)
			}
		}
	case manifestVersion:
		if len(m.ShardDirs) < 1 {
			return nil, fmt.Errorf("shard: %s records no shards", manifestName)
		}
		if m.Epoch < 1 {
			return nil, fmt.Errorf("shard: %s records epoch %d; want >= 1", manifestName, m.Epoch)
		}
		l.epoch = m.Epoch
		l.nextDir = m.NextDir
		for i, e := range m.ShardDirs {
			if e.Dir == "" || e.Dir != filepath.Base(e.Dir) || !strings.HasPrefix(e.Dir, manifestDirPattern) {
				return nil, fmt.Errorf("shard: %s entry %d has bad dir %q", manifestName, i, e.Dir)
			}
			l.dirs = append(l.dirs, e.Dir)
			switch {
			case i == 0 || l.hashed:
				if e.Low != "" {
					return nil, fmt.Errorf("shard: %s entry %d has unexpected lower bound", manifestName, i)
				}
			default:
				b, err := hex.DecodeString(e.Low)
				if err != nil || len(b) == 0 {
					return nil, fmt.Errorf("shard: %s entry %d has bad lower bound %q", manifestName, i, e.Low)
				}
				l.boundaries = append(l.boundaries, b)
			}
		}
	default:
		return nil, &FutureManifestError{Dir: dir, Version: m.Version, Supported: manifestVersion}
	}
	for i := 1; i < len(l.boundaries); i++ {
		if keys.Compare(l.boundaries[i-1], l.boundaries[i]) >= 0 {
			return nil, fmt.Errorf("shard: %s boundaries not strictly ascending at %d", manifestName, i)
		}
	}
	return l, nil
}

// encode renders the layout as a v2 manifest record.
func (l *layout) encode() *manifest {
	m := &manifest{Version: manifestVersion, Epoch: l.epoch, NextDir: l.nextDir, Routing: routingRange}
	if l.hashed {
		m.Routing = routingHash
	}
	for i, d := range l.dirs {
		e := manifestShard{Dir: d}
		if i > 0 && !l.hashed {
			e.Low = hex.EncodeToString(l.boundaries[i-1])
		}
		m.ShardDirs = append(m.ShardDirs, e)
	}
	return m
}

// loadLayout returns the decoded layout, or nil when dir holds no
// manifest. Version errors (including FutureManifestError) surface here.
func loadLayout(dir string) (*layout, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parse %s: %w", manifestName, err)
	}
	return m.decode(dir)
}

// buildLayout resolves the splitter into a fresh store's layout.
func buildLayout(cfg Config) (*layout, error) {
	split := cfg.Splitter
	if split == nil {
		split = UniformSplitter{}
	}
	l := &layout{epoch: 1, nextDir: cfg.Shards}
	for i := 0; i < cfg.Shards; i++ {
		l.dirs = append(l.dirs, shardDirName(i))
	}
	if cfg.Shards == 1 {
		return l, nil
	}
	bs := split.Boundaries(cfg.Shards)
	if bs == nil {
		l.hashed = true
		return l, nil
	}
	if len(bs) != cfg.Shards-1 {
		return nil, fmt.Errorf("shard: splitter returned %d boundaries for %d shards; want %d", len(bs), cfg.Shards, cfg.Shards-1)
	}
	for i, b := range bs {
		if i > 0 && keys.Compare(bs[i-1], b) >= 0 {
			return nil, fmt.Errorf("shard: splitter boundaries not strictly ascending at %d", i)
		}
		l.boundaries = append(l.boundaries, b)
	}
	return l, nil
}

// writeLayout persists the layout atomically: temp file, fsync, rename,
// directory fsync. The rename is the commit point of store creation,
// checkpoints AND topology rewrites, so it must itself be durable —
// without the directory sync a power loss could leave fsynced shard data
// behind a stale (or absent) root record.
func writeLayout(dir string, l *layout) error {
	data, err := json.Marshal(l.encode())
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return storage.SyncDir(dir)
}

// removeOrphanDirs deletes shard-* subdirectories the manifest does not
// reference — the debris of a rewrite that crashed before (children) or
// after (retired parents) its manifest rename. Run at Open, before any
// engine starts, so a half-built child can never be mistaken for data.
func removeOrphanDirs(dir string, l *layout) error {
	live := make(map[string]bool, len(l.dirs))
	for _, d := range l.dirs {
		live[d] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName+".tmp" {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !e.IsDir() || !strings.HasPrefix(name, manifestDirPattern) || live[name] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("shard: removing orphan %s: %w", name, err)
		}
	}
	return nil
}

// DetectShards reports the shard count recorded in dir's SHARDS
// manifest, or 0 when dir is not a sharded store root. Callers that
// default to an unsharded engine use it to adopt (or refuse to shadow)
// an existing sharded layout.
func DetectShards(dir string) (int, error) {
	l, err := loadLayout(dir)
	if err != nil || l == nil {
		return 0, err
	}
	return len(l.dirs), nil
}

// ShardInfo describes one shard directory as the manifest records it:
// the directory name under the store root and the shard's inclusive
// lower boundary (nil on the first shard, whose range is open below,
// and on every shard under hash routing).
type ShardInfo struct {
	Dir string
	Low []byte
}

// Inspect reads dir's SHARDS manifest without opening the store —
// the operator's view (`flodbctl shards`) of a directory that may
// belong to a running process. It returns the recorded topology and
// the per-shard directory entries in shard order, or a zero Topology
// and nil infos when dir holds no manifest (an unsharded store).
// Version errors, including FutureManifestError, surface unchanged.
func Inspect(dir string) (Topology, []ShardInfo, error) {
	l, err := loadLayout(dir)
	if err != nil || l == nil {
		return Topology{}, nil, err
	}
	topo := Topology{Epoch: l.epoch, Shards: len(l.dirs), Routing: routingRange}
	if l.hashed {
		topo.Routing = routingHash
	}
	infos := make([]ShardInfo, len(l.dirs))
	for i, d := range l.dirs {
		infos[i].Dir = d
		if i > 0 && !l.hashed {
			infos[i].Low = keys.Clone(l.boundaries[i-1])
			topo.Boundaries = append(topo.Boundaries, keys.Clone(l.boundaries[i-1]))
		}
	}
	return topo, infos, nil
}
