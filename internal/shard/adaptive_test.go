package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdaptiveHotShardResizeWithPinnedSnapshot opens a sharded store
// with per-shard adaptive controllers, pins a globally consistent
// snapshot, then hammers ONE shard with a skewed write stream until its
// controller resizes its Membuffer — while the other shards idle. The
// pinned snapshot must keep its cut through the hot shard's resize
// epochs, the hot shard alone should carry the resizes, and the
// aggregate Stats must report the mean fraction and summed resizes.
func TestAdaptiveHotShardResizeWithPinnedSnapshot(t *testing.T) {
	cfg := tinyCore(false)
	cfg.AdaptiveMemory = true
	cfg.AdaptiveWindow = 5 * time.Millisecond
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4, Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Seed one key per shard, then pin the global cut.
	marker := []byte("before")
	for i := 0; i < 4; i++ {
		if err := s.Put(bg, shardLocalKey(s, i, 0), marker); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Hot shard: shard 0 takes a resident-working-set overwrite storm
	// (the §4.4 grow signal); its neighbors see nothing.
	hot := 0
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		val := make([]byte, 64)
		for !stop.Load() {
			for i := uint64(0); i < 256; i++ {
				if err := s.Put(bg, shardLocalKey(s, hot, i), val); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		per := s.PerShard()
		if per[hot].MembufferResizes >= 1 && per[hot].MembufferFraction > 0.25 {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("hot shard never resized: %+v", per[hot])
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	per := s.PerShard()
	for i := 1; i < 4; i++ {
		if per[i].MembufferResizes != 0 {
			t.Fatalf("idle shard %d resized %d times", i, per[i].MembufferResizes)
		}
		if per[i].MembufferFraction != 0.25 {
			t.Fatalf("idle shard %d fraction %v, want the 0.25 start", i, per[i].MembufferFraction)
		}
	}

	// Aggregate: resizes sum, fraction is the mean of the per-shard
	// live fractions.
	agg := s.Stats()
	var wantMean float64
	var wantResizes uint64
	for _, st := range per {
		wantMean += st.MembufferFraction
		wantResizes += st.MembufferResizes
	}
	wantMean /= float64(len(per))
	if agg.MembufferResizes != wantResizes {
		t.Fatalf("aggregate resizes %d, want %d", agg.MembufferResizes, wantResizes)
	}
	if diff := agg.MembufferFraction - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("aggregate fraction %v, want mean %v", agg.MembufferFraction, wantMean)
	}

	// The pinned snapshot still reads the pre-storm cut on every shard,
	// hot one included.
	for i := 0; i < 4; i++ {
		v, ok, err := snap.Get(bg, shardLocalKey(s, i, 0))
		if err != nil || !ok || string(v) != "before" {
			t.Fatalf("snapshot shard %d read %q/%v/%v across hot-shard resizes", i, v, ok, err)
		}
	}
}

// shardLocalKey returns the i-th spread key owned by the given shard:
// spread keys are probed until one routes there, keeping the write
// stream strictly inside one shard whatever the boundary layout.
func shardLocalKey(s *Store, shard int, i uint64) []byte {
	for probe := i; ; probe += 1 << 32 {
		k := spreadKey(probe)
		if s.ShardFor(k) == shard {
			return k
		}
	}
}
