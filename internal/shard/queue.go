package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// writeOp is one routed mutation parked on a shard's commit queue: a
// single Put/Delete (key/value/kind) or a pre-split sub-batch (batch).
// The committer owns it from a successful push until it sends on done;
// the slices alias the caller's buffers, which is safe because the
// caller blocks on done until the committer has copied them into the
// engine (kv.Batch arena-clones on append).
type writeOp struct {
	ctx   context.Context
	key   []byte
	value []byte
	kind  keys.Kind
	batch *kv.Batch     // non-nil for Apply sub-batches; kind/key/value unused
	d     kv.Durability // resolved at enqueue; groups the drain into runs
	puts  uint64        // stat attribution for the engine
	dels  uint64

	done chan error // buffered(1); exactly one send per op
	next *writeOp   // intrusive queue link
}

// opPool recycles writeOps and their done channels across operations.
var opPool = sync.Pool{
	New: func() any { return &writeOp{done: make(chan error, 1)} },
}

func getOp() *writeOp { return opPool.Get().(*writeOp) }

func putOp(op *writeOp) {
	op.ctx = nil
	op.key, op.value, op.batch = nil, nil, nil
	op.puts, op.dels = 0, 0
	op.next = nil
	opPool.Put(op)
}

// queueClosed is the sentinel installed as the stack head when a queue
// is retired: pushes that lose the race to a topology rewrite fail and
// re-route through the new topology instead of vanishing into a queue
// nobody drains.
var queueClosed = &writeOp{}

// opQueue is a lock-free multi-producer single-consumer queue: a
// Treiber stack of writeOps. Producers push with one CAS; the committer
// takes the whole stack with one swap and reverses it, restoring arrival
// order. depth tracks enqueued-but-uncommitted ops for Stats and the
// queue-depth telemetry.
type opQueue struct {
	head  atomic.Pointer[writeOp]
	depth atomic.Int64
}

// push enqueues op. It returns (wasEmpty, ok): ok is false when the
// queue is closed (the shard was retired by a split/merge — re-route),
// wasEmpty tells the producer to ring the committer's doorbell.
func (q *opQueue) push(op *writeOp) (wasEmpty, ok bool) {
	for {
		h := q.head.Load()
		if h == queueClosed {
			return false, false
		}
		op.next = h
		if q.head.CompareAndSwap(h, op) {
			q.depth.Add(1)
			return h == nil, true
		}
	}
}

// drain takes every queued op in arrival order. closed reports that the
// queue has been retired; once closed, drain always returns (nil, true)
// and the committer exits. depth is NOT decremented here — ops stay
// counted until the committer completes them (completeOp).
func (q *opQueue) drain() (ops *writeOp, closed bool) {
	for {
		h := q.head.Load()
		if h == queueClosed {
			return nil, true
		}
		if h == nil {
			return nil, false
		}
		if q.head.CompareAndSwap(h, nil) {
			return reverseOps(h), false
		}
	}
}

// close retires the queue: it atomically installs the closed sentinel
// and returns whatever was still queued, in arrival order, for the
// caller to re-route. After close, every push fails.
func (q *opQueue) close() *writeOp {
	for {
		h := q.head.Load()
		if h == queueClosed {
			return nil
		}
		if q.head.CompareAndSwap(h, queueClosed) {
			return reverseOps(h)
		}
	}
}

// reverseOps flips a LIFO stack segment into FIFO arrival order.
func reverseOps(h *writeOp) *writeOp {
	var out *writeOp
	for h != nil {
		next := h.next
		h.next = out
		out = h
		h = next
	}
	return out
}
