package shard

import (
	"sync"

	"flodb/internal/keys"
	"flodb/internal/kv"
)

// The merged iterator runs each shard's cursor in its own PRODUCER
// goroutine: producers walk their sub-iterators and stream chunks of
// cloned pairs through bounded channels to the consuming merge, so an
// N-shard scan reads N shards' blocks, caches and skiplists in
// parallel while the consumer only compares heads. Routing guarantees
// the sources hold pairwise-disjoint key sets, so the merge never
// breaks ties; under range routing the sources are ordered end-to-end
// and at any moment only one producer's head is the minimum.
//
// Repositioning (First/Seek) is generation-numbered: the consumer bumps
// the generation and commands every producer, then discards any chunk
// tagged with a stale generation — a producer mid-stream when the
// command lands abandons its run without any lock.
//
// Error contract: the first error any source reports (a context
// cancel, a read failure) invalidates the whole merge — positioning
// calls return false and Err surfaces it.

// iterChunkSize bounds a chunk: big enough to amortize channel hops,
// small enough to keep repositioning cheap and memory bounded
// (sources × chunkCap × chunkSize pairs in flight at worst).
const (
	iterChunkSize = 32
	iterChunkCap  = 2
)

type iterChunk struct {
	gen   int
	pairs []kv.Pair // cloned: valid beyond the producer's next advance
	eof   bool      // source exhausted (or failed) for this generation
	err   error
}

type iterCmd struct {
	gen  int
	seek []byte // nil means First
}

// iterSource is one shard's producer endpoints.
type iterSource struct {
	cmds chan iterCmd   // consumer -> producer, cap 1
	out  chan iterChunk // producer -> consumer, cap iterChunkCap
}

// produce owns sub for the iterator's lifetime: it waits for a
// positioning command, then streams chunks for that generation until
// eof, a newer command, or stop. It holds sub.Close — the consumer
// never touches sub directly.
func produce(sub kv.Iterator, src *iterSource, stop <-chan struct{}) {
	defer sub.Close()
	var cmd iterCmd
	var have bool
	for {
		if !have {
			select {
			case <-stop:
				return
			case cmd = <-src.cmds:
			}
		}
		have = false
		var ok bool
		if cmd.seek == nil {
			ok = sub.First()
		} else {
			ok = sub.Seek(cmd.seek)
		}
		for {
			ch := iterChunk{gen: cmd.gen}
			for ok && len(ch.pairs) < iterChunkSize {
				ch.pairs = append(ch.pairs, kv.Pair{
					Key:   keys.Clone(sub.Key()),
					Value: keys.Clone(sub.Value()),
				})
				ok = sub.Next()
			}
			if !ok {
				ch.eof = true
				ch.err = sub.Err()
			}
			select {
			case src.out <- ch:
			case <-stop:
				return
			case cmd = <-src.cmds:
				// Superseded mid-stream: drop this chunk, reposition.
				have = true
			}
			if have || ch.eof {
				break
			}
		}
	}
}

// mergedIter is the consumer: it holds each source's current chunk and
// merges their heads.
type mergedIter struct {
	sources []*iterSource
	stop    chan struct{}
	wg      sync.WaitGroup
	release func() // engine/topology pins; runs after every producer exits

	gen    int
	bufs   [][]kv.Pair // sources' remaining pairs of the current generation
	eof    []bool      // source finished its current generation
	err    error
	cur    int // source holding the current minimum; -1 when unpositioned
	curKV  kv.Pair
	done   bool
	closed bool
}

var _ kv.Iterator = (*mergedIter)(nil)

// newMergedIter merges subs (pairwise-disjoint key sets) into one
// ascending cursor, spawning one producer per source. release, if
// non-nil, runs at Close after the producers have let go of their
// sub-iterators. A single source skips the machinery entirely.
func newMergedIter(subs []kv.Iterator, release func()) kv.Iterator {
	if len(subs) == 1 {
		return &singleIter{Iterator: subs[0], release: release}
	}
	m := &mergedIter{
		stop:    make(chan struct{}),
		release: release,
		bufs:    make([][]kv.Pair, len(subs)),
		eof:     make([]bool, len(subs)),
		cur:     -1,
	}
	for _, sub := range subs {
		src := &iterSource{
			cmds: make(chan iterCmd, 1),
			out:  make(chan iterChunk, iterChunkCap),
		}
		m.sources = append(m.sources, src)
		m.wg.Add(1)
		go func(sub kv.Iterator, src *iterSource) {
			defer m.wg.Done()
			produce(sub, src, m.stop)
		}(sub, src)
	}
	return m
}

// reposition broadcasts a new-generation command and primes every
// source's first chunk.
func (m *mergedIter) reposition(seek []byte) bool {
	if m.closed {
		return false
	}
	m.gen++
	m.err = nil
	m.done = false
	for i, src := range m.sources {
		m.bufs[i] = nil
		m.eof[i] = false
		// Drain any stale chunk so the producer isn't blocked sending one
		// while we wait to hand it the command.
		for {
			select {
			case <-src.out:
				continue
			default:
			}
			break
		}
		src.cmds <- iterCmd{gen: m.gen, seek: seek}
	}
	for i := range m.sources {
		if !m.fill(i) {
			m.done = true
			m.cur = -1
			return false
		}
	}
	return m.pickMin()
}

// fill ensures source i has either pairs buffered or a final eof for
// the current generation. Returns false on a source error.
func (m *mergedIter) fill(i int) bool {
	for len(m.bufs[i]) == 0 && !m.eof[i] {
		ch := <-m.sources[i].out
		if ch.gen != m.gen {
			continue // stale generation: discard
		}
		m.bufs[i] = ch.pairs
		if ch.eof {
			m.eof[i] = true
			if ch.err != nil && m.err == nil {
				m.err = ch.err
			}
		}
	}
	return m.err == nil
}

// pickMin selects the smallest head among the sources. Linear in shard
// count, which is small; a heap would only pay past dozens of shards.
func (m *mergedIter) pickMin() bool {
	m.cur = -1
	for i := range m.sources {
		if len(m.bufs[i]) == 0 {
			continue
		}
		if m.cur < 0 || keys.Compare(m.bufs[i][0].Key, m.bufs[m.cur][0].Key) < 0 {
			m.cur = i
		}
	}
	if m.cur < 0 {
		m.done = true
		return false
	}
	m.curKV = m.bufs[m.cur][0]
	return true
}

// First positions at the global minimum.
func (m *mergedIter) First() bool { return m.reposition(nil) }

// Seek positions at the first pair with key >= the given key (forward
// or backward from the current position).
func (m *mergedIter) Seek(key []byte) bool {
	if m.closed {
		return false
	}
	return m.reposition(keys.Clone(key))
}

// Next advances past the current pair; on an unpositioned iterator it
// is First.
func (m *mergedIter) Next() bool {
	if m.closed || m.done || m.err != nil {
		return false
	}
	if m.cur < 0 {
		return m.First()
	}
	m.bufs[m.cur] = m.bufs[m.cur][1:]
	if !m.fill(m.cur) {
		m.done = true
		m.cur = -1
		return false
	}
	return m.pickMin()
}

// Key returns the current key (valid after a positioning call returned
// true, until Close — chunks are cloned, so no aliasing with the
// engines).
func (m *mergedIter) Key() []byte {
	if m.cur < 0 {
		return nil
	}
	return m.curKV.Key
}

// Value returns the current value under the same rule as Key.
func (m *mergedIter) Value() []byte {
	if m.cur < 0 {
		return nil
	}
	return m.curKV.Value
}

// Err returns the first error any source encountered.
func (m *mergedIter) Err() error { return m.err }

// Close stops the producers, closes every source iterator and drops
// the engine pins. Idempotent.
func (m *mergedIter) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	close(m.stop)
	// Unstick producers blocked sending a chunk.
	for _, src := range m.sources {
		for {
			select {
			case <-src.out:
				continue
			default:
			}
			break
		}
	}
	m.wg.Wait()
	if m.release != nil {
		m.release()
	}
	m.cur = -1
	m.done = true
	return nil
}

// singleIter wraps the one-source case: no producer goroutine, just the
// engine pin release on Close.
type singleIter struct {
	kv.Iterator
	release func()
	closed  bool
}

func (it *singleIter) Close() error {
	err := it.Iterator.Close()
	if !it.closed {
		it.closed = true
		if it.release != nil {
			it.release()
		}
	}
	return err
}
