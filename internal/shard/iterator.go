package shard

import (
	"flodb/internal/keys"
	"flodb/internal/kv"
)

// mergedIter k-way-merges per-shard iterators into one ascending cursor.
// Routing guarantees the sources hold pairwise-disjoint key sets, so the
// merge never has to break ties; under range routing the sources are
// additionally ordered end-to-end and the merge degenerates into a
// concatenation for free (at any moment only one source is the minimum).
//
// Error contract: the first error any source reports (a context cancel,
// a read failure) invalidates the whole merge — positioning calls return
// false and Err surfaces it.
type mergedIter struct {
	subs  []kv.Iterator
	valid []bool // subs[i] is positioned on a live pair
	cur   int    // index of the current minimum, -1 when unpositioned/done
	err   error
	done  bool // exhausted or failed: positioning calls short-circuit
}

var _ kv.Iterator = (*mergedIter)(nil)

func newMergedIter(subs []kv.Iterator) *mergedIter {
	return &mergedIter{subs: subs, valid: make([]bool, len(subs)), cur: -1}
}

// position records the outcome of a positioning call on source i,
// capturing a source error as the merge's error.
func (m *mergedIter) position(i int, ok bool) {
	m.valid[i] = ok
	if !ok {
		if err := m.subs[i].Err(); err != nil && m.err == nil {
			m.err = err
		}
	}
}

// pickMin scans the live sources for the smallest key. Linear in shard
// count, which is small; a heap would only pay past dozens of shards.
func (m *mergedIter) pickMin() bool {
	if m.err != nil {
		m.cur = -1
		m.done = true
		return false
	}
	m.cur = -1
	for i := range m.subs {
		if !m.valid[i] {
			continue
		}
		if m.cur < 0 || keys.Compare(m.subs[i].Key(), m.subs[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
	if m.cur < 0 {
		m.done = true
		return false
	}
	m.done = false
	return true
}

// First positions every source at its first pair and yields the global
// minimum.
func (m *mergedIter) First() bool {
	if m.err != nil {
		return false
	}
	for i, it := range m.subs {
		m.position(i, it.First())
	}
	return m.pickMin()
}

// Seek positions at the first pair with key >= the given key.
func (m *mergedIter) Seek(key []byte) bool {
	if m.err != nil {
		return false
	}
	for i, it := range m.subs {
		m.position(i, it.Seek(key))
	}
	return m.pickMin()
}

// Next advances past the current pair; on an unpositioned iterator it is
// First.
func (m *mergedIter) Next() bool {
	if m.err != nil || m.done {
		return false
	}
	if m.cur < 0 {
		return m.First()
	}
	m.position(m.cur, m.subs[m.cur].Next())
	return m.pickMin()
}

// Key returns the current key (valid after a positioning call returned
// true, until the next one).
func (m *mergedIter) Key() []byte {
	if m.cur < 0 {
		return nil
	}
	return m.subs[m.cur].Key()
}

// Value returns the current value under the same aliasing rule as Key.
func (m *mergedIter) Value() []byte {
	if m.cur < 0 {
		return nil
	}
	return m.subs[m.cur].Value()
}

// Err returns the first error any source encountered.
func (m *mergedIter) Err() error { return m.err }

// Close releases every source. Idempotent; returns the first close error.
func (m *mergedIter) Close() error {
	var firstErr error
	for _, it := range m.subs {
		if err := it.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.cur = -1
	m.done = true
	return firstErr
}
