package shard

import "flodb/internal/obs"

// TelemetrySnapshot merges every shard's metrics into one view:
// counters and gauges sum, histograms merge bucket-wise, so the
// store-wide p99 is computed over the union of the shards' samples
// rather than averaged. Store-level event counts (shard fan-outs) ride
// along.
func (s *Store) TelemetrySnapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, len(s.shards))
	for i, db := range s.shards {
		snaps[i] = db.TelemetrySnapshot()
	}
	merged := obs.Merge(snaps...)
	if s.events != nil {
		merged.Metrics = append(merged.Metrics, obs.EventCountMetrics(s.events)...)
	}
	return merged
}

// TelemetryEvents interleaves the shards' event logs plus the store's
// own fan-out events into one timeline, newest n (n <= 0: everything
// retained). Nil when telemetry is disabled.
func (s *Store) TelemetryEvents(n int) []obs.Event {
	logs := make([][]obs.Event, 0, len(s.shards)+1)
	for _, db := range s.shards {
		if evs := db.TelemetryEvents(0); evs != nil {
			logs = append(logs, evs)
		}
	}
	if s.events != nil {
		logs = append(logs, s.events.Recent(0))
	}
	if len(logs) == 0 {
		return nil
	}
	return obs.MergeEvents(n, logs...)
}
