package shard

import (
	"fmt"

	"flodb/internal/obs"
)

// TelemetrySnapshot merges every shard's metrics into one view:
// counters and gauges sum, histograms merge bucket-wise, so the
// store-wide p99 is computed over the union of the shards' samples
// rather than averaged. Store-level event counts and the topology
// gauges (epoch, split/merge totals, per-shard queue depth and
// hotness) ride along — they are what `flodbctl shards` renders for a
// remote store.
func (s *Store) TelemetrySnapshot() obs.Snapshot {
	t, release, err := s.pinTable()
	if err != nil {
		return obs.Snapshot{}
	}
	defer release()
	snaps := make([]obs.Snapshot, len(t.engines))
	for i, e := range t.engines {
		snaps[i] = e.db.TelemetrySnapshot()
	}
	merged := obs.Merge(snaps...)
	if s.events != nil {
		merged.Metrics = append(merged.Metrics, obs.EventCountMetrics(s.events)...)
	}
	merged.Metrics = append(merged.Metrics,
		obs.Metric{
			Name: "flodb_shards", Help: "Live shard count.",
			Kind: obs.KindGauge, Value: int64(len(t.engines)),
		},
		obs.Metric{
			Name: "flodb_shard_epoch", Help: "Topology epoch (bumps on every split or merge).",
			Kind: obs.KindGauge, Value: int64(t.epoch),
		},
		obs.Metric{
			Name: "flodb_shard_splits_total", Help: "Shard splits performed by this process.",
			Kind: obs.KindCounter, Value: int64(s.splits.Load()),
		},
		obs.Metric{
			Name: "flodb_shard_merges_total", Help: "Shard merges performed by this process.",
			Kind: obs.KindCounter, Value: int64(s.merges.Load()),
		},
	)
	for _, e := range t.engines {
		merged.Metrics = append(merged.Metrics,
			obs.Metric{
				Name: fmt.Sprintf("flodb_shard_queue_depth{shard=%q}", e.dir),
				Help: "Writes enqueued on the shard's commit pipeline, not yet acked.",
				Kind: obs.KindGauge, Value: max(e.queue.depth.Load(), 0),
			},
			obs.Metric{
				Name: fmt.Sprintf("flodb_shard_hotness_ppm{shard=%q}", e.dir),
				Help: "The shard's share of the last sensor window's ops, in parts per million.",
				Kind: obs.KindGauge, Value: int64(e.loadHotShare() * 1e6),
			},
		)
	}
	return merged
}

// TelemetryEvents interleaves the shards' event logs plus the store's
// own lifecycle events (fan-outs, splits, merges, queue spikes) into
// one timeline, newest n (n <= 0: everything retained). Nil when
// telemetry is disabled.
func (s *Store) TelemetryEvents(n int) []obs.Event {
	t, release, err := s.pinTable()
	if err != nil {
		return nil
	}
	defer release()
	logs := make([][]obs.Event, 0, len(t.engines)+1)
	for _, e := range t.engines {
		if evs := e.db.TelemetryEvents(0); evs != nil {
			logs = append(logs, evs)
		}
	}
	if s.events != nil {
		logs = append(logs, s.events.Recent(0))
	}
	if len(logs) == 0 {
		return nil
	}
	return obs.MergeEvents(n, logs...)
}
