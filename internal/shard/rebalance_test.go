package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flodb/internal/kv"
)

// TestSplitMergeUnderWriteStorm is the dynamic-topology model test: a
// pinned cross-shard snapshot must stay repeatable while forced splits
// and merges churn the topology under a concurrent write storm, every
// acked write must survive the churn, and each rewrite must bump the
// epoch exactly once. Run with -race: the fence/swap protocol is
// mostly interesting for what it must NOT share with producers.
func TestSplitMergeUnderWriteStorm(t *testing.T) {
	s := openN(t, t.TempDir(), 2, true)
	defer s.Close()
	const keyspace = 1 << 11

	// Preload so the snapshot has something to pin, value = key so every
	// observable state is self-consistent per key.
	for i := uint64(0); i < keyspace; i++ {
		k := spreadKey(i)
		if err := s.Put(bg, k, k); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	first, err := snap.Scan(bg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != keyspace {
		t.Fatalf("pinned snapshot holds %d pairs, want %d", len(first), keyspace)
	}

	ctx, cancel := context.WithCancel(bg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for ctx.Err() == nil {
				k := spreadKey(uint64(rng.Intn(keyspace)))
				if err := s.Put(ctx, k, k); err != nil && ctx.Err() == nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Churn: split twice, re-check the pinned snapshot between rewrites,
	// then merge back down. Epochs must advance one per rewrite.
	wantEpoch := s.Topology().Epoch
	for _, step := range []struct {
		op   func(int) error
		name string
		idx  int
	}{
		{s.Split, "split", 0},
		{s.Split, "split", 1},
		{s.Merge, "merge", 0},
		{s.Merge, "merge", 0},
	} {
		if err := step.op(step.idx); err != nil {
			cancel()
			wg.Wait()
			t.Fatalf("%s(%d): %v", step.name, step.idx, err)
		}
		wantEpoch++
		topo := s.Topology()
		if topo.Epoch != wantEpoch {
			t.Fatalf("after %s: epoch %d, want %d", step.name, topo.Epoch, wantEpoch)
		}
		if len(topo.Boundaries) != topo.Shards-1 {
			t.Fatalf("after %s: %d boundaries for %d shards", step.name, len(topo.Boundaries), topo.Shards)
		}
		again, err := snap.Scan(bg, nil, nil)
		if err != nil {
			t.Fatalf("snapshot scan across %s: %v", step.name, err)
		}
		if len(again) != len(first) {
			t.Fatalf("snapshot drifted across %s: %d -> %d pairs", step.name, len(first), len(again))
		}
		for i := range again {
			if !bytes.Equal(again[i].Key, first[i].Key) || !bytes.Equal(again[i].Value, first[i].Value) {
				t.Fatalf("snapshot drifted across %s at %d", step.name, i)
			}
		}
	}
	cancel()
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.Topology().Shards; got != 2 {
		t.Fatalf("shards after churn = %d, want 2", got)
	}

	// Every acked write (the storm only overwrites preloaded keys, and
	// every preloaded Put was acked) must have survived the rewrites.
	for i := uint64(0); i < keyspace; i++ {
		k := spreadKey(i)
		v, ok, err := s.Get(bg, k)
		if err != nil || !ok || !bytes.Equal(v, k) {
			t.Fatalf("key %d lost across topology churn (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestCrashMidSplitRecovery kills the store between the children's
// flush and the manifest rename — before the commit point — and
// reopens: the old epoch must serve, every acked write must be
// present, and the half-built child directories must be swept.
func TestCrashMidSplitRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openN(t, dir, 2, true)
	const n = 512
	for i := uint64(0); i < n; i++ {
		k := spreadKey(i)
		if err := s.Put(bg, k, k); err != nil {
			t.Fatal(err)
		}
	}
	// A sync barrier makes every write above durably acked: the crash is
	// then REQUIRED to lose nothing, not merely permitted to keep it.
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected crash before manifest rename")
	s.testHookPreManifest = func() error { return injected }
	if err := s.Split(0); !errors.Is(err, injected) {
		t.Fatalf("Split with crash hook: %v, want injected error", err)
	}
	// The store abandoned itself mid-rewrite: all handles are dead.
	if err := s.Put(bg, spreadKey(0), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on crashed store: %v, want ErrClosed", err)
	}

	// Reopen with no shape hints: the manifest is authoritative.
	re, err := Open(Config{Dir: dir, Core: tinyCore(true)})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	topo := re.Topology()
	if topo.Epoch != 1 || topo.Shards != 2 {
		t.Fatalf("reopened topology epoch=%d shards=%d, want the pre-split 1/2", topo.Epoch, topo.Shards)
	}
	for i := uint64(0); i < n; i++ {
		k := spreadKey(i)
		v, ok, err := re.Get(bg, k)
		if err != nil || !ok || !bytes.Equal(v, k) {
			t.Fatalf("acked key %d lost across crash mid-split (ok=%v err=%v)", i, ok, err)
		}
	}
	// The children the aborted split flushed are orphans; reopen sweeps
	// them so they can never shadow a later rewrite's directories.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shardDirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shardDirs = append(shardDirs, e.Name())
		}
	}
	if len(shardDirs) != 2 {
		t.Fatalf("orphan children not swept: %v", shardDirs)
	}
	// And the recovered store can still split.
	if err := re.Split(0); err != nil {
		t.Fatalf("split after crash recovery: %v", err)
	}
	if got := re.Topology(); got.Epoch != 2 || got.Shards != 3 {
		t.Fatalf("post-recovery split: epoch=%d shards=%d, want 2/3", got.Epoch, got.Shards)
	}
}

// TestCommitterPerKeyFIFO checks the pipeline's ordering contract: all
// writes to one key, issued in order by one producer, apply in that
// order — across group commits, durability-class run boundaries, and
// shard fences — so the last acked value is the one a reader sees.
// Concurrent readers additionally assert monotonicity: a key's visible
// version never goes backward. Run with -race.
func TestCommitterPerKeyFIFO(t *testing.T) {
	s := openN(t, t.TempDir(), 4, true)
	defer s.Close()
	const (
		nKeys   = 16
		nWrites = 400
	)

	val := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return b
	}

	ctx, cancel := context.WithCancel(bg)
	var wg sync.WaitGroup
	var storming atomic.Bool
	storming.Store(true)

	// One reader per key polls Get and asserts the visible version never
	// regresses — the observable face of per-key FIFO.
	for k := 0; k < nKeys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := spreadKey(uint64(k))
			var last uint64
			for storming.Load() && ctx.Err() == nil {
				v, ok, err := s.Get(ctx, key)
				if err != nil || !ok {
					continue
				}
				got := binary.BigEndian.Uint64(v)
				if got < last {
					t.Errorf("key %d went backward: %d after %d", k, got, last)
					return
				}
				last = got
			}
		}(k)
	}

	// One writer per key issues versions 1..nWrites in order, mixing
	// durability classes so the committer has to split runs — the spot
	// where a buggy regroup would reorder.
	var werr atomic.Value
	var writers sync.WaitGroup
	for k := 0; k < nKeys; k++ {
		writers.Add(1)
		go func(k int) {
			defer writers.Done()
			key := spreadKey(uint64(k))
			for v := uint64(1); v <= nWrites; v++ {
				var opts []kv.WriteOption
				if v%3 == 0 {
					opts = append(opts, kv.WithDurability(kv.DurabilityNone))
				}
				if err := s.Put(ctx, key, val(v), opts...); err != nil {
					werr.Store(fmt.Errorf("key %d v%d: %w", k, v, err))
					return
				}
			}
		}(k)
	}
	writers.Wait()
	storming.Store(false)
	cancel()
	wg.Wait()
	if err, _ := werr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}

	// The last write wins for every key — nothing was reordered past it.
	for k := 0; k < nKeys; k++ {
		v, ok, err := s.Get(bg, spreadKey(uint64(k)))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", k, ok, err)
		}
		if got := binary.BigEndian.Uint64(v); got != nWrites {
			t.Fatalf("key %d final version %d, want %d", k, got, nWrites)
		}
	}
}

// TestSensorSplitsAtTwoShards pins the n=2 degenerate case of the hot
// threshold: SplitFactor×fair is 1.0 at two shards, which no share can
// exceed, so without the controller's cap a fully skewed two-shard
// store would never split no matter how lopsided the traffic. This
// drives every write into one shard through the live sensor (no forced
// Split) and requires the controller itself to cross an epoch.
func TestSensorSplitsAtTwoShards(t *testing.T) {
	cfg := tinyCore(false)
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2, Core: cfg, Dynamic: Dynamic{
		Enabled:      true,
		MinShards:    2,
		MaxShards:    4,
		Interval:     10 * time.Millisecond,
		MinWindowOps: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Everything lands in the top shard: 100% share, the maximum skew
	// the sensor can ever observe.
	val := make([]byte, 32)
	deadline := time.Now().Add(30 * time.Second)
	for i := uint64(0); ; i++ {
		k := []byte(fmt.Sprintf("\xf0hot-%06d", i%512))
		if err := s.Put(bg, k, val); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.ShardSplits >= 1 {
			if got := s.Count(); got < 3 {
				t.Fatalf("split reported but Count() = %d", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no sensor-driven split after 30s at n=2: stats=%+v", s.Stats())
		}
	}
}
