package kv

import (
	"testing"
)

func TestResolveWriteOptions(t *testing.T) {
	cases := []struct {
		name string
		def  Durability
		opts []WriteOption
		want Durability
	}{
		{"default default resolves to buffered", DurabilityDefault, nil, DurabilityBuffered},
		{"store default none", DurabilityNone, nil, DurabilityNone},
		{"store default sync", DurabilitySync, nil, DurabilitySync},
		{"per-op sync overrides buffered", DurabilityBuffered, []WriteOption{WithSync()}, DurabilitySync},
		{"per-op none overrides sync default", DurabilitySync, []WriteOption{WithDurability(DurabilityNone)}, DurabilityNone},
		{"per-op default keeps store default", DurabilityNone, []WriteOption{WithDurability(DurabilityDefault)}, DurabilityNone},
		{"later option wins", DurabilityBuffered, []WriteOption{WithSync(), WithDurability(DurabilityNone)}, DurabilityNone},
		{"nil option ignored", DurabilityBuffered, []WriteOption{nil, WithSync()}, DurabilitySync},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ResolveWriteOptions(tc.def, tc.opts...); got.Durability != tc.want {
				t.Fatalf("resolved %v, want %v", got.Durability, tc.want)
			}
		})
	}
}

func TestDurabilityStringParseRoundTrip(t *testing.T) {
	for _, d := range []Durability{DurabilityNone, DurabilityBuffered, DurabilitySync} {
		got, err := ParseDurability(d.String())
		if err != nil || got != d {
			t.Fatalf("round trip %v: got %v, %v", d, got, err)
		}
		if !d.Valid() {
			t.Fatalf("%v reported invalid", d)
		}
	}
	if _, err := ParseDurability("fsync-always"); err == nil {
		t.Fatal("bogus spelling parsed")
	}
	if Durability(99).Valid() {
		t.Fatal("out-of-range durability reported valid")
	}
}
