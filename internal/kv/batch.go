package kv

import (
	"encoding/binary"
	"fmt"

	"flodb/internal/keys"
)

// Batch is an ordered set of mutations committed atomically by
// Store.Apply. Operations are applied in insertion order, so a later Put
// or Delete of the same key wins. Put and Delete copy their arguments; the
// caller may reuse the slices immediately.
//
// A Batch may be reused across Apply calls via Reset. It is not safe for
// concurrent mutation.
type Batch struct {
	ops []BatchOp
	// arena backs the cloned keys and values, amortizing allocation across
	// ops. Slices handed out alias whichever backing array was current at
	// append time, so growth never invalidates earlier ops.
	arena []byte
}

// BatchOp is one mutation inside a Batch.
type BatchOp struct {
	Kind  keys.Kind
	Key   []byte
	Value []byte // nil for deletes
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// clone copies b into the arena and returns the stable copy.
func (b *Batch) clone(p []byte) []byte {
	if len(p) == 0 {
		// The nil/empty distinction is deliberately discarded: returning a
		// non-nil empty slice keeps deletes and empty values uniform.
		return []byte{}
	}
	n := len(b.arena)
	b.arena = append(b.arena, p...)
	return b.arena[n : n+len(p) : n+len(p)]
}

// Put records an insert-or-overwrite of key with value.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, BatchOp{Kind: keys.KindSet, Key: b.clone(key), Value: b.clone(value)})
}

// Delete records a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, BatchOp{Kind: keys.KindDelete, Key: b.clone(key)})
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Ops exposes the recorded operations (for stores applying the batch).
// The returned slice and its contents must not be mutated.
func (b *Batch) Ops() []BatchOp { return b.ops }

// Reset empties the batch for reuse. The arena is dropped rather than
// truncated: stores are allowed to retain the cloned key/value slices
// after Apply, so overwriting the old backing array would corrupt them.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.arena = nil
}

// --- Multi-op WAL record encoding -------------------------------------------

// batchMarker introduces a multi-op WAL record. It is distinct from every
// keys.Kind value (KindDelete=0, KindSet=1), so single-op records produced
// by EncodeRecord and batch records share one WAL stream and are told
// apart by their first byte.
const batchMarker = 0xB7

// EncodeBatchRecord serializes a whole batch as ONE WAL record:
//
//	marker(1) | count(uvarint) | count × ( kind(1) | klen(uvarint) | key | vlen(uvarint) | value )
//
// Because the WAL layer frames and checksums each record as a unit, a
// batch record is recovered all-or-nothing: a crash mid-append tears the
// whole record, never a prefix of its operations.
func EncodeBatchRecord(b *Batch) []byte {
	size := 1 + binary.MaxVarintLen64
	for i := range b.ops {
		size += 1 + 2*binary.MaxVarintLen64 + len(b.ops[i].Key) + len(b.ops[i].Value)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchMarker)
	buf = binary.AppendUvarint(buf, uint64(len(b.ops)))
	for i := range b.ops {
		op := &b.ops[i]
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	return buf
}

// IsBatchRecord reports whether rec was produced by EncodeBatchRecord.
func IsBatchRecord(rec []byte) bool {
	return len(rec) > 0 && rec[0] == batchMarker
}

// ForEachOp decodes rec — either a single-op record from EncodeRecord or a
// multi-op record from EncodeBatchRecord — invoking fn once per operation
// in order. The key and value slices alias rec and are only valid during
// the call. This is the one decoder WAL recovery needs.
func ForEachOp(rec []byte, fn func(kind keys.Kind, key, value []byte) error) error {
	if !IsBatchRecord(rec) {
		kind, key, value, err := DecodeRecord(rec)
		if err != nil {
			return err
		}
		return fn(kind, key, value)
	}
	rest := rec[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: batch count", ErrBadRecord)
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		if len(rest) < 1 {
			return fmt.Errorf("%w: batch op %d: missing kind", ErrBadRecord, i)
		}
		kind := keys.Kind(rest[0])
		if kind != keys.KindSet && kind != keys.KindDelete {
			return fmt.Errorf("%w: batch op %d: kind %d", ErrBadRecord, i, rest[0])
		}
		rest = rest[1:]
		key, tail, err := batchField(rest, i, "key")
		if err != nil {
			return err
		}
		rest = tail
		value, tail, err := batchField(rest, i, "value")
		if err != nil {
			return err
		}
		rest = tail
		if err := fn(kind, key, value); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: trailing bytes after batch", ErrBadRecord)
	}
	return nil
}

// batchField decodes one uvarint-prefixed field of a batch op.
func batchField(rest []byte, op uint64, what string) (field, tail []byte, err error) {
	flen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < flen {
		return nil, nil, fmt.Errorf("%w: batch op %d: %s length", ErrBadRecord, op, what)
	}
	rest = rest[n:]
	return rest[:flen], rest[flen:], nil
}
