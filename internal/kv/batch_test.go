package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flodb/internal/keys"
)

func TestBatchRecordRoundTrip(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte{}, []byte{})         // empty key and value
	b.Put([]byte("k3"), nil)          // nil value
	b.Put([]byte("k1"), []byte("v4")) // duplicate key preserved in order
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}

	rec := EncodeBatchRecord(b)
	if !IsBatchRecord(rec) {
		t.Fatal("batch record not recognized")
	}
	want := b.Ops()
	var got []BatchOp
	err := ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
		got = append(got, BatchOp{Kind: kind, Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchClonesInputs(t *testing.T) {
	b := NewBatch()
	key, val := []byte("key"), []byte("val")
	b.Put(key, val)
	key[0], val[0] = 'X', 'X'
	op := b.Ops()[0]
	if string(op.Key) != "key" || string(op.Value) != "val" {
		t.Fatalf("batch aliased caller buffers: %q %q", op.Key, op.Value)
	}
}

func TestBatchResetDoesNotInvalidateRetainedSlices(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("stable"), []byte("value"))
	retained := b.Ops()[0]
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Put([]byte("XXXXXX"), []byte("YYYYY"))
	if string(retained.Key) != "stable" || string(retained.Value) != "value" {
		t.Fatalf("Reset reused the arena under retained slices: %q %q", retained.Key, retained.Value)
	}
}

func TestForEachOpHandlesSingleRecords(t *testing.T) {
	rec := EncodeRecord(keys.KindSet, []byte("k"), []byte("v"))
	if IsBatchRecord(rec) {
		t.Fatal("single record misidentified as batch")
	}
	calls := 0
	err := ForEachOp(rec, func(kind keys.Kind, key, value []byte) error {
		calls++
		if kind != keys.KindSet || string(key) != "k" || string(value) != "v" {
			t.Fatalf("decoded %v %q %q", kind, key, value)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestForEachOpRejectsCorruptBatches(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("key"), []byte("value"))
	b.Put([]byte("key2"), []byte("value2"))
	rec := EncodeBatchRecord(b)

	nop := func(keys.Kind, []byte, []byte) error { return nil }
	// Every strict prefix must fail: a batch decodes whole or not at all.
	for cut := 1; cut < len(rec); cut++ {
		if err := ForEachOp(rec[:cut], nop); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		} else if !errors.Is(err, ErrBadRecord) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
	// Trailing garbage must fail too.
	if err := ForEachOp(append(append([]byte(nil), rec...), 0xFF), nop); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
	// A bad op kind must fail.
	bad := append([]byte(nil), rec...)
	bad[2] = 0x7F // first op's kind byte: marker(1) + count(1 for small batches)
	if err := ForEachOp(bad, nop); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad kind: %v", err)
	}
}

func TestForEachOpPropagatesCallbackError(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("a"), nil)
	b.Put([]byte("b"), nil)
	sentinel := errors.New("stop")
	calls := 0
	err := ForEachOp(EncodeBatchRecord(b), func(keys.Kind, []byte, []byte) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBatchRecordPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		b := NewBatch()
		n := rng.Intn(20)
		type op struct {
			kind keys.Kind
			k, v string
		}
		var want []op
		for i := 0; i < n; i++ {
			k := make([]byte, rng.Intn(40))
			rng.Read(k)
			if rng.Intn(4) == 0 {
				b.Delete(k)
				want = append(want, op{keys.KindDelete, string(k), ""})
			} else {
				v := make([]byte, rng.Intn(200))
				rng.Read(v)
				b.Put(k, v)
				want = append(want, op{keys.KindSet, string(k), string(v)})
			}
		}
		i := 0
		err := ForEachOp(EncodeBatchRecord(b), func(kind keys.Kind, key, value []byte) error {
			if i >= len(want) {
				return fmt.Errorf("extra op %d", i)
			}
			w := want[i]
			if kind != w.kind || string(key) != w.k || string(value) != w.v {
				return fmt.Errorf("op %d mismatch", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if i != len(want) {
			t.Fatalf("trial %d: decoded %d of %d ops", trial, i, len(want))
		}
	}
}
