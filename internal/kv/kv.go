// Package kv defines the store interface shared by FloDB and the four
// baseline systems, plus the wire encoding of key-value mutations used in
// write-ahead-log records.
//
// Having one interface is what lets the benchmark harness run the paper's
// five systems (FloDB, LevelDB, HyperLevelDB, RocksDB, RocksDB/cLSM)
// through identical drivers, as the paper's evaluation does.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flodb/internal/keys"
)

// Pair is a key-value result returned by scans.
type Pair struct {
	Key   []byte
	Value []byte
}

// Store is the user-facing key-value API from §2.1 of the paper: put, get,
// remove, and range scans with point-in-time (serializable) semantics.
type Store interface {
	// Put inserts or overwrites key with value.
	Put(key, value []byte) error
	// Delete removes key (by writing a tombstone).
	Delete(key []byte) error
	// Get returns the freshest value for key. found is false if the key is
	// absent or deleted.
	Get(key []byte) (value []byte, found bool, err error)
	// Scan returns all pairs with low <= key < high, in key order. The
	// returned view is a consistent snapshot (serializable; master scans
	// in FloDB are linearizable, §4.4).
	Scan(low, high []byte) ([]Pair, error)
	// Close flushes and releases resources.
	Close() error
}

// Syncer is implemented by stores that can force all buffered state to
// stable storage.
type Syncer interface {
	Sync() error
}

// Stats are point-in-time counters exposed by stores for the harness.
type Stats struct {
	Puts, Gets, Deletes, Scans uint64
	ScanRestarts               uint64
	FallbackScans              uint64
	MembufferHits              uint64 // updates completed in the Membuffer
	MemtableWrites             uint64 // updates that fell through to the Memtable
	Flushes                    uint64
	Compactions                uint64
}

// StatsProvider is implemented by stores that report Stats.
type StatsProvider interface {
	Stats() Stats
}

// --- WAL record encoding ----------------------------------------------------

// ErrBadRecord reports a structurally invalid mutation record.
var ErrBadRecord = errors.New("kv: bad record")

// EncodeRecord serializes one mutation: kind, key, value.
// Layout: kind(1) | klen(uvarint) | key | vlen(uvarint) | value.
func EncodeRecord(kind keys.Kind, key, value []byte) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, value...)
	return buf
}

// DecodeRecord parses a record produced by EncodeRecord. The returned
// slices alias rec.
func DecodeRecord(rec []byte) (kind keys.Kind, key, value []byte, err error) {
	if len(rec) < 1 {
		return 0, nil, nil, fmt.Errorf("%w: empty", ErrBadRecord)
	}
	kind = keys.Kind(rec[0])
	if kind != keys.KindSet && kind != keys.KindDelete {
		return 0, nil, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, rec[0])
	}
	rest := rec[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return 0, nil, nil, fmt.Errorf("%w: key length", ErrBadRecord)
	}
	rest = rest[n:]
	key = rest[:klen]
	rest = rest[klen:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vlen {
		return 0, nil, nil, fmt.Errorf("%w: value length", ErrBadRecord)
	}
	rest = rest[n:]
	if uint64(len(rest)) != vlen {
		return 0, nil, nil, fmt.Errorf("%w: trailing bytes", ErrBadRecord)
	}
	value = rest[:vlen]
	return kind, key, value, nil
}
